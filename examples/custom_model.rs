//! Compile a user-described model from the dependency-free text format and
//! visualize the chosen compute-shift plans.
//!
//! ```bash
//! cargo run --release --example custom_model           # built-in demo
//! cargo run --release --example custom_model model.t10 # your own file
//! ```

#![allow(clippy::indexing_slicing)]

use t10_core::compiler::Compiler;
use t10_core::search::SearchConfig;
use t10_core::viz;
use t10_device::ChipSpec;
use t10_models::textfmt;

const DEMO: &str = "
model demo-encoder
input tokens 128 256
layernorm ln1 tokens
attention attn ln1 heads=8
residual r1 tokens attn
linear up r1 1024 gelu
linear down up 256
residual r2 r1 down
output r2
";

fn main() {
    let src = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).expect("read model file"),
        None => DEMO.to_string(),
    };
    let graph = textfmt::parse(&src).expect("parse model");
    println!(
        "{}: {} operators, {:.2} M parameters",
        graph.name(),
        graph.nodes().len(),
        graph.parameter_count() as f64 / 1e6
    );
    let spec = ChipSpec::ipu_with_cores(64);
    let compiler = Compiler::new(spec.clone(), SearchConfig::strict());
    let compiled = compiler.compile_graph(&graph).expect("compile");
    println!(
        "compiled in {:.2} s; estimated latency {:.1} us; idle memory {} B/core\n",
        compiled.compile_seconds,
        compiled.estimated_time * 1e6,
        compiled.reconciled.idle_mem
    );
    // Show the plan of the heaviest operator, with its rotation schedule.
    let (heaviest, _) = graph
        .nodes()
        .iter()
        .enumerate()
        .max_by_key(|(_, n)| n.op.flops())
        .expect("nonempty graph");
    let choice = &compiled.reconciled.choices[heaviest];
    let plan = &compiled.node_pareto[heaviest].plans()[choice.active].plan;
    let op = &graph.node(heaviest).op;
    println!(
        "heaviest operator `{}`:\n  {}",
        graph.node(heaviest).name,
        viz::plan_summary(op, plan)
    );
    for level in 0..plan.rotations.len() {
        print!("{}", viz::rotation_schedule(op, plan, level));
    }
    println!("\nPareto frontier of `{}`:", graph.node(heaviest).name);
    print!(
        "{}",
        viz::pareto_scatter(&compiled.node_pareto[heaviest], 48, 12)
    );
}
