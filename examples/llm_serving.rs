//! LLM decode serving on an inter-core connected chip vs an A100 GPU —
//! the paper's §6.7 argument in one binary: at small batch, decode is
//! weight-bandwidth-bound, and 8 TB/s of aggregated inter-core SRAM
//! bandwidth beats 1.94 TB/s of HBM.
//!
//! ```bash
//! cargo run --release --example llm_serving -- 8
//! ```

use t10_bench::harness::{bench_search_config, Platform};
use t10_device::{ChipSpec, GpuSpec};
use t10_models::zoo;

fn main() {
    let batch: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(8);
    let platform = Platform::new(ChipSpec::ipu_mk2());
    let gpu = GpuSpec::a100();
    println!("decode step latency at batch {batch} (per-chip layer subsets):\n");
    println!(
        "{:<12} {:>14} {:>14} {:>9}",
        "model", "IPU+T10", "A100 roofline", "speedup"
    );
    for (name, cfg, layers) in zoo::llm_models() {
        let g = zoo::build_llm(name, cfg, layers, batch).expect("build");
        let t10 = platform.t10(&g, bench_search_config());
        let gpu_time = gpu.graph_time(&g);
        let ipu = t10.latency;
        if ipu.is_finite() {
            println!(
                "{:<12} {:>11.3} ms {:>11.3} ms {:>8.2}x",
                name,
                ipu * 1e3,
                gpu_time * 1e3,
                gpu_time / ipu
            );
        } else {
            println!("{:<12} {:>14} {:>11.3} ms", name, "OOM", gpu_time * 1e3);
        }
    }
    println!("\n(A100 modeled with the roofline methodology; see DESIGN.md)");
}
