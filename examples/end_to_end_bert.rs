//! Compile BERT-Large end-to-end for a full IPU MK2, comparing T10 against
//! the Roller baseline (a one-row slice of the paper's Figure 12).
//!
//! ```bash
//! cargo run --release --example end_to_end_bert -- 1
//! ```

use t10_bench::harness::{bench_search_config, Platform};
use t10_device::ChipSpec;
use t10_models::transformer::bert_large;

fn main() {
    let batch: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(1);
    let platform = Platform::new(ChipSpec::ipu_mk2());
    let g = bert_large(batch).expect("build BERT");
    println!(
        "BERT-Large, batch {batch}: {} operators, {:.0} M parameters",
        g.nodes().len(),
        g.parameter_count() as f64 / 1e6
    );

    let t10 = platform.t10(&g, bench_search_config());
    let roller = platform.roller(&g);
    for o in [&roller, &t10] {
        match &o.report {
            Some(r) => println!(
                "{:>7}: {:>9.3} ms   ({:>4.1}% transfer, {:.2} GB/s avg per-core bw, compile {:.1} s)",
                o.system,
                r.total_time * 1e3,
                r.transfer_fraction() * 100.0,
                r.avg_link_bandwidth() / 1e9,
                o.compile_seconds,
            ),
            None => println!("{:>7}: does not fit on chip", o.system),
        }
    }
    if t10.latency.is_finite() && roller.latency.is_finite() {
        println!("speedup: {:.2}x", roller.latency / t10.latency);
    }
}
