//! Quickstart: compile one operator graph with T10 and simulate it.
//!
//! ```bash
//! cargo run --release --example quickstart
//! ```

#![allow(clippy::indexing_slicing)]

use t10_core::compiler::Compiler;
use t10_core::search::SearchConfig;
use t10_device::ChipSpec;
use t10_ir::{builders, DType, Graph, Unary, ValueKind};
use t10_sim::{Simulator, SimulatorMode};

fn main() {
    // 1. Describe a model as an operator graph: y = relu(x @ W1) @ W2.
    let (m, d) = (256, 512);
    let mut g = Graph::new("quickstart");
    let x = g.add_value("x", vec![m, d], DType::F16, ValueKind::Input);
    let w1 = g.add_value("w1", vec![d, d], DType::F16, ValueKind::Weight);
    let h = g.add_value("h", vec![m, d], DType::F16, ValueKind::Activation);
    let w2 = g.add_value("w2", vec![d, d], DType::F16, ValueKind::Weight);
    let y = g.add_value("y", vec![m, d], DType::F16, ValueKind::Output);
    let mut fc1 = builders::matmul(x, w1, h, m, d, d).expect("fc1");
    fc1.unary = Some(Unary::Relu);
    g.add_node("fc1", fc1).expect("add fc1");
    g.add_node("fc2", builders::matmul(h, w2, y, m, d, d).expect("fc2"))
        .expect("add fc2");

    // 2. Compile for an inter-core connected chip (a 64-core IPU slice).
    let spec = ChipSpec::ipu_with_cores(64);
    let compiler = Compiler::new(spec.clone(), SearchConfig::strict());
    let compiled = compiler.compile_graph(&g).expect("compile");
    println!(
        "compiled {} operators in {:.2} s (cost-model estimate: {:.1} us)",
        g.nodes().len(),
        compiled.compile_seconds,
        compiled.estimated_time * 1e6
    );

    // 3. Inspect the chosen compute-shift plans.
    for (i, choice) in compiled.reconciled.choices.iter().enumerate() {
        let plan = &compiled.node_pareto[i].plans()[choice.active].plan;
        println!(
            "  {}: F_op = {:?}, {} cores, {} steps, {} B/core active",
            g.node(i).name,
            plan.config.f_op,
            plan.cores_used,
            plan.total_steps,
            plan.mem_per_core,
        );
        for (s, _slot) in plan.slots.iter().enumerate() {
            let rt = plan.rtensor(s);
            println!(
                "     input {s}: f_s = {:?}, f_t = {:?}, rp = {:?}, {} ring(s)",
                rt.f_s, rt.f_t, rt.rp, rt.rings
            );
        }
    }

    // 4. Simulate the program on the modeled chip.
    let mut sim = Simulator::new(spec, SimulatorMode::Timing);
    let report = sim.run(&compiled.program).expect("simulate");
    println!(
        "simulated latency: {:.1} us ({:.0}% in inter-core transfer)",
        report.total_time * 1e6,
        report.transfer_fraction() * 100.0
    );
}
