//! Explore the intra-operator trade-off space of a single operator
//! (paper §4.3.1 / Figure 17): every Pareto-optimal compute-shift plan,
//! its rTensor configuration, memory footprint, and predicted latency.
//!
//! ```bash
//! cargo run --release --example operator_explorer -- 512 512 512
//! ```

#![allow(clippy::indexing_slicing)]

use t10_core::cost::CostModel;
use t10_core::search::{search_operator, SearchConfig};
use t10_core::viz;
use t10_device::ChipSpec;
use t10_ir::builders;

fn main() {
    let args: Vec<usize> = std::env::args()
        .skip(1)
        .filter_map(|a| a.parse().ok())
        .collect();
    let (m, k, n) = match args[..] {
        [m, k, n] => (m, k, n),
        _ => (512, 512, 512),
    };
    let spec = ChipSpec::ipu_with_cores(64);
    println!("MatMul [{m}x{k}] @ [{k}x{n}] on {} cores", spec.num_cores);

    let cost = CostModel::calibrate(&spec, 192, 7).expect("calibrate");
    let op = builders::matmul(0, 1, 2, m, k, n).expect("op");
    let mut cfg = SearchConfig::strict();
    cfg.collect_samples = true;
    let (pareto, stats) = search_operator(&op, &[2, 2], 2, &cost, &cfg).expect("search");

    println!(
        "search space: complete ≈ {:.1e}, filtered = {}, Pareto = {}",
        stats.complete_space, stats.filtered_space, stats.optimized_space
    );
    println!("\nPareto frontier (memory ascending):");
    println!(
        "{:>10}  {:>12}  {:>9}  {:<18} plan",
        "mem/core", "exec (us)", "setup(us)", "F_op"
    );
    for sp in pareto.plans() {
        let rots: Vec<String> = sp
            .plan
            .rotations
            .iter()
            .map(|l| {
                format!(
                    "axis {:?} x{} rp={}",
                    l.axis.map(|a| op.expr.axes[a].name.clone()),
                    l.steps,
                    l.rp
                )
            })
            .collect();
        println!(
            "{:>10}  {:>12.1}  {:>9.1}  {:<18} {} steps, rotations: [{}]",
            sp.cost.mem_per_core,
            sp.cost.exec_time * 1e6,
            sp.setup_time * 1e6,
            format!("{:?}", sp.plan.config.f_op),
            sp.plan.total_steps,
            rots.join(", "),
        );
    }
    println!("\nfrontier shape:");
    print!("{}", viz::pareto_scatter(&pareto, 48, 12));
    // Rotation schedule of the leanest plan (the most interesting one).
    if let Some(lean) = pareto.min_memory() {
        println!("rotation schedule of the leanest plan:");
        for level in 0..lean.plan.rotations.len() {
            print!("{}", viz::rotation_schedule(&op, &lean.plan, level));
        }
    }
}
