//! Differential validation of the translation validator (`t10-prove`)
//! against the structural verifier and the functional simulator.
//!
//! The corruptions here are the ones a *well-formed* program can hide:
//! every mutated program still satisfies all sixteen structural rules
//! (capacity, ring degrees, BSP, cost) — only the symbolic dataflow
//! prover can tell it no longer computes the operator. Each mutation must
//! trip exactly its PROVE/DF rule, and the dead-shift lint's byte count
//! must agree with the simulator's shift-byte counters to the byte.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use t10_core::lower::{lower_functional, FunctionalLowering};
use t10_core::{Plan, PlanConfig, TemporalChoice};
use t10_device::program::{BufferDecl, Phase, Program, ShiftKind, ShiftOp, Superstep};
use t10_device::ChipSpec;
use t10_ir::{builders, Tensor};
use t10_prove::{CertStatus, ProofOutcome, Prover};
use t10_sim::{Simulator, SimulatorMode};
use t10_verify::{RuleId, Verifier};

/// A real compiled artifact: the paper's Figure-7-style matmul
/// (`out[i,n] = Σ_k A[i,k]·B[k,n]`, 2×6×3) spatially partitioned 2×3
/// over six cores with both operands rotating.
fn lowered() -> FunctionalLowering {
    let op = builders::matmul(0, 1, 2, 2, 6, 3).unwrap();
    let plan = Plan::build(
        &op,
        &vec![4; op.expr.num_inputs()],
        4,
        PlanConfig {
            f_op: vec![2, 1, 3],
            temporal: vec![TemporalChoice::rotate(1, 3), TemporalChoice::rotate(0, 2)],
        },
    )
    .unwrap();
    lower_functional(&op, &plan).unwrap()
}

fn prove(f: &FunctionalLowering) -> ProofOutcome {
    Prover::new().prove_program(&f.program, &f.output_buffers)
}

/// Asserts all sixteen structural rules accept the (possibly corrupted)
/// program: the mutation is invisible to well-formedness checking.
fn assert_structurally_silent(program: &Program, what: &str) {
    let report = Verifier::new(&ChipSpec::ipu_with_cores(6)).verify_program(program);
    assert!(
        report.is_ok(),
        "{what}: a structural rule fired — the mutation is not \
         prover-exclusive: {:?}",
        report.diagnostics
    );
    assert_eq!(report.stats.rules_checked, RuleId::STRUCTURAL.len());
}

/// Runs the functional simulator over the program with pattern inputs and
/// returns (total shift bytes, extracted output tensor).
fn run_functional(f: &FunctionalLowering) -> (u64, Tensor) {
    let a = Tensor::pattern(vec![2, 6], 0.13);
    let b = Tensor::pattern(vec![6, 3], 0.71);
    let mut sim = Simulator::new(ChipSpec::ipu_with_cores(6), SimulatorMode::Functional);
    sim.load(&f.program).unwrap();
    for (slot, t) in [&a, &b].iter().enumerate() {
        for &id in &f.input_buffers[slot] {
            sim.bind(id, t).unwrap();
        }
    }
    let report = sim.run_loaded(&f.program).unwrap();
    let out = sim.extract(&f.output_buffers, &[2, 3]).unwrap();
    (report.total_shift_bytes, out)
}

/// The clean artifact proves end to end, and the prover certifies the
/// *absence* of dead shifts — the "proven absent" half of the dead-shift
/// differential.
#[test]
fn clean_lowered_matmul_proves_with_no_dead_shifts() {
    let f = lowered();
    assert_structurally_silent(&f.program, "clean");
    let out = prove(&f);
    assert!(out.proved(), "diags: {:?}", out.report.diagnostics);
    assert_eq!(out.cert.status, CertStatus::Proved);
    assert_eq!(out.cert.ops.len(), 1);
    assert!(out.cert.ops[0].covered_exactly_once);
    assert_eq!(out.cert.ops[0].iteration_points, 2 * 6 * 3);
    assert!(out.cert.rotations > 0, "both operands rotate");
    assert!(out.cert.reads_checked > 0);
    assert!(out.cert.flow_checked);
    assert!(out.cert.dead_shifts.is_empty());
    assert_eq!(out.cert.dead_shift_bytes, 0);
    assert!(out.cert.dead_buffers.is_empty());
    assert!(out.cert.hazards.is_empty());
}

/// Swapping the destinations of two same-shape rotation shifts preserves
/// every ring degree and pace (structurally perfect) but misroutes the
/// sub-tensors: only rotation provenance (PROVE03) can catch it.
#[test]
fn swapped_shift_destinations_refute_prove03_and_nothing_structural() {
    let mut f = lowered();
    let step = &mut f.program.steps[0].exchange;
    let (i, j) = {
        let mut pair = None;
        'outer: for a in 0..step.len() {
            for b in a + 1..step.len() {
                if step[a].kind == step[b].kind && step[a].dst != step[b].dst {
                    pair = Some((a, b));
                    break 'outer;
                }
            }
        }
        pair.expect("two same-kind rotations to swap")
    };
    let (da, db) = (step[i].dst, step[j].dst);
    step[i].dst = db;
    step[j].dst = da;
    assert_structurally_silent(&f.program, "swapped destinations");
    let out = prove(&f);
    assert!(!out.proved());
    assert_eq!(out.cert.status, CertStatus::Refuted);
    assert_eq!(out.cert.violations, vec!["PROVE03"]);
}

/// Dropping an entire rotation step keeps the ring graph trivially
/// balanced (no rotations at all that step), so no structural rule
/// objects — but later supersteps now read coordinates that were never
/// delivered.
#[test]
fn dropped_rotation_step_refutes_prove03_and_nothing_structural() {
    let mut f = lowered();
    assert!(
        !f.program.steps[0].exchange.is_empty(),
        "fixture must rotate at step 0"
    );
    f.program.steps[0].exchange.clear();
    assert_structurally_silent(&f.program, "dropped rotation");
    let out = prove(&f);
    assert!(!out.proved());
    assert_eq!(out.cert.violations, vec!["PROVE03"]);
}

/// Duplicating a compute task double-counts its iteration box. The
/// structural rules only police exchange writers, so the duplicate is
/// invisible to them; coverage uniqueness (PROVE02) localizes the
/// double-computed point.
#[test]
fn duplicated_compute_task_refutes_prove02_and_nothing_structural() {
    let mut f = lowered();
    let last = f.program.steps.len() - 1;
    let dup = f.program.steps[last].compute[0].clone();
    f.program.steps[last].compute.push(dup);
    assert_structurally_silent(&f.program, "duplicated compute");
    let out = prove(&f);
    assert!(!out.proved());
    assert_eq!(out.cert.violations, vec!["PROVE02"]);
    assert!(
        out.report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("computed 2 times")),
        "localization must name the duplicated point: {:?}",
        out.report.diagnostics
    );
}

/// Dead-shift differential, the "found" half: append a cross-core copy
/// whose payload nothing ever reads. The structural rules accept it (one
/// writer, capacity fits, no ring involved); the prover lints DF01 with a
/// byte count that matches the functional simulator's shift-byte counter
/// delta exactly — and the run's outputs are untouched, confirming the
/// traffic really was dead.
#[test]
fn dead_copy_byte_count_matches_simulator_counters() {
    let clean = lowered();
    let (clean_bytes, clean_out) = run_functional(&clean);

    let mut dirty = lowered();
    let src = clean.input_buffers[0][0];
    let src_decl = dirty.program.buffers[src].clone();
    let scratch = dirty.program.add_buffer(BufferDecl {
        core: (src_decl.core + 1) % 6,
        label: "dead-scratch".into(),
        bytes: src_decl.bytes,
        coords: src_decl.coords.clone(),
        init: 0.0,
    });
    let mut step = Superstep::new(Some(0), Phase::Execute);
    step.exchange.push(ShiftOp {
        src,
        dst: scratch,
        kind: ShiftKind::Copy,
    });
    dirty.program.steps.push(step);
    assert_structurally_silent(&dirty.program, "dead copy");

    let out = prove(&dirty);
    assert!(out.proved(), "a lint must not refute the program");
    assert_eq!(out.cert.violations, vec!["DF01"]);
    assert_eq!(out.cert.dead_shifts.len(), 1);
    assert_eq!(out.cert.dead_shifts[0].buffer, scratch);

    let (dirty_bytes, dirty_out) = run_functional(&dirty);
    assert_eq!(
        dirty_bytes - clean_bytes,
        out.cert.dead_shift_bytes,
        "prover and simulator disagree on the dead traffic"
    );
    assert_eq!(out.cert.dead_shift_bytes, src_decl.bytes as u64);
    assert_eq!(clean_out, dirty_out, "dead traffic must not change results");
}
