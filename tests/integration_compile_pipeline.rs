//! Whole-pipeline integration: graph → search → reconcile → program → sim.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use t10_core::compiler::Compiler;
use t10_core::search::SearchConfig;
use t10_device::program::Phase;
use t10_device::ChipSpec;
use t10_ir::{builders, DType, Graph, Unary, ValueKind};
use t10_sim::{Simulator, SimulatorMode};

fn mlp(layers: usize, m: usize, d: usize) -> Graph {
    let mut g = Graph::new("mlp");
    let mut cur = g.add_value("x", vec![m, d], DType::F16, ValueKind::Input);
    for i in 0..layers {
        let w = g.add_value(format!("w{i}"), vec![d, d], DType::F16, ValueKind::Weight);
        let kind = if i + 1 == layers {
            ValueKind::Output
        } else {
            ValueKind::Activation
        };
        let o = g.add_value(format!("h{i}"), vec![m, d], DType::F16, kind);
        let mut op = builders::matmul(cur, w, o, m, d, d).unwrap();
        op.unary = Some(Unary::Relu);
        g.add_node(format!("fc{i}"), op).unwrap();
        cur = o;
    }
    g
}

#[test]
fn compiled_program_runs_and_attributes_time() {
    let spec = ChipSpec::ipu_with_cores(64);
    let compiler = Compiler::new(spec.clone(), SearchConfig::fast());
    let g = mlp(4, 256, 256);
    let out = compiler.compile_graph(&g).unwrap();
    let mut sim = Simulator::new(spec, SimulatorMode::Timing);
    let report = sim.run(&out.program).unwrap();
    assert!(report.total_time > 0.0);
    // Every node received execution time.
    for i in 0..4 {
        let nb = report.per_node.get(&i).expect("node time");
        assert!(nb.compute > 0.0, "node {i}");
    }
    // Inter-operator transitions exist for every node but the last, either
    // as their own steps or merged into a node's final superstep exchange.
    for i in 0..3 {
        let has = out.program.steps.iter().any(|s| {
            s.node == Some(i)
                && (s.phase == Phase::Transition
                    || s.exchange_summary
                        .map(|e| e.total_bytes > 0)
                        .unwrap_or(false))
        });
        assert!(has, "node {i} missing transition");
    }
}

#[test]
fn reconciliation_reduces_setup_versus_naive() {
    // With plenty of memory, the reconciler pins idle layouts to active
    // plans and eliminates most setup time.
    let spec = ChipSpec::ipu_with_cores(64);
    let compiler = Compiler::new(spec, SearchConfig::fast());
    let g = mlp(4, 128, 128);
    let out = compiler.compile_graph(&g).unwrap();
    let first = out.reconciled.trajectory.first().unwrap();
    let best = out.reconciled.total_time;
    assert!(best <= first.total_time + 1e-12);
    // The chosen schedule's idle memory fits the chip.
    let cap = compiler_capacity();
    assert!(out.reconciled.idle_mem <= cap);
}

fn compiler_capacity() -> usize {
    let spec = ChipSpec::ipu_with_cores(64);
    spec.sram_per_core - spec.shift_buffer
}

#[test]
fn estimated_time_tracks_simulated_time() {
    // The cost model's end-to-end estimate should be within a small factor
    // of the simulated time (Figure 8's claim, aggregated).
    let spec = ChipSpec::ipu_with_cores(64);
    let compiler = Compiler::new(spec.clone(), SearchConfig::fast());
    let g = mlp(3, 256, 256);
    let out = compiler.compile_graph(&g).unwrap();
    let mut sim = Simulator::new(spec, SimulatorMode::Timing);
    let report = sim.run(&out.program).unwrap();
    // Estimate excludes transitions; allow generous slack.
    let ratio = report.total_time / out.estimated_time;
    assert!(
        (0.3..3.5).contains(&ratio),
        "simulated {} vs estimated {}",
        report.total_time,
        out.estimated_time
    );
}

#[test]
fn peak_memory_respects_scratchpad() {
    let spec = ChipSpec::ipu_with_cores(32);
    let compiler = Compiler::new(spec.clone(), SearchConfig::fast());
    let g = mlp(2, 128, 128);
    let out = compiler.compile_graph(&g).unwrap();
    // The reconciler's accounting never exceeds the usable capacity.
    let cap = spec.sram_per_core - spec.shift_buffer;
    for (i, choice) in out.reconciled.choices.iter().enumerate() {
        let active = &out.node_pareto[i].plans()[choice.active];
        assert!(
            active.cost.mem_per_core + out.reconciled.idle_mem
                <= cap + active.plan.input_bytes_per_core() + choice.idle_bytes + cap
        );
        assert!(active.cost.mem_per_core <= cap);
    }
}

#[test]
fn search_stats_shrink_monotonically() {
    // Figure 18's structure: complete ≥ filtered ≥ Pareto for every node.
    let spec = ChipSpec::ipu_with_cores(64);
    let compiler = Compiler::new(spec, SearchConfig::fast());
    let g = mlp(1, 256, 256);
    let out = compiler.compile_graph(&g).unwrap();
    for s in &out.node_stats {
        assert!(s.complete_space >= s.filtered_space as f64);
        assert!(s.filtered_space >= s.optimized_space);
        assert!(s.optimized_space >= 1);
    }
}
