//! Differential validation of the static verifier against the simulator.
//!
//! The property the verifier promises: `verify(program).is_ok()` implies
//! the simulator completes the program without a capacity or deadlock
//! error. Here that implication is exercised over the whole model zoo
//! (timing programs) and over searched matmul plans (functional programs),
//! plus the wiring the verifier rides in on: the compiler's mandatory
//! post-pass, the recovery controller's recompile gate, and the trace.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use std::time::{Duration, Instant};

use t10_bench::harness::bench_search_config;
use t10_core::compiler::Compiler;
use t10_core::recovery::{RecoveryController, RecoveryPolicy, RecoveryUnit};
use t10_core::search::{search_operator, SearchConfig};
use t10_core::{lower, verify_lowering, verify_plan, CompileError, CompileOptions, CostModel};
use t10_device::program::BufferDecl;
use t10_device::ChipSpec;
use t10_ir::{builders, Tensor};
use t10_models::all_models;
use t10_sim::{FaultPlan, Simulator, SimulatorMode};
use t10_trace::Trace;
use t10_verify::Verifier;

/// Every zoo model's compiled timing program is verifier-clean, and the
/// timing simulator then completes it without a capacity or deadlock
/// error. The verification itself stays under the 1 s whole-zoo budget —
/// it is pure analysis, no superstep is simulated.
#[test]
fn zoo_programs_verify_clean_and_simulate_clean() {
    let spec = ChipSpec::ipu_mk2();
    let mut verify_time = Duration::ZERO;
    let mut checked = 0usize;
    for model in all_models() {
        let g = (model.build)(1).unwrap();
        let compiled = Compiler::new(spec.clone(), bench_search_config())
            .compile_graph(&g)
            .unwrap();
        let t0 = Instant::now();
        let report = Verifier::new(&spec).verify_program(&compiled.program);
        verify_time += t0.elapsed();
        assert!(
            report.is_ok(),
            "{}: verifier refuted a released artifact: {:?}",
            model.name,
            report.diagnostics
        );
        assert!(report.stats.steps > 0, "{}: empty program", model.name);
        // The accepted program must also run: no OOM, no wedge.
        let r = Simulator::new(spec.clone(), SimulatorMode::Timing)
            .run(&compiled.program)
            .unwrap();
        assert!(r.total_time > 0.0, "{}: empty run", model.name);
        checked += 1;
    }
    assert!(checked >= 4, "zoo shrank to {checked} models");
    assert!(
        verify_time < Duration::from_secs(1),
        "whole-zoo verification took {verify_time:?}"
    );
}

/// Functional differential: every searched matmul plan the verifier
/// accepts (plan, lowering, and program level) executes to completion on
/// the functional simulator. Acceptance is not vacuous — the search
/// produces several lowerable plans for this shape.
#[test]
fn accepted_functional_lowerings_execute() {
    let spec = ChipSpec::ipu_with_cores(16);
    let cost = CostModel::calibrate(&spec, 128, 5).unwrap();
    let op = builders::matmul(0, 1, 2, 16, 32, 16).unwrap();
    let mut cfg = SearchConfig::fast();
    cfg.min_core_utilization = 0.9;
    let (pareto, _) = search_operator(&op, &[4, 4], 4, &cost, &cfg).unwrap();
    let capacity = spec.sram_per_core - spec.shift_buffer;
    let a = Tensor::pattern(vec![16, 32], 0.11);
    let b = Tensor::pattern(vec![32, 16], 0.77);
    let mut accepted = 0usize;
    for sp in pareto.plans() {
        let Ok(f) = lower::lower_functional(&op, &sp.plan) else {
            continue; // padded plans are priced by the timing path only
        };
        assert!(
            verify_plan(&op, &sp.plan, capacity, spec.num_cores).is_ok(),
            "plan {:?} refuted",
            sp.plan.config
        );
        assert!(
            verify_lowering(&op, &sp.plan, &f).is_ok(),
            "lowering for {:?} refuted",
            sp.plan.config
        );
        let run_spec = ChipSpec::ipu_with_cores(sp.plan.cores_used.max(1));
        assert!(
            Verifier::new(&run_spec).verify_program(&f.program).is_ok(),
            "program for {:?} refuted",
            sp.plan.config
        );
        let mut sim = Simulator::new(run_spec, SimulatorMode::Functional);
        sim.load(&f.program).unwrap();
        for (slot, t) in [&a, &b].iter().enumerate() {
            for &id in &f.input_buffers[slot] {
                sim.bind(id, t).unwrap();
            }
        }
        sim.run_loaded(&f.program).unwrap();
        accepted += 1;
    }
    assert!(accepted >= 2, "only {accepted} lowerings accepted");
}

/// The compiler's mandatory post-pass emits verifier spans into the trace
/// alongside the search and reconcile spans.
#[test]
fn compile_trace_carries_verifier_spans() {
    let g = (all_models()
        .into_iter()
        .find(|m| m.name == "NeRF")
        .unwrap()
        .build)(1)
    .unwrap();
    let trace = Trace::logical();
    let opts = CompileOptions {
        trace: trace.clone(),
        ..CompileOptions::default()
    };
    Compiler::new(ChipSpec::ipu_mk2(), bench_search_config())
        .compile_graph_with(&g, &opts)
        .unwrap();
    let events = trace.snapshot();
    assert!(
        events
            .iter()
            .any(|e| e.name == "verify_program" && e.pid == t10_trace::PID_VERIFY),
        "no verifier span in the compile trace"
    );
    assert!(
        events.iter().any(|e| e.name == "verify.violations"),
        "no verifier counter in the compile trace"
    );
}

/// The recovery controller refuses to execute a recompiled unit that does
/// not fit the surviving machine: the verifier's capacity gate fires
/// before a single superstep runs, surfacing a typed
/// [`CompileError::Verification`] instead of a mid-run device OOM.
#[test]
fn recovery_rejects_oversized_recompiled_unit() {
    let spec = ChipSpec::ipu_with_cores(4);
    let controller = RecoveryController::new(SimulatorMode::Timing, RecoveryPolicy::default());
    let faults = FaultPlan::new(4).shrink_sram(1, 0.001);
    let result = controller.execute(&spec, faults, None, 0, &[], |spec, _, _| {
        // A "recompile" that ignores the degraded capacity: one buffer
        // on the shrunk core the size of the whole nominal SRAM.
        let mut program = t10_device::program::Program::new();
        program.add_buffer(BufferDecl {
            core: 1,
            label: "oversized".to_string(),
            bytes: spec.sram_per_core,
            coords: vec![vec![0]],
            init: 0.0,
        });
        Ok(RecoveryUnit {
            program,
            pareto: vec![],
            input_buffers: vec![],
            output_buffers: vec![],
            // Hand-built single-program unit: no inter-operator
            // boundaries to certify.
            graph_edges: vec![],
            boundaries: vec![],
        })
    });
    let err = match result {
        Ok(_) => panic!("the oversized unit must be rejected"),
        Err(e) => e,
    };
    match &err {
        CompileError::Verification { diagnostics } => {
            assert!(
                diagnostics
                    .iter()
                    .any(|d| d.rule == t10_verify::RuleId::SramOverflow),
                "expected a CAP02 finding, got {diagnostics:?}"
            );
        }
        other => panic!("expected a verification error, got {other:?}"),
    }
}
