//! Model-zoo integration: the Table 2 networks compile and the small ones
//! execute numerically.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use t10_core::compiler::Compiler;
use t10_core::search::SearchConfig;
use t10_device::ChipSpec;
use t10_ir::reference;
use t10_models::llm::{decoder_layers, DecoderCfg};
use t10_models::{all_models, zoo};

/// Reference-executing a tiny decode layer produces finite numbers through
/// layer norm, attention (cached KV), and the FFN.
#[test]
fn tiny_decoder_layer_reference_executes() {
    let cfg = DecoderCfg {
        d: 16,
        heads: 2,
        ffn: 32,
        gated_ffn: false,
        retention: false,
    };
    let g = decoder_layers("tiny", cfg, 1, 2).unwrap();
    let vals = reference::execute_graph(&g, &[]).unwrap();
    let out = g.values().len() - 1;
    let t = vals[out].as_ref().expect("output produced");
    assert!(t.data().iter().all(|v| v.is_finite()));
}

#[test]
fn tiny_retention_layer_reference_executes() {
    let cfg = DecoderCfg {
        d: 16,
        heads: 2,
        ffn: 32,
        gated_ffn: true,
        retention: true,
    };
    let g = decoder_layers("tiny-ret", cfg, 1, 2).unwrap();
    let vals = reference::execute_graph(&g, &[]).unwrap();
    let out = g.values().len() - 1;
    assert!(vals[out]
        .as_ref()
        .unwrap()
        .data()
        .iter()
        .all(|v| v.is_finite()));
}

/// All Table 2 models compile with T10 on a full MK2... is covered by the
/// fig12 bench; here a scaled-down encoder compiles on a small chip.
#[test]
fn small_encoder_compiles_end_to_end() {
    use t10_ir::{DType, Graph, ValueKind};
    use t10_models::common::Builder;
    use t10_models::transformer::{encoder_layer, EncoderCfg};
    let cfg = EncoderCfg {
        layers: 2,
        d: 64,
        heads: 4,
        ffn: 128,
        seq: 32,
    };
    let mut g = Graph::new("mini-bert");
    let x0 = g.add_value("x", vec![32, 64], DType::F16, ValueKind::Input);
    let mut b = Builder::new(&mut g, DType::F16);
    let mut x = x0;
    for l in 0..cfg.layers {
        x = encoder_layer(&mut b, &format!("l{l}"), x, &cfg, 32).unwrap();
    }
    let out = g.add_value("out", vec![32, 64], DType::F16, ValueKind::Output);
    let op = t10_ir::builders::unary(x, out, vec![32, 64], t10_ir::Unary::Scale(1.0)).unwrap();
    g.add_node("copy", op).unwrap();

    let compiler = Compiler::new(ChipSpec::ipu_with_cores(32), SearchConfig::fast());
    let compiled = compiler.compile_graph(&g).unwrap();
    assert!(compiled.estimated_time > 0.0);
}

#[test]
fn zoo_builders_are_consistent() {
    for spec in all_models() {
        let g1 = (spec.build)(1).unwrap();
        let g2 = (spec.build)(2).unwrap();
        assert_eq!(g1.parameter_count(), g2.parameter_count(), "{}", spec.name);
        assert_eq!(g1.nodes().len(), g2.nodes().len(), "{}", spec.name);
    }
    for (name, cfg, layers) in zoo::llm_models() {
        let g = zoo::build_llm(name, cfg, layers, 4).unwrap();
        assert!(g.parameter_bytes() > 0);
    }
}
