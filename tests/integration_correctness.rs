//! Cross-crate correctness: plans chosen by the *search* (not hand-picked)
//! must execute functionally and reproduce the reference executor.
//!
//! This closes the loop search → plan → placement → lowering → simulation,
//! proving the compiler's optimizations are lossless end-to-end (paper
//! §6.1: "T10 only applies lossless optimizations").

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use t10_core::cost::CostModel;
use t10_core::lower::lower_functional;
use t10_core::search::{search_operator, SearchConfig};
use t10_device::ChipSpec;
use t10_ir::{builders, reference, Operator, Tensor};
use t10_sim::{Simulator, SimulatorMode};

fn run_functional(op: &Operator, plan: &t10_core::Plan, inputs: &[Tensor]) -> Option<Tensor> {
    let f = lower_functional(op, plan).ok()?;
    let spec = ChipSpec::ipu_with_cores(plan.cores_used.max(1));
    let mut sim = Simulator::new(spec, SimulatorMode::Functional);
    sim.load(&f.program).ok()?;
    for (slot, t) in inputs.iter().enumerate() {
        for &id in &f.input_buffers[slot] {
            sim.bind(id, t).ok()?;
        }
    }
    sim.run_loaded(&f.program).ok()?;
    sim.extract(&f.output_buffers, &op.expr.output_shape()).ok()
}

/// Every Pareto-optimal plan the search returns for a divisible matmul must
/// be functionally exact.
#[test]
fn all_searched_matmul_plans_are_lossless() {
    let cost = CostModel::calibrate(&ChipSpec::ipu_with_cores(8), 128, 5).unwrap();
    let op = builders::matmul(0, 1, 2, 16, 32, 16).unwrap();
    let mut cfg = SearchConfig::fast();
    cfg.min_core_utilization = 0.9;
    let (pareto, _) = search_operator(&op, &[4, 4], 4, &cost, &cfg).unwrap();
    assert!(!pareto.is_empty());
    let a = Tensor::pattern(vec![16, 32], 0.11);
    let b = Tensor::pattern(vec![32, 16], 0.77);
    let want = reference::execute(&op, &[&a, &b]).unwrap();
    let mut verified = 0;
    for sp in pareto.plans() {
        // Skip plans the functional path cannot express (padding).
        let Some(got) = run_functional(&op, &sp.plan, &[a.clone(), b.clone()]) else {
            continue;
        };
        assert!(
            got.approx_eq(&want, 1e-4),
            "plan {:?} diverges by {}",
            sp.plan.config,
            got.max_abs_diff(&want)
        );
        verified += 1;
    }
    assert!(verified >= 2, "only {verified} plans verified functionally");
}

/// Searched convolution plans are exact.
#[test]
fn searched_conv_plan_is_lossless() {
    let cost = CostModel::calibrate(&ChipSpec::ipu_with_cores(8), 128, 5).unwrap();
    let cfg2d = builders::Conv2dCfg {
        batch: 2,
        c_in: 4,
        c_out: 8,
        h_out: 8,
        w_out: 8,
        kh: 3,
        kw: 3,
        stride: 1,
    };
    let op = builders::conv2d(0, 1, 2, cfg2d).unwrap();
    let mut cfg = SearchConfig::fast();
    cfg.min_core_utilization = 0.5;
    let (pareto, _) = search_operator(&op, &[4, 4], 4, &cost, &cfg).unwrap();
    let i = Tensor::pattern(op.expr.input_shape(0), 0.21);
    let k = Tensor::pattern(op.expr.input_shape(1), 0.91);
    let want = reference::execute(&op, &[&i, &k]).unwrap();
    let mut verified = 0;
    for sp in pareto.plans() {
        if let Some(got) = run_functional(&op, &sp.plan, &[i.clone(), k.clone()]) {
            assert!(
                got.approx_eq(&want, 1e-3),
                "conv plan {:?} diverges by {}",
                sp.plan.config,
                got.max_abs_diff(&want)
            );
            verified += 1;
        }
    }
    assert!(verified >= 1, "no conv plan verified functionally");
}

/// Rotating-gather plans from the search are exact.
#[test]
fn searched_gather_plan_is_lossless() {
    let cost = CostModel::calibrate(&ChipSpec::ipu_with_cores(8), 128, 5).unwrap();
    let op = builders::gather(0, 1, 2, 32, 16, 8).unwrap();
    let (pareto, _) = search_operator(&op, &[4, 4], 4, &cost, &SearchConfig::fast()).unwrap();
    let table = Tensor::pattern(vec![32, 8], 0.5);
    let mut idx = Tensor::zeros(vec![16]);
    for (i, v) in idx.data_mut().iter_mut().enumerate() {
        *v = ((i * 7 + 5) % 32) as f32;
    }
    let want = reference::execute(&op, &[&table, &idx]).unwrap();
    let mut verified = 0;
    for sp in pareto.plans() {
        if let Some(got) = run_functional(&op, &sp.plan, &[table.clone(), idx.clone()]) {
            assert!(got.approx_eq(&want, 1e-5));
            verified += 1;
        }
    }
    assert!(verified >= 1);
}

/// The memory/communication trade-off is visible across the frontier: the
/// smallest-memory plan communicates more than the fastest plan.
#[test]
fn pareto_frontier_exposes_the_tradeoff() {
    let cost = CostModel::calibrate(&ChipSpec::ipu_with_cores(16), 128, 5).unwrap();
    let op = builders::matmul(0, 1, 2, 128, 128, 128).unwrap();
    let (pareto, _) = search_operator(&op, &[2, 2], 2, &cost, &SearchConfig::fast()).unwrap();
    assert!(pareto.len() >= 2, "frontier has {} plans", pareto.len());
    let lean = pareto.min_memory().unwrap();
    let fast = pareto.fastest().unwrap();
    assert!(lean.cost.mem_per_core < fast.cost.mem_per_core);
    assert!(lean.cost.exec_time > fast.cost.exec_time);
}
