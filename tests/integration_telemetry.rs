//! Live-service telemetry, end to end: serve under load fills the latency
//! histograms, the logical clock makes snapshots byte-identical, the flush
//! file feeds `t10 stats`, and `t10 bench-diff` gates on regressions.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use t10_cli::serve::{self, ServeOptions};
use t10_cli::{benchdiff, stats};
use t10_metrics::{names, prometheus, Registry};

fn fresh_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("t10-telemetry-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn write_model(dir: &std::path::Path) -> String {
    let model = dir.join("telemetry.t10");
    std::fs::write(
        &model,
        "model telemetry-test\ninput x 64 64\nlinear a x 64 relu\noutput a\n",
    )
    .unwrap();
    model.to_string_lossy().into_owned()
}

fn options(burst: &ServeBurst) -> ServeOptions {
    ServeOptions {
        requests: None,
        cache: None,
        workers: burst.workers,
        jobs: 1,
        queue: burst.queue,
        cores: 16,
        deadline_ms: None,
        metrics_addr: None,
        metrics_flush: None,
        metrics_logical: false,
        metrics_linger_ms: 0,
    }
}

struct ServeBurst {
    workers: usize,
    queue: usize,
}

/// Same requests, logical clock, two fresh registries: the snapshots must
/// be byte-identical — tick-delta histograms included.
#[test]
fn same_seed_logical_serve_snapshots_are_byte_identical() {
    let dir = fresh_dir("logical");
    let model = write_model(&dir);
    // More requests than queue slots: rejections and the degraded tier are
    // part of the deterministic story, not just the happy path.
    let input = format!("compile {model} --cores 16\n").repeat(6);
    let o = options(&ServeBurst {
        workers: 2,
        queue: 4,
    });

    let run = || {
        let registry = Registry::logical();
        let responses = serve::serve_requests(&input, &o, &registry).unwrap();
        (responses.len(), registry.snapshot())
    };
    let (n_a, snap_a) = run();
    let (n_b, snap_b) = run();
    assert_eq!(n_a, 6);
    assert_eq!(n_b, 6);
    assert_eq!(
        snap_a.to_json(),
        snap_b.to_json(),
        "logical-clock snapshots must be byte-identical"
    );
    assert_eq!(prometheus::render(&snap_a), prometheus::render(&snap_b));
    assert_eq!(snap_a.clock, "logical");

    // The burst overflows the 4-slot queue, so admission control shows all
    // three outcomes deterministically: admit-all happens before draining.
    assert_eq!(snap_a.counter_sum(names::SERVE_ADMISSION_TOTAL), 6);
    assert_eq!(
        snap_a.counter(
            names::SERVE_ADMISSION_TOTAL,
            &[("outcome", "rejected-queue-full")],
        ),
        Some(2)
    );
    assert!(
        snap_a
            .counter(
                names::SERVE_ADMISSION_TOTAL,
                &[("outcome", "accepted-degraded")],
            )
            .unwrap_or(0)
            > 0,
        "a nearly-full queue must degrade admissions"
    );

    // Queue-wait and compile histograms are non-empty with non-zero ticks:
    // every dequeued request waited through the admit-all phase.
    let wait = snap_a.histogram_merged(names::SERVE_QUEUE_WAIT_US);
    assert_eq!(wait.count, 4, "every admitted request records queue wait");
    assert!(wait.sum > 0, "logical queue-wait ticks are non-zero");
    let compile = snap_a.histogram_merged(names::SERVE_COMPILE_US);
    assert_eq!(compile.count, 4);
    assert!(compile.sum > 0);
    assert_eq!(snap_a.histogram_merged(names::SERVE_E2E_US).count, 4);
}

/// Wall-clock serve under a threaded worker pool still answers everything
/// and fills the histograms in both exposition formats.
#[test]
fn wall_clock_serve_fills_histograms_in_both_formats() {
    let dir = fresh_dir("wall");
    let model = write_model(&dir);
    let input = format!("compile {model} --cores 16\n").repeat(5);
    let o = options(&ServeBurst {
        workers: 2,
        queue: 16,
    });
    let registry = Registry::wall();
    let responses = serve::serve_requests(&input, &o, &registry).unwrap();
    assert_eq!(responses.len(), 5);
    for r in &responses {
        assert!(matches!(r, serve::Response::Ok { .. }), "{r:?}");
    }

    let snap = registry.snapshot();
    assert_eq!(snap.clock, "wall");
    assert_eq!(snap.histogram_merged(names::SERVE_QUEUE_WAIT_US).count, 5);
    let e2e = snap.histogram_merged(names::SERVE_E2E_US);
    assert_eq!(e2e.count, 5);
    assert!(e2e.sum > 0, "wall-clock compiles take measurable time");

    // JSON round-trips; Prometheus text carries the same series.
    let reparsed = t10_metrics::Snapshot::parse(&snap.to_json()).unwrap();
    assert_eq!(reparsed.histogram_merged(names::SERVE_E2E_US).count, 5);
    let text = prometheus::render(&snap);
    assert!(text.contains("# TYPE t10_serve_e2e_us histogram"));
    assert!(text.contains("t10_serve_e2e_us_count 5"));
    assert!(text.contains("t10_serve_queue_wait_us_bucket"));
    assert!(text.contains("le=\"+Inf\""));
}

/// The full CLI loop: `serve --metrics-flush` writes a snapshot that
/// `t10 stats` summarizes with every SLO met.
#[test]
fn serve_flush_feeds_stats_and_meets_slos() {
    let dir = fresh_dir("flush");
    let model = write_model(&dir);
    let requests = dir.join("requests.txt");
    std::fs::write(&requests, format!("compile {model} --cores 16\n").repeat(3)).unwrap();
    let flush = dir.join("snapshot.json");
    let mut o = options(&ServeBurst {
        workers: 1,
        queue: 16,
    });
    o.requests = Some(requests.to_string_lossy().into_owned());
    o.metrics_flush = Some(flush.to_string_lossy().into_owned());
    o.metrics_logical = true;
    assert_eq!(serve::serve(&o).unwrap(), 0);

    let code = stats::stats(&stats::StatsOptions {
        file: flush.to_string_lossy().into_owned(),
        slo_availability: None,
        slo_latency_ms: None,
        slo_latency_pct: None,
    })
    .unwrap();
    assert_eq!(code, 0, "a healthy batch meets the default SLOs");
}

/// A synthetically regressed bench document trips the gate with exit 14;
/// the committed baselines pass against themselves.
#[test]
fn bench_diff_gates_on_synthetic_regression() {
    let dir = fresh_dir("benchdiff");
    let base_path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_compile.json");
    let base = std::fs::read_to_string(&base_path).unwrap();
    let regressed = dir.join("regressed.json");
    // Double every cold p50 by textual surgery on the committed document.
    let doc = t10_trace::json::parse(&base).unwrap();
    let p50 = doc
        .get("cold_ms")
        .and_then(|c| c.get("p50"))
        .and_then(|v| v.as_f64())
        .unwrap();
    let needle = format!("\"p50\": {p50}");
    assert!(base.contains(&needle), "baseline formatting changed");
    std::fs::write(
        &regressed,
        base.replacen(&needle, &format!("\"p50\": {}", p50 * 2.0), 1),
    )
    .unwrap();

    let gate = |current: &std::path::Path| {
        benchdiff::bench_diff(&benchdiff::BenchDiffOptions {
            baseline: base_path.to_string_lossy().into_owned(),
            current: current.to_string_lossy().into_owned(),
            threshold_pct: 25.0,
        })
        .unwrap()
    };
    assert_eq!(gate(&base_path), 0, "the baseline passes against itself");
    assert_eq!(gate(&regressed), 14, "a 2x cold p50 trips the gate");
}
