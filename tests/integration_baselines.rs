//! T10 vs the VGM baselines: the paper's qualitative claims must hold on
//! the simulated hardware.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use t10_baselines::vgm::vgm_bytes_per_core;
use t10_baselines::{compile_graph_popart, compile_graph_roller};
use t10_core::compiler::Compiler;
use t10_core::search::SearchConfig;
use t10_device::ChipSpec;
use t10_ir::{builders, DType, Graph, Unary, ValueKind};
use t10_sim::{RunReport, Simulator, SimulatorMode};

fn mlp(layers: usize, m: usize, d: usize) -> Graph {
    let mut g = Graph::new("mlp");
    let mut cur = g.add_value("x", vec![m, d], DType::F16, ValueKind::Input);
    for i in 0..layers {
        let w = g.add_value(format!("w{i}"), vec![d, d], DType::F16, ValueKind::Weight);
        let kind = if i + 1 == layers {
            ValueKind::Output
        } else {
            ValueKind::Activation
        };
        let o = g.add_value(format!("h{i}"), vec![m, d], DType::F16, kind);
        let mut op = builders::matmul(cur, w, o, m, d, d).unwrap();
        op.unary = Some(Unary::Relu);
        g.add_node(format!("fc{i}"), op).unwrap();
        cur = o;
    }
    g
}

fn run(spec: &ChipSpec, program: &t10_device::Program) -> RunReport {
    let mut sim = Simulator::new(spec.clone(), SimulatorMode::Timing);
    sim.run(program).unwrap()
}

/// §6.2: T10 outperforms Roller end-to-end.
#[test]
fn t10_beats_roller_end_to_end() {
    let spec = ChipSpec::ipu_with_cores(64);
    let g = mlp(4, 512, 512);
    let compiler = Compiler::new(spec.clone(), SearchConfig::fast());
    let t10 = compiler.compile_graph(&g).unwrap();
    let roller = compile_graph_roller(&g, &spec).unwrap();
    let t_t10 = run(&spec, &t10.program).total_time;
    let t_roller = run(&spec, &roller.program).total_time;
    assert!(t_t10 < t_roller, "t10 = {t_t10}, roller = {t_roller}");
}

/// §6.2/Figure 13: T10's transfer fraction is lower than Roller's.
#[test]
fn t10_reduces_transfer_fraction() {
    let spec = ChipSpec::ipu_with_cores(64);
    let g = mlp(4, 512, 512);
    let compiler = Compiler::new(spec.clone(), SearchConfig::fast());
    let t10 = compiler.compile_graph(&g).unwrap();
    let roller = compile_graph_roller(&g, &spec).unwrap();
    let f_t10 = run(&spec, &t10.program).transfer_fraction();
    let f_roller = run(&spec, &roller.program).transfer_fraction();
    assert!(f_t10 < f_roller, "t10 = {f_t10:.2}, roller = {f_roller:.2}");
}

/// Figure 2 (b): removing the VGM frees per-core memory for sub-operators.
#[test]
fn vgm_duplicates_memory() {
    let spec = ChipSpec::ipu_with_cores(64);
    let g = mlp(6, 512, 512);
    let roller = compile_graph_roller(&g, &spec).unwrap();
    assert!(roller.vgm_bytes_per_core > 0);
    // The VGM stripe plus buffers exceeds what T10's distributed layout
    // needs for the same operator.
    let compiler = Compiler::new(spec, SearchConfig::fast());
    let t10 = compiler.compile_graph(&g).unwrap();
    let t10_active: usize = t10
        .reconciled
        .choices
        .iter()
        .enumerate()
        .map(|(i, c)| t10.node_pareto[i].plans()[c.active].cost.mem_per_core)
        .max()
        .unwrap();
    let roller_worst = roller.vgm_bytes_per_core + roller.buffer_bytes.iter().max().unwrap();
    // T10 uses its memory for the active operator instead of a stripe.
    assert!(t10_active + t10.reconciled.idle_mem <= roller_worst * 4);
}

/// PopART's no-liveness policy runs out of memory before Roller's.
#[test]
fn popart_ooms_before_roller() {
    let spec = ChipSpec::ipu_with_cores(64);
    let mut popart_fail = None;
    let mut roller_fail = None;
    for p in 0..10 {
        let g = mlp(8, 128 << p, 512);
        if popart_fail.is_none() && compile_graph_popart(&g, &spec).is_err() {
            popart_fail = Some(p);
        }
        if roller_fail.is_none() && compile_graph_roller(&g, &spec).is_err() {
            roller_fail = Some(p);
        }
        if popart_fail.is_some() && roller_fail.is_some() {
            break;
        }
    }
    let pf = popart_fail.expect("popart oom");
    if let Some(rf) = roller_fail {
        assert!(pf <= rf, "popart at {pf}, roller at {rf}");
    }
}

/// Liveness reuse matters: the no-liveness VGM stripe is strictly larger on
/// activation-heavy models.
#[test]
fn liveness_gap_grows_with_depth() {
    let spec = ChipSpec::ipu_with_cores(64);
    let shallow = mlp(2, 1024, 256);
    let deep = mlp(12, 1024, 256);
    let gap = |g: &Graph| {
        let with = vgm_bytes_per_core(g, &spec, true) as f64;
        let without = vgm_bytes_per_core(g, &spec, false) as f64;
        without / with
    };
    assert!(gap(&deep) > gap(&shallow));
}
