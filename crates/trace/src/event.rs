//! The structured event model shared by every exporter.

/// Chrome "process" id of the simulated chip. All events on this pid carry
/// **sim-time** timestamps (simulated seconds × 10⁶), so they are
/// deterministic under a fixed seed.
pub const PID_SIM: u32 = 0;

/// Chrome "process" id of the compiler. Events here carry **trace-time**
/// timestamps ([`crate::Trace::now_us`]): wall microseconds, or a logical
/// counter when the handle was built with [`crate::Trace::logical`].
pub const PID_COMPILER: u32 = 1;

/// Chrome "process" id of the recovery controller (sim-time timestamps).
pub const PID_RECOVERY: u32 = 2;

/// Chrome "process" id of the static verifier (trace-time timestamps).
pub const PID_VERIFY: u32 = 3;

/// Chrome "process" id of the translation-validation prover (trace-time
/// timestamps).
pub const PID_PROVE: u32 = 4;

/// Chrome "process" id of the chaos campaign engine (trace-time
/// timestamps): per-case verdict instants and campaign summary counters.
pub const PID_CHAOS: u32 = 5;

/// Chrome "process" id of the persistent plan store (trace-time
/// timestamps): per-compile hit/miss/stale counters and quarantine
/// instants from the disk cache.
pub const PID_STORE: u32 = 6;

/// Track ("thread") id for chip-wide aggregate events on [`PID_SIM`].
/// Per-core tracks use the core index directly, so this sits far above any
/// realistic core count.
pub const CHIP_TID: u32 = 1_000_000;

/// What flavour of record an [`Event`] is; maps onto a Chrome trace-event
/// phase.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// A complete span (`ph: "X"`) covering `[ts_us, ts_us + dur_us)`.
    Complete {
        /// Duration in microseconds.
        dur_us: f64,
    },
    /// A counter sample (`ph: "C"`); series values live in `args`.
    Counter,
    /// A zero-duration instant (`ph: "i"`).
    Instant,
    /// Viewer metadata, e.g. process/thread names (`ph: "M"`).
    Meta,
}

/// A typed argument value; keeps exports deterministic (no map ordering or
/// float-formatting surprises).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (byte counts, step indices).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Floating point; non-finite values export as 0 (JSON has no NaN).
    F64(f64),
    /// String.
    Str(String),
    /// Boolean.
    Bool(bool),
}

impl Value {
    /// The value as f64, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::U64(v) => Some(*v as f64),
            Value::I64(v) => Some(*v as f64),
            Value::F64(v) => Some(*v),
            Value::Bool(_) | Value::Str(_) => None,
        }
    }
}

/// One structured trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Event name (span label, counter series, instant label).
    pub name: String,
    /// Category: `"compiler"`, `"sim"`, `"recovery"`, `"accuracy"`, or
    /// `"__metadata"`.
    pub cat: &'static str,
    /// Span / counter / instant / metadata.
    pub kind: EventKind,
    /// Timestamp in microseconds (see the pid's clock domain).
    pub ts_us: f64,
    /// Chrome process id — the layer ([`PID_SIM`] etc.).
    pub pid: u32,
    /// Chrome thread id — the track (core index, [`CHIP_TID`], node id…).
    pub tid: u32,
    /// Named arguments, exported in order.
    pub args: Vec<(&'static str, Value)>,
}

impl Event {
    /// Looks up a numeric argument by name.
    pub fn arg_f64(&self, name: &str) -> Option<f64> {
        self.args
            .iter()
            .find(|(k, _)| *k == name)
            .and_then(|(_, v)| v.as_f64())
    }

    /// Looks up a string argument by name.
    pub fn arg_str(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .find(|(k, _)| *k == name)
            .and_then(|(_, v)| {
                if let Value::Str(s) = v {
                    Some(s.as_str())
                } else {
                    None
                }
            })
    }

    /// The span duration, when this is a complete span.
    pub fn dur_us(&self) -> Option<f64> {
        match self.kind {
            EventKind::Complete { dur_us } => Some(dur_us),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_lookup() {
        let ev = Event {
            name: "compute".into(),
            cat: "sim",
            kind: EventKind::Complete { dur_us: 2.0 },
            ts_us: 1.0,
            pid: PID_SIM,
            tid: 3,
            args: vec![
                ("bytes", Value::U64(64)),
                ("label", Value::Str("mm".into())),
            ],
        };
        assert_eq!(ev.arg_f64("bytes"), Some(64.0));
        assert_eq!(ev.arg_str("label"), Some("mm"));
        assert_eq!(ev.arg_f64("nope"), None);
        assert_eq!(ev.dur_us(), Some(2.0));
    }

    #[test]
    fn value_as_f64() {
        assert_eq!(Value::I64(-2).as_f64(), Some(-2.0));
        assert_eq!(Value::F64(0.5).as_f64(), Some(0.5));
        assert_eq!(Value::Str("x".into()).as_f64(), None);
        assert_eq!(Value::Bool(true).as_f64(), None);
    }
}
