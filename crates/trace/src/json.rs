//! A minimal JSON reader/writer.
//!
//! The workspace's `serde` is an offline no-op shim, so the trace layer
//! carries its own (deliberately small) JSON implementation: enough to emit
//! Chrome trace-event files deterministically and to read them back for
//! `t10 trace` and for round-trip schema validation in tests. Objects keep
//! insertion order so that emit → parse → emit is byte-identical.

use std::fmt::Write as _;

/// A parsed JSON value. Object keys keep their file order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, when numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as bool, when a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as &str, when a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// The value as a slice, when an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v.as_slice()),
            _ => None,
        }
    }
}

/// Formats an f64 deterministically for JSON: `Display` (shortest
/// round-trip repr), with non-finite values clamped to 0 since JSON cannot
/// represent them.
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

/// Escapes a string into a JSON string literal (without the quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Parses a complete JSON document.
pub fn parse(src: &str) -> Result<Json, String> {
    let bytes = src.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not needed for our own
                            // output; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        other => {
                            return Err(format!("bad escape {:?}", other.map(|c| c as char)));
                        }
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume a maximal run of plain bytes in one append;
                    // validating UTF-8 per character over the remaining
                    // input would be quadratic on megabyte traces.
                    let start = self.pos;
                    while let Some(&b) = self.bytes.get(self.pos) {
                        if b == b'"' || b == b'\\' {
                            break;
                        }
                        self.pos += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..self.pos])
                        .map_err(|_| "invalid utf-8".to_string())?;
                    out.push_str(chunk);
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let tok = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "invalid number".to_string())?;
        tok.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("invalid number `{tok}` at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars_and_containers() {
        assert_eq!(parse("null").unwrap(), Json::Null);
        assert_eq!(parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(parse("-12.5e1").unwrap(), Json::Num(-125.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Json::Str("a\nb".into()));
        let v = parse(r#"{"a":[1,2,{"b":"c"}],"d":false}"#).unwrap();
        assert_eq!(v.get("d"), Some(&Json::Bool(false)));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[0].as_f64(), Some(1.0));
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("c"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1} x").is_err());
        assert!(parse("nope").is_err());
    }

    #[test]
    fn escape_round_trip() {
        let mut s = String::new();
        escape_into(&mut s, "a\"b\\c\nd\u{1}");
        let parsed = parse(&format!("\"{s}\"")).unwrap();
        assert_eq!(parsed, Json::Str("a\"b\\c\nd\u{1}".into()));
    }

    #[test]
    fn fmt_f64_is_plain_and_finite() {
        assert_eq!(fmt_f64(12.5), "12.5");
        assert_eq!(fmt_f64(123.0), "123");
        assert_eq!(fmt_f64(f64::NAN), "0");
        assert_eq!(fmt_f64(f64::INFINITY), "0");
    }

    #[test]
    fn unicode_passthrough() {
        let v = parse("\"héllo ☃\"").unwrap();
        assert_eq!(v.as_str(), Some("héllo ☃"));
    }

    #[test]
    fn escapes_interleaved_with_multibyte_runs() {
        // The batched string scanner must stop exactly at escapes and
        // quotes even when the surrounding run is multibyte.
        let v = parse("\"é\\n☃\\\"é\"").unwrap();
        assert_eq!(v.as_str(), Some("é\n☃\"é"));
        assert!(parse("\"abc").is_err(), "unterminated plain run");
    }
}
