//! Human text summary of a recorded trace: per-core utilization, the
//! superstep critical path, recovery events, and cost-model accuracy.
//!
//! Works on any `&[Event]` — freshly recorded or re-loaded from a Chrome
//! trace file via [`crate::chrome::parse_chrome_trace`] (this is what
//! `t10 trace <file>` renders).

use crate::accuracy::{AccuracyReport, AccuracySample};
use crate::event::{Event, EventKind, CHIP_TID, PID_RECOVERY, PID_SIM};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Busy/idle breakdown for one core track, in microseconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CoreUtil {
    /// Core index (the trace tid).
    pub core: u32,
    /// Total compute-span time.
    pub compute_us: f64,
    /// Total shift-span time.
    pub shift_us: f64,
    /// Total idle-span time.
    pub idle_us: f64,
}

impl CoreUtil {
    /// Busy fraction: (compute + shift) / (compute + shift + idle).
    /// 0 when the core recorded no time at all.
    pub fn utilization(&self) -> f64 {
        let busy = self.compute_us + self.shift_us;
        let total = busy + self.idle_us;
        if total > 0.0 {
            busy / total
        } else {
            0.0
        }
    }
}

/// Per-core busy/idle totals from the sim pid's per-core span tracks,
/// sorted by core index.
pub fn core_utilization(events: &[Event]) -> Vec<CoreUtil> {
    let mut cores: BTreeMap<u32, CoreUtil> = BTreeMap::new();
    for ev in events {
        if ev.pid != PID_SIM || ev.tid >= CHIP_TID {
            continue;
        }
        let Some(dur) = ev.dur_us() else { continue };
        let entry = cores.entry(ev.tid).or_insert_with(|| CoreUtil {
            core: ev.tid,
            ..CoreUtil::default()
        });
        match ev.name.as_str() {
            "compute" => entry.compute_us += dur,
            "shift" => entry.shift_us += dur,
            "idle" => entry.idle_us += dur,
            _ => {}
        }
    }
    cores.into_values().collect()
}

/// One superstep's chip-track phase totals.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepCost {
    /// Superstep index (from the span's `step` argument).
    pub step: u64,
    /// Chip-track compute-phase time, µs.
    pub compute_us: f64,
    /// Chip-track exchange-phase time, µs.
    pub exchange_us: f64,
}

/// Per-superstep chip-track phase durations, in step order. The sum over
/// steps is the BSP critical path (each phase is a barrier, so the chip
/// span *is* the slowest core's time).
pub fn step_costs(events: &[Event]) -> Vec<StepCost> {
    let mut steps: BTreeMap<u64, StepCost> = BTreeMap::new();
    for ev in events {
        if ev.pid != PID_SIM || ev.tid != CHIP_TID {
            continue;
        }
        let Some(dur) = ev.dur_us() else { continue };
        let Some(step) = ev.arg_f64("step") else {
            continue;
        };
        let entry = steps.entry(step as u64).or_insert_with(|| StepCost {
            step: step as u64,
            ..StepCost::default()
        });
        match ev.name.as_str() {
            "compute" => entry.compute_us += dur,
            "exchange" => entry.exchange_us += dur,
            _ => {}
        }
    }
    steps.into_values().collect()
}

/// Extracts the per-operator accuracy samples (`cat: "accuracy"` instants).
pub fn accuracy_samples(events: &[Event]) -> Vec<AccuracySample> {
    events
        .iter()
        .filter(|ev| ev.cat == "accuracy" && matches!(ev.kind, EventKind::Instant))
        .filter_map(|ev| {
            Some(AccuracySample {
                name: ev.arg_str("node").unwrap_or(&ev.name).to_string(),
                predicted_us: ev.arg_f64("predicted_us")?,
                simulated_us: ev.arg_f64("simulated_us")?,
            })
        })
        .collect()
}

/// Maximum number of core rows printed before eliding.
const MAX_CORE_ROWS: usize = 32;
/// Number of top supersteps shown in the critical-path section.
const TOP_STEPS: usize = 5;
/// Maximum recovery events listed before eliding.
const MAX_RECOVERY_ROWS: usize = 20;

/// Renders the full text summary.
pub fn render_summary(events: &[Event]) -> String {
    let mut out = String::new();
    let sim_end = events
        .iter()
        .filter(|ev| ev.pid == PID_SIM)
        .map(|ev| ev.ts_us + ev.dur_us().unwrap_or(0.0))
        .fold(0.0_f64, f64::max);
    let steps = step_costs(events);
    let _ = writeln!(
        out,
        "trace: {} events, {} supersteps, sim end {:.3} us",
        events.len(),
        steps.len(),
        sim_end
    );

    // Per-core utilization.
    let cores = core_utilization(events);
    if cores.is_empty() {
        out.push_str("\nper-core utilization: no per-core spans in trace\n");
    } else {
        out.push_str("\nper-core utilization:\n");
        out.push_str("  core     compute_us       shift_us        idle_us   util\n");
        for util in cores.iter().take(MAX_CORE_ROWS) {
            let _ = writeln!(
                out,
                "  {:>4} {:>14.3} {:>14.3} {:>14.3} {:>5.1}%",
                util.core,
                util.compute_us,
                util.shift_us,
                util.idle_us,
                util.utilization() * 100.0
            );
        }
        if cores.len() > MAX_CORE_ROWS {
            let _ = writeln!(out, "  … and {} more cores", cores.len() - MAX_CORE_ROWS);
        }
        let n = cores.len() as f64;
        let mean = cores.iter().map(CoreUtil::utilization).sum::<f64>() / n;
        let _ = writeln!(
            out,
            "  mean utilization over {} cores: {:.1}%",
            cores.len(),
            mean * 100.0
        );
    }

    // Critical path (chip track = slowest core per BSP phase).
    if !steps.is_empty() {
        let total: f64 = steps.iter().map(|s| s.compute_us + s.exchange_us).sum();
        let compute: f64 = steps.iter().map(|s| s.compute_us).sum();
        let exchange: f64 = steps.iter().map(|s| s.exchange_us).sum();
        out.push_str("\ncritical path (chip track):\n");
        let _ = writeln!(
            out,
            "  total {:.3} us = compute {:.3} us + exchange {:.3} us",
            total, compute, exchange
        );
        let mut ranked: Vec<&StepCost> = steps.iter().collect();
        ranked.sort_by(|a, b| {
            (b.compute_us + b.exchange_us)
                .total_cmp(&(a.compute_us + a.exchange_us))
                .then(a.step.cmp(&b.step))
        });
        for step in ranked.iter().take(TOP_STEPS) {
            let share = if total > 0.0 {
                (step.compute_us + step.exchange_us) / total * 100.0
            } else {
                0.0
            };
            let _ = writeln!(
                out,
                "  step {:>4}: {:>12.3} us ({:>4.1}%)  compute {:.3} + exchange {:.3}",
                step.step,
                step.compute_us + step.exchange_us,
                share,
                step.compute_us,
                step.exchange_us
            );
        }
    }

    // Recovery events.
    let recovery: Vec<&Event> = events
        .iter()
        .filter(|ev| ev.pid == PID_RECOVERY && matches!(ev.kind, EventKind::Instant))
        .collect();
    if !recovery.is_empty() {
        let mut counts: BTreeMap<&str, usize> = BTreeMap::new();
        for ev in &recovery {
            *counts.entry(ev.name.as_str()).or_insert(0) += 1;
        }
        out.push_str("\nrecovery events:\n");
        let summary = counts
            .iter()
            .map(|(name, n)| format!("{name}×{n}"))
            .collect::<Vec<_>>()
            .join(", ");
        let _ = writeln!(out, "  {summary}");
        for ev in recovery.iter().take(MAX_RECOVERY_ROWS) {
            let detail = ev
                .arg_str("reason")
                .or_else(|| ev.arg_str("label"))
                .unwrap_or("");
            let _ = writeln!(out, "  {:>12.3} us  {}  {}", ev.ts_us, ev.name, detail);
        }
        if recovery.len() > MAX_RECOVERY_ROWS {
            let _ = writeln!(
                out,
                "  … and {} more events",
                recovery.len() - MAX_RECOVERY_ROWS
            );
        }
    }

    // Cost-model accuracy (Figure 15 methodology).
    let samples = accuracy_samples(events);
    if !samples.is_empty() {
        let report = AccuracyReport::from_samples(&samples);
        out.push_str("\ncost-model accuracy (predicted vs simulated):\n");
        let _ = writeln!(out, "  {}", report.render());
        let mut worst: Vec<&AccuracySample> = samples.iter().collect();
        worst.sort_by(|a, b| {
            b.ape()
                .unwrap_or(0.0)
                .total_cmp(&a.ape().unwrap_or(0.0))
                .then(a.name.cmp(&b.name))
        });
        for sample in worst.iter().take(TOP_STEPS) {
            let _ = writeln!(
                out,
                "  {:<24} predicted {:>12.3} us  simulated {:>12.3} us  ape {:>5.1}%",
                sample.name,
                sample.predicted_us,
                sample.simulated_us,
                sample.ape().unwrap_or(0.0) * 100.0
            );
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;
    use crate::Trace;

    /// Builds a small synthetic trace: 2 supersteps, 2 cores, one recovery
    /// event, two accuracy samples.
    fn synthetic() -> Vec<Event> {
        let t = Trace::logical();
        for step in 0..2u64 {
            let t0 = step as f64 * 100.0;
            // Chip track phases.
            t.span(
                "compute",
                "sim",
                PID_SIM,
                CHIP_TID,
                t0,
                60.0,
                vec![("step", Value::U64(step))],
            );
            t.span(
                "exchange",
                "sim",
                PID_SIM,
                CHIP_TID,
                t0 + 60.0,
                40.0,
                vec![("step", Value::U64(step))],
            );
            // Core 0 is the slow one; core 1 idles half the compute phase.
            t.span(
                "compute",
                "sim",
                PID_SIM,
                0,
                t0,
                60.0,
                vec![("step", Value::U64(step))],
            );
            t.span(
                "compute",
                "sim",
                PID_SIM,
                1,
                t0,
                30.0,
                vec![("step", Value::U64(step))],
            );
            t.span(
                "idle",
                "sim",
                PID_SIM,
                1,
                t0 + 30.0,
                30.0,
                vec![("step", Value::U64(step))],
            );
            for core in 0..2 {
                t.span(
                    "shift",
                    "sim",
                    PID_SIM,
                    core,
                    t0 + 60.0,
                    40.0,
                    vec![("step", Value::U64(step))],
                );
            }
        }
        t.instant(
            "retry",
            "recovery",
            PID_RECOVERY,
            0,
            150.0,
            vec![("reason", Value::Str("transient fault".into()))],
        );
        t.instant(
            "op_time",
            "accuracy",
            PID_SIM,
            CHIP_TID,
            0.0,
            vec![
                ("node", Value::Str("matmul".into())),
                ("predicted_us", Value::F64(110.0)),
                ("simulated_us", Value::F64(100.0)),
            ],
        );
        t.instant(
            "op_time",
            "accuracy",
            PID_SIM,
            CHIP_TID,
            0.0,
            vec![
                ("node", Value::Str("relu".into())),
                ("predicted_us", Value::F64(40.0)),
                ("simulated_us", Value::F64(50.0)),
            ],
        );
        t.snapshot()
    }

    #[test]
    fn utilization_math() {
        let utils = core_utilization(&synthetic());
        assert_eq!(utils.len(), 2);
        // Core 0: fully busy.
        assert!((utils[0].utilization() - 1.0).abs() < 1e-12);
        // Core 1: busy 70/100 per step.
        assert!((utils[1].utilization() - 0.7).abs() < 1e-12);
        assert_eq!(utils[1].idle_us, 60.0);
    }

    #[test]
    fn step_costs_cover_both_phases() {
        let steps = step_costs(&synthetic());
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].compute_us, 60.0);
        assert_eq!(steps[0].exchange_us, 40.0);
    }

    #[test]
    fn accuracy_extraction() {
        let samples = accuracy_samples(&synthetic());
        assert_eq!(samples.len(), 2);
        assert_eq!(samples[0].name, "matmul");
        let report = AccuracyReport::from_samples(&samples);
        assert_eq!(report.count, 2);
        assert!(report.spearman.unwrap() > 0.99);
    }

    #[test]
    fn render_mentions_all_sections() {
        let text = render_summary(&synthetic());
        assert!(text.contains("per-core utilization"), "{text}");
        assert!(text.contains("critical path"), "{text}");
        assert!(text.contains("recovery events"), "{text}");
        assert!(text.contains("retry×1"), "{text}");
        assert!(text.contains("cost-model accuracy"), "{text}");
        assert!(text.contains("MAPE"), "{text}");
    }

    #[test]
    fn empty_trace_renders() {
        let text = render_summary(&[]);
        assert!(text.contains("0 events"));
        assert!(text.contains("no per-core spans"));
    }
}
