//! Cost-model accuracy telemetry (the paper's Figure 15 methodology).
//!
//! T10 only needs its linear cost model to be accurate enough to *rank*
//! candidate compute-shift plans; the paper evaluates this by comparing
//! predicted and measured operator times and checking rank agreement. This
//! module collects per-operator (predicted, simulated) time pairs and
//! aggregates them into a mean absolute percentage error and a Spearman
//! rank correlation (with average ranks for ties).

/// One operator's predicted-vs-simulated time pair, in microseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracySample {
    /// Operator label (graph node name).
    pub name: String,
    /// Cost-model prediction, µs.
    pub predicted_us: f64,
    /// Simulated execution time, µs.
    pub simulated_us: f64,
}

impl AccuracySample {
    /// Absolute percentage error of the prediction against the simulation,
    /// or `None` when the simulated time is zero.
    pub fn ape(&self) -> Option<f64> {
        if self.simulated_us.abs() > 0.0 {
            Some((self.predicted_us - self.simulated_us).abs() / self.simulated_us.abs())
        } else {
            None
        }
    }
}

/// Aggregate accuracy over a set of samples.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyReport {
    /// Number of samples aggregated.
    pub count: usize,
    /// Mean absolute percentage error over samples with nonzero simulated
    /// time (0 when none qualify).
    pub mape: f64,
    /// Spearman rank correlation between predicted and simulated times
    /// (`None` with fewer than two samples or zero rank variance).
    pub spearman: Option<f64>,
}

impl AccuracyReport {
    /// Aggregates samples into MAPE + Spearman rank correlation.
    pub fn from_samples(samples: &[AccuracySample]) -> Self {
        let apes: Vec<f64> = samples.iter().filter_map(AccuracySample::ape).collect();
        let mape = if apes.is_empty() {
            0.0
        } else {
            apes.iter().sum::<f64>() / apes.len() as f64
        };
        let predicted: Vec<f64> = samples.iter().map(|s| s.predicted_us).collect();
        let simulated: Vec<f64> = samples.iter().map(|s| s.simulated_us).collect();
        AccuracyReport {
            count: samples.len(),
            mape,
            spearman: spearman(&predicted, &simulated),
        }
    }

    /// One-line human rendering, e.g.
    /// `n=12 MAPE=7.3% Spearman=0.98`.
    pub fn render(&self) -> String {
        match self.spearman {
            Some(rho) => format!(
                "n={} MAPE={:.1}% Spearman={:.3}",
                self.count,
                self.mape * 100.0,
                rho
            ),
            None => format!(
                "n={} MAPE={:.1}% Spearman=n/a",
                self.count,
                self.mape * 100.0
            ),
        }
    }
}

/// Average ranks (1-based), with tied values sharing the mean of the ranks
/// they span.
fn average_ranks(values: &[f64]) -> Vec<f64> {
    let n = values.len();
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| values[a].total_cmp(&values[b]));
    let mut ranks = vec![0.0; n];
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && values[order[j + 1]] == values[order[i]] {
            j += 1;
        }
        // Positions i..=j (0-based) share the average 1-based rank.
        let avg = (i + j) as f64 / 2.0 + 1.0;
        for &idx in &order[i..=j] {
            ranks[idx] = avg;
        }
        i = j + 1;
    }
    ranks
}

/// Spearman rank correlation: Pearson correlation of the average ranks.
/// `None` with fewer than two points or when either side has zero rank
/// variance (all values tied).
pub fn spearman(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.len() != b.len() || a.len() < 2 {
        return None;
    }
    let ra = average_ranks(a);
    let rb = average_ranks(b);
    let n = ra.len() as f64;
    let mean_a = ra.iter().sum::<f64>() / n;
    let mean_b = rb.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut var_a = 0.0;
    let mut var_b = 0.0;
    for (x, y) in ra.iter().zip(rb.iter()) {
        let dx = x - mean_a;
        let dy = y - mean_b;
        cov += dx * dy;
        var_a += dx * dx;
        var_b += dy * dy;
    }
    if var_a <= 0.0 || var_b <= 0.0 {
        return None;
    }
    Some(cov / (var_a.sqrt() * var_b.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(name: &str, p: f64, s: f64) -> AccuracySample {
        AccuracySample {
            name: name.into(),
            predicted_us: p,
            simulated_us: s,
        }
    }

    #[test]
    fn perfect_prediction() {
        let samples = vec![
            sample("a", 1.0, 1.0),
            sample("b", 2.0, 2.0),
            sample("c", 3.0, 3.0),
        ];
        let report = AccuracyReport::from_samples(&samples);
        assert_eq!(report.count, 3);
        assert!(report.mape.abs() < 1e-12);
        assert!((report.spearman.unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking() {
        let samples = vec![
            sample("a", 3.0, 1.0),
            sample("b", 2.0, 2.0),
            sample("c", 1.0, 3.0),
        ];
        let report = AccuracyReport::from_samples(&samples);
        assert!((report.spearman.unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn mape_skips_zero_simulated() {
        let samples = vec![sample("a", 1.0, 0.0), sample("b", 1.1, 1.0)];
        let report = AccuracyReport::from_samples(&samples);
        // Only sample b contributes: |1.1 - 1.0| / 1.0 = 0.1.
        assert!((report.mape - 0.1).abs() < 1e-12);
    }

    #[test]
    fn ties_use_average_ranks() {
        // [1, 2, 2, 4]: the two 2s get rank (2+3)/2 = 2.5.
        let ranks = average_ranks(&[1.0, 2.0, 2.0, 4.0]);
        assert_eq!(ranks, vec![1.0, 2.5, 2.5, 4.0]);
        // All tied on one side → no rank variance → None.
        assert_eq!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]), None);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(spearman(&[], &[]), None);
        assert_eq!(spearman(&[1.0], &[1.0]), None);
        assert_eq!(spearman(&[1.0, 2.0], &[1.0]), None);
        let report = AccuracyReport::from_samples(&[]);
        assert_eq!(report.count, 0);
        assert_eq!(report.mape, 0.0);
        assert_eq!(report.spearman, None);
        assert!(report.render().contains("n/a"));
    }

    #[test]
    fn render_formats() {
        let samples = vec![sample("a", 1.1, 1.0), sample("b", 2.0, 2.0)];
        let report = AccuracyReport::from_samples(&samples);
        let line = report.render();
        assert!(line.starts_with("n=2 MAPE=5.0%"), "{line}");
        assert!(line.contains("Spearman=1.000"), "{line}");
    }
}
