//! A flat, deterministic metrics document.
//!
//! `Metrics` is an ordered map of dotted metric names
//! (`sim.total_time_us`, `compiler.plans_kept`, …) to scalar values,
//! exported as a single flat JSON object with sorted keys — trivially
//! diffable and greppable, and round-trippable through [`Metrics::parse`].

use crate::event::Value;
use crate::json::{self, Json};
use std::collections::BTreeMap;

/// A flat string→scalar metrics map with sorted-key JSON export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Metrics {
    values: BTreeMap<String, Value>,
}

impl Metrics {
    /// An empty metrics map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts (or overwrites) a metric.
    pub fn set(&mut self, name: impl Into<String>, value: Value) {
        self.values.insert(name.into(), value);
    }

    /// Convenience for f64 metrics.
    pub fn set_f64(&mut self, name: impl Into<String>, value: f64) {
        self.set(name, Value::F64(value));
    }

    /// Convenience for integer metrics.
    pub fn set_u64(&mut self, name: impl Into<String>, value: u64) {
        self.set(name, Value::U64(value));
    }

    /// Convenience for string metrics.
    pub fn set_str(&mut self, name: impl Into<String>, value: impl Into<String>) {
        self.set(name, Value::Str(value.into()));
    }

    /// Reads a metric back.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.values.get(name)
    }

    /// Reads a numeric metric back.
    pub fn get_f64(&self, name: &str) -> Option<f64> {
        self.values.get(name).and_then(Value::as_f64)
    }

    /// Number of metrics.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates metrics in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Serializes to a flat JSON object, one metric per line, keys sorted.
    pub fn to_json(&self) -> String {
        if self.values.is_empty() {
            return "{}\n".to_string();
        }
        let mut out = String::with_capacity(self.values.len() * 32);
        out.push_str("{\n");
        for (i, (key, value)) in self.values.iter().enumerate() {
            out.push_str("  \"");
            json::escape_into(&mut out, key);
            out.push_str("\": ");
            match value {
                Value::U64(v) => out.push_str(&v.to_string()),
                Value::I64(v) => out.push_str(&v.to_string()),
                Value::F64(v) => out.push_str(&json::fmt_f64(*v)),
                Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
                Value::Str(s) => {
                    out.push('"');
                    json::escape_into(&mut out, s);
                    out.push('"');
                }
            }
            if i + 1 < self.values.len() {
                out.push(',');
            }
            out.push('\n');
        }
        out.push_str("}\n");
        out
    }

    /// Parses a flat JSON object back into a metrics map.
    pub fn parse(src: &str) -> Result<Self, String> {
        let doc = json::parse(src)?;
        let members = match doc {
            Json::Obj(members) => members,
            _ => return Err("metrics document is not a JSON object".to_string()),
        };
        let mut metrics = Metrics::new();
        for (key, value) in members {
            let value = match value {
                Json::Bool(b) => Value::Bool(b),
                Json::Str(s) => Value::Str(s),
                Json::Num(n) => {
                    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
                    if n.fract() == 0.0 && n.abs() < EXACT {
                        if n >= 0.0 {
                            Value::U64(n as u64)
                        } else {
                            Value::I64(n as i64)
                        }
                    } else {
                        Value::F64(n)
                    }
                }
                _ => return Err(format!("metric `{key}` has a non-scalar value")),
            };
            metrics.set(key, value);
        }
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sorted_deterministic_export() {
        let mut m = Metrics::new();
        m.set_u64("z.last", 3);
        m.set_f64("a.first", 1.5);
        m.set_str("m.middle", "hi");
        let text = m.to_json();
        let a = text.find("a.first").unwrap();
        let mid = text.find("m.middle").unwrap();
        let z = text.find("z.last").unwrap();
        assert!(a < mid && mid < z);
        assert_eq!(text, m.to_json());
    }

    #[test]
    fn round_trip() {
        let mut m = Metrics::new();
        m.set_u64("count", 42);
        m.set_f64("frac", 0.25);
        m.set_str("name", "matmul \"big\"");
        m.set("neg", Value::I64(-7));
        m.set("flag", Value::Bool(true));
        let parsed = Metrics::parse(&m.to_json()).unwrap();
        assert_eq!(parsed, m);
        assert_eq!(parsed.to_json(), m.to_json());
    }

    #[test]
    fn empty_and_errors() {
        assert_eq!(Metrics::new().to_json(), "{}\n");
        assert!(Metrics::parse("{}").unwrap().is_empty());
        assert!(Metrics::parse("[1]").is_err());
        assert!(Metrics::parse("{\"a\":[1]}").is_err());
    }

    #[test]
    fn non_finite_guard() {
        let mut m = Metrics::new();
        m.set_f64("bad", f64::NAN);
        let parsed = Metrics::parse(&m.to_json()).unwrap();
        assert_eq!(parsed.get_f64("bad"), Some(0.0));
    }
}
