//! Structured tracing for the T10 stack: spans, counters, and instant
//! events, with exporters for Chrome trace-event JSON (Perfetto /
//! `chrome://tracing`), a flat metrics JSON, and a human text summary.
//!
//! Every layer of the stack records into the same [`Trace`] handle:
//!
//! * the **compiler** records per-operator search spans (plans enumerated,
//!   pruned, kept), Pareto-frontier snapshots, and reconciler rounds with
//!   their `-ΔT_setup/ΔM_idle` scores;
//! * the **simulator** records per-superstep, per-core compute/shift/idle
//!   spans, per-link byte counters, and SRAM high-water counters;
//! * the **recovery controller** records checkpoint, rollback, retry, and
//!   re-plan events so healed runs are auditable;
//! * **accuracy telemetry** pairs every operator's predicted (cost-model)
//!   time with its simulated time, reproducing the paper's Figure 15
//!   methodology ([`accuracy`]).
//!
//! # Clock domains
//!
//! Events carry timestamps in microseconds from one of two domains:
//!
//! * **sim time** — the simulated chip's BSP clock (seconds of modeled
//!   execution × 10⁶). Simulator and recovery events live here and are
//!   fully deterministic under a fixed seed.
//! * **trace time** — the [`Trace`] handle's own clock, read via
//!   [`Trace::now_us`]: either a monotonic wall clock (profiling real
//!   compile time) or a logical counter ([`Trace::logical`]) that makes
//!   whole traces byte-identical across same-seed runs, so they can be
//!   diffed in tests and CI.
//!
//! The two domains are kept apart by track: each layer owns a Chrome "pid"
//! ([`PID_SIM`], [`PID_COMPILER`], [`PID_RECOVERY`]).
//!
//! # Cost when disabled
//!
//! [`Trace::disabled`] is an empty handle: no buffer is allocated, every
//! record call is a branch on an `Option`, and callers are expected to gate
//! argument construction behind [`Trace::enabled`], so the hot paths of the
//! simulator and search pay nothing when tracing is off.

// The writers iterate buffers they sized themselves; the JSON parser
// is slice-driven with explicit cursor checks. The analysis crates
// (`t10-verify`, `t10-prove`) stay index-hardened.
#![allow(clippy::indexing_slicing)]
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod accuracy;
pub mod chrome;
pub mod event;
pub mod json;
pub mod metrics;
pub mod summary;

pub use accuracy::{AccuracyReport, AccuracySample};
pub use chrome::{parse_chrome_trace, write_chrome_trace};
pub use event::{
    Event, EventKind, Value, CHIP_TID, PID_CHAOS, PID_COMPILER, PID_PROVE, PID_RECOVERY, PID_SIM,
    PID_STORE, PID_VERIFY,
};
pub use metrics::Metrics;
pub use summary::{accuracy_samples, core_utilization, render_summary, step_costs, CoreUtil};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// The trace clock: wall time for profiling, a logical counter for
/// byte-identical (diffable) traces.
#[derive(Debug)]
enum Clock {
    /// Microseconds since the handle was created.
    Wall(Instant),
    /// A counter incremented on every read: deterministic, ordered, fake.
    Logical(AtomicU64),
}

#[derive(Debug)]
struct Shared {
    events: Mutex<Vec<Event>>,
    clock: Clock,
}

/// A shared, cloneable recorder of trace events.
///
/// Cloning is cheap (an `Arc`); all clones append to the same buffer. A
/// disabled handle ([`Trace::disabled`], also [`Default`]) holds nothing and
/// records nothing.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    shared: Option<Arc<Shared>>,
}

impl Trace {
    /// A no-op handle: nothing is allocated, nothing is recorded.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// An enabled handle whose [`Trace::now_us`] reads a monotonic wall
    /// clock (microseconds since creation).
    pub fn wall() -> Self {
        Self {
            shared: Some(Arc::new(Shared {
                events: Mutex::new(Vec::new()),
                clock: Clock::Wall(Instant::now()),
            })),
        }
    }

    /// An enabled handle whose [`Trace::now_us`] is a logical counter:
    /// every read returns the next integer. Traces recorded against it are
    /// byte-identical across same-seed runs.
    pub fn logical() -> Self {
        Self {
            shared: Some(Arc::new(Shared {
                events: Mutex::new(Vec::new()),
                clock: Clock::Logical(AtomicU64::new(0)),
            })),
        }
    }

    /// Whether events are being recorded. Callers should gate any
    /// argument-building work on this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.shared.is_some()
    }

    /// The current trace-domain timestamp in microseconds (0 when
    /// disabled).
    pub fn now_us(&self) -> f64 {
        match &self.shared {
            None => 0.0,
            Some(s) => match &s.clock {
                Clock::Wall(t0) => t0.elapsed().as_secs_f64() * 1e6,
                Clock::Logical(n) => n.fetch_add(1, Ordering::Relaxed) as f64,
            },
        }
    }

    /// Appends one event (dropped when disabled).
    pub fn record(&self, ev: Event) {
        if let Some(s) = &self.shared {
            if let Ok(mut events) = s.events.lock() {
                events.push(ev);
            }
        }
    }

    /// Records a complete span: `[ts_us, ts_us + dur_us)`.
    #[allow(clippy::too_many_arguments)] // mirrors the Chrome "X" record
    pub fn span(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        pid: u32,
        tid: u32,
        ts_us: f64,
        dur_us: f64,
        args: Vec<(&'static str, Value)>,
    ) {
        if self.enabled() {
            self.record(Event {
                name: name.into(),
                cat,
                kind: EventKind::Complete { dur_us },
                ts_us,
                pid,
                tid,
                args,
            });
        }
    }

    /// Records a counter sample.
    pub fn counter(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        pid: u32,
        tid: u32,
        ts_us: f64,
        args: Vec<(&'static str, Value)>,
    ) {
        if self.enabled() {
            self.record(Event {
                name: name.into(),
                cat,
                kind: EventKind::Counter,
                ts_us,
                pid,
                tid,
                args,
            });
        }
    }

    /// Records an instant event.
    pub fn instant(
        &self,
        name: impl Into<String>,
        cat: &'static str,
        pid: u32,
        tid: u32,
        ts_us: f64,
        args: Vec<(&'static str, Value)>,
    ) {
        if self.enabled() {
            self.record(Event {
                name: name.into(),
                cat,
                kind: EventKind::Instant,
                ts_us,
                pid,
                tid,
                args,
            });
        }
    }

    /// Records a metadata event (process/thread naming for the viewer).
    pub fn meta(&self, name: &'static str, pid: u32, tid: u32, value: impl Into<String>) {
        if self.enabled() {
            self.record(Event {
                name: name.to_string(),
                cat: "__metadata",
                kind: EventKind::Meta,
                ts_us: 0.0,
                pid,
                tid,
                args: vec![("name", Value::Str(value.into()))],
            });
        }
    }

    /// A copy of every event recorded so far, in insertion order.
    pub fn snapshot(&self) -> Vec<Event> {
        match &self.shared {
            None => Vec::new(),
            Some(s) => s.events.lock().map(|e| e.clone()).unwrap_or_default(),
        }
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        match &self.shared {
            None => 0,
            Some(s) => s.events.lock().map(|e| e.len()).unwrap_or(0),
        }
    }

    /// Whether no events have been recorded (always true when disabled).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handle_records_nothing() {
        let t = Trace::disabled();
        assert!(!t.enabled());
        t.span("x", "sim", PID_SIM, 0, 0.0, 1.0, vec![]);
        t.instant("y", "sim", PID_SIM, 0, 0.0, vec![]);
        assert!(t.is_empty());
        assert_eq!(t.now_us(), 0.0);
    }

    #[test]
    fn logical_clock_is_deterministic_and_ordered() {
        let t = Trace::logical();
        let a = t.now_us();
        let b = t.now_us();
        assert_eq!(a, 0.0);
        assert_eq!(b, 1.0);
        let t2 = Trace::logical();
        assert_eq!(t2.now_us(), 0.0);
    }

    #[test]
    fn clones_share_one_buffer() {
        let t = Trace::logical();
        let c = t.clone();
        c.instant("from-clone", "sim", PID_SIM, 0, 0.0, vec![]);
        t.counter(
            "from-orig",
            "sim",
            PID_SIM,
            0,
            1.0,
            vec![("v", Value::U64(1))],
        );
        assert_eq!(t.len(), 2);
        let events = t.snapshot();
        assert_eq!(events[0].name, "from-clone");
        assert_eq!(events[1].name, "from-orig");
    }

    #[test]
    fn wall_clock_advances() {
        let t = Trace::wall();
        let a = t.now_us();
        let b = t.now_us();
        assert!(b >= a);
    }
}
