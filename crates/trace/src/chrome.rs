//! Chrome trace-event JSON export and import.
//!
//! The writer emits the ["JSON object format"] understood by Perfetto and
//! `chrome://tracing`: a top-level object with a `traceEvents` array, one
//! event object per line. Field order, float formatting, and argument order
//! are all fixed, so a trace recorded against a deterministic clock is
//! byte-identical across same-seed runs, and `parse → emit` reproduces the
//! input exactly (the round-trip property the CI schema check relies on).
//!
//! ["JSON object format"]:
//!     https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
//!
//! Phases used: `X` (complete span), `C` (counter), `i` (instant, thread
//! scope), `M` (metadata: `process_name` / `thread_name`).

use crate::event::{Event, EventKind, Value};
use crate::json::{self, Json};
use std::collections::HashMap;

/// Serializes events to a Chrome trace-event JSON document (one event per
/// line, trailing newline).
pub fn write_chrome_trace(events: &[Event]) -> String {
    if events.is_empty() {
        return "{\"traceEvents\":[]}\n".to_string();
    }
    let mut out = String::with_capacity(events.len() * 96);
    out.push_str("{\"traceEvents\":[\n");
    for (i, ev) in events.iter().enumerate() {
        write_event(&mut out, ev);
        if i + 1 < events.len() {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("]}\n");
    out
}

fn write_event(out: &mut String, ev: &Event) {
    out.push_str("{\"name\":\"");
    json::escape_into(out, &ev.name);
    out.push_str("\",\"cat\":\"");
    json::escape_into(out, ev.cat);
    out.push_str("\",\"ph\":\"");
    out.push_str(match ev.kind {
        EventKind::Complete { .. } => "X",
        EventKind::Counter => "C",
        EventKind::Instant => "i",
        EventKind::Meta => "M",
    });
    out.push_str("\",\"ts\":");
    out.push_str(&json::fmt_f64(ev.ts_us));
    if let EventKind::Complete { dur_us } = ev.kind {
        out.push_str(",\"dur\":");
        out.push_str(&json::fmt_f64(dur_us));
    }
    if matches!(ev.kind, EventKind::Instant) {
        // Instants need an explicit scope; thread scope renders as a tick.
        out.push_str(",\"s\":\"t\"");
    }
    out.push_str(",\"pid\":");
    out.push_str(&ev.pid.to_string());
    out.push_str(",\"tid\":");
    out.push_str(&ev.tid.to_string());
    out.push_str(",\"args\":{");
    for (i, (key, value)) in ev.args.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        json::escape_into(out, key);
        out.push_str("\":");
        match value {
            Value::U64(v) => out.push_str(&v.to_string()),
            Value::I64(v) => out.push_str(&v.to_string()),
            Value::F64(v) => out.push_str(&json::fmt_f64(*v)),
            Value::Bool(v) => out.push_str(if *v { "true" } else { "false" }),
            Value::Str(s) => {
                out.push('"');
                json::escape_into(out, s);
                out.push('"');
            }
        }
    }
    out.push_str("}}");
}

/// Categories the stack itself emits; parsing interns onto these without
/// leaking.
const KNOWN_STRS: &[&str] = &[
    "compiler",
    "sim",
    "recovery",
    "accuracy",
    "__metadata",
    // Common argument keys (kept in sync opportunistically — unknown keys
    // still parse, via a one-time leak per unique string).
    "name",
    "step",
    "node",
    "op",
    "bytes",
    "value",
    "cores",
    "label",
    "predicted_us",
    "simulated_us",
    "round",
    "ratio",
    "reason",
    "kept",
    "pruned",
    "enumerated",
];

/// Interns a parsed string as `&'static str`: known strings map to
/// constants; novel ones leak once per unique string per parse call. Parsing
/// is a CLI/test-time path, so the leak is bounded and deliberate (the
/// [`Event`] model keys categories and argument names as `&'static str` to
/// keep the recording hot path allocation-free).
fn intern(s: &str, cache: &mut HashMap<String, &'static str>) -> &'static str {
    if let Some(k) = KNOWN_STRS.iter().find(|k| **k == s) {
        return k;
    }
    if let Some(k) = cache.get(s) {
        return k;
    }
    let leaked: &'static str = Box::leak(s.to_string().into_boxed_str());
    cache.insert(s.to_string(), leaked);
    leaked
}

/// Parses a Chrome trace-event JSON document back into [`Event`]s.
///
/// Accepts documents produced by [`write_chrome_trace`]; re-emitting the
/// result is byte-identical to the input. Returns a schema error for
/// anything malformed (missing fields, wrong phase, non-object args).
pub fn parse_chrome_trace(src: &str) -> Result<Vec<Event>, String> {
    let doc = json::parse(src)?;
    let events_json = doc
        .get("traceEvents")
        .ok_or("missing `traceEvents` array")?
        .as_arr()
        .ok_or("`traceEvents` is not an array")?;
    let mut cache: HashMap<String, &'static str> = HashMap::new();
    let mut events = Vec::with_capacity(events_json.len());
    for (i, ev) in events_json.iter().enumerate() {
        events.push(parse_event(ev, &mut cache).map_err(|e| format!("event {i}: {e}"))?);
    }
    Ok(events)
}

fn parse_event(ev: &Json, cache: &mut HashMap<String, &'static str>) -> Result<Event, String> {
    let name = ev
        .get("name")
        .and_then(Json::as_str)
        .ok_or("missing `name`")?
        .to_string();
    let cat = intern(
        ev.get("cat")
            .and_then(Json::as_str)
            .ok_or("missing `cat`")?,
        cache,
    );
    let ts_us = ev.get("ts").and_then(Json::as_f64).ok_or("missing `ts`")?;
    let pid = ev
        .get("pid")
        .and_then(Json::as_f64)
        .ok_or("missing `pid`")? as u32;
    let tid = ev
        .get("tid")
        .and_then(Json::as_f64)
        .ok_or("missing `tid`")? as u32;
    let kind = match ev.get("ph").and_then(Json::as_str).ok_or("missing `ph`")? {
        "X" => EventKind::Complete {
            dur_us: ev
                .get("dur")
                .and_then(Json::as_f64)
                .ok_or("`X` without `dur`")?,
        },
        "C" => EventKind::Counter,
        "i" => EventKind::Instant,
        "M" => EventKind::Meta,
        other => return Err(format!("unsupported phase {other:?}")),
    };
    let mut args = Vec::new();
    match ev.get("args") {
        Some(Json::Obj(members)) => {
            for (key, value) in members {
                args.push((intern(key, cache), parse_value(value)?));
            }
        }
        Some(_) => return Err("`args` is not an object".to_string()),
        None => {}
    }
    Ok(Event {
        name,
        cat,
        kind,
        ts_us,
        pid,
        tid,
        args,
    })
}

/// Maps a JSON scalar onto a [`Value`]. Integral non-negative numbers become
/// `U64`, integral negatives `I64`, everything else `F64`; `Display` prints
/// all three identically for integral values, which is what makes
/// parse → emit byte-stable.
fn parse_value(v: &Json) -> Result<Value, String> {
    const EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
    match v {
        Json::Bool(b) => Ok(Value::Bool(*b)),
        Json::Str(s) => Ok(Value::Str(s.clone())),
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < EXACT {
                if *n >= 0.0 {
                    Ok(Value::U64(*n as u64))
                } else {
                    Ok(Value::I64(*n as i64))
                }
            } else {
                Ok(Value::F64(*n))
            }
        }
        Json::Null | Json::Arr(_) | Json::Obj(_) => {
            Err("unsupported arg value (null/array/object)".to_string())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{CHIP_TID, PID_COMPILER, PID_SIM};

    fn sample_events() -> Vec<Event> {
        vec![
            Event {
                name: "process_name".into(),
                cat: "__metadata",
                kind: EventKind::Meta,
                ts_us: 0.0,
                pid: PID_SIM,
                tid: 0,
                args: vec![("name", Value::Str("t10 chip (sim time)".into()))],
            },
            Event {
                name: "compute".into(),
                cat: "sim",
                kind: EventKind::Complete { dur_us: 12.5 },
                ts_us: 3.0,
                pid: PID_SIM,
                tid: 7,
                args: vec![("step", Value::U64(4)), ("scale", Value::F64(0.75))],
            },
            Event {
                name: "sram_high_water".into(),
                cat: "sim",
                kind: EventKind::Counter,
                ts_us: 15.5,
                pid: PID_SIM,
                tid: CHIP_TID,
                args: vec![("bytes", Value::U64(65_536))],
            },
            Event {
                name: "pareto \"snapshot\"".into(),
                cat: "compiler",
                kind: EventKind::Instant,
                ts_us: 2.0,
                pid: PID_COMPILER,
                tid: 1,
                args: vec![
                    ("kept", Value::U64(3)),
                    ("delta", Value::I64(-2)),
                    ("done", Value::Bool(false)),
                ],
            },
        ]
    }

    #[test]
    fn round_trip_is_byte_identical() {
        let events = sample_events();
        let text = write_chrome_trace(&events);
        let parsed = parse_chrome_trace(&text).unwrap();
        assert_eq!(parsed, events);
        assert_eq!(write_chrome_trace(&parsed), text);
    }

    #[test]
    fn empty_trace_round_trips() {
        let text = write_chrome_trace(&[]);
        assert_eq!(text, "{\"traceEvents\":[]}\n");
        assert!(parse_chrome_trace(&text).unwrap().is_empty());
    }

    #[test]
    fn output_is_valid_json_with_expected_phases() {
        let text = write_chrome_trace(&sample_events());
        let doc = json::parse(&text).unwrap();
        let arr = doc.get("traceEvents").unwrap().as_arr().unwrap();
        assert_eq!(arr.len(), 4);
        let phases: Vec<_> = arr
            .iter()
            .map(|e| e.get("ph").unwrap().as_str().unwrap().to_string())
            .collect();
        assert_eq!(phases, ["M", "X", "C", "i"]);
        // Complete spans carry dur; instants carry scope.
        assert_eq!(arr[1].get("dur").unwrap().as_f64(), Some(12.5));
        assert_eq!(arr[3].get("s").unwrap().as_str(), Some("t"));
    }

    #[test]
    fn schema_errors_are_reported() {
        assert!(parse_chrome_trace("{}").is_err());
        assert!(parse_chrome_trace("{\"traceEvents\":1}").is_err());
        let missing_dur = r#"{"traceEvents":[{"name":"a","cat":"sim","ph":"X","ts":0,"pid":0,"tid":0,"args":{}}]}"#;
        assert!(parse_chrome_trace(missing_dur).is_err());
        let bad_phase = r#"{"traceEvents":[{"name":"a","cat":"sim","ph":"B","ts":0,"pid":0,"tid":0,"args":{}}]}"#;
        assert!(parse_chrome_trace(bad_phase).is_err());
    }

    #[test]
    fn non_finite_floats_export_as_zero() {
        let ev = Event {
            name: "bad".into(),
            cat: "sim",
            kind: EventKind::Complete { dur_us: f64::NAN },
            ts_us: f64::INFINITY,
            pid: 0,
            tid: 0,
            args: vec![("v", Value::F64(f64::NEG_INFINITY))],
        };
        let text = write_chrome_trace(&[ev]);
        let parsed = parse_chrome_trace(&text).unwrap();
        assert_eq!(parsed[0].ts_us, 0.0);
        assert_eq!(parsed[0].dur_us(), Some(0.0));
        assert_eq!(parsed[0].arg_f64("v"), Some(0.0));
    }
}
