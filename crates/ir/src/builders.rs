//! Convenience constructors for common DNN operators.
//!
//! Every builder returns a fully-validated [`Operator`] whose tensor
//! expression follows the canonical form of paper §4.2. Shapes passed here
//! are the *logical* operator shapes; [`crate::Graph::add_node`] re-checks
//! them against the connected graph values.

use crate::expr::{Axis, IndexExpr, TensorExpr};
use crate::graph::ValueId;
use crate::op::{Combine, OpKind, Operator, Reduce, Unary};
use crate::{ir_err, Result};

/// `C[m,n] += A[m,k] * B[k,n]` — dense matrix multiplication.
pub fn matmul(
    a: ValueId,
    b: ValueId,
    c: ValueId,
    m: usize,
    k: usize,
    n: usize,
) -> Result<Operator> {
    let expr = TensorExpr::new(
        vec![
            Axis::spatial("m", m),
            Axis::reduction("k", k),
            Axis::spatial("n", n),
        ],
        vec![
            vec![IndexExpr::axis(0), IndexExpr::axis(1)],
            vec![IndexExpr::axis(1), IndexExpr::axis(2)],
        ],
        vec![IndexExpr::axis(0), IndexExpr::axis(2)],
    )?;
    Ok(Operator {
        kind: OpKind::MatMul,
        expr,
        combine: Combine::Mul,
        reduce: Reduce::Sum,
        unary: None,
        inputs: vec![a, b],
        output: c,
    })
}

/// `C[b,m,n] += A[b,m,k] * B[b,k,n]` — batched matrix multiplication
/// (attention scores/values).
pub fn batched_matmul(
    a: ValueId,
    b: ValueId,
    c: ValueId,
    batch: usize,
    m: usize,
    k: usize,
    n: usize,
) -> Result<Operator> {
    let expr = TensorExpr::new(
        vec![
            Axis::spatial("b", batch),
            Axis::spatial("m", m),
            Axis::reduction("k", k),
            Axis::spatial("n", n),
        ],
        vec![
            vec![IndexExpr::axis(0), IndexExpr::axis(1), IndexExpr::axis(2)],
            vec![IndexExpr::axis(0), IndexExpr::axis(2), IndexExpr::axis(3)],
        ],
        vec![IndexExpr::axis(0), IndexExpr::axis(1), IndexExpr::axis(3)],
    )?;
    Ok(Operator {
        kind: OpKind::MatMul,
        expr,
        combine: Combine::Mul,
        reduce: Reduce::Sum,
        unary: None,
        inputs: vec![a, b],
        output: c,
    })
}

/// Configuration of a [`conv2d`] operator.
#[derive(Debug, Clone, Copy)]
pub struct Conv2dCfg {
    /// Batch size.
    pub batch: usize,
    /// Input channels.
    pub c_in: usize,
    /// Output channels.
    pub c_out: usize,
    /// Output height.
    pub h_out: usize,
    /// Output width.
    pub w_out: usize,
    /// Kernel height.
    pub kh: usize,
    /// Kernel width.
    pub kw: usize,
    /// Convolution stride (same in both spatial dims).
    pub stride: usize,
}

impl Conv2dCfg {
    /// Input spatial extent implied along the height dimension.
    pub fn h_in(&self) -> usize {
        self.stride * (self.h_out - 1) + self.kh
    }

    /// Input spatial extent implied along the width dimension.
    pub fn w_in(&self) -> usize {
        self.stride * (self.w_out - 1) + self.kw
    }
}

/// `O[b,f,h,w] += I[b,c,s*h+kh,s*w+kw] * K[f,c,kh,kw]` — 2-D convolution
/// with compound axes (paper §5, Equation 2).
///
/// The builder models "valid" convolution over a pre-padded input: callers
/// that need "same" semantics size the input value accordingly.
pub fn conv2d(input: ValueId, kernel: ValueId, out: ValueId, cfg: Conv2dCfg) -> Result<Operator> {
    if cfg.stride == 0 {
        return Err(ir_err!("conv2d stride must be positive"));
    }
    // Axis ids: b=0, f=1, h=2, w=3, c=4, kh=5, kw=6.
    let expr = TensorExpr::new(
        vec![
            Axis::spatial("b", cfg.batch),
            Axis::spatial("f", cfg.c_out),
            Axis::spatial("h", cfg.h_out),
            Axis::spatial("w", cfg.w_out),
            Axis::reduction("c", cfg.c_in),
            Axis::reduction("kh", cfg.kh),
            Axis::reduction("kw", cfg.kw),
        ],
        vec![
            vec![
                IndexExpr::axis(0),
                IndexExpr::axis(4),
                IndexExpr::affine(vec![(2, cfg.stride), (5, 1)]),
                IndexExpr::affine(vec![(3, cfg.stride), (6, 1)]),
            ],
            vec![
                IndexExpr::axis(1),
                IndexExpr::axis(4),
                IndexExpr::axis(5),
                IndexExpr::axis(6),
            ],
        ],
        vec![
            IndexExpr::axis(0),
            IndexExpr::axis(1),
            IndexExpr::axis(2),
            IndexExpr::axis(3),
        ],
    )?;
    Ok(Operator {
        kind: OpKind::Conv2d,
        expr,
        combine: Combine::Mul,
        reduce: Reduce::Sum,
        unary: None,
        inputs: vec![input, kernel],
        output: out,
    })
}

/// Element-wise binary operator over same-shaped tensors.
pub fn binary(
    a: ValueId,
    b: ValueId,
    out: ValueId,
    shape: Vec<usize>,
    combine: Combine,
) -> Result<Operator> {
    if combine == Combine::First {
        return Err(ir_err!("binary() requires a two-input combine"));
    }
    let (axes, dims) = elementwise_axes(&shape);
    let expr = TensorExpr::new(axes, vec![dims.clone(), dims.clone()], dims)?;
    Ok(Operator {
        kind: OpKind::Elementwise,
        expr,
        combine,
        reduce: Reduce::Sum,
        unary: None,
        inputs: vec![a, b],
        output: out,
    })
}

/// Element-wise binary operator whose second input broadcasts along the
/// leading dimensions (bias add: `C[m,n] = A[m,n] + B[n]`).
pub fn binary_broadcast(
    a: ValueId,
    b: ValueId,
    out: ValueId,
    shape: Vec<usize>,
    broadcast_dims: usize,
    combine: Combine,
) -> Result<Operator> {
    if broadcast_dims == 0 || broadcast_dims >= shape.len() {
        return Err(ir_err!(
            "broadcast_dims must be in 1..rank ({})",
            shape.len()
        ));
    }
    let (axes, dims) = elementwise_axes(&shape);
    let b_dims = dims[broadcast_dims..].to_vec();
    let expr = TensorExpr::new(axes, vec![dims.clone(), b_dims], dims)?;
    Ok(Operator {
        kind: OpKind::Elementwise,
        expr,
        combine,
        reduce: Reduce::Sum,
        unary: None,
        inputs: vec![a, b],
        output: out,
    })
}

/// Element-wise unary operator (activation functions, scaling).
pub fn unary(a: ValueId, out: ValueId, shape: Vec<usize>, f: Unary) -> Result<Operator> {
    let (axes, dims) = elementwise_axes(&shape);
    let expr = TensorExpr::new(axes, vec![dims.clone()], dims)?;
    Ok(Operator {
        kind: OpKind::Elementwise,
        expr,
        combine: Combine::First,
        reduce: Reduce::Sum,
        unary: Some(f),
        inputs: vec![a],
        output: out,
    })
}

/// Reduction of the trailing dimension: `O[m] = reduce_k A[m, k]`.
///
/// `scale` is applied after the reduction (set `1/k` for a mean).
pub fn reduce_last(
    a: ValueId,
    out: ValueId,
    keep: Vec<usize>,
    k: usize,
    reduce: Reduce,
    scale: Option<f32>,
) -> Result<Operator> {
    let mut axes: Vec<Axis> = keep
        .iter()
        .enumerate()
        .map(|(i, &s)| Axis::spatial(format!("d{i}"), s))
        .collect();
    axes.push(Axis::reduction("k", k));
    let out_dims: Vec<IndexExpr> = (0..keep.len()).map(IndexExpr::axis).collect();
    let mut in_dims = out_dims.clone();
    in_dims.push(IndexExpr::axis(keep.len()));
    let expr = TensorExpr::new(axes, vec![in_dims], out_dims)?;
    Ok(Operator {
        kind: OpKind::Reduce,
        expr,
        combine: Combine::First,
        reduce,
        unary: scale.map(Unary::Scale),
        inputs: vec![a],
        output: out,
    })
}

/// 2-D max pooling: `O[b,c,h,w] = max_{kh,kw} I[b,c,s*h+kh,s*w+kw]`.
#[expect(clippy::too_many_arguments, reason = "mirrors the pooling signature")]
pub fn max_pool2d(
    input: ValueId,
    out: ValueId,
    batch: usize,
    channels: usize,
    h_out: usize,
    w_out: usize,
    window: usize,
    stride: usize,
) -> Result<Operator> {
    if stride == 0 || window == 0 {
        return Err(ir_err!("pool window and stride must be positive"));
    }
    // Axis ids: b=0, c=1, h=2, w=3, kh=4, kw=5.
    let expr = TensorExpr::new(
        vec![
            Axis::spatial("b", batch),
            Axis::spatial("c", channels),
            Axis::spatial("h", h_out),
            Axis::spatial("w", w_out),
            Axis::reduction("kh", window),
            Axis::reduction("kw", window),
        ],
        vec![vec![
            IndexExpr::axis(0),
            IndexExpr::axis(1),
            IndexExpr::affine(vec![(2, stride), (4, 1)]),
            IndexExpr::affine(vec![(3, stride), (5, 1)]),
        ]],
        vec![
            IndexExpr::axis(0),
            IndexExpr::axis(1),
            IndexExpr::axis(2),
            IndexExpr::axis(3),
        ],
    )?;
    Ok(Operator {
        kind: OpKind::Pool,
        expr,
        combine: Combine::First,
        reduce: Reduce::Max,
        unary: None,
        inputs: vec![input],
        output: out,
    })
}

/// Spatial crop: `O[b,c,h,w] = I[b,c,h+oh,w+ow]`.
///
/// Used to align "valid"-convolution residual branches; the input tensor may
/// be larger than the accessed window.
#[expect(clippy::too_many_arguments)]
pub fn crop2d(
    input: ValueId,
    out: ValueId,
    batch: usize,
    channels: usize,
    h_out: usize,
    w_out: usize,
    h_off: usize,
    w_off: usize,
) -> Result<Operator> {
    let expr = TensorExpr::new(
        vec![
            Axis::spatial("b", batch),
            Axis::spatial("c", channels),
            Axis::spatial("h", h_out),
            Axis::spatial("w", w_out),
        ],
        vec![vec![
            IndexExpr::axis(0),
            IndexExpr::axis(1),
            IndexExpr::axis(2).with_offset(h_off),
            IndexExpr::axis(3).with_offset(w_off),
        ]],
        vec![
            IndexExpr::axis(0),
            IndexExpr::axis(1),
            IndexExpr::axis(2),
            IndexExpr::axis(3),
        ],
    )?;
    Ok(Operator {
        kind: OpKind::Elementwise,
        expr,
        combine: Combine::First,
        reduce: Reduce::Sum,
        unary: None,
        inputs: vec![input],
        output: out,
    })
}

/// Embedding gather: `O[n, d] = T[I[n], d]` with a data-dependent table row.
pub fn gather(
    table: ValueId,
    indices: ValueId,
    out: ValueId,
    vocab: usize,
    n: usize,
    d: usize,
) -> Result<Operator> {
    let expr = TensorExpr::new(
        vec![Axis::spatial("n", n), Axis::spatial("d", d)],
        vec![
            vec![IndexExpr::indirect(vocab), IndexExpr::axis(1)],
            vec![IndexExpr::axis(0)],
        ],
        vec![IndexExpr::axis(0), IndexExpr::axis(1)],
    )?;
    Ok(Operator {
        kind: OpKind::Gather,
        expr,
        combine: Combine::First,
        reduce: Reduce::Sum,
        unary: None,
        inputs: vec![table, indices],
        output: out,
    })
}

fn elementwise_axes(shape: &[usize]) -> (Vec<Axis>, Vec<IndexExpr>) {
    let axes = shape
        .iter()
        .enumerate()
        .map(|(i, &s)| Axis::spatial(format!("d{i}"), s))
        .collect();
    let dims = (0..shape.len()).map(IndexExpr::axis).collect();
    (axes, dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_builder_shapes() {
        let op = matmul(0, 1, 2, 3, 4, 5).unwrap();
        assert_eq!(op.expr.input_shape(0), vec![3, 4]);
        assert_eq!(op.expr.input_shape(1), vec![4, 5]);
        assert_eq!(op.expr.output_shape(), vec![3, 5]);
        assert_eq!(op.flops(), 2 * 3 * 4 * 5);
    }

    #[test]
    fn conv2d_builder_shapes() {
        let cfg = Conv2dCfg {
            batch: 2,
            c_in: 3,
            c_out: 8,
            h_out: 16,
            w_out: 16,
            kh: 3,
            kw: 3,
            stride: 1,
        };
        let op = conv2d(0, 1, 2, cfg).unwrap();
        assert_eq!(op.expr.input_shape(0), vec![2, 3, 18, 18]);
        assert_eq!(op.expr.input_shape(1), vec![8, 3, 3, 3]);
        assert_eq!(op.expr.output_shape(), vec![2, 8, 16, 16]);
    }

    #[test]
    fn strided_conv_input_extent() {
        let cfg = Conv2dCfg {
            batch: 1,
            c_in: 3,
            c_out: 64,
            h_out: 112,
            w_out: 112,
            kh: 7,
            kw: 7,
            stride: 2,
        };
        assert_eq!(cfg.h_in(), 2 * 111 + 7);
        let op = conv2d(0, 1, 2, cfg).unwrap();
        assert_eq!(op.expr.input_shape(0)[2], 229);
    }

    #[test]
    fn binary_broadcast_bias() {
        let op = binary_broadcast(0, 1, 2, vec![8, 16], 1, Combine::Add).unwrap();
        assert_eq!(op.expr.input_shape(0), vec![8, 16]);
        assert_eq!(op.expr.input_shape(1), vec![16]);
    }

    #[test]
    fn binary_rejects_first() {
        assert!(binary(0, 1, 2, vec![4], Combine::First).is_err());
    }

    #[test]
    fn reduce_last_shapes() {
        let op = reduce_last(0, 1, vec![4, 8], 16, Reduce::Sum, Some(1.0 / 16.0)).unwrap();
        assert_eq!(op.expr.input_shape(0), vec![4, 8, 16]);
        assert_eq!(op.expr.output_shape(), vec![4, 8]);
    }

    #[test]
    fn gather_has_indirect_access() {
        let op = gather(0, 1, 2, 30_000, 128, 768).unwrap();
        assert!(op.has_indirect_access());
        assert_eq!(op.expr.input_shape(0), vec![30_000, 768]);
        assert_eq!(op.expr.output_shape(), vec![128, 768]);
    }

    #[test]
    fn pool_uses_max_reduce() {
        let op = max_pool2d(0, 1, 1, 64, 56, 56, 2, 2).unwrap();
        assert_eq!(op.reduce, Reduce::Max);
        assert_eq!(op.expr.input_shape(0), vec![1, 64, 112, 112]);
    }
}
