//! Graph transformation passes.
//!
//! T10 itself applies only lossless plan-level optimizations; classic graph
//! rewrites like kernel fusion are orthogonal (paper §8, related work).
//! This module provides the most profitable such rewrite for a BSP machine:
//! folding pure element-wise unary operators into their producer's epilogue,
//! which removes one superstep (and its synchronization) per folded node.

use crate::graph::{Graph, ValueKind};
use crate::op::{Combine, OpKind};
use crate::Result;

/// Whether `node` is a pure unary copy-with-function over its single input.
fn is_fusable_unary(g: &Graph, node: usize) -> bool {
    let op = &g.node(node).op;
    op.kind == OpKind::Elementwise
        && op.combine == Combine::First
        && op.inputs.len() == 1
        && op.unary.is_some()
        // The access must be the identity (no crop/offset), so the values
        // are element-aligned.
        && op.expr.inputs[0] == op.expr.output
        && g.value(op.inputs[0]).shape == g.value(op.output).shape
}

/// Fuses pure-unary nodes into their producers' epilogues.
///
/// A unary node folds when its input activation is produced by a node with
/// no epilogue of its own and consumed by nobody else. The producer then
/// writes the unary's output value directly. The result is a semantically
/// identical graph with fewer nodes (each removal saves a compute superstep
/// and a BSP sync on the chip).
///
/// # Examples
///
/// ```
/// use t10_ir::{builders, transform, DType, Graph, Unary, ValueKind};
///
/// let mut g = Graph::new("g");
/// let a = g.add_value("a", vec![4, 4], DType::F16, ValueKind::Input);
/// let w = g.add_value("w", vec![4, 4], DType::F16, ValueKind::Weight);
/// let h = g.add_value("h", vec![4, 4], DType::F16, ValueKind::Activation);
/// let o = g.add_value("o", vec![4, 4], DType::F16, ValueKind::Output);
/// g.add_node("mm", builders::matmul(a, w, h, 4, 4, 4).unwrap()).unwrap();
/// g.add_node("relu", builders::unary(h, o, vec![4, 4], Unary::Relu).unwrap())
///     .unwrap();
/// let fused = transform::fuse_unary(&g).unwrap();
/// assert_eq!(fused.nodes().len(), 1);
/// assert!(fused.nodes()[0].op.unary.is_some());
/// ```
pub fn fuse_unary(g: &Graph) -> Result<Graph> {
    // Pass 1: decide the fusions. `fold_into[u] = producer` means unary
    // node `u` folds into node `producer`.
    let n = g.nodes().len();
    let mut fused_away = vec![false; n];
    let mut epilogue: Vec<Option<(crate::op::Unary, usize)>> = vec![None; n];
    for (u, fused) in fused_away.iter_mut().enumerate() {
        if !is_fusable_unary(g, u) {
            continue;
        }
        let input = g.node(u).op.inputs[0];
        if g.value(input).kind != ValueKind::Activation {
            continue;
        }
        let Some(producer) = g.producer(input) else {
            continue;
        };
        if g.node(producer).op.unary.is_some() || epilogue[producer].is_some() {
            continue;
        }
        if g.consumers(input).len() != 1 {
            continue;
        }
        // The producer must write the full declared value: a padded-output
        // producer relies on the border init, which an epilogue would skip
        // on the consumer side but not here — both apply the function over
        // the whole buffer, so shapes must match exactly.
        if g.value(input).shape != g.node(producer).op.expr.output_shape() {
            continue;
        }
        *fused = true;
        epilogue[producer] = Some((g.node(u).op.unary.expect("fusable"), g.node(u).op.output));
    }

    // Pass 2: rebuild.
    let mut out = Graph::new(g.name());
    for v in g.values() {
        out.add_value(v.name.clone(), v.shape.clone(), v.dtype, v.kind);
    }
    for i in 0..n {
        if fused_away[i] {
            continue;
        }
        let mut op = g.node(i).op.clone();
        if let Some((unary, new_out)) = epilogue[i] {
            op.unary = Some(unary);
            op.output = new_out;
        }
        out.add_node(g.node(i).name.clone(), op)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::Unary;
    use crate::tensor::Tensor;
    use crate::{builders, reference, DType};

    fn chain() -> (Graph, usize, usize) {
        let mut g = Graph::new("c");
        let a = g.add_value("a", vec![4, 4], DType::F32, ValueKind::Input);
        let w = g.add_value("w", vec![4, 4], DType::F32, ValueKind::Weight);
        let h = g.add_value("h", vec![4, 4], DType::F32, ValueKind::Activation);
        let r = g.add_value("r", vec![4, 4], DType::F32, ValueKind::Activation);
        let o = g.add_value("o", vec![4, 4], DType::F32, ValueKind::Output);
        g.add_node("mm", builders::matmul(a, w, h, 4, 4, 4).unwrap())
            .unwrap();
        g.add_node(
            "relu",
            builders::unary(h, r, vec![4, 4], Unary::Relu).unwrap(),
        )
        .unwrap();
        g.add_node(
            "scale",
            builders::unary(r, o, vec![4, 4], Unary::Scale(2.0)).unwrap(),
        )
        .unwrap();
        (g, a, o)
    }

    #[test]
    fn fuses_single_consumer_unary() {
        let (g, _, _) = chain();
        let fused = fuse_unary(&g).unwrap();
        // relu folds into mm; scale then has a producer that already owns
        // an epilogue, so it stays.
        assert_eq!(fused.nodes().len(), 2);
        assert_eq!(fused.nodes()[0].op.unary, Some(Unary::Relu));
    }

    #[test]
    fn fusion_preserves_semantics() {
        let (g, a, o) = chain();
        let fused = fuse_unary(&g).unwrap();
        let input = Tensor::pattern(vec![4, 4], 0.3);
        let before = reference::execute_graph(&g, &[(a, input.clone())]).unwrap();
        let after = reference::execute_graph(&fused, &[(a, input)]).unwrap();
        let b = before[o].as_ref().unwrap();
        let f = after[o].as_ref().unwrap();
        assert!(b.approx_eq(f, 1e-6));
    }

    #[test]
    fn shared_activation_is_not_fused() {
        // The matmul output feeds both a unary AND a residual: no fusion.
        let mut g = Graph::new("s");
        let a = g.add_value("a", vec![4, 4], DType::F32, ValueKind::Input);
        let w = g.add_value("w", vec![4, 4], DType::F32, ValueKind::Weight);
        let h = g.add_value("h", vec![4, 4], DType::F32, ValueKind::Activation);
        let r = g.add_value("r", vec![4, 4], DType::F32, ValueKind::Activation);
        let o = g.add_value("o", vec![4, 4], DType::F32, ValueKind::Output);
        g.add_node("mm", builders::matmul(a, w, h, 4, 4, 4).unwrap())
            .unwrap();
        g.add_node(
            "relu",
            builders::unary(h, r, vec![4, 4], Unary::Relu).unwrap(),
        )
        .unwrap();
        g.add_node(
            "add",
            builders::binary(h, r, o, vec![4, 4], crate::Combine::Add).unwrap(),
        )
        .unwrap();
        let fused = fuse_unary(&g).unwrap();
        assert_eq!(fused.nodes().len(), 3);
    }

    #[test]
    fn fuses_real_model_output_copies() {
        // LLM decode layers end in a pure copy node that should fold.
        let mut g = Graph::new("m");
        let a = g.add_value("a", vec![8, 8], DType::F16, ValueKind::Input);
        let w = g.add_value("w", vec![8, 8], DType::F16, ValueKind::Weight);
        let h = g.add_value("h", vec![8, 8], DType::F16, ValueKind::Activation);
        let o = g.add_value("o", vec![8, 8], DType::F16, ValueKind::Output);
        g.add_node("mm", builders::matmul(a, w, h, 8, 8, 8).unwrap())
            .unwrap();
        g.add_node(
            "copy",
            builders::unary(h, o, vec![8, 8], Unary::Scale(1.0)).unwrap(),
        )
        .unwrap();
        let fused = fuse_unary(&g).unwrap();
        assert_eq!(fused.nodes().len(), 1);
        assert_eq!(fused.nodes()[0].op.output, o);
    }
}
