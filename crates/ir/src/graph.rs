//! Operator graphs: the whole-model IR.
//!
//! A [`Graph`] owns a set of *values* (tensors: model inputs, weights,
//! activations) and a set of *nodes* (operators). T10 parses a model into
//! this form, optimizes every operator, and then schedules the whole graph
//! (paper §4.3.2).

use serde::{Deserialize, Serialize};

use crate::op::Operator;
use crate::{ir_err, DType, Result};

/// Index of a value (tensor) within a [`Graph`].
pub type ValueId = usize;

/// Index of a node (operator) within a [`Graph`].
pub type NodeId = usize;

/// Role of a value in the model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ValueKind {
    /// Model input, transferred from off-chip memory.
    Input,
    /// Persistent parameter, resident on chip for the whole run.
    Weight,
    /// Intermediate activation produced and consumed on chip.
    Activation,
    /// Model output, transferred back off chip.
    Output,
}

/// Metadata of one tensor in the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueInfo {
    /// Human-readable name.
    pub name: String,
    /// Dimension extents.
    pub shape: Vec<usize>,
    /// Element type.
    pub dtype: DType,
    /// Role in the model.
    pub kind: ValueKind,
}

impl ValueInfo {
    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.shape.iter().product()
    }

    /// Size in bytes.
    pub fn bytes(&self) -> usize {
        self.elements() * self.dtype.bytes()
    }
}

/// One operator instance in the graph.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Node {
    /// Human-readable name (layer name).
    pub name: String,
    /// The operator.
    pub op: Operator,
}

/// A whole-model operator graph.
///
/// Nodes must be appended in topological order: every input of a node is
/// either a graph input, a weight, or the output of an earlier node. This is
/// validated on insertion.
///
/// # Examples
///
/// ```
/// use t10_ir::builders;
/// use t10_ir::{DType, Graph, ValueKind};
///
/// let mut g = Graph::new("tiny");
/// let a = g.add_value("a", vec![8, 16], DType::F32, ValueKind::Input);
/// let w = g.add_value("w", vec![16, 4], DType::F32, ValueKind::Weight);
/// let c = g.add_value("c", vec![8, 4], DType::F32, ValueKind::Output);
/// let op = builders::matmul(a, w, c, 8, 16, 4).unwrap();
/// g.add_node("fc", op).unwrap();
/// assert_eq!(g.nodes().len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Graph {
    name: String,
    values: Vec<ValueInfo>,
    nodes: Vec<Node>,
    produced: Vec<Option<NodeId>>,
}

impl Graph {
    /// Creates an empty graph.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            values: Vec::new(),
            nodes: Vec::new(),
            produced: Vec::new(),
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a tensor value and returns its id.
    pub fn add_value(
        &mut self,
        name: impl Into<String>,
        shape: Vec<usize>,
        dtype: DType,
        kind: ValueKind,
    ) -> ValueId {
        self.values.push(ValueInfo {
            name: name.into(),
            shape,
            dtype,
            kind,
        });
        self.produced.push(None);
        self.values.len() - 1
    }

    /// Adds an operator node, validating connectivity and shapes.
    pub fn add_node(&mut self, name: impl Into<String>, op: Operator) -> Result<NodeId> {
        let name = name.into();
        if op.inputs.len() != op.expr.num_inputs() {
            return Err(ir_err!(
                "node {name}: {} input values but expression has {} slots",
                op.inputs.len(),
                op.expr.num_inputs()
            ));
        }
        for (slot, &v) in op.inputs.iter().enumerate() {
            let info = self
                .values
                .get(v)
                .ok_or_else(|| ir_err!("node {name}: input value {v} does not exist"))?;
            // The access pattern must fit within the tensor; a crop may
            // read a strict sub-range, so the tensor may be larger.
            let expect = op.expr.input_shape(slot);
            let fits = info.shape.len() == expect.len()
                && info.shape.iter().zip(&expect).all(|(&s, &e)| s >= e);
            if !fits {
                return Err(ir_err!(
                    "node {name}: input {slot} ({}) has shape {:?} but expression accesses {:?}",
                    info.name,
                    info.shape,
                    expect
                ));
            }
            let is_produced = self.produced[v].is_some();
            let ok = match info.kind {
                ValueKind::Input | ValueKind::Weight => true,
                ValueKind::Activation | ValueKind::Output => is_produced,
            };
            if !ok {
                return Err(ir_err!(
                    "node {name}: activation input {} consumed before being produced",
                    info.name
                ));
            }
        }
        let out = op.output;
        let info = self
            .values
            .get(out)
            .ok_or_else(|| ir_err!("node {name}: output value {out} does not exist"))?;
        // Output values may be declared larger than the written extent:
        // the untouched border keeps the init value (zero padding).
        let expect = op.expr.output_shape();
        let fits = info.shape.len() == expect.len()
            && info.shape.iter().zip(&expect).all(|(&s, &e)| s >= e);
        if !fits {
            return Err(ir_err!(
                "node {name}: output ({}) has shape {:?} but expression writes {:?}",
                info.name,
                info.shape,
                expect
            ));
        }
        if self.produced[out].is_some() {
            return Err(ir_err!("node {name}: value {} produced twice", info.name));
        }
        if matches!(info.kind, ValueKind::Input | ValueKind::Weight) {
            return Err(ir_err!(
                "node {name}: cannot write to input/weight value {}",
                info.name
            ));
        }
        self.nodes.push(Node { name, op });
        let id = self.nodes.len() - 1;
        self.produced[out] = Some(id);
        Ok(id)
    }

    /// All values.
    pub fn values(&self) -> &[ValueInfo] {
        &self.values
    }

    /// One value.
    pub fn value(&self, id: ValueId) -> &ValueInfo {
        &self.values[id]
    }

    /// All nodes, in topological order.
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// One node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// The node that produces a value, if any.
    pub fn producer(&self, v: ValueId) -> Option<NodeId> {
        self.produced[v]
    }

    /// Nodes that consume a value.
    pub fn consumers(&self, v: ValueId) -> Vec<NodeId> {
        self.nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| n.op.inputs.contains(&v))
            .map(|(i, _)| i)
            .collect()
    }

    /// Last node (in topological order) that reads each value; used for
    /// liveness analysis during placement (paper §4.4).
    pub fn last_use(&self, v: ValueId) -> Option<NodeId> {
        self.consumers(v).into_iter().max()
    }

    /// Total parameter count (elements of all weight values).
    pub fn parameter_count(&self) -> usize {
        self.values
            .iter()
            .filter(|v| v.kind == ValueKind::Weight)
            .map(|v| v.elements())
            .sum()
    }

    /// Total parameter bytes.
    pub fn parameter_bytes(&self) -> usize {
        self.values
            .iter()
            .filter(|v| v.kind == ValueKind::Weight)
            .map(|v| v.bytes())
            .sum()
    }

    /// Total FLOPs of one forward pass.
    pub fn total_flops(&self) -> u128 {
        self.nodes.iter().map(|n| n.op.flops()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders;

    fn tiny() -> (Graph, ValueId, ValueId, ValueId) {
        let mut g = Graph::new("t");
        let a = g.add_value("a", vec![4, 8], DType::F32, ValueKind::Input);
        let w = g.add_value("w", vec![8, 2], DType::F32, ValueKind::Weight);
        let c = g.add_value("c", vec![4, 2], DType::F32, ValueKind::Output);
        (g, a, w, c)
    }

    #[test]
    fn add_valid_node() {
        let (mut g, a, w, c) = tiny();
        let op = builders::matmul(a, w, c, 4, 8, 2).unwrap();
        let id = g.add_node("fc", op).unwrap();
        assert_eq!(g.producer(c), Some(id));
        assert_eq!(g.consumers(a), vec![id]);
        assert_eq!(g.parameter_count(), 16);
        assert_eq!(g.total_flops(), 2 * 4 * 8 * 2);
    }

    #[test]
    fn rejects_shape_mismatch() {
        let (mut g, a, w, c) = tiny();
        let op = builders::matmul(a, w, c, 4, 9, 2).unwrap();
        assert!(g.add_node("fc", op).is_err());
    }

    #[test]
    fn rejects_unproduced_activation_input() {
        let mut g = Graph::new("t");
        let x = g.add_value("x", vec![4, 8], DType::F32, ValueKind::Activation);
        let w = g.add_value("w", vec![8, 2], DType::F32, ValueKind::Weight);
        let c = g.add_value("c", vec![4, 2], DType::F32, ValueKind::Output);
        let op = builders::matmul(x, w, c, 4, 8, 2).unwrap();
        assert!(g.add_node("fc", op).is_err());
    }

    #[test]
    fn rejects_double_produce() {
        let (mut g, a, w, c) = tiny();
        let op = builders::matmul(a, w, c, 4, 8, 2).unwrap();
        g.add_node("fc", op.clone()).unwrap();
        assert!(g.add_node("fc2", op).is_err());
    }

    #[test]
    fn rejects_writing_weight() {
        let (mut g, a, w, _c) = tiny();
        let w2 = g.add_value("w2", vec![4, 2], DType::F32, ValueKind::Weight);
        let op = builders::matmul(a, w, w2, 4, 8, 2).unwrap();
        assert!(g.add_node("fc", op).is_err());
    }

    #[test]
    fn last_use_is_max_consumer() {
        let (mut g, a, w, c) = tiny();
        let op = builders::matmul(a, w, c, 4, 8, 2).unwrap();
        g.add_node("fc", op).unwrap();
        let d = g.add_value("d", vec![4, 2], DType::F32, ValueKind::Activation);
        let op2 = builders::unary(c, d, vec![4, 2], crate::Unary::Relu).unwrap();
        let n2 = g.add_node("relu", op2).unwrap();
        assert_eq!(g.last_use(c), Some(n2));
        assert_eq!(g.last_use(d), None);
    }
}
