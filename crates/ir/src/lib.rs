//! Tensor-expression IR for the T10 compiler.
//!
//! T10 (SOSP '24) represents a DNN as an *operator graph* in which every
//! operator is described by a *tensor expression* (paper §4.2): a statement of
//! how each output element is computed from input elements, indexed by a set
//! of named axes. For example a matrix multiplication is
//!
//! ```text
//! C[m, n] += A[m, k] * B[k, n]
//! ```
//!
//! where `m` and `n` are spatial axes and `k` is a reduction axis. Compound
//! axes such as the `h + kh` of a 2-D convolution (paper §5) are expressed as
//! affine index expressions.
//!
//! This crate provides:
//!
//! * [`DType`], [`expr::Axis`], [`expr::IndexExpr`], [`expr::TensorExpr`] —
//!   the expression language;
//! * [`op::Operator`] / [`graph::Graph`] — operators and whole-model graphs;
//! * [`tensor::Tensor`] — a dense host tensor used by the reference executor;
//! * [`reference`] — a naive, obviously-correct executor used as the ground
//!   truth for functional tests of compiled execution plans;
//! * [`builders`] — convenience constructors for all common DNN operators.

// Shapes, axis maps, and index expressions are validated when the
// `TensorExpr`/`Graph` is constructed; indexing after that point is
// bounds-correct by construction. The analysis crates (`t10-verify`,
// `t10-prove`) stay index-hardened; see the workspace lints.
#![allow(clippy::indexing_slicing)]
// Tests may unwrap freely; library code must not (workspace lint).
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod builders;
pub mod dtype;
pub mod error;
pub mod expr;
pub mod graph;
pub mod op;
pub mod reference;
pub mod tensor;
pub mod transform;

pub use dtype::DType;
pub use error::IrError;
pub use expr::{Axis, AxisId, AxisKind, IndexExpr, TensorExpr};
pub use graph::{Graph, Node, NodeId, ValueId, ValueInfo, ValueKind};
pub use op::{Combine, OpKind, Operator, Reduce, Unary};
pub use tensor::Tensor;

/// Result alias used throughout the IR crate.
pub type Result<T> = std::result::Result<T, IrError>;
