//! Reference executor: naive, obviously-correct operator evaluation.
//!
//! Compiled compute-shift plans are validated against this executor — for a
//! correct compiler, the distributed simulation must reproduce these results
//! bit-for-bit at f32 (the plans are lossless; paper §6.1 makes the same
//! argument for T10 vs PopART accuracy).

use crate::graph::{Graph, ValueId, ValueKind};
use crate::op::{Combine, OpKind, Operator};
use crate::tensor::Tensor;
use crate::{ir_err, Result};

/// Evaluates one operator on host tensors.
///
/// `inputs` must match the operator's input slots in order.
///
/// # Examples
///
/// ```
/// use t10_ir::{builders, reference, Tensor};
///
/// let op = builders::matmul(0, 1, 2, 2, 2, 2).unwrap();
/// let a = Tensor::from_data(vec![2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// let b = Tensor::from_data(vec![2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
/// let c = reference::execute(&op, &[&a, &b]).unwrap();
/// assert_eq!(c.data(), &[1.0, 2.0, 3.0, 4.0]);
/// ```
pub fn execute(op: &Operator, inputs: &[&Tensor]) -> Result<Tensor> {
    execute_shaped(op, inputs, None)
}

/// Evaluates one operator into an output of the given declared shape.
///
/// When `out_shape` exceeds the expression's written extent, the border
/// keeps the reduction identity — this realizes zero padding for "same"
/// convolutions whose producers write into the interior of a padded value.
pub fn execute_shaped(
    op: &Operator,
    inputs: &[&Tensor],
    out_shape: Option<&[usize]>,
) -> Result<Tensor> {
    if inputs.len() != op.expr.num_inputs() {
        return Err(ir_err!(
            "operator expects {} inputs, got {}",
            op.expr.num_inputs(),
            inputs.len()
        ));
    }
    for (slot, t) in inputs.iter().enumerate() {
        let expect = op.expr.input_shape(slot);
        let fits =
            t.shape().len() == expect.len() && t.shape().iter().zip(&expect).all(|(&s, &e)| s >= e);
        if !fits {
            return Err(ir_err!(
                "input {slot} has shape {:?}, expression accesses {:?}",
                t.shape(),
                expect
            ));
        }
    }
    if op.kind == OpKind::Gather {
        return execute_gather(op, inputs);
    }
    if op.has_indirect_access() {
        return Err(ir_err!("indirect access outside Gather is unsupported"));
    }
    if matches!(op.combine, Combine::Sub | Combine::Div | Combine::Max) && inputs.len() < 2 {
        return Err(ir_err!(
            "combine {:?} requires 2 inputs, got {}",
            op.combine,
            inputs.len()
        ));
    }

    let implied = op.expr.output_shape();
    let shape = match out_shape {
        Some(s) => {
            let fits = s.len() == implied.len() && s.iter().zip(&implied).all(|(&a, &b)| a >= b);
            if !fits {
                return Err(ir_err!(
                    "declared output shape {s:?} smaller than written extent {implied:?}"
                ));
            }
            s.to_vec()
        }
        None => implied,
    };
    let mut out = Tensor::fill(shape, op.reduce.identity());
    let sizes: Vec<usize> = op.expr.axes.iter().map(|a| a.size).collect();
    let mut idx = vec![0usize; sizes.len()];
    let mut in_pos: Vec<Vec<usize>> = op
        .expr
        .inputs
        .iter()
        .map(|dims| vec![0usize; dims.len()])
        .collect();
    let mut out_pos = vec![0usize; op.expr.output.len()];
    loop {
        for (slot, dims) in op.expr.inputs.iter().enumerate() {
            for (d, e) in dims.iter().enumerate() {
                in_pos[slot][d] = e.eval(&idx);
            }
        }
        for (d, e) in op.expr.output.iter().enumerate() {
            out_pos[d] = e.eval(&idx);
        }
        let v = combine_at(op, inputs, &in_pos);
        let off = out.offset(&out_pos);
        let cur = out.data()[off];
        out.data_mut()[off] = op.reduce.apply(cur, v);
        if !advance(&mut idx, &sizes) {
            break;
        }
    }
    finish(op, out)
}

fn combine_at(op: &Operator, inputs: &[&Tensor], pos: &[Vec<usize>]) -> f32 {
    let vals = || pos.iter().enumerate().map(|(slot, p)| inputs[slot].at(p));
    match op.combine {
        Combine::Mul => vals().product(),
        Combine::Add => vals().sum(),
        Combine::Sub => inputs[0].at(&pos[0]) - inputs[1].at(&pos[1]),
        Combine::Div => inputs[0].at(&pos[0]) / inputs[1].at(&pos[1]),
        Combine::Max => inputs[0].at(&pos[0]).max(inputs[1].at(&pos[1])),
        Combine::First => inputs[0].at(&pos[0]),
    }
}

fn execute_gather(op: &Operator, inputs: &[&Tensor]) -> Result<Tensor> {
    // Convention from builders::gather: input 0 is the table [V, D] with an
    // indirect dim 0, input 1 is the index vector [N], output is [N, D].
    if inputs.len() < 2 {
        return Err(ir_err!("gather requires 2 inputs, got {}", inputs.len()));
    }
    let table = inputs[0];
    let index = inputs[1];
    let out_shape = op.expr.output_shape();
    if out_shape.len() != 2 || table.shape().len() != 2 || index.shape().len() != 1 {
        return Err(ir_err!(
            "gather expects table [V, D], index [N], output [N, D]; \
             got table {:?}, index {:?}, output {:?}",
            table.shape(),
            index.shape(),
            out_shape
        ));
    }
    let (n, d) = (out_shape[0], out_shape[1]);
    let vocab = table.shape()[0];
    let mut out = Tensor::zeros(out_shape);
    for i in 0..n {
        let row = index.at(&[i]).round();
        if row < 0.0 || row as usize >= vocab {
            return Err(ir_err!("gather index {row} out of range 0..{vocab}"));
        }
        let row = row as usize;
        for j in 0..d {
            out.set(&[i, j], table.at(&[row, j]));
        }
    }
    finish(op, out)
}

fn finish(op: &Operator, mut out: Tensor) -> Result<Tensor> {
    if let Some(u) = op.unary {
        for v in out.data_mut() {
            *v = u.apply(*v);
        }
    }
    Ok(out)
}

fn advance(idx: &mut [usize], sizes: &[usize]) -> bool {
    for d in (0..idx.len()).rev() {
        idx[d] += 1;
        if idx[d] < sizes[d] {
            return true;
        }
        idx[d] = 0;
    }
    false
}

/// Evaluates a whole graph given bindings for inputs and weights.
///
/// Returns tensors for every graph value (activations included), so tests
/// can compare any intermediate against a compiled execution.
pub fn execute_graph(graph: &Graph, bindings: &[(ValueId, Tensor)]) -> Result<Vec<Option<Tensor>>> {
    let mut vals: Vec<Option<Tensor>> = vec![None; graph.values().len()];
    for (id, t) in bindings {
        let info = graph.value(*id);
        if t.shape() != info.shape.as_slice() {
            return Err(ir_err!(
                "binding for {} has shape {:?}, declared {:?}",
                info.name,
                t.shape(),
                info.shape
            ));
        }
        vals[*id] = Some(t.clone());
    }
    for (v, info) in graph.values().iter().enumerate() {
        if matches!(info.kind, ValueKind::Input | ValueKind::Weight) && vals[v].is_none() {
            // Deterministic default so tests need not bind every weight.
            vals[v] = Some(Tensor::pattern(info.shape.clone(), v as f32));
        }
    }
    for node in graph.nodes() {
        let ins: Vec<&Tensor> = node
            .op
            .inputs
            .iter()
            .map(|&v| {
                vals[v]
                    .as_ref()
                    .ok_or_else(|| ir_err!("node {}: input value {v} unavailable", node.name))
            })
            .collect::<Result<_>>()?;
        let declared = graph.value(node.op.output).shape.clone();
        let out = execute_shaped(&node.op, &ins, Some(&declared))?;
        vals[node.op.output] = Some(out);
    }
    Ok(vals)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builders::{self, Conv2dCfg};
    use crate::op::{Reduce, Unary};
    use crate::DType;

    #[test]
    fn matmul_matches_manual() {
        let op = builders::matmul(0, 1, 2, 2, 3, 2).unwrap();
        let a = Tensor::from_data(vec![2, 3], vec![1., 2., 3., 4., 5., 6.]).unwrap();
        let b = Tensor::from_data(vec![3, 2], vec![7., 8., 9., 10., 11., 12.]).unwrap();
        let c = execute(&op, &[&a, &b]).unwrap();
        assert_eq!(c.data(), &[58., 64., 139., 154.]);
    }

    #[test]
    fn conv2d_identity_kernel() {
        // 1x1 kernel with weight 1.0 reproduces the input.
        let cfg = Conv2dCfg {
            batch: 1,
            c_in: 1,
            c_out: 1,
            h_out: 3,
            w_out: 3,
            kh: 1,
            kw: 1,
            stride: 1,
        };
        let op = builders::conv2d(0, 1, 2, cfg).unwrap();
        let i = Tensor::pattern(vec![1, 1, 3, 3], 0.3);
        let k = Tensor::fill(vec![1, 1, 1, 1], 1.0);
        let o = execute(&op, &[&i, &k]).unwrap();
        assert_eq!(o.data(), i.data());
    }

    #[test]
    fn conv2d_sums_window() {
        // 2x2 all-ones kernel on a 3x3 input of ones gives 4.0 everywhere.
        let cfg = Conv2dCfg {
            batch: 1,
            c_in: 1,
            c_out: 1,
            h_out: 2,
            w_out: 2,
            kh: 2,
            kw: 2,
            stride: 1,
        };
        let op = builders::conv2d(0, 1, 2, cfg).unwrap();
        let i = Tensor::fill(vec![1, 1, 3, 3], 1.0);
        let k = Tensor::fill(vec![1, 1, 2, 2], 1.0);
        let o = execute(&op, &[&i, &k]).unwrap();
        assert!(o.data().iter().all(|&v| v == 4.0));
    }

    #[test]
    fn strided_conv_downsamples() {
        let cfg = Conv2dCfg {
            batch: 1,
            c_in: 1,
            c_out: 1,
            h_out: 2,
            w_out: 2,
            kh: 1,
            kw: 1,
            stride: 2,
        };
        let op = builders::conv2d(0, 1, 2, cfg).unwrap();
        let i =
            Tensor::from_data(vec![1, 1, 3, 3], vec![0., 1., 2., 3., 4., 5., 6., 7., 8.]).unwrap();
        let k = Tensor::fill(vec![1, 1, 1, 1], 1.0);
        let o = execute(&op, &[&i, &k]).unwrap();
        assert_eq!(o.data(), &[0., 2., 6., 8.]);
    }

    #[test]
    fn max_pool_takes_max() {
        let op = builders::max_pool2d(0, 1, 1, 1, 1, 1, 2, 2).unwrap();
        let i = Tensor::from_data(vec![1, 1, 2, 2], vec![1., 9., 3., 4.]).unwrap();
        let o = execute(&op, &[&i]).unwrap();
        assert_eq!(o.data(), &[9.]);
    }

    #[test]
    fn reduce_mean() {
        let op = builders::reduce_last(0, 1, vec![2], 4, Reduce::Sum, Some(0.25)).unwrap();
        let a = Tensor::from_data(vec![2, 4], vec![1., 2., 3., 4., 4., 4., 4., 4.]).unwrap();
        let o = execute(&op, &[&a]).unwrap();
        assert_eq!(o.data(), &[2.5, 4.0]);
    }

    #[test]
    fn gather_picks_rows() {
        let op = builders::gather(0, 1, 2, 4, 3, 2).unwrap();
        let table =
            Tensor::from_data(vec![4, 2], vec![0., 1., 10., 11., 20., 21., 30., 31.]).unwrap();
        let idx = Tensor::from_data(vec![3], vec![2., 0., 3.]).unwrap();
        let o = execute(&op, &[&table, &idx]).unwrap();
        assert_eq!(o.data(), &[20., 21., 0., 1., 30., 31.]);
    }

    #[test]
    fn gather_rejects_out_of_range() {
        let op = builders::gather(0, 1, 2, 4, 1, 2).unwrap();
        let table = Tensor::zeros(vec![4, 2]);
        let idx = Tensor::from_data(vec![1], vec![9.]).unwrap();
        assert!(execute(&op, &[&table, &idx]).is_err());
    }

    #[test]
    fn unary_epilogue_applies() {
        let op = builders::unary(0, 1, vec![3], Unary::Relu).unwrap();
        let a = Tensor::from_data(vec![3], vec![-1., 0., 2.]).unwrap();
        let o = execute(&op, &[&a]).unwrap();
        assert_eq!(o.data(), &[0., 0., 2.]);
    }

    #[test]
    fn rejects_wrong_input_count() {
        let op = builders::matmul(0, 1, 2, 2, 2, 2).unwrap();
        let a = Tensor::zeros(vec![2, 2]);
        assert!(execute(&op, &[&a]).is_err());
    }

    #[test]
    fn two_input_combine_on_single_input_is_typed_error() {
        // A hand-built (malformed) operator: unary expression but a combine
        // that reads a second input. Must error, not index out of bounds.
        let mut op = builders::unary(0, 1, vec![3], Unary::Relu).unwrap();
        op.combine = Combine::Sub;
        let a = Tensor::zeros(vec![3]);
        let err = execute(&op, &[&a]).unwrap_err();
        assert!(err.message().contains("requires 2 inputs"), "{err}");
    }

    #[test]
    fn gather_kind_on_malformed_expression_is_typed_error() {
        // Flipping an op's kind to Gather without the table/index structure
        // must error, not panic on missing inputs or ranks.
        let mut op = builders::unary(0, 1, vec![3], Unary::Relu).unwrap();
        op.kind = OpKind::Gather;
        let a = Tensor::zeros(vec![3]);
        let err = execute(&op, &[&a]).unwrap_err();
        assert!(err.message().contains("gather"), "{err}");
    }

    #[test]
    fn graph_execution_chains_ops() {
        let mut g = Graph::new("chain");
        let a = g.add_value("a", vec![2, 2], DType::F32, ValueKind::Input);
        let w = g.add_value("w", vec![2, 2], DType::F32, ValueKind::Weight);
        let h = g.add_value("h", vec![2, 2], DType::F32, ValueKind::Activation);
        let o = g.add_value("o", vec![2, 2], DType::F32, ValueKind::Output);
        g.add_node("mm", builders::matmul(a, w, h, 2, 2, 2).unwrap())
            .unwrap();
        g.add_node(
            "relu",
            builders::unary(h, o, vec![2, 2], Unary::Relu).unwrap(),
        )
        .unwrap();
        let at = Tensor::from_data(vec![2, 2], vec![1., -1., 2., 0.]).unwrap();
        let wt = Tensor::from_data(vec![2, 2], vec![1., 0., 0., 1.]).unwrap();
        let vals = execute_graph(&g, &[(a, at), (w, wt)]).unwrap();
        let out = vals[o].as_ref().unwrap();
        assert_eq!(out.data(), &[1., 0., 2., 0.]);
    }

    #[test]
    fn graph_execution_defaults_unbound_weights() {
        let mut g = Graph::new("chain");
        let a = g.add_value("a", vec![2, 2], DType::F32, ValueKind::Input);
        let w = g.add_value("w", vec![2, 2], DType::F32, ValueKind::Weight);
        let o = g.add_value("o", vec![2, 2], DType::F32, ValueKind::Output);
        g.add_node("mm", builders::matmul(a, w, o, 2, 2, 2).unwrap())
            .unwrap();
        let vals = execute_graph(&g, &[]).unwrap();
        assert!(vals[o].is_some());
    }
}
