//! Dense host tensors used by the reference executor and functional tests.

use serde::{Deserialize, Serialize};

use crate::{ir_err, Result};

/// A dense, row-major, f32 host tensor.
///
/// The simulator and reference executor compute in f32 regardless of the
/// declared on-device [`crate::DType`]; numeric checks compare plans against
/// the reference at f32 precision.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with `value`.
    pub fn fill(shape: Vec<usize>, value: f32) -> Self {
        let n = shape.iter().product();
        Self {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a zero tensor.
    pub fn zeros(shape: Vec<usize>) -> Self {
        Self::fill(shape, 0.0)
    }

    /// Creates a tensor from explicit data.
    pub fn from_data(shape: Vec<usize>, data: Vec<f32>) -> Result<Self> {
        let n: usize = shape.iter().product();
        if n != data.len() {
            return Err(ir_err!(
                "shape {:?} implies {} elements, got {}",
                shape,
                n,
                data.len()
            ));
        }
        Ok(Self { shape, data })
    }

    /// Creates a tensor with a deterministic pseudo-random pattern.
    ///
    /// Useful for reproducible functional tests without pulling a RNG into
    /// the library crate: element `i` is `sin(seed + 0.7i)`, bounded and
    /// non-repeating over typical test sizes.
    pub fn pattern(shape: Vec<usize>, seed: f32) -> Self {
        let n: usize = shape.iter().product();
        let data = (0..n).map(|i| (seed + 0.7 * i as f32).sin()).collect();
        Self { shape, data }
    }

    /// Dimension extents.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn elements(&self) -> usize {
        self.data.len()
    }

    /// Flat element slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat element slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Row-major flat offset of a multi-dimensional position.
    ///
    /// # Panics
    ///
    /// Panics if `pos` has the wrong rank or is out of bounds (programmer
    /// error in test/executor code).
    pub fn offset(&self, pos: &[usize]) -> usize {
        assert_eq!(pos.len(), self.shape.len(), "rank mismatch");
        let mut off = 0;
        for (d, (&p, &s)) in pos.iter().zip(&self.shape).enumerate() {
            assert!(p < s, "index {p} out of bounds for dim {d} of extent {s}");
            off = off * s + p;
        }
        off
    }

    /// Element at a multi-dimensional position.
    pub fn at(&self, pos: &[usize]) -> f32 {
        self.data[self.offset(pos)]
    }

    /// Sets the element at a multi-dimensional position.
    pub fn set(&mut self, pos: &[usize], v: f32) {
        let off = self.offset(pos);
        self.data[off] = v;
    }

    /// Maximum absolute difference against another tensor.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f32::max)
    }

    /// Whether all elements are within `tol` of `other`, with a relative
    /// allowance for large magnitudes.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        if self.shape != other.shape {
            return false;
        }
        self.data.iter().zip(&other.data).all(|(a, b)| {
            let scale = 1.0f32.max(a.abs()).max(b.abs());
            (a - b).abs() <= tol * scale
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_row_major() {
        let t = Tensor::zeros(vec![2, 3, 4]);
        assert_eq!(t.offset(&[0, 0, 0]), 0);
        assert_eq!(t.offset(&[0, 0, 3]), 3);
        assert_eq!(t.offset(&[0, 1, 0]), 4);
        assert_eq!(t.offset(&[1, 0, 0]), 12);
        assert_eq!(t.offset(&[1, 2, 3]), 23);
    }

    #[test]
    fn set_and_get() {
        let mut t = Tensor::zeros(vec![2, 2]);
        t.set(&[1, 0], 5.0);
        assert_eq!(t.at(&[1, 0]), 5.0);
        assert_eq!(t.at(&[0, 1]), 0.0);
    }

    #[test]
    fn from_data_validates_length() {
        assert!(Tensor::from_data(vec![2, 2], vec![1.0; 3]).is_err());
        assert!(Tensor::from_data(vec![2, 2], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn pattern_is_deterministic_and_bounded() {
        let a = Tensor::pattern(vec![10], 1.0);
        let b = Tensor::pattern(vec![10], 1.0);
        assert_eq!(a, b);
        assert!(a.data().iter().all(|v| v.abs() <= 1.0));
    }

    #[test]
    fn approx_eq_uses_relative_scale() {
        let a = Tensor::from_data(vec![1], vec![1000.0]).unwrap();
        let b = Tensor::from_data(vec![1], vec![1000.01]).unwrap();
        assert!(a.approx_eq(&b, 1e-4));
        assert!(!a.approx_eq(&b, 1e-8));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_panics() {
        let t = Tensor::zeros(vec![2, 2]);
        t.at(&[2, 0]);
    }
}
