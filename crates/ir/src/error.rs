//! Error type shared by the IR crate.

/// An error produced while constructing or evaluating IR objects.
///
/// The kinds mirror the compiler's typed taxonomy: shape/axis violations and
/// dangling references are distinguished so downstream layers can react
/// without string matching; everything else is `Invalid`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A shape, axis, or size constraint was violated.
    Shape { detail: String },
    /// A name or id referred to a value/node that does not exist.
    UnknownId { detail: String },
    /// Malformed expression, operator, or graph construction.
    Invalid { detail: String },
}

impl IrError {
    /// Creates an `Invalid` error (legacy constructor kept for `ir_err!`).
    pub fn new(message: impl Into<String>) -> Self {
        Self::Invalid {
            detail: message.into(),
        }
    }

    /// Creates a shape/axis violation.
    pub fn shape(detail: impl Into<String>) -> Self {
        Self::Shape {
            detail: detail.into(),
        }
    }

    /// Creates a dangling-reference error.
    pub fn unknown_id(detail: impl Into<String>) -> Self {
        Self::UnknownId {
            detail: detail.into(),
        }
    }

    /// The human-readable error message (without the "ir error:" prefix).
    pub fn message(&self) -> &str {
        match self {
            Self::Shape { detail } | Self::UnknownId { detail } | Self::Invalid { detail } => {
                detail
            }
        }
    }
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ir error: {}", self.message())
    }
}

impl std::error::Error for IrError {}

/// Builds an [`IrError`] from format arguments, mirroring `format!`.
#[macro_export]
macro_rules! ir_err {
    ($($arg:tt)*) => {
        $crate::IrError::new(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = IrError::new("bad axis");
        assert_eq!(e.to_string(), "ir error: bad axis");
        assert_eq!(e.message(), "bad axis");
    }

    #[test]
    fn macro_formats() {
        let e = ir_err!("axis {} too large", 3);
        assert_eq!(e.message(), "axis 3 too large");
    }

    #[test]
    fn kinds_are_distinguishable() {
        assert!(matches!(
            IrError::shape("rank mismatch"),
            IrError::Shape { .. }
        ));
        assert!(matches!(
            IrError::unknown_id("value v3"),
            IrError::UnknownId { .. }
        ));
    }
}
