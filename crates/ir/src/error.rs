//! Error type shared by the IR crate.

/// An error produced while constructing or evaluating IR objects.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IrError {
    message: String,
}

impl IrError {
    /// Creates a new error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The human-readable error message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for IrError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "ir error: {}", self.message)
    }
}

impl std::error::Error for IrError {}

/// Builds an [`IrError`] from format arguments, mirroring `format!`.
#[macro_export]
macro_rules! ir_err {
    ($($arg:tt)*) => {
        $crate::IrError::new(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_message() {
        let e = IrError::new("bad axis");
        assert_eq!(e.to_string(), "ir error: bad axis");
        assert_eq!(e.message(), "bad axis");
    }

    #[test]
    fn macro_formats() {
        let e = ir_err!("axis {} too large", 3);
        assert_eq!(e.message(), "axis 3 too large");
    }
}
