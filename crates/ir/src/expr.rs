//! Tensor expressions: axes and affine index expressions.
//!
//! A tensor expression (paper §4.2, Equation 1) describes one operator. Every
//! element of the output tensor is computed from input elements whose
//! positions are *affine* functions of a shared set of named axes, e.g.
//!
//! ```text
//! C[m, n]       += A[m, k]          * B[k, n]        (MatMul)
//! O[b, f, h, w] += I[b, c, h + kh, w + kw] * K[f, c, kh, kw]   (Conv2d)
//! ```
//!
//! The second example shows a *compound axis* (`h + kh`), which this module
//! represents as an [`IndexExpr`] with two [`AxisTerm`]s.

use serde::{Deserialize, Serialize};

use crate::{ir_err, Result};

/// Identifier of an axis within one operator's [`TensorExpr`].
pub type AxisId = usize;

/// Whether an axis appears in the output (spatial) or is reduced away.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AxisKind {
    /// The axis indexes the output tensor; iterations along it are
    /// independent.
    Spatial,
    /// The axis is summed (or max-ed) away; iterations along it accumulate
    /// into the same output element.
    Reduction,
}

/// A named iteration axis of an operator.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Axis {
    /// Human-readable name (`"m"`, `"k"`, `"kh"`, ...).
    pub name: String,
    /// Extent of the axis; iteration runs over `0..size`.
    pub size: usize,
    /// Spatial or reduction.
    pub kind: AxisKind,
}

impl Axis {
    /// Creates a spatial axis.
    pub fn spatial(name: impl Into<String>, size: usize) -> Self {
        Self {
            name: name.into(),
            size,
            kind: AxisKind::Spatial,
        }
    }

    /// Creates a reduction axis.
    pub fn reduction(name: impl Into<String>, size: usize) -> Self {
        Self {
            name: name.into(),
            size,
            kind: AxisKind::Reduction,
        }
    }
}

/// One `stride * axis` term of an affine index expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AxisTerm {
    /// The axis being referenced.
    pub axis: AxisId,
    /// Multiplier applied to the axis index (e.g. convolution stride).
    pub stride: usize,
}

/// An affine index expression addressing one dimension of a tensor.
///
/// The value of the expression for a given axis assignment `idx` is
/// `Σ term.stride * idx[term.axis]`. A dimension whose position depends on
/// *data* rather than axes (e.g. the row dimension of an embedding-gather
/// table) is marked *indirect* and carries its size explicitly.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IndexExpr {
    /// Affine terms; empty for indirect dimensions.
    pub terms: Vec<AxisTerm>,
    /// Constant offset added to the affine sum (crop/slice accesses).
    #[serde(default)]
    pub offset: usize,
    /// `Some(extent)` when the dimension is data-dependent (gather).
    pub indirect_size: Option<usize>,
}

impl IndexExpr {
    /// A single-axis expression with stride 1 — the common case.
    pub fn axis(axis: AxisId) -> Self {
        Self {
            terms: vec![AxisTerm { axis, stride: 1 }],
            offset: 0,
            indirect_size: None,
        }
    }

    /// A compound expression `Σ stride_i * axis_i` (e.g. `2*h + kh`).
    pub fn affine(terms: Vec<(AxisId, usize)>) -> Self {
        Self {
            terms: terms
                .into_iter()
                .map(|(axis, stride)| AxisTerm { axis, stride })
                .collect(),
            offset: 0,
            indirect_size: None,
        }
    }

    /// Adds a constant offset (e.g. `h + 2` for a crop).
    pub fn with_offset(mut self, offset: usize) -> Self {
        self.offset = offset;
        self
    }

    /// A data-dependent dimension of the given extent (gather tables).
    pub fn indirect(size: usize) -> Self {
        Self {
            terms: Vec::new(),
            offset: 0,
            indirect_size: Some(size),
        }
    }

    /// Whether this dimension is data-dependent.
    pub fn is_indirect(&self) -> bool {
        self.indirect_size.is_some()
    }

    /// Whether this expression is exactly one axis with stride 1 and no
    /// offset.
    pub fn single_axis(&self) -> Option<AxisId> {
        match (&self.terms[..], self.indirect_size, self.offset) {
            ([t], None, 0) if t.stride == 1 => Some(t.axis),
            _ => None,
        }
    }

    /// Evaluates the expression for a concrete axis assignment.
    ///
    /// Indirect dimensions evaluate to 0; the executor resolves them from
    /// index data separately.
    pub fn eval(&self, idx: &[usize]) -> usize {
        self.offset
            + self
                .terms
                .iter()
                .map(|t| t.stride * idx[t.axis])
                .sum::<usize>()
    }

    /// Extent of the tensor dimension addressed by this expression: the
    /// largest reachable index plus one.
    ///
    /// For affine expressions this is `offset + Σ stride*(size-1) + 1` (a
    /// `h + kh` window yields `H + KH - 1`, the familiar "valid" convolution
    /// input extent). A tensor may be larger than this along a dimension
    /// when a crop reads only a sub-range.
    pub fn dim_size(&self, axes: &[Axis]) -> usize {
        if let Some(size) = self.indirect_size {
            return size;
        }
        self.offset
            + self
                .terms
                .iter()
                .map(|t| t.stride * (axes[t.axis].size - 1))
                .sum::<usize>()
            + 1
    }
}

/// The access-pattern half of an operator: axes plus per-tensor index
/// expressions.
///
/// `inputs[i][d]` is the index expression for dimension `d` of input `i`;
/// `output[d]` likewise for the output. How the accessed elements are
/// *combined* (multiply-accumulate, max, ...) lives on
/// [`crate::op::Operator`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TensorExpr {
    /// Iteration axes of the operator.
    pub axes: Vec<Axis>,
    /// Per-input, per-dimension index expressions.
    pub inputs: Vec<Vec<IndexExpr>>,
    /// Per-dimension index expressions of the output.
    pub output: Vec<IndexExpr>,
}

impl TensorExpr {
    /// Creates and validates a tensor expression.
    ///
    /// Validation enforces the canonical form T10 relies on:
    /// every output dimension is a single spatial axis with stride 1, every
    /// spatial axis appears in exactly one output dimension, and all axis
    /// references are in range.
    pub fn new(
        axes: Vec<Axis>,
        inputs: Vec<Vec<IndexExpr>>,
        output: Vec<IndexExpr>,
    ) -> Result<Self> {
        let expr = Self {
            axes,
            inputs,
            output,
        };
        expr.validate()?;
        Ok(expr)
    }

    fn validate(&self) -> Result<()> {
        let n = self.axes.len();
        for dims in self.inputs.iter().chain(std::iter::once(&self.output)) {
            for e in dims {
                for t in &e.terms {
                    if t.axis >= n {
                        return Err(ir_err!("axis id {} out of range ({} axes)", t.axis, n));
                    }
                    if t.stride == 0 {
                        return Err(ir_err!("zero stride on axis {}", self.axes[t.axis].name));
                    }
                }
            }
        }
        let mut seen = vec![false; n];
        for (d, e) in self.output.iter().enumerate() {
            // Output dims are a single stride-1 axis, optionally with a
            // constant offset: `h + p` writes into the interior of a padded
            // output whose border keeps the init value (zero padding).
            let a = match (&e.terms[..], e.indirect_size) {
                ([t], None) if t.stride == 1 => t.axis,
                _ => {
                    return Err(ir_err!(
                        "output dim {d} must be a single stride-1 spatial axis"
                    ))
                }
            };
            if self.axes[a].kind != AxisKind::Spatial {
                return Err(ir_err!(
                    "output dim {d} uses reduction axis {}",
                    self.axes[a].name
                ));
            }
            if seen[a] {
                return Err(ir_err!(
                    "spatial axis {} appears in two output dims",
                    self.axes[a].name
                ));
            }
            seen[a] = true;
        }
        for (a, axis) in self.axes.iter().enumerate() {
            if axis.kind == AxisKind::Spatial && !seen[a] {
                return Err(ir_err!("spatial axis {} missing from output", axis.name));
            }
            if axis.size == 0 {
                return Err(ir_err!("axis {} has zero size", axis.name));
            }
        }
        Ok(())
    }

    /// Number of input tensors.
    pub fn num_inputs(&self) -> usize {
        self.inputs.len()
    }

    /// Shape of input `slot` implied by the axes.
    pub fn input_shape(&self, slot: usize) -> Vec<usize> {
        self.inputs[slot]
            .iter()
            .map(|e| e.dim_size(&self.axes))
            .collect()
    }

    /// Shape of the output implied by the axes.
    pub fn output_shape(&self) -> Vec<usize> {
        self.output.iter().map(|e| e.dim_size(&self.axes)).collect()
    }

    /// Axes that do **not** appear in any dimension of input `slot`.
    ///
    /// These are the axes along which the input's sub-tensors are *shared* by
    /// multiple sub-operators (paper §4.1): the number of cores sharing a
    /// sub-tensor is the product of the partition factors of these axes.
    pub fn axes_missing_from_input(&self, slot: usize) -> Vec<AxisId> {
        self.axes_missing(&self.inputs[slot])
    }

    /// Axes that do not appear in any output dimension (the reduction axes).
    pub fn axes_missing_from_output(&self) -> Vec<AxisId> {
        self.axes_missing(&self.output)
    }

    fn axes_missing(&self, dims: &[IndexExpr]) -> Vec<AxisId> {
        let mut present = vec![false; self.axes.len()];
        for e in dims {
            for t in &e.terms {
                present[t.axis] = true;
            }
        }
        (0..self.axes.len()).filter(|&a| !present[a]).collect()
    }

    /// Total number of iteration points (product of axis sizes).
    pub fn iteration_points(&self) -> u128 {
        self.axes.iter().map(|a| a.size as u128).product()
    }

    /// Looks up an axis id by name.
    pub fn axis_by_name(&self, name: &str) -> Option<AxisId> {
        self.axes.iter().position(|a| a.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul(m: usize, k: usize, n: usize) -> TensorExpr {
        TensorExpr::new(
            vec![
                Axis::spatial("m", m),
                Axis::reduction("k", k),
                Axis::spatial("n", n),
            ],
            vec![
                vec![IndexExpr::axis(0), IndexExpr::axis(1)],
                vec![IndexExpr::axis(1), IndexExpr::axis(2)],
            ],
            vec![IndexExpr::axis(0), IndexExpr::axis(2)],
        )
        .unwrap()
    }

    #[test]
    fn matmul_shapes() {
        let e = matmul(4, 5, 6);
        assert_eq!(e.input_shape(0), vec![4, 5]);
        assert_eq!(e.input_shape(1), vec![5, 6]);
        assert_eq!(e.output_shape(), vec![4, 6]);
    }

    #[test]
    fn matmul_missing_axes() {
        let e = matmul(4, 5, 6);
        assert_eq!(e.axes_missing_from_input(0), vec![2]); // A misses n
        assert_eq!(e.axes_missing_from_input(1), vec![0]); // B misses m
        assert_eq!(e.axes_missing_from_output(), vec![1]); // C misses k
    }

    #[test]
    fn compound_axis_dim_size() {
        // h + kh with H=8, KH=3 gives input extent 10.
        let axes = vec![Axis::spatial("h", 8), Axis::reduction("kh", 3)];
        let e = IndexExpr::affine(vec![(0, 1), (1, 1)]);
        assert_eq!(e.dim_size(&axes), 10);
        // Strided: 2*h + kh gives 2*7 + 2 + 1 = 17.
        let e2 = IndexExpr::affine(vec![(0, 2), (1, 1)]);
        assert_eq!(e2.dim_size(&axes), 17);
    }

    #[test]
    fn indirect_dim() {
        let e = IndexExpr::indirect(50_000);
        assert!(e.is_indirect());
        assert_eq!(e.dim_size(&[]), 50_000);
        assert_eq!(e.single_axis(), None);
    }

    #[test]
    fn eval_affine() {
        let e = IndexExpr::affine(vec![(0, 2), (1, 1)]);
        assert_eq!(e.eval(&[3, 4]), 10);
    }

    #[test]
    fn rejects_reduction_axis_in_output() {
        let r = TensorExpr::new(
            vec![Axis::reduction("k", 4)],
            vec![vec![IndexExpr::axis(0)]],
            vec![IndexExpr::axis(0)],
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_missing_spatial_axis() {
        let r = TensorExpr::new(
            vec![Axis::spatial("m", 4), Axis::spatial("n", 4)],
            vec![vec![IndexExpr::axis(0), IndexExpr::axis(1)]],
            vec![IndexExpr::axis(0)],
        );
        assert!(r.is_err());
    }

    #[test]
    fn rejects_out_of_range_axis() {
        let r = TensorExpr::new(
            vec![Axis::spatial("m", 4)],
            vec![vec![IndexExpr::axis(3)]],
            vec![IndexExpr::axis(0)],
        );
        assert!(r.is_err());
    }

    #[test]
    fn axis_lookup() {
        let e = matmul(2, 3, 4);
        assert_eq!(e.axis_by_name("k"), Some(1));
        assert_eq!(e.axis_by_name("zz"), None);
        assert_eq!(e.iteration_points(), 24);
    }
}
