//! Element data types supported by the IR.

use serde::{Deserialize, Serialize};

/// Element type of a tensor.
///
/// The evaluation in the paper uses FP16 on both the IPU and the A100
/// (§6.6); FP32 and I32 are used by a few auxiliary tensors (e.g. gather
/// indices).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DType {
    /// 16-bit IEEE floating point.
    F16,
    /// 32-bit IEEE floating point.
    F32,
    /// 32-bit signed integer (gather indices, masks).
    I32,
}

impl DType {
    /// Size of one element in bytes.
    ///
    /// # Examples
    ///
    /// ```
    /// use t10_ir::DType;
    /// assert_eq!(DType::F16.bytes(), 2);
    /// assert_eq!(DType::F32.bytes(), 4);
    /// ```
    pub const fn bytes(self) -> usize {
        match self {
            DType::F16 => 2,
            DType::F32 => 4,
            DType::I32 => 4,
        }
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DType::F16 => "f16",
            DType::F32 => "f32",
            DType::I32 => "i32",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_sizes() {
        assert_eq!(DType::F16.bytes(), 2);
        assert_eq!(DType::F32.bytes(), 4);
        assert_eq!(DType::I32.bytes(), 4);
    }

    #[test]
    fn display_names() {
        assert_eq!(DType::F16.to_string(), "f16");
        assert_eq!(DType::F32.to_string(), "f32");
        assert_eq!(DType::I32.to_string(), "i32");
    }
}
