//! Operators: a tensor expression plus combine/reduce/unary semantics.

use serde::{Deserialize, Serialize};

use crate::expr::TensorExpr;
use crate::graph::ValueId;

/// Broad operator family, used to select cost-model coefficients
/// (paper §4.3.1 fits one model per operator type) and code templates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OpKind {
    /// Dense matrix multiplication (possibly batched).
    MatMul,
    /// 2-D convolution with compound axes.
    Conv2d,
    /// Element-wise unary or binary arithmetic.
    Elementwise,
    /// Reduction along one or more axes (sum/max/mean building blocks).
    Reduce,
    /// Max/avg pooling (windowed reduce with compound axes).
    Pool,
    /// Embedding-style gather with a data-dependent table dimension.
    Gather,
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpKind::MatMul => "MatMul",
            OpKind::Conv2d => "Conv2d",
            OpKind::Elementwise => "Elementwise",
            OpKind::Reduce => "Reduce",
            OpKind::Pool => "Pool",
            OpKind::Gather => "Gather",
        };
        f.write_str(s)
    }
}

/// How elements drawn from the inputs are combined at one iteration point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Combine {
    /// Product of all inputs (the `*` of `A[m,k] * B[k,n]`).
    Mul,
    /// Sum of all inputs.
    Add,
    /// Difference `in0 - in1` (binary only).
    Sub,
    /// Quotient `in0 / in1` (binary only).
    Div,
    /// Larger of `in0`, `in1` (binary only).
    Max,
    /// The first input alone (unary pass-through; `Reduce`/`Pool`/`Gather`).
    First,
}

impl Combine {
    /// Combines the per-input element values drawn at one iteration point.
    ///
    /// # Panics
    ///
    /// Panics if a binary combine receives fewer than two values
    /// (programmer error in executor code).
    pub fn apply(self, vals: &[f32]) -> f32 {
        match self {
            Combine::Mul => vals.iter().product(),
            Combine::Add => vals.iter().sum(),
            Combine::Sub => vals[0] - vals[1],
            Combine::Div => vals[0] / vals[1],
            Combine::Max => vals[0].max(vals[1]),
            Combine::First => vals[0],
        }
    }
}

/// How iteration points that map to the same output element are merged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Reduce {
    /// Accumulate by addition (identity 0).
    Sum,
    /// Keep the maximum (identity -inf).
    Max,
}

impl Reduce {
    /// Identity element of the reduction.
    pub fn identity(self) -> f32 {
        match self {
            Reduce::Sum => 0.0,
            Reduce::Max => f32::NEG_INFINITY,
        }
    }

    /// Applies the reduction to an accumulator.
    pub fn apply(self, acc: f32, v: f32) -> f32 {
        match self {
            Reduce::Sum => acc + v,
            Reduce::Max => acc.max(v),
        }
    }
}

/// Element-wise function applied to the finished output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Unary {
    /// Rectified linear unit.
    Relu,
    /// Gaussian error linear unit (tanh approximation).
    Gelu,
    /// Natural exponential.
    Exp,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Reciprocal square root of `x + eps`.
    Rsqrt {
        /// Numerical-stability epsilon added before the square root.
        eps: f32,
    },
    /// Multiplication by a compile-time constant (scaling, mean division).
    Scale(f32),
}

impl Unary {
    /// Applies the function to one element.
    pub fn apply(self, x: f32) -> f32 {
        match self {
            Unary::Relu => x.max(0.0),
            Unary::Gelu => {
                let c = (2.0f32 / std::f32::consts::PI).sqrt();
                0.5 * x * (1.0 + (c * (x + 0.044715 * x * x * x)).tanh())
            }
            Unary::Exp => x.exp(),
            Unary::Tanh => x.tanh(),
            Unary::Sigmoid => 1.0 / (1.0 + (-x).exp()),
            Unary::Rsqrt { eps } => 1.0 / (x + eps).sqrt(),
            Unary::Scale(s) => x * s,
        }
    }
}

/// A complete operator: expression, semantics, and graph connectivity.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Operator {
    /// Operator family.
    pub kind: OpKind,
    /// Axes and access patterns.
    pub expr: TensorExpr,
    /// How input elements combine at one iteration point.
    pub combine: Combine,
    /// How iteration points merge into an output element.
    pub reduce: Reduce,
    /// Optional element-wise epilogue.
    pub unary: Option<Unary>,
    /// Graph values feeding each input slot.
    pub inputs: Vec<ValueId>,
    /// Graph value produced.
    pub output: ValueId,
}

impl Operator {
    /// Floating-point operations performed by the operator.
    ///
    /// Multiply-accumulate expressions count 2 FLOPs per iteration point;
    /// everything else counts 1.
    pub fn flops(&self) -> u128 {
        let per_point = if self.combine == Combine::Mul && self.expr.num_inputs() > 1 {
            2
        } else {
            1
        };
        self.expr.iteration_points() * per_point
    }

    /// Whether any input dimension is data-dependent.
    pub fn has_indirect_access(&self) -> bool {
        self.expr.inputs.iter().flatten().any(|e| e.is_indirect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduce_identity_and_apply() {
        assert_eq!(Reduce::Sum.identity(), 0.0);
        assert_eq!(Reduce::Sum.apply(1.5, 2.0), 3.5);
        assert_eq!(Reduce::Max.apply(1.5, 2.0), 2.0);
        assert!(Reduce::Max.identity().is_infinite());
    }

    #[test]
    fn unary_relu_and_scale() {
        assert_eq!(Unary::Relu.apply(-3.0), 0.0);
        assert_eq!(Unary::Relu.apply(3.0), 3.0);
        assert_eq!(Unary::Scale(0.5).apply(4.0), 2.0);
    }

    #[test]
    fn unary_gelu_is_close_to_half_x_at_zero() {
        assert!(Unary::Gelu.apply(0.0).abs() < 1e-6);
        // GELU(large x) ≈ x.
        assert!((Unary::Gelu.apply(10.0) - 10.0).abs() < 1e-3);
    }

    #[test]
    fn unary_rsqrt() {
        let r = Unary::Rsqrt { eps: 0.0 }.apply(4.0);
        assert!((r - 0.5).abs() < 1e-6);
    }

    #[test]
    fn opkind_display() {
        assert_eq!(OpKind::MatMul.to_string(), "MatMul");
        assert_eq!(OpKind::Gather.to_string(), "Gather");
    }
}
