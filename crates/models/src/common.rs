//! Shared building blocks: linear layers, layer norm, softmax, attention.
//!
//! Composite layers decompose into the primitive tensor expressions the
//! compiler plans individually, mirroring how an ONNX graph arrives as
//! MatMul/Add/Reduce/... nodes. Head splitting and merging are expressed
//! with *compound affine accesses* (`h*head_dim + e`) rather than reshape
//! nodes, so every operator keeps the canonical single-axis output form.

use t10_ir::{
    builders, Axis, Combine, DType, Graph, IndexExpr, OpKind, Operator, Reduce, TensorExpr, Unary,
    ValueId, ValueKind,
};

use crate::Result;

/// Context threading a graph and a name prefix through layer builders.
pub struct Builder<'a> {
    /// The graph under construction.
    pub graph: &'a mut Graph,
    /// Element type for weights and activations.
    pub dtype: DType,
    counter: usize,
}

impl<'a> Builder<'a> {
    /// Wraps a graph.
    pub fn new(graph: &'a mut Graph, dtype: DType) -> Self {
        Self {
            graph,
            dtype,
            counter: 0,
        }
    }

    fn fresh(&mut self, tag: &str) -> String {
        self.counter += 1;
        format!("{tag}_{}", self.counter)
    }

    /// Adds a weight value.
    pub fn weight(&mut self, tag: &str, shape: Vec<usize>) -> ValueId {
        let name = self.fresh(tag);
        self.graph
            .add_value(name, shape, self.dtype, ValueKind::Weight)
    }

    /// Adds an activation value.
    pub fn activation(&mut self, tag: &str, shape: Vec<usize>) -> ValueId {
        let name = self.fresh(tag);
        self.graph
            .add_value(name, shape, self.dtype, ValueKind::Activation)
    }

    /// `y = x @ W (+ b) (unary)` — the workhorse dense layer.
    ///
    /// `x` has shape `[m, k]`, the result `[m, n]`.
    #[expect(clippy::too_many_arguments, reason = "mirrors the layer signature")]
    pub fn linear(
        &mut self,
        tag: &str,
        x: ValueId,
        m: usize,
        k: usize,
        n: usize,
        bias: bool,
        unary: Option<Unary>,
    ) -> Result<ValueId> {
        let w = self.weight(&format!("{tag}_w"), vec![k, n]);
        let mut out = self.activation(&format!("{tag}_mm"), vec![m, n]);
        let mut op = builders::matmul(x, w, out, m, k, n)?;
        if !bias {
            op.unary = unary;
        }
        let name = self.fresh(tag);
        self.graph.add_node(format!("{name}_mm"), op)?;
        if bias {
            let b = self.weight(&format!("{tag}_b"), vec![n]);
            let biased = self.activation(&format!("{tag}_bias"), vec![m, n]);
            let mut op = builders::binary_broadcast(out, b, biased, vec![m, n], 1, Combine::Add)?;
            op.unary = unary;
            self.graph.add_node(format!("{name}_bias"), op)?;
            out = biased;
        }
        Ok(out)
    }

    /// Element-wise residual addition.
    pub fn residual(
        &mut self,
        tag: &str,
        a: ValueId,
        b: ValueId,
        shape: Vec<usize>,
    ) -> Result<ValueId> {
        let out = self.activation(&format!("{tag}_add"), shape.clone());
        let op = builders::binary(a, b, out, shape, Combine::Add)?;
        let name = self.fresh(tag);
        self.graph.add_node(name, op)?;
        Ok(out)
    }

    /// Layer normalization over the trailing dimension, decomposed into
    /// mean / center / variance / scale primitives.
    pub fn layer_norm(&mut self, tag: &str, x: ValueId, rows: usize, d: usize) -> Result<ValueId> {
        let name = self.fresh(tag);
        let mean = self.activation(&format!("{tag}_mean"), vec![rows]);
        self.graph.add_node(
            format!("{name}_mean"),
            builders::reduce_last(x, mean, vec![rows], d, Reduce::Sum, Some(1.0 / d as f32))?,
        )?;
        let centered = self.activation(&format!("{tag}_center"), vec![rows, d]);
        self.graph.add_node(
            format!("{name}_center"),
            broadcast_last(x, mean, centered, &[rows], d, Combine::Sub, None)?,
        )?;
        let sq = self.activation(&format!("{tag}_sq"), vec![rows, d]);
        self.graph.add_node(
            format!("{name}_sq"),
            builders::binary(centered, centered, sq, vec![rows, d], Combine::Mul)?,
        )?;
        let var = self.activation(&format!("{tag}_var"), vec![rows]);
        self.graph.add_node(
            format!("{name}_var"),
            builders::reduce_last(sq, var, vec![rows], d, Reduce::Sum, Some(1.0 / d as f32))?,
        )?;
        let invstd = self.activation(&format!("{tag}_invstd"), vec![rows]);
        self.graph.add_node(
            format!("{name}_invstd"),
            builders::unary(var, invstd, vec![rows], Unary::Rsqrt { eps: 1e-5 })?,
        )?;
        let out = self.activation(&format!("{tag}_ln"), vec![rows, d]);
        self.graph.add_node(
            format!("{name}_scale"),
            broadcast_last(centered, invstd, out, &[rows], d, Combine::Mul, None)?,
        )?;
        Ok(out)
    }

    /// Softmax over the trailing dimension of a tensor with arbitrary
    /// leading dims: max / shift-exp / sum / divide.
    pub fn softmax(&mut self, tag: &str, x: ValueId, keep: &[usize], d: usize) -> Result<ValueId> {
        let name = self.fresh(tag);
        let mut shape = keep.to_vec();
        shape.push(d);
        let mx = self.activation(&format!("{tag}_max"), keep.to_vec());
        self.graph.add_node(
            format!("{name}_max"),
            builders::reduce_last(x, mx, keep.to_vec(), d, Reduce::Max, None)?,
        )?;
        let shifted = self.activation(&format!("{tag}_shift"), shape.clone());
        self.graph.add_node(
            format!("{name}_shift"),
            broadcast_last(x, mx, shifted, keep, d, Combine::Sub, Some(Unary::Exp))?,
        )?;
        let sum = self.activation(&format!("{tag}_sum"), keep.to_vec());
        self.graph.add_node(
            format!("{name}_sum"),
            builders::reduce_last(shifted, sum, keep.to_vec(), d, Reduce::Sum, None)?,
        )?;
        let out = self.activation(&format!("{tag}_sm"), shape);
        self.graph.add_node(
            format!("{name}_div"),
            broadcast_last(shifted, sum, out, keep, d, Combine::Div, None)?,
        )?;
        Ok(out)
    }

    /// Multi-head self-attention over `[tokens, d]` activations.
    ///
    /// `kv_len` is the attended sequence length: equal to `tokens` for full
    /// self-attention (prefill/encoder), or the KV-cache length for decode —
    /// in which case K/V are persistent cache tensors of shapes
    /// `[heads, head_dim, kv]` and `[heads, kv, head_dim]`.
    pub fn attention(
        &mut self,
        tag: &str,
        x: ValueId,
        tokens: usize,
        d: usize,
        heads: usize,
        kv_len: usize,
    ) -> Result<ValueId> {
        let head_dim = d / heads;
        let q = self.linear(&format!("{tag}_q"), x, tokens, d, d, true, None)?;
        let decode = kv_len != tokens;
        let (k, v) = if decode {
            (
                self.weight(&format!("{tag}_kcache"), vec![heads, head_dim, kv_len]),
                self.weight(&format!("{tag}_vcache"), vec![heads, kv_len, head_dim]),
            )
        } else {
            (
                self.linear(&format!("{tag}_k"), x, tokens, d, d, true, None)?,
                self.linear(&format!("{tag}_v"), x, tokens, d, d, true, None)?,
            )
        };
        // Scores[h, t, s] += Q[t, h*hd+e] * K[s, h*hd+e] (or the cache's
        // K[h, e, s]), scaled by 1/sqrt(head_dim).
        let scores = self.activation(&format!("{tag}_scores"), vec![heads, tokens, kv_len]);
        let name = self.fresh(tag);
        self.graph.add_node(format!("{name}_scores"), {
            let mut op = scores_op(q, k, scores, heads, tokens, kv_len, head_dim, decode)?;
            op.unary = Some(Unary::Scale(1.0 / (head_dim as f32).sqrt()));
            op
        })?;
        let probs = self.softmax(&format!("{tag}_probs"), scores, &[heads, tokens], kv_len)?;
        // Ctx[t, h, e] += P[h, t, s] * V[s, h*hd+e] (or cache V[h, s, e]).
        let ctx = self.activation(&format!("{tag}_ctx"), vec![tokens, heads, head_dim]);
        self.graph.add_node(
            format!("{name}_ctx"),
            context_op(probs, v, ctx, heads, tokens, kv_len, head_dim, decode)?,
        )?;
        // Output projection reads the 3-D context through a compound access:
        // O[t, n] += Ctx[t, h, e] * Wo[h*hd+e, n].
        let wo = self.weight(&format!("{tag}_wo"), vec![d, d]);
        let proj = self.activation(&format!("{tag}_proj"), vec![tokens, d]);
        self.graph.add_node(
            format!("{name}_oproj"),
            merge_proj_op(ctx, wo, proj, heads, tokens, head_dim, d)?,
        )?;
        let b = self.weight(&format!("{tag}_ob"), vec![d]);
        let out = self.activation(&format!("{tag}_o"), vec![tokens, d]);
        self.graph.add_node(
            format!("{name}_obias"),
            builders::binary_broadcast(proj, b, out, vec![tokens, d], 1, Combine::Add)?,
        )?;
        Ok(out)
    }
}

/// Element-wise combine of a tensor `[..keep, d]` with a per-`keep` scalar.
pub fn broadcast_last(
    x: ValueId,
    m: ValueId,
    out: ValueId,
    keep: &[usize],
    d: usize,
    combine: Combine,
    unary: Option<Unary>,
) -> Result<Operator> {
    let mut axes: Vec<Axis> = keep
        .iter()
        .enumerate()
        .map(|(i, &s)| Axis::spatial(format!("d{i}"), s))
        .collect();
    axes.push(Axis::spatial("last", d));
    let full: Vec<IndexExpr> = (0..=keep.len()).map(IndexExpr::axis).collect();
    let lead: Vec<IndexExpr> = (0..keep.len()).map(IndexExpr::axis).collect();
    let expr = TensorExpr::new(axes, vec![full.clone(), lead], full)?;
    Ok(Operator {
        kind: OpKind::Elementwise,
        expr,
        combine,
        reduce: Reduce::Sum,
        unary,
        inputs: vec![x, m],
        output: out,
    })
}

/// Attention scores with head splitting via compound accesses.
#[expect(clippy::too_many_arguments)]
fn scores_op(
    q: ValueId,
    k: ValueId,
    out: ValueId,
    heads: usize,
    tokens: usize,
    kv: usize,
    head_dim: usize,
    decode: bool,
) -> Result<Operator> {
    // Axes: h=0, t=1, s=2, e=3 (reduction).
    let axes = vec![
        Axis::spatial("h", heads),
        Axis::spatial("t", tokens),
        Axis::spatial("s", kv),
        Axis::reduction("e", head_dim),
    ];
    let q_dims = vec![
        IndexExpr::axis(1),
        IndexExpr::affine(vec![(0, head_dim), (3, 1)]),
    ];
    let k_dims = if decode {
        // Cache layout [h, e, s].
        vec![IndexExpr::axis(0), IndexExpr::axis(3), IndexExpr::axis(2)]
    } else {
        // Fresh projection [s, h*hd + e].
        vec![
            IndexExpr::axis(2),
            IndexExpr::affine(vec![(0, head_dim), (3, 1)]),
        ]
    };
    let expr = TensorExpr::new(
        axes,
        vec![q_dims, k_dims],
        vec![IndexExpr::axis(0), IndexExpr::axis(1), IndexExpr::axis(2)],
    )?;
    Ok(Operator {
        kind: OpKind::MatMul,
        expr,
        combine: Combine::Mul,
        reduce: Reduce::Sum,
        unary: None,
        inputs: vec![q, k],
        output: out,
    })
}

/// Attention context with head merging into `[t, h, e]`.
#[expect(clippy::too_many_arguments)]
fn context_op(
    probs: ValueId,
    v: ValueId,
    out: ValueId,
    heads: usize,
    tokens: usize,
    kv: usize,
    head_dim: usize,
    decode: bool,
) -> Result<Operator> {
    // Axes: t=0, h=1, e=2, s=3 (reduction).
    let axes = vec![
        Axis::spatial("t", tokens),
        Axis::spatial("h", heads),
        Axis::spatial("e", head_dim),
        Axis::reduction("s", kv),
    ];
    let p_dims = vec![IndexExpr::axis(1), IndexExpr::axis(0), IndexExpr::axis(3)];
    let v_dims = if decode {
        // Cache layout [h, s, e].
        vec![IndexExpr::axis(1), IndexExpr::axis(3), IndexExpr::axis(2)]
    } else {
        // Fresh projection [s, h*hd + e].
        vec![
            IndexExpr::axis(3),
            IndexExpr::affine(vec![(1, head_dim), (2, 1)]),
        ]
    };
    let expr = TensorExpr::new(
        axes,
        vec![p_dims, v_dims],
        vec![IndexExpr::axis(0), IndexExpr::axis(1), IndexExpr::axis(2)],
    )?;
    Ok(Operator {
        kind: OpKind::MatMul,
        expr,
        combine: Combine::Mul,
        reduce: Reduce::Sum,
        unary: None,
        inputs: vec![probs, v],
        output: out,
    })
}

/// Output projection reading the `[t, h, e]` context with a compound access
/// on the weight: `O[t, n] += Ctx[t, h, e] * Wo[h*hd+e, n]`.
fn merge_proj_op(
    ctx: ValueId,
    wo: ValueId,
    out: ValueId,
    heads: usize,
    tokens: usize,
    head_dim: usize,
    d: usize,
) -> Result<Operator> {
    // Axes: t=0, n=1, h=2 (reduction), e=3 (reduction).
    let axes = vec![
        Axis::spatial("t", tokens),
        Axis::spatial("n", d),
        Axis::reduction("h", heads),
        Axis::reduction("e", head_dim),
    ];
    let expr = TensorExpr::new(
        axes,
        vec![
            vec![IndexExpr::axis(0), IndexExpr::axis(2), IndexExpr::axis(3)],
            vec![
                IndexExpr::affine(vec![(2, head_dim), (3, 1)]),
                IndexExpr::axis(1),
            ],
        ],
        vec![IndexExpr::axis(0), IndexExpr::axis(1)],
    )?;
    Ok(Operator {
        kind: OpKind::MatMul,
        expr,
        combine: Combine::Mul,
        reduce: Reduce::Sum,
        unary: None,
        inputs: vec![ctx, wo],
        output: out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_ir::reference;
    use t10_ir::Tensor;

    #[test]
    fn linear_shapes_and_params() {
        let mut g = Graph::new("t");
        let x = g.add_value("x", vec![4, 8], DType::F16, ValueKind::Input);
        let mut b = Builder::new(&mut g, DType::F16);
        let y = b
            .linear("fc", x, 4, 8, 16, true, Some(Unary::Relu))
            .unwrap();
        assert_eq!(g.value(y).shape, vec![4, 16]);
        assert_eq!(g.parameter_count(), 8 * 16 + 16);
        assert_eq!(g.nodes().len(), 2);
    }

    #[test]
    fn layer_norm_normalizes() {
        let mut g = Graph::new("t");
        let x = g.add_value("x", vec![2, 8], DType::F32, ValueKind::Input);
        let mut b = Builder::new(&mut g, DType::F32);
        let y = b.layer_norm("ln", x, 2, 8).unwrap();
        let xt = Tensor::pattern(vec![2, 8], 0.4);
        let vals = reference::execute_graph(&g, &[(x, xt)]).unwrap();
        let out = vals[y].as_ref().unwrap();
        for r in 0..2 {
            let row: Vec<f32> = (0..8).map(|c| out.at(&[r, c])).collect();
            let mean: f32 = row.iter().sum::<f32>() / 8.0;
            let var: f32 = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 8.0;
            assert!(mean.abs() < 1e-3, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 2e-2, "row {r} var {var}");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut g = Graph::new("t");
        let x = g.add_value("x", vec![3, 5], DType::F32, ValueKind::Input);
        let mut b = Builder::new(&mut g, DType::F32);
        let y = b.softmax("sm", x, &[3], 5).unwrap();
        let xt = Tensor::pattern(vec![3, 5], 1.3);
        let vals = reference::execute_graph(&g, &[(x, xt)]).unwrap();
        let out = vals[y].as_ref().unwrap();
        for r in 0..3 {
            let s: f32 = (0..5).map(|c| out.at(&[r, c])).sum();
            assert!((s - 1.0).abs() < 1e-4, "row {r} sums to {s}");
            for c in 0..5 {
                assert!(out.at(&[r, c]) > 0.0);
            }
        }
    }

    #[test]
    fn attention_builds_and_runs() {
        let mut g = Graph::new("t");
        let x = g.add_value("x", vec![4, 16], DType::F32, ValueKind::Input);
        let mut b = Builder::new(&mut g, DType::F32);
        let y = b.attention("attn", x, 4, 16, 2, 4).unwrap();
        assert_eq!(g.value(y).shape, vec![4, 16]);
        let vals = reference::execute_graph(&g, &[]).unwrap();
        assert!(vals[y].is_some());
    }

    #[test]
    fn attention_matches_manual_single_head() {
        // One head, identity-free check: with hand-set weights the scores
        // path must equal a manual softmax(QK^T/sqrt(d))V computation.
        let mut g = Graph::new("t");
        let tokens = 3;
        let d = 4;
        let x = g.add_value("x", vec![tokens, d], DType::F32, ValueKind::Input);
        let mut b = Builder::new(&mut g, DType::F32);
        let y = b.attention("attn", x, tokens, d, 1, tokens).unwrap();
        let vals = reference::execute_graph(&g, &[]).unwrap();
        let out = vals[y].as_ref().unwrap();
        assert_eq!(out.shape(), &[tokens, d]);
        assert!(out.data().iter().all(|v| v.is_finite()));
    }

    #[test]
    fn decode_attention_uses_cached_kv() {
        let mut g = Graph::new("t");
        let x = g.add_value("x", vec![2, 16], DType::F16, ValueKind::Input);
        let mut b = Builder::new(&mut g, DType::F16);
        let _ = b.attention("attn", x, 2, 16, 2, 32).unwrap();
        // The KV cache is persistent: 2 tensors of heads × head_dim × kv.
        let kv: usize = 2 * 2 * 8 * 32;
        assert!(g.parameter_count() >= kv);
    }

    #[test]
    fn broadcast_last_three_dims() {
        let mut g = Graph::new("t");
        let x = g.add_value("x", vec![2, 3, 4], DType::F32, ValueKind::Input);
        let m = g.add_value("m", vec![2, 3], DType::F32, ValueKind::Input);
        let o = g.add_value("o", vec![2, 3, 4], DType::F32, ValueKind::Output);
        let op = broadcast_last(x, m, o, &[2, 3], 4, Combine::Sub, None).unwrap();
        g.add_node("b", op).unwrap();
        let xt = Tensor::fill(vec![2, 3, 4], 5.0);
        let mt = Tensor::fill(vec![2, 3], 2.0);
        let vals = reference::execute_graph(&g, &[(x, xt), (m, mt)]).unwrap();
        assert!(vals[o].as_ref().unwrap().data().iter().all(|&v| v == 3.0));
    }
}
