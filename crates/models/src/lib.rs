//! The model zoo of the T10 evaluation (paper Table 2).
//!
//! Programmatic builders for every network the paper evaluates, with the
//! published parameter counts:
//!
//! | Model    | Description                    | Parameters   |
//! |----------|--------------------------------|--------------|
//! | BERT     | NLP transformer                | 340 M        |
//! | ViT      | Vision transformer             | 86 M         |
//! | ResNet   | CNN (ResNet-18)                | 11 M         |
//! | NeRF     | 3-D scene-synthesis MLP        | ≈ 24 K       |
//! | OPT      | LLM decode layers              | 1.3 B – 13 B |
//! | Llama2   | LLM decode layers              | 7 B – 13 B   |
//! | RetNet   | Retentive-network decode layers| 1.3 B        |
//!
//! All builders produce [`t10_ir::Graph`]s whose operators use the canonical
//! tensor expressions the compiler understands. The paper's ONNX frontend is
//! replaced by these builders (hardware-gate substitution in `DESIGN.md`);
//! the shapes and parameter counts are what define the evaluation.

// Model builders index shapes they themselves declare a line above.
// The analysis crates (`t10-verify`, `t10-prove`) stay index-hardened.
#![allow(clippy::indexing_slicing)]
// Tests may unwrap freely; library code must not (workspace lint).
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod common;
pub mod llm;
pub mod nerf;
pub mod resnet;
pub mod textfmt;
pub mod transformer;
pub mod zoo;

pub use zoo::{all_models, ModelSpec};

/// Result alias reusing the IR error type.
pub type Result<T> = std::result::Result<T, t10_ir::IrError>;
