//! Encoder transformers: BERT-Large and ViT-Base (Table 2).
//!
//! BERT-Large: 24 layers, hidden 1024, 16 heads, FFN 4096, WordPiece
//! embedding over a 30,522-token vocabulary (the gather operator that
//! dominates Figure 18's `GatherV2` search space). ≈ 340 M parameters.
//!
//! ViT-Base: 16×16 patch embedding of a 224×224 image, 12 layers, hidden
//! 768, 12 heads, FFN 3072. ≈ 86 M parameters.

use t10_ir::{builders, DType, Graph, Unary, ValueKind};

use crate::common::Builder;
use crate::Result;

/// Configuration of an encoder transformer.
#[derive(Debug, Clone, Copy)]
pub struct EncoderCfg {
    /// Number of transformer layers.
    pub layers: usize,
    /// Hidden width.
    pub d: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward inner width.
    pub ffn: usize,
    /// Tokens per sequence.
    pub seq: usize,
}

/// One encoder layer over `[tokens, d]`.
pub fn encoder_layer(
    b: &mut Builder<'_>,
    tag: &str,
    x: usize,
    cfg: &EncoderCfg,
    tokens: usize,
) -> Result<usize> {
    let d = cfg.d;
    let attn = b.attention(&format!("{tag}_attn"), x, tokens, d, cfg.heads, tokens)?;
    let res1 = b.residual(&format!("{tag}_r1"), x, attn, vec![tokens, d])?;
    let ln1 = b.layer_norm(&format!("{tag}_ln1"), res1, tokens, d)?;
    let up = b.linear(
        &format!("{tag}_up"),
        ln1,
        tokens,
        d,
        cfg.ffn,
        true,
        Some(Unary::Gelu),
    )?;
    let down = b.linear(&format!("{tag}_down"), up, tokens, cfg.ffn, d, true, None)?;
    let res2 = b.residual(&format!("{tag}_r2"), ln1, down, vec![tokens, d])?;
    b.layer_norm(&format!("{tag}_ln2"), res2, tokens, d)
}

/// BERT-Large for `batch` sequences of 128 tokens (a standard inference
/// sequence length; keeps the vendor baseline within memory at batch 1).
pub fn bert_large(batch: usize) -> Result<Graph> {
    let cfg = EncoderCfg {
        layers: 24,
        d: 1024,
        heads: 16,
        ffn: 4096,
        seq: 128,
    };
    encoder_with_embedding("bert-large", batch, cfg, Some(30_522))
}

/// ViT-Base for `batch` 224×224 images.
pub fn vit_base(batch: usize) -> Result<Graph> {
    let cfg = EncoderCfg {
        layers: 12,
        d: 768,
        heads: 12,
        ffn: 3072,
        seq: 196,
    };
    let mut g = Graph::new(format!("vit-base-bs{batch}"));
    let tokens = batch * cfg.seq;
    // Patch embedding, in the ViT paper's own formulation: flatten each
    // 16×16×3 patch (768 values) and linearly project to d.
    let patch_dim = 16 * 16 * 3;
    let patches = g.add_value(
        "patches",
        vec![tokens, patch_dim],
        DType::F16,
        ValueKind::Input,
    );
    let mut b = Builder::new(&mut g, DType::F16);
    let proj = b.weight("patch_w", vec![patch_dim, cfg.d]);
    let tok0 = b.activation("tokens", vec![tokens, cfg.d]);
    b.graph.add_node(
        "patch_embed",
        builders::matmul(patches, proj, tok0, tokens, patch_dim, cfg.d)?,
    )?;
    let mut x = tok0;
    for l in 0..cfg.layers {
        x = encoder_layer(&mut b, &format!("l{l}"), x, &cfg, tokens)?;
    }
    let head_w = b.weight("head_w", vec![cfg.d, 1000]);
    let logits = b
        .graph
        .add_value("logits", vec![tokens, 1000], DType::F16, ValueKind::Output);
    let op = builders::matmul(x, head_w, logits, tokens, cfg.d, 1000)?;
    b.graph.add_node("head", op)?;
    Ok(g)
}

/// Shared builder: optional gather embedding plus the layer stack.
fn encoder_with_embedding(
    name: &str,
    batch: usize,
    cfg: EncoderCfg,
    vocab: Option<usize>,
) -> Result<Graph> {
    let mut g = Graph::new(format!("{name}-bs{batch}"));
    let tokens = batch * cfg.seq;
    let x0 = match vocab {
        Some(v) => {
            let ids = g.add_value("ids", vec![tokens], DType::I32, ValueKind::Input);
            let table = g.add_value("wordpiece", vec![v, cfg.d], DType::F16, ValueKind::Weight);
            let emb = g.add_value(
                "embedding",
                vec![tokens, cfg.d],
                DType::F16,
                ValueKind::Activation,
            );
            g.add_node(
                "embed",
                builders::gather(table, ids, emb, v, tokens, cfg.d)?,
            )?;
            emb
        }
        None => g.add_value("x", vec![tokens, cfg.d], DType::F16, ValueKind::Input),
    };
    let mut b = Builder::new(&mut g, DType::F16);
    let mut x = x0;
    for l in 0..cfg.layers {
        x = encoder_layer(&mut b, &format!("l{l}"), x, &cfg, tokens)?;
    }
    // Pooler head.
    let w = b.weight("pool_w", vec![cfg.d, cfg.d]);
    let out = b
        .graph
        .add_value("pooled", vec![tokens, cfg.d], DType::F16, ValueKind::Output);
    let mut op = builders::matmul(x, w, out, tokens, cfg.d, cfg.d)?;
    op.unary = Some(Unary::Tanh);
    b.graph.add_node("pooler", op)?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bert_large_parameter_count() {
        let g = bert_large(1).unwrap();
        let m = g.parameter_count() as f64 / 1e6;
        // Table 2: 340 M (we model word embeddings + encoder + pooler).
        assert!((300.0..380.0).contains(&m), "params = {m} M");
    }

    #[test]
    fn vit_base_parameter_count() {
        let g = vit_base(1).unwrap();
        let m = g.parameter_count() as f64 / 1e6;
        assert!((80.0..95.0).contains(&m), "params = {m} M");
    }

    #[test]
    fn bert_has_gather_embedding() {
        let g = bert_large(1).unwrap();
        assert!(g
            .nodes()
            .iter()
            .any(|n| n.op.kind == t10_ir::OpKind::Gather));
    }

    #[test]
    fn batch_scales_tokens() {
        let g1 = bert_large(1).unwrap();
        let g2 = bert_large(2).unwrap();
        assert_eq!(g1.parameter_count(), g2.parameter_count());
        assert!(g2.total_flops() > g1.total_flops());
    }

    #[test]
    fn vit_structure() {
        let g = vit_base(1).unwrap();
        // Patch embedding is the ViT-paper flatten-and-project matmul.
        // 12 layers × (attention + FFN) of matmuls.
        let mms = g
            .nodes()
            .iter()
            .filter(|n| n.op.kind == t10_ir::OpKind::MatMul)
            .count();
        assert!(mms >= 12 * 6, "matmuls = {mms}");
    }
}
