//! LLM decode layers: OPT, Llama2, RetNet (Table 2, paper §6.7).
//!
//! The paper serves LLMs by running "a subset of layers for each LLM" on one
//! chip (the whole model pipelines across chips, §6.7). These builders
//! produce `layers` decode-step layers: each token generates one new
//! position attending to a KV cache of `KV_LEN` entries, so the matmuls are
//! skinny (`tokens × d` activations against `d × d`/`d × ffn` weights) and
//! execution is dominated by weight traffic — exactly the regime where the
//! 8 TB/s inter-core fabric beats HBM (Figure 23).

use t10_ir::{Combine, DType, Graph, Unary, ValueKind};

use crate::common::Builder;
use crate::Result;

/// Decode-time KV-cache length.
pub const KV_LEN: usize = 1024;

/// A decoder-family configuration.
#[derive(Debug, Clone, Copy)]
pub struct DecoderCfg {
    /// Hidden width.
    pub d: usize,
    /// Attention heads.
    pub heads: usize,
    /// Feed-forward inner width.
    pub ffn: usize,
    /// Gated FFN (SwiGLU: three projections) as in Llama2.
    pub gated_ffn: bool,
    /// Retention-style decay gating as in RetNet.
    pub retention: bool,
}

impl DecoderCfg {
    /// OPT-1.3B: 24 layers of d=2048 (we build a per-chip subset).
    pub fn opt_1_3b() -> Self {
        Self {
            d: 2048,
            heads: 32,
            ffn: 8192,
            gated_ffn: false,
            retention: false,
        }
    }

    /// OPT-6.7B: d=4096.
    pub fn opt_6_7b() -> Self {
        Self {
            d: 4096,
            heads: 32,
            ffn: 16384,
            gated_ffn: false,
            retention: false,
        }
    }

    /// OPT-13B: d=5120.
    pub fn opt_13b() -> Self {
        Self {
            d: 5120,
            heads: 40,
            ffn: 20480,
            gated_ffn: false,
            retention: false,
        }
    }

    /// Llama2-7B: d=4096, SwiGLU FFN of 11008.
    pub fn llama2_7b() -> Self {
        Self {
            d: 4096,
            heads: 32,
            ffn: 11008,
            gated_ffn: true,
            retention: false,
        }
    }

    /// Llama2-13B: d=5120, SwiGLU FFN of 13824.
    pub fn llama2_13b() -> Self {
        Self {
            d: 5120,
            heads: 40,
            ffn: 13824,
            gated_ffn: true,
            retention: false,
        }
    }

    /// RetNet-1.3B: d=2048 with retention instead of softmax attention.
    pub fn retnet_1_3b() -> Self {
        Self {
            d: 2048,
            heads: 8,
            ffn: 4096,
            gated_ffn: true,
            retention: true,
        }
    }

    /// Parameters of one layer (weights only, no embeddings).
    pub fn layer_params(&self) -> usize {
        let attn = 4 * self.d * self.d;
        let ffn = if self.gated_ffn {
            3 * self.d * self.ffn
        } else {
            2 * self.d * self.ffn
        };
        attn + ffn
    }
}

/// One decode layer over `[tokens, d]`.
fn decode_layer(
    b: &mut Builder<'_>,
    tag: &str,
    x: usize,
    cfg: &DecoderCfg,
    tokens: usize,
) -> Result<usize> {
    let d = cfg.d;
    let ln1 = b.layer_norm(&format!("{tag}_ln1"), x, tokens, d)?;
    let mixed = if cfg.retention {
        // Retention (RetNet): a decayed linear attention. The decode-step
        // compute is the same dense projections plus an element-wise decay
        // gate — no softmax over the cache.
        let q = b.linear(&format!("{tag}_q"), ln1, tokens, d, d, false, None)?;
        let state = b.weight(&format!("{tag}_state"), vec![d, d]);
        let s = b.activation(&format!("{tag}_ret"), vec![tokens, d]);
        b.graph.add_node(
            format!("{tag}_ret_mm"),
            t10_ir::builders::matmul(q, state, s, tokens, d, d)?,
        )?;
        let g = b.linear(
            &format!("{tag}_g"),
            ln1,
            tokens,
            d,
            d,
            false,
            Some(Unary::Sigmoid),
        )?;
        let gated = b.activation(&format!("{tag}_gated"), vec![tokens, d]);
        b.graph.add_node(
            format!("{tag}_gate"),
            t10_ir::builders::binary(s, g, gated, vec![tokens, d], Combine::Mul)?,
        )?;
        b.linear(&format!("{tag}_wo"), gated, tokens, d, d, false, None)?
    } else {
        b.attention(&format!("{tag}_attn"), ln1, tokens, d, cfg.heads, KV_LEN)?
    };
    let res1 = b.residual(&format!("{tag}_r1"), x, mixed, vec![tokens, d])?;
    let ln2 = b.layer_norm(&format!("{tag}_ln2"), res1, tokens, d)?;
    let ff = if cfg.gated_ffn {
        let up = b.linear(&format!("{tag}_up"), ln2, tokens, d, cfg.ffn, false, None)?;
        let gate = b.linear(
            &format!("{tag}_gate"),
            ln2,
            tokens,
            d,
            cfg.ffn,
            false,
            Some(Unary::Sigmoid),
        )?;
        let act = b.activation(&format!("{tag}_swiglu"), vec![tokens, cfg.ffn]);
        b.graph.add_node(
            format!("{tag}_mulgate"),
            t10_ir::builders::binary(up, gate, act, vec![tokens, cfg.ffn], Combine::Mul)?,
        )?;
        b.linear(&format!("{tag}_down"), act, tokens, cfg.ffn, d, false, None)?
    } else {
        let up = b.linear(
            &format!("{tag}_up"),
            ln2,
            tokens,
            d,
            cfg.ffn,
            true,
            Some(Unary::Relu),
        )?;
        b.linear(&format!("{tag}_down"), up, tokens, cfg.ffn, d, true, None)?
    };
    b.residual(&format!("{tag}_r2"), res1, ff, vec![tokens, d])
}

/// Builds `layers` decode layers for `batch` concurrent sequences.
pub fn decoder_layers(name: &str, cfg: DecoderCfg, layers: usize, batch: usize) -> Result<Graph> {
    let mut g = Graph::new(format!("{name}-l{layers}-bs{batch}"));
    let x0 = g.add_value("x", vec![batch, cfg.d], DType::F16, ValueKind::Input);
    let mut b = Builder::new(&mut g, DType::F16);
    let mut x = x0;
    for l in 0..layers {
        x = decode_layer(&mut b, &format!("l{l}"), x, &cfg, batch)?;
    }
    // Final copy to the output value.
    let out = b
        .graph
        .add_value("out", vec![batch, cfg.d], DType::F16, ValueKind::Output);
    b.graph.add_node(
        "out_copy",
        t10_ir::builders::unary(x, out, vec![batch, cfg.d], Unary::Scale(1.0))?,
    )?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_parameter_counts_match_models() {
        // Full-model totals: layer params × layer count ≈ Table 2 sizes
        // (embeddings excluded).
        let cases = [
            (DecoderCfg::opt_1_3b(), 24, 1.3e9, 0.75),
            (DecoderCfg::opt_13b(), 40, 13e9, 0.75),
            (DecoderCfg::llama2_7b(), 32, 7e9, 0.8),
            (DecoderCfg::llama2_13b(), 40, 13e9, 0.8),
            (DecoderCfg::retnet_1_3b(), 24, 1.3e9, 0.6),
        ];
        for (cfg, layers, total, min_frac) in cases {
            let model_params = cfg.layer_params() as f64 * layers as f64;
            let frac = model_params / total;
            assert!(
                frac > min_frac && frac < 1.2,
                "layer params cover {frac:.2} of the model"
            );
        }
    }

    #[test]
    fn decode_layer_builds_and_has_kv_cache() {
        let g = decoder_layers("opt-1.3b", DecoderCfg::opt_1_3b(), 2, 4).unwrap();
        // Persistent weights include the KV caches.
        let kv_bytes = 2 * 2 * 2048 * KV_LEN * 2; // 2 layers × K+V × d × kv × f16
        assert!(g.parameter_bytes() > kv_bytes);
        assert!(g.nodes().len() > 20);
    }

    #[test]
    fn retnet_has_no_softmax() {
        let g = decoder_layers("retnet", DecoderCfg::retnet_1_3b(), 1, 2).unwrap();
        // Softmax decomposes into a Reduce::Max node; retention has none.
        let has_max_reduce = g
            .nodes()
            .iter()
            .any(|n| n.op.kind == t10_ir::OpKind::Reduce && n.op.reduce == t10_ir::Reduce::Max);
        assert!(!has_max_reduce);
    }

    #[test]
    fn gated_ffn_has_three_projections() {
        let llama = decoder_layers("llama", DecoderCfg::llama2_7b(), 1, 2).unwrap();
        let opt = decoder_layers("opt", DecoderCfg::opt_6_7b(), 1, 2).unwrap();
        // Same hidden width; Llama2's SwiGLU adds a projection but its ffn
        // width is smaller — parameter counts stay within 2x.
        let lw = llama.parameter_count();
        let ow = opt.parameter_count();
        assert!(lw as f64 / ow as f64 > 0.5 && (lw as f64 / ow as f64) < 2.0);
    }
}
