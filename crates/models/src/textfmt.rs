//! A tiny dependency-free text format for describing custom models.
//!
//! The paper's T10 ingests ONNX; this reproduction ships programmatic
//! builders for the evaluated networks plus this minimal line-oriented
//! format so downstream users can compile their own graphs without adding
//! a serialization dependency:
//!
//! ```text
//! # comments and blank lines are ignored
//! model my-mlp
//! input x 64 256          # name then shape
//! linear fc1 x 512 gelu   # name, input, output width, optional activation
//! linear fc2 fc1 256
//! layernorm ln fc2
//! attention attn ln heads=8
//! output attn
//! ```
//!
//! Supported layer kinds: `linear <name> <input> <width> [relu|gelu|tanh|
//! sigmoid]`, `layernorm <name> <input>`, `softmax <name> <input>`,
//! `attention <name> <input> heads=<h>`, `residual <name> <a> <b>`,
//! `output <value>`. All activations flow as 2-D `[rows, d]` tensors.

use std::collections::HashMap;

use t10_ir::{builders, DType, Graph, Unary, ValueId, ValueKind};

use crate::common::Builder;
use crate::Result;
use t10_ir::ir_err;

/// Parses the text format into an operator graph.
///
/// # Examples
///
/// ```
/// let src = "
/// model tiny
/// input x 8 16
/// linear fc x 32 relu
/// output fc
/// ";
/// let g = t10_models::textfmt::parse(src).unwrap();
/// assert_eq!(g.name(), "tiny");
/// assert_eq!(g.nodes().len(), 3); // matmul + bias + output copy
/// ```
pub fn parse(src: &str) -> Result<Graph> {
    let mut graph = Graph::new("unnamed");
    let mut env: HashMap<String, (ValueId, usize, usize)> = HashMap::new();
    let mut emitted_output = false;
    for (lineno, raw) in src.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let toks: Vec<&str> = line.split_whitespace().collect();
        let err = |m: &str| ir_err!("line {}: {m}: `{line}`", lineno + 1);
        match toks[0] {
            "model" => {
                let name = *toks.get(1).ok_or_else(|| err("missing model name"))?;
                graph = Graph::new(name);
                env.clear();
            }
            "input" => {
                let [name, rows, d] = toks
                    .get(1..4)
                    .ok_or_else(|| err("expected `input <name> <rows> <d>`"))?
                else {
                    return Err(err("expected `input <name> <rows> <d>`"));
                };
                let rows: usize = rows.parse().map_err(|_| err("bad rows"))?;
                let d: usize = d.parse().map_err(|_| err("bad width"))?;
                let v = graph.add_value(*name, vec![rows, d], DType::F16, ValueKind::Input);
                env.insert(name.to_string(), (v, rows, d));
            }
            "linear" => {
                let [name, input, width] = toks
                    .get(1..4)
                    .ok_or_else(|| err("expected `linear <name> <input> <width>`"))?
                else {
                    return Err(err("expected `linear <name> <input> <width>`"));
                };
                let unary = match toks.get(4) {
                    None => None,
                    Some(&"relu") => Some(Unary::Relu),
                    Some(&"gelu") => Some(Unary::Gelu),
                    Some(&"tanh") => Some(Unary::Tanh),
                    Some(&"sigmoid") => Some(Unary::Sigmoid),
                    Some(other) => return Err(err(&format!("unknown activation `{other}`"))),
                };
                let &(x, rows, d_in) = env
                    .get(*input)
                    .ok_or_else(|| err(&format!("unknown value `{input}`")))?;
                let width: usize = width.parse().map_err(|_| err("bad width"))?;
                let mut b = Builder::new(&mut graph, DType::F16);
                let y = b.linear(name, x, rows, d_in, width, true, unary)?;
                env.insert(name.to_string(), (y, rows, width));
            }
            "layernorm" => {
                let [name, input] = toks
                    .get(1..3)
                    .ok_or_else(|| err("expected `layernorm <name> <input>`"))?
                else {
                    return Err(err("expected `layernorm <name> <input>`"));
                };
                let &(x, rows, d) = env
                    .get(*input)
                    .ok_or_else(|| err(&format!("unknown value `{input}`")))?;
                let mut b = Builder::new(&mut graph, DType::F16);
                let y = b.layer_norm(name, x, rows, d)?;
                env.insert(name.to_string(), (y, rows, d));
            }
            "softmax" => {
                let [name, input] = toks
                    .get(1..3)
                    .ok_or_else(|| err("expected `softmax <name> <input>`"))?
                else {
                    return Err(err("expected `softmax <name> <input>`"));
                };
                let &(x, rows, d) = env
                    .get(*input)
                    .ok_or_else(|| err(&format!("unknown value `{input}`")))?;
                let mut b = Builder::new(&mut graph, DType::F16);
                let y = b.softmax(name, x, &[rows], d)?;
                env.insert(name.to_string(), (y, rows, d));
            }
            "attention" => {
                let [name, input] = toks
                    .get(1..3)
                    .ok_or_else(|| err("expected `attention <name> <input> heads=<h>`"))?
                else {
                    return Err(err("expected `attention <name> <input> heads=<h>`"));
                };
                let heads: usize = toks
                    .get(3)
                    .and_then(|t| t.strip_prefix("heads="))
                    .ok_or_else(|| err("missing heads=<h>"))?
                    .parse()
                    .map_err(|_| err("bad head count"))?;
                let &(x, rows, d) = env
                    .get(*input)
                    .ok_or_else(|| err(&format!("unknown value `{input}`")))?;
                if heads == 0 || d % heads != 0 {
                    return Err(err("heads must divide the width"));
                }
                let mut b = Builder::new(&mut graph, DType::F16);
                let y = b.attention(name, x, rows, d, heads, rows)?;
                env.insert(name.to_string(), (y, rows, d));
            }
            "residual" => {
                let [name, a, c] = toks
                    .get(1..4)
                    .ok_or_else(|| err("expected `residual <name> <a> <b>`"))?
                else {
                    return Err(err("expected `residual <name> <a> <b>`"));
                };
                let &(va, rows, d) = env
                    .get(*a)
                    .ok_or_else(|| err(&format!("unknown value `{a}`")))?;
                let &(vb, rows2, d2) = env
                    .get(*c)
                    .ok_or_else(|| err(&format!("unknown value `{c}`")))?;
                if (rows, d) != (rows2, d2) {
                    return Err(err("residual operands must have matching shapes"));
                }
                let mut b = Builder::new(&mut graph, DType::F16);
                let y = b.residual(name, va, vb, vec![rows, d])?;
                env.insert(name.to_string(), (y, rows, d));
            }
            "output" => {
                let value = *toks.get(1).ok_or_else(|| err("missing output value"))?;
                let &(x, rows, d) = env
                    .get(value)
                    .ok_or_else(|| err(&format!("unknown value `{value}`")))?;
                let out = graph.add_value(
                    format!("{value}_out"),
                    vec![rows, d],
                    DType::F16,
                    ValueKind::Output,
                );
                let op = builders::unary(x, out, vec![rows, d], Unary::Scale(1.0))?;
                graph.add_node(format!("{value}_output"), op)?;
                emitted_output = true;
            }
            other => return Err(err(&format!("unknown directive `{other}`"))),
        }
    }
    if !emitted_output {
        return Err(ir_err!("model has no `output` directive"));
    }
    Ok(graph)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_an_mlp() {
        let g =
            parse("model m\ninput x 16 32\nlinear a x 64 relu\nlinear b a 32\noutput b\n").unwrap();
        assert_eq!(g.name(), "m");
        // 2 linears × (mm + bias) + output copy.
        assert_eq!(g.nodes().len(), 5);
        assert_eq!(g.parameter_count(), 32 * 64 + 64 + 64 * 32 + 32);
    }

    #[test]
    fn parses_transformer_pieces() {
        let src = "
model t
input x 16 32
layernorm ln x
attention attn ln heads=4
residual r x attn
softmax sm r
output sm
";
        let g = parse(src).unwrap();
        assert!(g.nodes().len() > 10);
        // Numeric sanity through the reference executor.
        let vals = t10_ir::reference::execute_graph(&g, &[]).unwrap();
        let out = vals.last().unwrap().as_ref();
        assert!(out.is_some());
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let g =
            parse("# header\n\nmodel m\ninput x 4 8 # shape\nlinear y x 8\noutput y\n").unwrap();
        assert_eq!(g.nodes().len(), 3);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("model m\ninput x 4 8\nlinear y z 8\noutput y\n").unwrap_err();
        assert!(e.message().contains("line 3"), "{e}");
        assert!(e.message().contains("unknown value `z`"));
    }

    #[test]
    fn rejects_bad_directives() {
        assert!(parse("frobnicate\n").is_err());
        assert!(parse("model m\ninput x 4 8\n").is_err()); // no output
        assert!(parse("model m\ninput x 4 8\nattention a x heads=3\noutput a\n").is_err());
        assert!(parse("model m\ninput x 4 8\nlinear a x 16 warp\noutput a\n").is_err());
    }

    #[test]
    fn parsed_graph_compiles() {
        let g =
            parse("model m\ninput x 64 64\nlinear a x 64 relu\nlinear b a 64\noutput b\n").unwrap();
        let compiler = t10_core::Compiler::new(
            t10_device::ChipSpec::ipu_with_cores(16),
            t10_core::SearchConfig::fast(),
        );
        let out = compiler.compile_graph(&g).unwrap();
        assert!(out.estimated_time > 0.0);
    }
}
