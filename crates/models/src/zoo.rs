//! The model registry: every network of Table 2 behind one interface.

use t10_ir::Graph;

use crate::llm::{decoder_layers, DecoderCfg};
use crate::nerf::nerf;
use crate::resnet::resnet18;
use crate::transformer::{bert_large, vit_base};
use crate::Result;

/// A buildable model of the evaluation suite.
pub struct ModelSpec {
    /// Model name as used in the paper's figures.
    pub name: &'static str,
    /// One-line description (Table 2).
    pub description: &'static str,
    /// Published parameter count (approximate).
    pub params: &'static str,
    /// Graph builder for a given batch size.
    pub build: fn(usize) -> Result<Graph>,
}

/// The DNN inference models of Figure 12 (CNNs, transformers, MLPs).
pub fn all_models() -> Vec<ModelSpec> {
    vec![
        ModelSpec {
            name: "BERT",
            description: "Natural Language Processing",
            params: "340M",
            build: bert_large,
        },
        ModelSpec {
            name: "ViT",
            description: "Transformer-based Vision",
            params: "86M",
            build: vit_base,
        },
        ModelSpec {
            name: "ResNet",
            description: "CNN-based Vision",
            params: "11M",
            build: resnet18,
        },
        ModelSpec {
            name: "NeRF",
            description: "3D Scene Synthesis",
            params: "24K",
            build: nerf,
        },
    ]
}

/// The LLM decode workloads of Figure 23, as per-chip layer subsets.
pub fn llm_models() -> Vec<(&'static str, DecoderCfg, usize)> {
    vec![
        ("OPT-1.3B", DecoderCfg::opt_1_3b(), 4),
        ("OPT-13B", DecoderCfg::opt_13b(), 1),
        ("Llama2-7B", DecoderCfg::llama2_7b(), 2),
        ("Llama2-13B", DecoderCfg::llama2_13b(), 1),
        ("RetNet-1.3B", DecoderCfg::retnet_1_3b(), 4),
    ]
}

/// Builds one LLM entry.
pub fn build_llm(name: &str, cfg: DecoderCfg, layers: usize, batch: usize) -> Result<Graph> {
    decoder_layers(name, cfg, layers, batch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_build_at_batch_one() {
        for spec in all_models() {
            let g = (spec.build)(1).unwrap_or_else(|e| panic!("{}: {e}", spec.name));
            assert!(!g.nodes().is_empty(), "{}", spec.name);
            assert!(g.parameter_count() > 0, "{}", spec.name);
        }
    }

    #[test]
    fn llm_models_build() {
        for (name, cfg, layers) in llm_models() {
            let g = build_llm(name, cfg, layers, 8).unwrap();
            assert!(g.nodes().len() > 10, "{name}");
        }
    }

    #[test]
    fn registry_matches_table2() {
        let names: Vec<&str> = all_models().iter().map(|m| m.name).collect();
        assert_eq!(names, vec!["BERT", "ViT", "ResNet", "NeRF"]);
    }
}
