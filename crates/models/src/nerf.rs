//! NeRF (Mildenhall et al.; Table 2: 3-D scene synthesis, ≈ 24 K params).
//!
//! A narrow fully-connected network evaluated over an enormous number of
//! ray samples — the workload whose huge input activations and tiny weights
//! make T10 "minimize the inter-core movements of their large input
//! activation tensors, by efficiently sharing the smaller model weights
//! across the cores" (paper §6.2).
//!
//! One batch unit is 4,096 rays × 192 samples = 786,432 network queries,
//! matching the per-iteration ray batch of the original NeRF renderer. The
//! total live activation volume across the whole MLP is what breaks the
//! vendor runtime's no-liveness memory policy even at batch 1 (Figure 12's
//! missing PopART bars for NeRF).

use t10_ir::{DType, Graph, Unary, ValueKind};

use crate::common::Builder;
use crate::Result;

/// Network width (24 K parameters at width 64 with the view head).
pub const WIDTH: usize = 64;
/// Positional-encoding input features (x,y,z at 10 frequencies).
pub const POS_ENC: usize = 60;
/// Ray samples per batch unit.
pub const SAMPLES_PER_BATCH: usize = 4096 * 192;

/// Builds the NeRF MLP for `batch` ray batches.
pub fn nerf(batch: usize) -> Result<Graph> {
    let rays = batch * SAMPLES_PER_BATCH;
    let mut g = Graph::new(format!("nerf-bs{batch}"));
    let x0 = g.add_value("pos_enc", vec![rays, POS_ENC], DType::F16, ValueKind::Input);
    let mut b = Builder::new(&mut g, DType::F16);
    let mut x = b.linear("in", x0, rays, POS_ENC, WIDTH, true, Some(Unary::Relu))?;
    for l in 0..4 {
        x = b.linear(
            &format!("h{l}"),
            x,
            rays,
            WIDTH,
            WIDTH,
            true,
            Some(Unary::Relu),
        )?;
    }
    // Density head (1 value) and RGB head (3 values) as one 4-wide output.
    let w = b.weight("head_w", vec![WIDTH, 4]);
    let rgba = b
        .graph
        .add_value("rgba", vec![rays, 4], DType::F16, ValueKind::Output);
    let mut op = t10_ir::builders::matmul(x, w, rgba, rays, WIDTH, 4)?;
    op.unary = Some(Unary::Sigmoid);
    b.graph.add_node("head", op)?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_table2() {
        let g = nerf(1).unwrap();
        let params = g.parameter_count();
        // Table 2 lists 24 K.
        assert!((18_000..30_000).contains(&params), "params = {params}");
    }

    #[test]
    fn activations_dwarf_weights() {
        let g = nerf(1).unwrap();
        let act: usize = g
            .values()
            .iter()
            .filter(|v| v.kind == ValueKind::Activation)
            .map(|v| v.bytes())
            .sum();
        assert!(act > 100 * g.parameter_bytes());
    }

    #[test]
    fn no_liveness_total_exceeds_chip_memory() {
        // The property that breaks the vendor runtime at batch 1.
        let g = nerf(1).unwrap();
        let total: usize = g
            .values()
            .iter()
            .filter(|v| matches!(v.kind, ValueKind::Activation | ValueKind::Output))
            .map(|v| v.bytes())
            .sum();
        let chip = 1472 * 624 * 1024;
        assert!(total > chip, "activations {total} vs chip {chip}");
    }
}
