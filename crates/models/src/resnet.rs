//! ResNet-18 (He et al.; Table 2: CNN vision model, ≈ 11 M parameters).
//!
//! "Same" convolutions are realized through the IR's padded-output
//! mechanism: each activation value is declared at its padded extent and the
//! producing operator writes into the interior (output index `h + pad`); the
//! untouched border keeps the zero init, which is exactly zero padding for
//! the next window operator. Shapes therefore follow the canonical ResNet-18
//! 224 → 112 → 56 → 28 → 14 → 7 progression.

use t10_ir::{
    builders, Axis, Combine, DType, Graph, IndexExpr, OpKind, Operator, Reduce, TensorExpr, Unary,
    ValueId, ValueKind,
};

use crate::common::Builder;
use crate::Result;

/// A feature-map value with its logical (unpadded) spatial size and the
/// declared padding of the stored value.
#[derive(Debug, Clone, Copy)]
struct Feat {
    value: ValueId,
    c: usize,
    /// Interior (semantic) height/width.
    hw: usize,
    /// Border width baked into the declared value.
    pad: usize,
}

/// A same-convolution: consumes `x`'s padded value, produces `[hw_out]`
/// interior inside a value padded by `out_pad`.
#[expect(clippy::too_many_arguments)]
fn conv(
    b: &mut Builder<'_>,
    tag: &str,
    batch: usize,
    x: Feat,
    c_out: usize,
    k: usize,
    stride: usize,
    out_pad: usize,
    relu: bool,
) -> Result<Feat> {
    let hw_out = x.hw.div_ceil(stride);
    let declared_in = x.hw + 2 * x.pad;
    // The window must stay inside the declared input extent.
    let needed = stride * (hw_out - 1) + k;
    assert!(
        needed <= declared_in,
        "{tag}: window {needed} exceeds declared {declared_in}"
    );
    let declared_out = hw_out + 2 * out_pad;
    let kernel = b.weight(&format!("{tag}_k"), vec![c_out, x.c, k, k]);
    let out = b.activation(
        &format!("{tag}_out"),
        vec![batch, c_out, declared_out, declared_out],
    );
    // Expression: O[b, f, h+out_pad, w+out_pad] += I[b, c, s*h+kh, s*w+kw].
    let expr = TensorExpr::new(
        vec![
            Axis::spatial("b", batch),
            Axis::spatial("f", c_out),
            Axis::spatial("h", hw_out),
            Axis::spatial("w", hw_out),
            Axis::reduction("c", x.c),
            Axis::reduction("kh", k),
            Axis::reduction("kw", k),
        ],
        vec![
            vec![
                IndexExpr::axis(0),
                IndexExpr::axis(4),
                IndexExpr::affine(vec![(2, stride), (5, 1)]),
                IndexExpr::affine(vec![(3, stride), (6, 1)]),
            ],
            vec![
                IndexExpr::axis(1),
                IndexExpr::axis(4),
                IndexExpr::axis(5),
                IndexExpr::axis(6),
            ],
        ],
        vec![
            IndexExpr::axis(0),
            IndexExpr::axis(1),
            IndexExpr::axis(2).with_offset(out_pad),
            IndexExpr::axis(3).with_offset(out_pad),
        ],
    )?;
    let op = Operator {
        kind: OpKind::Conv2d,
        expr,
        combine: Combine::Mul,
        reduce: Reduce::Sum,
        unary: relu.then_some(Unary::Relu),
        inputs: vec![x.value, kernel],
        output: out,
    };
    b.graph.add_node(tag.to_string(), op)?;
    Ok(Feat {
        value: out,
        c: c_out,
        hw: hw_out,
        pad: out_pad,
    })
}

fn basic_block(
    b: &mut Builder<'_>,
    tag: &str,
    batch: usize,
    x: Feat,
    c_out: usize,
    stride: usize,
) -> Result<Feat> {
    let main1 = conv(b, &format!("{tag}_c1"), batch, x, c_out, 3, stride, 1, true)?;
    let main2 = conv(b, &format!("{tag}_c2"), batch, main1, c_out, 3, 1, 1, false)?;
    let skip = if stride != 1 || c_out != x.c {
        conv(
            b,
            &format!("{tag}_ds"),
            batch,
            x,
            c_out,
            1,
            stride,
            1,
            false,
        )?
    } else {
        x
    };
    debug_assert_eq!(skip.hw, main2.hw);
    debug_assert_eq!(skip.pad, main2.pad);
    let declared = main2.hw + 2 * main2.pad;
    let shape = vec![batch, c_out, declared, declared];
    let sum = b.activation(&format!("{tag}_sum"), shape.clone());
    let mut op = builders::binary(main2.value, skip.value, sum, shape, Combine::Add)?;
    op.unary = Some(Unary::Relu);
    b.graph.add_node(format!("{tag}_add"), op)?;
    Ok(Feat {
        value: sum,
        c: c_out,
        hw: main2.hw,
        pad: main2.pad,
    })
}

/// Max pool over the padded input, writing a padded output. The ReLU
/// epilogue also clamps the `-inf` reduction identity on the border to 0.
fn max_pool(
    b: &mut Builder<'_>,
    tag: &str,
    batch: usize,
    x: Feat,
    k: usize,
    stride: usize,
    out_pad: usize,
) -> Result<Feat> {
    let hw_out = x.hw.div_ceil(stride);
    let declared_out = hw_out + 2 * out_pad;
    let out = b.activation(
        &format!("{tag}_out"),
        vec![batch, x.c, declared_out, declared_out],
    );
    let expr = TensorExpr::new(
        vec![
            Axis::spatial("b", batch),
            Axis::spatial("c", x.c),
            Axis::spatial("h", hw_out),
            Axis::spatial("w", hw_out),
            Axis::reduction("kh", k),
            Axis::reduction("kw", k),
        ],
        vec![vec![
            IndexExpr::axis(0),
            IndexExpr::axis(1),
            IndexExpr::affine(vec![(2, stride), (4, 1)]),
            IndexExpr::affine(vec![(3, stride), (5, 1)]),
        ]],
        vec![
            IndexExpr::axis(0),
            IndexExpr::axis(1),
            IndexExpr::axis(2).with_offset(out_pad),
            IndexExpr::axis(3).with_offset(out_pad),
        ],
    )?;
    let op = Operator {
        kind: OpKind::Pool,
        expr,
        combine: Combine::First,
        reduce: Reduce::Max,
        unary: Some(Unary::Relu),
        inputs: vec![x.value],
        output: out,
    };
    b.graph.add_node(tag.to_string(), op)?;
    Ok(Feat {
        value: out,
        c: x.c,
        hw: hw_out,
        pad: out_pad,
    })
}

/// Global average pool over the interior: `O[b, c] = mean_{h,w} I[...]`.
fn global_avg_pool(b: &mut Builder<'_>, tag: &str, batch: usize, x: Feat) -> Result<ValueId> {
    let expr = TensorExpr::new(
        vec![
            Axis::spatial("b", batch),
            Axis::spatial("c", x.c),
            Axis::reduction("h", x.hw),
            Axis::reduction("w", x.hw),
        ],
        vec![vec![
            IndexExpr::axis(0),
            IndexExpr::axis(1),
            IndexExpr::axis(2).with_offset(x.pad),
            IndexExpr::axis(3).with_offset(x.pad),
        ]],
        vec![IndexExpr::axis(0), IndexExpr::axis(1)],
    )?;
    let out = b.activation(&format!("{tag}_gap"), vec![batch, x.c]);
    let op = Operator {
        kind: OpKind::Reduce,
        expr,
        combine: Combine::First,
        reduce: Reduce::Sum,
        unary: Some(Unary::Scale(1.0 / (x.hw * x.hw) as f32)),
        inputs: vec![x.value],
        output: out,
    };
    b.graph.add_node(tag.to_string(), op)?;
    Ok(out)
}

/// Builds ResNet-18 for `batch` 224×224 images (declared pre-padded by 3
/// for the 7×7 stem).
pub fn resnet18(batch: usize) -> Result<Graph> {
    let mut g = Graph::new(format!("resnet18-bs{batch}"));
    let input = g.add_value(
        "image",
        vec![batch, 3, 230, 230],
        DType::F16,
        ValueKind::Input,
    );
    let mut b = Builder::new(&mut g, DType::F16);
    let mut x = Feat {
        value: input,
        c: 3,
        hw: 224,
        pad: 3,
    };
    // Stem: 7×7/2 conv (out 112, pad 1) + 3×3/2 max pool (out 56, pad 1).
    x = conv(&mut b, "stem", batch, x, 64, 7, 2, 1, true)?;
    x = max_pool(&mut b, "stem_pool", batch, x, 3, 2, 1)?;
    // Four stages of two basic blocks each: 56, 28, 14, 7.
    for (stage, (c, s)) in [(64usize, 1usize), (128, 2), (256, 2), (512, 2)]
        .iter()
        .enumerate()
    {
        x = basic_block(&mut b, &format!("l{stage}b0"), batch, x, *c, *s)?;
        x = basic_block(&mut b, &format!("l{stage}b1"), batch, x, *c, 1)?;
    }
    // Head.
    let gap = global_avg_pool(&mut b, "head", batch, x)?;
    let w = b.weight("fc_w", vec![512, 1000]);
    let logits = b
        .graph
        .add_value("logits", vec![batch, 1000], DType::F16, ValueKind::Output);
    let op = builders::matmul(gap, w, logits, batch, 512, 1000)?;
    b.graph.add_node("fc", op)?;
    Ok(g)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parameter_count_matches_table2() {
        let g = resnet18(1).unwrap();
        let params = g.parameter_count();
        // ResNet-18 has ≈ 11.2 M weights (we omit batch-norm scales, < 1%).
        assert!(
            (10_500_000..12_500_000).contains(&params),
            "params = {params}"
        );
    }

    #[test]
    fn batch_scales_activations_not_weights() {
        let g1 = resnet18(1).unwrap();
        let g8 = resnet18(8).unwrap();
        assert_eq!(g1.parameter_count(), g8.parameter_count());
        assert!(g8.total_flops() > 7 * g1.total_flops());
    }

    #[test]
    fn structure_has_expected_depth() {
        let g = resnet18(1).unwrap();
        let convs = g
            .nodes()
            .iter()
            .filter(|n| n.op.kind == t10_ir::OpKind::Conv2d)
            .count();
        // 1 stem + 16 block convs + 3 downsample 1×1 = 20.
        assert_eq!(convs, 20);
        assert!(g.nodes().iter().any(|n| n.op.kind == t10_ir::OpKind::Pool));
    }

    #[test]
    fn flops_match_resnet18() {
        // ResNet-18 at 224² is ≈ 1.8 GMACs = 3.6 GFLOPs per image.
        let g = resnet18(1).unwrap();
        let gflops = g.total_flops() as f64 / 1e9;
        assert!((3.0..4.2).contains(&gflops), "gflops = {gflops}");
    }

    #[test]
    fn spatial_progression_is_canonical() {
        // Final stage produces 7×7 interiors: the GAP node reduces 7×7.
        let g = resnet18(1).unwrap();
        let gap = g
            .nodes()
            .iter()
            .find(|n| n.op.kind == t10_ir::OpKind::Reduce)
            .unwrap();
        let h_axis = gap.op.expr.axes.iter().find(|a| a.name == "h").unwrap();
        assert_eq!(h_axis.size, 7);
    }

    #[test]
    fn reference_execution_of_tiny_variant() {
        // A numeric smoke test of the padded-conv mechanism on a small
        // hand-built block.
        use t10_ir::{reference, Tensor};
        let mut g = Graph::new("tiny");
        let inp = g.add_value("in", vec![1, 1, 6, 6], DType::F32, ValueKind::Input);
        let mut b = Builder::new(&mut g, DType::F32);
        let x = Feat {
            value: inp,
            c: 1,
            hw: 4,
            pad: 1,
        };
        let y = conv(&mut b, "c", 1, x, 1, 3, 1, 1, false).unwrap();
        // All-ones input interior and kernel: interior of the output counts
        // the 3×3 window coverage of the padded input.
        let mut it = Tensor::zeros(vec![1, 1, 6, 6]);
        for h in 1..5 {
            for w in 1..5 {
                it.set(&[0, 0, h, w], 1.0);
            }
        }
        let kt = Tensor::fill(vec![1, 1, 3, 3], 1.0);
        let vals = reference::execute_graph(&g, &[(inp, it), (1, kt)]).unwrap();
        let out = vals[y.value].as_ref().unwrap();
        assert_eq!(out.shape(), &[1, 1, 6, 6]);
        // Center cells see the full 3×3 = 9 ones; corners of the interior
        // see 4; the declared border stays zero.
        assert_eq!(out.at(&[0, 0, 2, 2]), 9.0);
        assert_eq!(out.at(&[0, 0, 1, 1]), 4.0);
        assert_eq!(out.at(&[0, 0, 0, 0]), 0.0);
        assert_eq!(out.at(&[0, 0, 5, 5]), 0.0);
    }
}
