//! End-to-end fault-injection and graceful-degradation demos on the paper's
//! Table-2 models: a degraded chip (lossy links, a half-SRAM core) still
//! compiles and runs with honest degraded numbers, and an "anytime" compile
//! deadline still yields a valid plan.

#![allow(clippy::unwrap_used)]

use std::time::Duration;

use t10_core::{CompileOptions, Compiler, SearchConfig};
use t10_device::ChipSpec;
use t10_sim::{FaultPlan, Simulator, SimulatorMode};

/// Compiles NeRF (Table 2) against a fault plan with ≥10% of links degraded
/// and one core's SRAM halved; the plan must fit the shrunk core, run to
/// completion on the degraded simulator, and the report must show the
/// degradation explicitly.
#[test]
fn nerf_compiles_and_runs_on_degraded_chip() {
    // NeRF's batch-1 ray activations (~94 MB) need the full chip (Table 2).
    let spec = ChipSpec::ipu_mk2();
    let cores = spec.num_cores;
    // 10% of links degraded to half bandwidth, core 3 at half SRAM,
    // core 5 computing at half speed.
    let plan = FaultPlan::seeded(cores, 11)
        .degrade_links(0.10, 0.5)
        .shrink_sram(3, 0.5)
        .set_slowdown(5, 2.0);
    assert!(plan.summary().degraded_links * 10 >= cores);

    let g = t10_models::nerf::nerf(1).unwrap();
    let compiler = Compiler::new(spec.clone(), SearchConfig::fast());

    let healthy = compiler.compile_graph(&g).unwrap();
    let degraded = compiler
        .compile_graph_with(&g, &CompileOptions::with_faults(plan.clone()))
        .unwrap();
    assert!(degraded.node_pareto.iter().all(|p| !p.is_empty()));

    // The degraded plan must actually fit the shrunk core: the simulator
    // enforces per-core capacities, so a successful run is the proof.
    let mut sim = Simulator::new(spec.clone(), SimulatorMode::Timing)
        .with_fault_plan(plan)
        .unwrap();
    let r = sim.run(&degraded.program).unwrap();
    let mut healthy_sim = Simulator::new(spec, SimulatorMode::Timing);
    let hr = healthy_sim.run(&healthy.program).unwrap();

    // The report is honest about the degradation.
    let f = r.faults.expect("fault summary in report");
    assert_eq!(f.degraded_links, cores.div_ceil(10));
    assert_eq!(f.shrunk_cores, 1);
    assert_eq!(f.slowed_cores, 1);
    assert_eq!(f.min_sram_frac, 0.5);
    assert!(r.fault_overhead() > 0.0);
    assert!(r.total_time > 0.0);
    assert!(hr.faults.is_none());
    assert_eq!(hr.fault_overhead(), 0.0);
}

/// A 50 ms compile deadline on BERT-large (Table 2) still returns a valid
/// plan: the anytime search keeps whatever frontier it accumulated and the
/// emergency fallback fills in any operator the budget cut off entirely.
#[test]
fn bert_with_50ms_deadline_returns_valid_plan() {
    let g = t10_models::transformer::bert_large(1).unwrap();
    let compiler = Compiler::new(ChipSpec::ipu_mk2(), SearchConfig::fast());
    // Debug builds search an order of magnitude slower; scale the budget so
    // the test exercises "deadline cut the search short", not "deadline cut
    // the search to nothing on an unoptimized binary".
    let budget_ms = if cfg!(debug_assertions) { 1000 } else { 50 };
    let compiled = compiler
        .compile_graph_with(
            &g,
            &CompileOptions::with_deadline(Duration::from_millis(budget_ms)),
        )
        .unwrap();
    assert!(!compiled.program.steps.is_empty());
    assert_eq!(compiled.node_pareto.len(), g.nodes().len());
    assert!(compiled.node_pareto.iter().all(|p| !p.is_empty()));
    assert!(compiled.estimated_time > 0.0);

    // The deadline-compiled program is executable end to end.
    let mut sim = Simulator::new(ChipSpec::ipu_mk2(), SimulatorMode::Timing);
    let r = sim.run(&compiled.program).unwrap();
    assert!(r.total_time > 0.0);
}
