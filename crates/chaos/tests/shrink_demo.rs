//! Acceptance demo: an intentionally-buggy recovery mutation is caught by
//! the oracle and shrunk to a minimal replayable reproducer of at most
//! three fault events.
//!
//! The mutation (`CorruptSalvage`) perturbs one salvaged input element
//! during persistent-fault migration — exactly the kind of subtle recovery
//! bug the differential oracle exists to catch. A noisy timeline (one
//! persistent fault buried under transients and degrades) trips the oracle;
//! ddmin-style shrinking must strip the noise down to the persistent fault
//! that actually reaches the buggy salvage path.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use t10_chaos::{
    chaos_zoo, healthy_frontiers, run_chain, shrink, CampaignConfig, Oracle, Outcome, Profile,
    RunConfig,
};
use t10_core::RecoveryMutation;
use t10_sim::{FaultEvent, FaultEventKind, FaultTimeline};

#[test]
fn injected_salvage_bug_shrinks_to_at_most_three_events() {
    let mut zoo = chaos_zoo().unwrap();
    let chain = zoo.remove(0);
    let cfg = RunConfig {
        mutation: RecoveryMutation::CorruptSalvage,
        ..RunConfig::default()
    };
    let healthy_cfg = RunConfig::default();
    let warm = healthy_frontiers(&chain, cfg.cores).unwrap();
    let healthy = run_chain(&chain, None, &healthy_cfg, Some(&warm)).unwrap();
    let reference = chain.reference_output().unwrap();
    let oracle = Oracle {
        chain: &chain,
        healthy: &healthy,
        reference: &reference,
        cores: cfg.cores,
    };

    // One culprit (the persistent fault that triggers salvage) buried in
    // six events of noise that recovery absorbs or replays cleanly.
    let noisy = vec![
        FaultEvent {
            step: 0,
            kind: FaultEventKind::TransientStall { core: 1 },
        },
        FaultEvent {
            step: 1,
            kind: FaultEventKind::CoreSlow {
                core: 2,
                multiplier: 2.0,
            },
        },
        FaultEvent {
            step: 1,
            kind: FaultEventKind::TransientLinkDrop { core: 3 },
        },
        FaultEvent {
            step: 2,
            kind: FaultEventKind::LinkDown { core: 4 },
        },
        FaultEvent {
            step: 3,
            kind: FaultEventKind::LinkDegrade {
                core: 5,
                multiplier: 0.5,
            },
        },
        FaultEvent {
            step: 3,
            kind: FaultEventKind::TransientStall { core: 0 },
        },
        FaultEvent {
            step: 4,
            kind: FaultEventKind::TransientLinkDrop { core: 6 },
        },
    ];
    let timeline = FaultTimeline::from_events(99, noisy.clone());
    let result = run_chain(&chain, Some(timeline), &cfg, None);
    let outcome = oracle.judge(&result);
    let Outcome::Violation(kind) = outcome else {
        panic!("the corrupted salvage must trip the oracle, got {outcome:?}");
    };

    let minimized = shrink(99, &noisy, |candidate| {
        let rerun = run_chain(&chain, Some(candidate.clone()), &cfg, None);
        matches!(oracle.judge(&rerun), Outcome::Violation(k) if k.same_kind(&kind))
    });
    assert!(
        minimized.events <= 3,
        "minimal reproducer has {} events: {}",
        minimized.events,
        minimized.spec
    );
    assert!(minimized.events >= 1);
    assert!(minimized.reductions > 0, "shrinking must actually reduce");

    // The reproducer is replayable from its emitted `--fault-timeline`
    // spec and still fails the same way.
    let replay = FaultTimeline::parse(&minimized.spec, cfg.cores).unwrap();
    let rerun = run_chain(&chain, Some(replay), &cfg, None);
    match oracle.judge(&rerun) {
        Outcome::Violation(k) => assert!(k.same_kind(&kind)),
        other => panic!("replayed reproducer no longer fails: {other:?}"),
    }
}

#[test]
fn campaign_shrinks_mutation_findings_into_its_report() {
    // End-to-end: a campaign over the buggy controller reports violations
    // and attaches minimized reproducers to each violating case.
    let cfg = CampaignConfig {
        seed: 5,
        count: 4,
        profile: Profile::MigrationCross,
        run: RunConfig {
            mutation: RecoveryMutation::CorruptSalvage,
            ..RunConfig::default()
        },
        shrink_violations: true,
    };
    let report = t10_chaos::run_campaign(&cfg).unwrap();
    assert!(!report.clean(), "corrupted salvage must surface violations");
    let shrunk: Vec<_> = report
        .cases
        .iter()
        .filter_map(|c| c.shrunk.as_ref())
        .collect();
    assert!(!shrunk.is_empty(), "violating cases must carry reproducers");
    for sh in shrunk {
        assert!(sh.events <= 3, "{} events: {}", sh.events, sh.spec);
        assert!(FaultTimeline::parse(&sh.spec, cfg.run.cores).is_ok());
    }
}
