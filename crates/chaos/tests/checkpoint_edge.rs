//! Property: a fault landing on the exact superstep a checkpoint is due —
//! the charge-before-snapshot edge — is oracle-clean.
//!
//! The simulator fires due timeline events *before* charging the barrier's
//! auto-checkpoint, so a fatal fault at a checkpoint multiple must roll
//! back to the *previous* snapshot, never to one "taken" at the faulted
//! barrier itself. The differential oracle's checkpoint-regression
//! invariant plus output equivalence pin that edge down across checkpoint
//! intervals, barrier indices, and fault kinds.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use std::sync::OnceLock;

use proptest::prelude::*;
use t10_chaos::{
    chaos_zoo, healthy_frontiers, run_chain, ChainRun, OpChain, Oracle, Outcome, RunConfig,
};
use t10_ir::Tensor;
use t10_sim::{FaultEvent, FaultEventKind, FaultTimeline};

struct Fixture {
    chain: OpChain,
    healthy: ChainRun,
    reference: Tensor,
    horizon: usize,
}

/// One healthy baseline, shared by every sampled case. The functional
/// output is checkpoint-interval-independent (replay is bit-identical), so
/// a default-policy baseline judges runs under any `checkpoint_every`.
fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut zoo = chaos_zoo().unwrap();
        let chain = zoo.remove(0);
        let cfg = RunConfig::default();
        let warm = healthy_frontiers(&chain, cfg.cores).unwrap();
        let healthy = run_chain(&chain, None, &cfg, Some(&warm)).unwrap();
        let reference = chain.reference_output().unwrap();
        let horizon = healthy.reports.iter().map(|r| r.steps).sum();
        Fixture {
            chain,
            healthy,
            reference,
            horizon,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// A fatal fault at `checkpoint_every * k` — due exactly when the
    /// barrier's snapshot would be charged — recovers without tripping any
    /// oracle part (no checkpoint regression, no output divergence).
    #[test]
    fn fatal_fault_on_the_checkpoint_superstep_is_oracle_clean(
        every in 1usize..5,
        barrier in 0usize..6,
        core in 0usize..8,
        kill in 0usize..2,
    ) {
        let fix = fixture();
        let step = every * barrier;
        prop_assume!(step < fix.horizon);
        let kind = if kill == 1 {
            FaultEventKind::CoreDead { core }
        } else {
            FaultEventKind::LinkDown { core }
        };
        let tl = FaultTimeline::from_events(0, [FaultEvent { step, kind }]);

        let mut cfg = RunConfig::default();
        cfg.policy.checkpoint_every = every;
        let oracle = Oracle {
            chain: &fix.chain,
            healthy: &fix.healthy,
            reference: &fix.reference,
            cores: cfg.cores,
        };
        let result = run_chain(&fix.chain, Some(tl), &cfg, None);
        let outcome = oracle.judge(&result);
        prop_assert!(
            !matches!(outcome, Outcome::Violation(_)),
            "every={every} barrier={barrier} core={core} kill={kill}: {outcome:?}"
        );
        // The fault fired, so the controller must actually have re-planned.
        if let Ok(run) = &result {
            prop_assert!(run.recompiles() >= 1);
            for audit in &run.audits {
                prop_assert!(audit.invariant_violations().is_empty());
            }
        }
    }

    /// A transient fault at the same edge replays from the previous
    /// snapshot and stays bit-identical to the healthy run.
    #[test]
    fn transient_fault_on_the_checkpoint_superstep_replays_bitwise(
        every in 1usize..5,
        barrier in 0usize..6,
        core in 0usize..8,
    ) {
        let fix = fixture();
        let step = every * barrier;
        prop_assume!(step < fix.horizon);
        let tl = FaultTimeline::from_events(
            0,
            [FaultEvent { step, kind: FaultEventKind::TransientLinkDrop { core } }],
        );
        let mut cfg = RunConfig::default();
        cfg.policy.checkpoint_every = every;
        let oracle = Oracle {
            chain: &fix.chain,
            healthy: &fix.healthy,
            reference: &fix.reference,
            cores: cfg.cores,
        };
        let result = run_chain(&fix.chain, Some(tl), &cfg, None);
        prop_assert_eq!(oracle.judge(&result), Outcome::Healed);
        let run = result.unwrap();
        prop_assert_eq!(run.recompiles(), 0);
        prop_assert!(run.output.approx_eq(&fix.healthy.output, 0.0));
    }
}
