//! The three-part differential oracle: output equivalence, certified
//! recompiles, recovery invariants.
//!
//! The oracle never trusts the run's own claim of success. It re-derives
//! the verdict from evidence: the healthy functional run (bitwise baseline
//! for replay-only recoveries), the naive reference executor (tolerance
//! baseline once a re-plan reassociated floating point), the controller's
//! [`RecoveryAudit`] (certification and invariant evidence), and the
//! [`RunReport`](t10_sim::RunReport) accounting.

use t10_core::CompileError;
use t10_ir::Tensor;

use crate::harness::ChainRun;
use crate::target::OpChain;

/// Why a run was judged an oracle violation.
#[derive(Debug, Clone, PartialEq)]
pub enum ViolationKind {
    /// The healed output does not match its baseline: bitwise against the
    /// healthy run when no recompile happened, within `1e-4` of the
    /// reference executor otherwise.
    OutputDiverged {
        /// Max absolute elementwise difference observed.
        diff: f32,
        /// Whether the bitwise (no-recompile) baseline applied.
        bitwise: bool,
    },
    /// A unit ran without passing the verify/prove gate.
    UncertifiedUnit,
    /// More recoveries happened than the policy's cap allows.
    RetryCapExceeded,
    /// The checkpoint/restore history is inconsistent (restore to an
    /// unlogged snapshot, or a snapshot behind a rewind point).
    CheckpointRegression,
    /// The `RunReport` recovery statistics disagree with the audit.
    AccountingMismatch,
    /// The run failed with an error the fault schedule cannot explain.
    UnexpectedError {
        /// The error's display form.
        detail: String,
    },
}

impl ViolationKind {
    /// Stable label for reports and CI grep.
    pub fn label(&self) -> &'static str {
        match self {
            Self::OutputDiverged { .. } => "output-diverged",
            Self::UncertifiedUnit => "uncertified-unit",
            Self::RetryCapExceeded => "retry-cap-exceeded",
            Self::CheckpointRegression => "checkpoint-regression",
            Self::AccountingMismatch => "accounting-mismatch",
            Self::UnexpectedError { .. } => "unexpected-error",
        }
    }

    /// Same violation class, payloads ignored — the shrinker's judgement
    /// of "does this smaller timeline still fail the same way".
    pub fn same_kind(&self, other: &ViolationKind) -> bool {
        self.label() == other.label()
    }
}

/// The campaign outcome taxonomy.
#[derive(Debug, Clone, PartialEq)]
pub enum Outcome {
    /// Completed on the full chip; output and invariants check out.
    Healed,
    /// Completed correctly, but core death shrank the chip.
    DegradedOk,
    /// The controller gave up in a way the fault schedule explains: the
    /// retry budget was genuinely exhausted, the last core died, or the
    /// degraded machine could no longer fit the program.
    UnrecoverableExpected,
    /// The oracle caught the recovery stack misbehaving.
    Violation(ViolationKind),
}

impl Outcome {
    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Healed => "healed",
            Self::DegradedOk => "degraded-ok",
            Self::UnrecoverableExpected => "unrecoverable-expected",
            Self::Violation(_) => "ORACLE-VIOLATION",
        }
    }
}

/// Judges chain runs against a fixed healthy baseline.
pub struct Oracle<'a> {
    /// The chain under test.
    pub chain: &'a OpChain,
    /// The healthy functional run (bitwise baseline, healthy timing).
    pub healthy: &'a ChainRun,
    /// The reference executor's output (tolerance baseline).
    pub reference: &'a Tensor,
    /// Cores the healthy chip has.
    pub cores: usize,
}

/// Tolerance for post-recompile comparisons: a re-planned matmul
/// reassociates its reduction, so bit-identity is only owed when the
/// original plan replayed.
pub const REPLAN_TOLERANCE: f32 = 1e-4;

impl Oracle<'_> {
    /// Applies all three oracle parts to a finished (or failed) run.
    pub fn judge(&self, result: &Result<ChainRun, CompileError>) -> Outcome {
        let run = match result {
            Ok(run) => run,
            Err(CompileError::Unrecoverable { .. }) => return Outcome::UnrecoverableExpected,
            // A shrunk or degraded machine can genuinely stop fitting the
            // program; the controller surfaces that as a typed resource
            // error rather than healing. Anything else is unexplained.
            Err(CompileError::OutOfMemory { .. }) | Err(CompileError::PlanInfeasible { .. }) => {
                return Outcome::UnrecoverableExpected
            }
            Err(e) => {
                return Outcome::Violation(ViolationKind::UnexpectedError {
                    detail: e.to_string(),
                })
            }
        };

        // Part 3a: recovery invariants, re-derived from the audit evidence.
        for audit in &run.audits {
            if audit.retries.len() > audit.max_retries {
                return Outcome::Violation(ViolationKind::RetryCapExceeded);
            }
            if audit.units.iter().any(|u| !u.verified || !u.proved) {
                return Outcome::Violation(ViolationKind::UncertifiedUnit);
            }
            if !audit.invariant_violations().is_empty() {
                return Outcome::Violation(ViolationKind::CheckpointRegression);
            }
        }

        // Part 3b: the public RunReport must agree with the audit.
        if !accounting_consistent(run) {
            return Outcome::Violation(ViolationKind::AccountingMismatch);
        }

        // Part 1: output equivalence against the right baseline.
        let bitwise = run.recompiles() == 0;
        let (baseline, tol) = if bitwise {
            (&self.healthy.output, 0.0)
        } else {
            (self.reference, REPLAN_TOLERANCE)
        };
        if !run.output.approx_eq(baseline, tol) {
            return Outcome::Violation(ViolationKind::OutputDiverged {
                diff: run.output.max_abs_diff(baseline),
                bitwise,
            });
        }

        if run.final_cores < self.cores {
            Outcome::DegradedOk
        } else {
            Outcome::Healed
        }
    }
}

/// Part 3b: every operator's `RunReport.recovery` statistics must match
/// what the audit saw the controller do.
fn accounting_consistent(run: &ChainRun) -> bool {
    if run.reports.len() != run.audits.len() {
        return false;
    }
    for (report, audit) in run.reports.iter().zip(&run.audits) {
        let Some(rec) = &report.recovery else {
            // The controller always folds a RecoveryReport in.
            return false;
        };
        let transients = audit.retries.iter().filter(|r| r.transient).count();
        let replans = audit.retries.iter().filter(|r| !r.transient).count();
        if rec.transient_retries != transients
            || rec.recompiles != replans
            || rec.events.len() != audit.retries.len()
        {
            return false;
        }
        let audit_backoff: f64 = audit.retries.iter().map(|r| r.backoff).sum();
        if (rec.backoff_time - audit_backoff).abs() > 1e-12 {
            return false;
        }
        let audit_lost: usize = audit.retries.iter().map(|r| r.supersteps_lost).sum();
        if rec.supersteps_lost != audit_lost {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::indexing_slicing)]
    use super::*;
    use crate::harness::{run_chain, RunConfig};
    use crate::target::chaos_zoo;
    use t10_sim::FaultTimeline;

    fn fixture() -> (crate::target::OpChain, ChainRun, Tensor, RunConfig) {
        let mut zoo = chaos_zoo().unwrap();
        let chain = zoo.remove(0);
        let cfg = RunConfig::default();
        let healthy = run_chain(&chain, None, &cfg, None).unwrap();
        let reference = chain.reference_output().unwrap();
        (chain, healthy, reference, cfg)
    }

    #[test]
    fn healthy_run_judges_healed() {
        let (chain, healthy, reference, cfg) = fixture();
        let oracle = Oracle {
            chain: &chain,
            healthy: &healthy,
            reference: &reference,
            cores: cfg.cores,
        };
        let again = run_chain(&chain, None, &cfg, None);
        assert_eq!(oracle.judge(&again), Outcome::Healed);
    }

    #[test]
    fn transient_recovery_judges_healed_core_death_degraded_ok() {
        let (chain, healthy, reference, cfg) = fixture();
        let oracle = Oracle {
            chain: &chain,
            healthy: &healthy,
            reference: &reference,
            cores: cfg.cores,
        };
        let tl = FaultTimeline::parse("drop=2@1", cfg.cores).unwrap();
        let run = run_chain(&chain, Some(tl), &cfg, None);
        assert_eq!(oracle.judge(&run), Outcome::Healed);

        let tl = FaultTimeline::parse("kill=1@3", cfg.cores).unwrap();
        let run = run_chain(&chain, Some(tl), &cfg, None);
        assert_eq!(oracle.judge(&run), Outcome::DegradedOk);
    }

    #[test]
    fn exhausted_budget_is_expected_not_a_violation() {
        let (chain, healthy, reference, mut cfg) = fixture();
        cfg.policy.max_retries = 0;
        let oracle = Oracle {
            chain: &chain,
            healthy: &healthy,
            reference: &reference,
            cores: cfg.cores,
        };
        let tl = FaultTimeline::parse("down=1@2", cfg.cores).unwrap();
        let run = run_chain(&chain, Some(tl), &cfg, None);
        assert_eq!(oracle.judge(&run), Outcome::UnrecoverableExpected);
    }

    #[test]
    fn corrupt_salvage_is_caught_as_output_divergence() {
        let (chain, healthy, reference, mut cfg) = fixture();
        cfg.mutation = t10_core::RecoveryMutation::CorruptSalvage;
        let oracle = Oracle {
            chain: &chain,
            healthy: &healthy,
            reference: &reference,
            cores: cfg.cores,
        };
        let tl = FaultTimeline::parse("down=1@2", cfg.cores).unwrap();
        let run = run_chain(&chain, Some(tl), &cfg, None);
        match oracle.judge(&run) {
            Outcome::Violation(ViolationKind::OutputDiverged { bitwise, .. }) => {
                assert!(!bitwise, "a re-plan happened, tolerance baseline applies");
            }
            other => panic!("expected OutputDiverged, got {other:?}"),
        }
    }

    #[test]
    fn skipped_verification_is_caught_as_uncertified_unit() {
        let (chain, healthy, reference, mut cfg) = fixture();
        cfg.mutation = t10_core::RecoveryMutation::SkipVerification;
        let oracle = Oracle {
            chain: &chain,
            healthy: &healthy,
            reference: &reference,
            cores: cfg.cores,
        };
        let tl = FaultTimeline::parse("down=1@2", cfg.cores).unwrap();
        let run = run_chain(&chain, Some(tl), &cfg, None);
        assert_eq!(
            oracle.judge(&run),
            Outcome::Violation(ViolationKind::UncertifiedUnit)
        );
    }
}
