//! Adversarial fault-space exploration for the T10 recovery stack.
//!
//! PRs 1–2 gave the simulator seeded fault injection and a self-healing
//! [`RecoveryController`](t10_core::RecoveryController); PRs 4–5 gated
//! every (re)compiled plan behind `t10-verify` + `t10-prove`. This crate is
//! the engine that *attacks* that stack: it generates randomized
//! [`FaultTimeline`](t10_sim::FaultTimeline)s from a tunable [grammar],
//! executes each through the full run+recovery path, and judges the result
//! with a three-part differential [oracle]:
//!
//! 1. **output equivalence** — a healed run that never recompiled must be
//!    bit-identical to the healthy functional run (replay recomputes the
//!    same f32 operations on the same state); a run that re-planned must
//!    match the naive reference executor within tolerance (a new plan
//!    reassociates floating-point reductions);
//! 2. **certified recompiles** — every unit the controller ran, initial
//!    compile and every recovery recompile, passed the static verifier and
//!    the translation validator;
//! 3. **recovery invariants** — the retry cap was respected, no checkpoint
//!    regression occurred (every restore targets a logged checkpoint, no
//!    later snapshot lands before a rewind point), and the
//!    [`RunReport`](t10_sim::RunReport) accounting agrees with the
//!    controller's [`RecoveryAudit`](t10_core::RecoveryAudit).
//!
//! Timelines that trip the oracle are [shrunk][shrink] to minimal
//! reproducers — drop, then advance, fault events while the same violation
//! persists — and emitted as replayable `--fault-timeline` specs. Whole
//! [campaigns][campaign] report a machine-readable summary (outcome
//! taxonomy, recovery-overhead percentiles, shrink steps) onto the
//! [`PID_CHAOS`](t10_trace::PID_CHAOS) trace track.
//!
//! The crate is the dynamic counterpart to `t10-prove`'s static translation
//! validation: the prover certifies that one compiled program is faithful,
//! the chaos engine certifies that the *system around it* — checkpointing,
//! rollback, recompilation, migration — preserves that faithfulness under
//! fire.

pub mod cachefault;
pub mod campaign;
pub mod corpus;
pub mod grammar;
pub mod harness;
pub mod oracle;
pub mod report;
pub mod rng;
pub mod shrink;
pub mod target;

pub use cachefault::{
    cache_campaign_json, run_cache_campaign, CacheCampaignConfig, CacheCampaignReport, CacheFault,
    CacheViolation,
};
pub use campaign::{run_campaign, CampaignConfig, CampaignReport, CaseOutcome};
pub use corpus::{parse_corpus, replay, ReplayOutcome};
pub use grammar::{Grammar, Profile};
pub use harness::{healthy_frontiers, run_chain, ChainRun, RunConfig};
pub use oracle::{Oracle, Outcome, ViolationKind};
pub use report::{bench_json, campaign_json};
pub use rng::{mix, XorShift};
pub use shrink::{shrink, ShrinkOutcome};
pub use target::{chaos_zoo, single_node_graph, OpChain};

/// Result alias over the compiler's error type (IR and device errors
/// convert into it).
pub type Result<T> = std::result::Result<T, t10_core::CompileError>;
