//! Executes an [`OpChain`] through the full compile → run → recover path,
//! exactly as the CLI's `run` subcommand does: operator by operator under a
//! [`RecoveryController`], threading the surviving chip, fault plan,
//! timeline, and global step numbering from one operator to the next.
//!
//! Campaigns run hundreds of these, so the harness accepts precomputed
//! healthy Pareto frontiers ([`healthy_frontiers`]) and warm-starts every
//! initial compile from them while the machine is still pristine — the
//! search is skipped verbatim and a case costs little more than its
//! functional execution.

use std::time::Instant;

use t10_core::lower::lower_functional;
use t10_core::search::{ParetoSet, SearchConfig};
use t10_core::{
    CompileError, CompileOptions, Compiler, RecoveryAudit, RecoveryController, RecoveryMutation,
    RecoveryPolicy, RecoveryUnit,
};
use t10_device::ChipSpec;
use t10_ir::Tensor;
use t10_sim::{FaultPlan, FaultTimeline, RunReport, SimulatorMode};
use t10_trace::Trace;

use crate::target::{single_node_graph, OpChain};
use crate::Result;

/// How the harness executes a chain.
#[derive(Clone)]
pub struct RunConfig {
    /// Cores on the (initially healthy) chip.
    pub cores: usize,
    /// The recovery policy in force.
    pub policy: RecoveryPolicy,
    /// Intentionally-buggy controller behavior (tests only).
    pub mutation: RecoveryMutation,
    /// Structured-event sink threaded through controller and simulators.
    pub trace: Trace,
    /// Metric registry threaded through controller and compiles.
    /// [`crate::run_campaign`] replaces this with its own logical-clock
    /// registry so campaign snapshots stay deterministic.
    pub metrics: t10_metrics::Registry,
}

impl Default for RunConfig {
    fn default() -> Self {
        Self {
            cores: 8,
            policy: RecoveryPolicy {
                // Storm profiles queue more faults than the production
                // default of 3; give healing room to actually heal.
                max_retries: 8,
                ..RecoveryPolicy::default()
            },
            mutation: RecoveryMutation::default(),
            trace: Trace::disabled(),
            metrics: t10_metrics::Registry::disabled(),
        }
    }
}

/// Everything one chain execution produced, oracle-visible.
pub struct ChainRun {
    /// The chain's final output tensor.
    pub output: Tensor,
    /// Per-operator run reports.
    pub reports: Vec<RunReport>,
    /// Per-operator recovery audits.
    pub audits: Vec<RecoveryAudit>,
    /// Cores surviving at the end of the chain.
    pub final_cores: usize,
    /// Wall-clock latency of every compile the run performed (initial and
    /// recovery recompiles), in microseconds. **Not deterministic** — used
    /// only for the perf-trajectory baseline, never in campaign reports.
    pub compile_wall_us: Vec<f64>,
}

impl ChainRun {
    /// Total simulated seconds across the chain.
    pub fn total_time(&self) -> f64 {
        self.reports.iter().map(|r| r.total_time).sum()
    }

    /// Total simulated seconds spent taking checkpoints.
    pub fn checkpoint_time(&self) -> f64 {
        self.reports.iter().map(|r| r.checkpoint_time).sum()
    }

    /// Total seconds spent waiting out retry backoff.
    pub fn backoff_time(&self) -> f64 {
        self.reports
            .iter()
            .filter_map(|r| r.recovery.as_ref())
            .map(|r| r.backoff_time)
            .sum()
    }

    /// Simulated execution seconds excluding backoff waits. The policy's
    /// backoff is wall-delay (milliseconds) while these chains simulate in
    /// microseconds; overhead comparisons only make sense without it.
    pub fn execution_time(&self) -> f64 {
        self.total_time() - self.backoff_time()
    }

    /// Total recovery events (transient retries + re-plans).
    pub fn recoveries(&self) -> usize {
        self.audits.iter().map(RecoveryAudit::recoveries).sum()
    }

    /// Total recovery recompiles.
    pub fn recompiles(&self) -> usize {
        self.audits
            .iter()
            .flat_map(|a| a.retries.iter())
            .filter(|r| !r.transient)
            .count()
    }

    /// Total transient retries.
    pub fn transient_retries(&self) -> usize {
        self.audits
            .iter()
            .flat_map(|a| a.retries.iter())
            .filter(|r| r.transient)
            .count()
    }
}

/// Compiles every operator of `chain` once on the healthy chip and returns
/// the Pareto frontiers, for warm-starting campaign cases.
pub fn healthy_frontiers(chain: &OpChain, cores: usize) -> Result<Vec<Vec<ParetoSet>>> {
    let spec = ChipSpec::ipu_with_cores(cores);
    let compiler = Compiler::new(spec, SearchConfig::fast());
    let mut frontiers = Vec::with_capacity(chain.ops.len());
    for op in &chain.ops {
        let graph = single_node_graph(op)?;
        let (pareto, _) = compiler.compile_node(&graph, 0)?;
        frontiers.push(vec![pareto]);
    }
    Ok(frontiers)
}

/// Runs `chain` under `timeline`, recovering as needed. `warm` optionally
/// holds per-operator healthy frontiers; they are offered to each
/// operator's *initial* compile only while the machine is pristine (full
/// cores, clean fault plan) — a degraded machine always searches fresh.
pub fn run_chain(
    chain: &OpChain,
    timeline: Option<FaultTimeline>,
    cfg: &RunConfig,
    warm: Option<&[Vec<ParetoSet>]>,
) -> Result<ChainRun> {
    let controller = RecoveryController::new(SimulatorMode::Functional, cfg.policy.clone())
        .with_trace(cfg.trace.clone())
        .with_mutation(cfg.mutation)
        .with_metrics(cfg.metrics.clone());
    let mut spec = ChipSpec::ipu_with_cores(cfg.cores);
    let pristine_faults = FaultPlan::new(cfg.cores);
    let mut faults = pristine_faults.clone();
    let mut timeline = timeline;
    let mut offset = 0usize;
    let mut reports = Vec::new();
    let mut audits = Vec::new();
    let mut compile_wall_us = Vec::new();
    let mut act = chain.input.clone();

    for (i, op) in chain.ops.iter().enumerate() {
        let graph = single_node_graph(op)?;
        let weight = chain
            .weights
            .get(i)
            .ok_or_else(|| CompileError::internal(format!("no weight for op {i}")))?;
        let inputs = vec![act.clone(), weight.clone()];
        let pristine = spec.num_cores == cfg.cores && faults == pristine_faults;
        let healthy_warm = if pristine {
            warm.and_then(|w| w.get(i)).map(Vec::as_slice)
        } else {
            None
        };
        let mut walls: Vec<f64> = Vec::new();
        let recovered = controller.execute(
            &spec,
            faults.clone(),
            timeline.take(),
            offset,
            &inputs,
            |spec, faults, controller_warm| {
                let t0 = Instant::now();
                let compiler = Compiler::new(spec.clone(), SearchConfig::fast());
                let opts = CompileOptions {
                    deadline: None,
                    faults: Some(faults.clone()),
                    warm_start: controller_warm.or(healthy_warm).map(<[_]>::to_vec),
                    metrics: cfg.metrics.clone(),
                    ..CompileOptions::default()
                };
                let (pareto, _) = compiler.compile_node_with(&graph, 0, &opts)?;
                let unit = pareto
                    .plans()
                    .iter()
                    .find_map(|sp| {
                        lower_functional(op, &sp.plan).ok().map(|f| RecoveryUnit {
                            program: f.program,
                            pareto: vec![pareto.clone()],
                            input_buffers: f.input_buffers,
                            output_buffers: f.output_buffers,
                            // Single-operator unit: no inter-operator
                            // boundaries to certify.
                            graph_edges: vec![],
                            boundaries: vec![],
                        })
                    })
                    .ok_or_else(|| CompileError::infeasible("no functionally-lowerable plan"));
                walls.push(t0.elapsed().as_secs_f64() * 1e6);
                unit
            },
        )?;
        compile_wall_us.append(&mut walls);
        act = recovered
            .sim
            .extract(&recovered.unit.output_buffers, &op.expr.output_shape())?;
        reports.push(recovered.report);
        audits.push(recovered.audit);
        spec = recovered.spec;
        faults = recovered.faults;
        timeline = recovered.timeline;
        offset = recovered.next_step_offset;
    }
    Ok(ChainRun {
        output: act,
        reports,
        audits,
        final_cores: spec.num_cores,
        compile_wall_us,
    })
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::indexing_slicing)]
    use super::*;
    use crate::target::chaos_zoo;

    #[test]
    fn healthy_chain_matches_reference_and_is_bitwise_reproducible() {
        let zoo = chaos_zoo().unwrap();
        let chain = &zoo[0];
        let cfg = RunConfig::default();
        let warm = healthy_frontiers(chain, cfg.cores).unwrap();
        let a = run_chain(chain, None, &cfg, Some(&warm)).unwrap();
        let b = run_chain(chain, None, &cfg, Some(&warm)).unwrap();
        assert!(
            a.output.approx_eq(&b.output, 0.0),
            "healthy runs are bitwise"
        );
        let want = chain.reference_output().unwrap();
        assert!(a.output.approx_eq(&want, 1e-4));
        assert_eq!(a.recoveries(), 0);
        assert_eq!(a.final_cores, cfg.cores);
    }

    #[test]
    fn warm_started_run_matches_cold_run_bitwise() {
        let zoo = chaos_zoo().unwrap();
        let chain = &zoo[1];
        let cfg = RunConfig::default();
        let warm = healthy_frontiers(chain, cfg.cores).unwrap();
        let cold = run_chain(chain, None, &cfg, None).unwrap();
        let hot = run_chain(chain, None, &cfg, Some(&warm)).unwrap();
        assert!(cold.output.approx_eq(&hot.output, 0.0));
    }

    #[test]
    fn faulted_chain_recovers_and_audits_stay_clean() {
        let zoo = chaos_zoo().unwrap();
        let chain = &zoo[0];
        let cfg = RunConfig::default();
        let tl = FaultTimeline::parse("down=1@2,drop=3@1", cfg.cores).unwrap();
        let run = run_chain(chain, Some(tl), &cfg, None).unwrap();
        assert!(run.recoveries() >= 2);
        assert!(run.recompiles() >= 1);
        for audit in &run.audits {
            assert!(audit.invariant_violations().is_empty());
        }
        let want = chain.reference_output().unwrap();
        assert!(run.output.approx_eq(&want, 1e-4));
    }
}
