//! Seeded randomness for timeline generation: the same xorshift64* family
//! the simulator's fault substrates use, so campaigns are deterministic
//! end-to-end — same seed, same timelines, same verdicts, same report
//! bytes.

/// Derives the per-case seed for campaign case `i` from the campaign seed:
/// a splitmix64 finalizer over the pair, so neighbouring cases draw
/// unrelated streams.
pub fn mix(seed: u64, i: u64) -> u64 {
    let mut x = seed
        .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A tiny xorshift64* generator (scrambled so seed 0 still streams).
#[derive(Debug, Clone)]
pub struct XorShift {
    state: u64,
}

impl XorShift {
    /// A generator seeded with the same splitmix-style scramble as
    /// [`t10_sim::FaultTimeline::seeded`].
    pub fn new(seed: u64) -> Self {
        let s = seed ^ 0x9E37_79B9_7F4A_7C15;
        Self {
            state: if s == 0 { 0x9E37_79B9_7F4A_7C15 } else { s },
        }
    }

    /// The next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A draw uniform in `[0, n)` (`n` must be nonzero).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// A draw uniform in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// A uniform pick from a non-empty slice.
    pub fn pick<'a, T>(&mut self, xs: &'a [T]) -> Option<&'a T> {
        if xs.is_empty() {
            None
        } else {
            xs.get(self.below(xs.len()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = XorShift::new(7);
        let mut b = XorShift::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = XorShift::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn mix_separates_neighbouring_cases() {
        let seeds: Vec<u64> = (0..16).map(|i| mix(42, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "case seeds collide");
    }

    #[test]
    fn unit_stays_in_range() {
        let mut r = XorShift::new(3);
        for _ in 0..256 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
