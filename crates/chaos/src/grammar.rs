//! The timeline grammar: seeded generation of adversarial fault schedules.
//!
//! A [`Grammar`] turns a seed into a [`FaultTimeline`] under one of six
//! [`Profile`]s. The uniform profile samples the whole fault space; the
//! adversarial profiles target the places recovery is most likely to break:
//! checkpoint barriers (a storm of transients at one snapshot boundary),
//! migration windows (a second fault right where a re-planned unit
//! restarts), already-degraded resources (kill the core that was slowed
//! first), and recovery itself (a transient storm queued at the same
//! barrier as a fatal fault, so it lands on the freshly recompiled unit).
//!
//! Generation is pure: same grammar, same profile, same seed → the same
//! timeline, which is what makes every campaign case replayable from its
//! reported `--fault-timeline` spec.

use t10_sim::{FaultEventKind, FaultTimeline};

use crate::rng::XorShift;

/// Which region of the fault space to sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Profile {
    /// Uniform kinds, steps, and cores — the unbiased baseline.
    Uniform,
    /// A burst of transient faults at a single checkpoint barrier.
    BarrierStorm,
    /// A persistent fault, then more faults inside the migration window
    /// right after the re-planned unit restarts.
    MigrationCross,
    /// Degrade a resource first, then kill the same resource.
    DegradedTarget,
    /// A fatal fault with a transient storm queued at the same barrier, so
    /// the storm lands during recovery.
    RecoveryStorm,
    /// Every case draws one of the profiles above at random.
    Mixed,
}

impl Profile {
    /// Every concrete profile (excluding [`Profile::Mixed`] itself).
    pub const CONCRETE: [Profile; 5] = [
        Profile::Uniform,
        Profile::BarrierStorm,
        Profile::MigrationCross,
        Profile::DegradedTarget,
        Profile::RecoveryStorm,
    ];

    /// The profile's CLI / report name.
    pub fn name(&self) -> &'static str {
        match self {
            Profile::Uniform => "uniform",
            Profile::BarrierStorm => "barrier-storm",
            Profile::MigrationCross => "migration-cross",
            Profile::DegradedTarget => "degraded-target",
            Profile::RecoveryStorm => "recovery-storm",
            Profile::Mixed => "mixed",
        }
    }

    /// Parses a CLI profile name.
    pub fn parse(s: &str) -> Option<Profile> {
        match s {
            "uniform" => Some(Profile::Uniform),
            "barrier-storm" => Some(Profile::BarrierStorm),
            "migration-cross" => Some(Profile::MigrationCross),
            "degraded-target" => Some(Profile::DegradedTarget),
            "recovery-storm" => Some(Profile::RecoveryStorm),
            "mixed" => Some(Profile::Mixed),
            _ => None,
        }
    }
}

/// Tunable bounds for timeline generation.
#[derive(Debug, Clone)]
pub struct Grammar {
    /// Cores on the target chip (events address cores `0..cores`).
    pub cores: usize,
    /// Global supersteps the healthy run takes; event steps are drawn from
    /// `[0, horizon)` so every event can actually fire.
    pub horizon: usize,
    /// The recovery policy's checkpoint interval (barrier-storm profiles
    /// aim at its multiples).
    pub checkpoint_every: usize,
    /// Ceiling on core-death events per timeline (kept below `cores − 1`
    /// so most campaigns exercise healing rather than guaranteed death).
    pub max_kills: usize,
}

impl Grammar {
    /// A grammar for a `cores`-core chip whose healthy run takes `horizon`
    /// supersteps, checkpointing every `checkpoint_every`.
    pub fn new(cores: usize, horizon: usize, checkpoint_every: usize) -> Self {
        Self {
            cores,
            horizon: horizon.max(2),
            checkpoint_every: checkpoint_every.max(1),
            max_kills: cores.saturating_sub(2).min(2),
        }
    }

    /// Generates one timeline for `profile` from `seed`.
    pub fn generate(&self, profile: Profile, seed: u64) -> FaultTimeline {
        let mut rng = XorShift::new(seed);
        let profile = match profile {
            Profile::Mixed => {
                let i = rng.below(Profile::CONCRETE.len());
                *Profile::CONCRETE.get(i).unwrap_or(&Profile::Uniform)
            }
            p => p,
        };
        let mut events: Vec<(usize, FaultEventKind)> = Vec::new();
        let mut kills = 0usize;
        match profile {
            Profile::Uniform => {
                let n = 1 + rng.below(4);
                for _ in 0..n {
                    let step = rng.below(self.horizon);
                    let kind = self.any_kind(&mut rng, &mut kills);
                    events.push((step, kind));
                }
            }
            Profile::BarrierStorm => {
                // Aim the storm at a checkpoint multiple: the snapshot for
                // this barrier is charged *after* due events fire, so the
                // storm replays against the previous checkpoint every time.
                let barriers = (self.horizon / self.checkpoint_every).max(1);
                let barrier = self.checkpoint_every * rng.below(barriers);
                let n = 3 + rng.below(4);
                for _ in 0..n {
                    events.push((barrier, self.transient(&mut rng)));
                }
            }
            Profile::MigrationCross => {
                let s0 = 1 + rng.below(self.horizon / 2);
                events.push((s0, self.persistent(&mut rng, &mut kills)));
                // The re-planned unit restarts with step offset s0, so
                // events at s0..s0+2 land inside the migration window.
                let n = 1 + rng.below(3);
                for _ in 0..n {
                    let step = s0 + rng.below(3);
                    let kind = if rng.unit() < 0.3 {
                        self.persistent(&mut rng, &mut kills)
                    } else {
                        self.transient(&mut rng)
                    };
                    events.push((step, kind));
                }
            }
            Profile::DegradedTarget => {
                let core = rng.below(self.cores);
                let s0 = rng.below(self.horizon / 2 + 1);
                let degrade = if rng.unit() < 0.5 {
                    FaultEventKind::LinkDegrade {
                        core,
                        multiplier: *rng.pick(&[0.25, 0.5, 0.75]).unwrap_or(&0.5),
                    }
                } else {
                    FaultEventKind::CoreSlow {
                        core,
                        multiplier: *rng.pick(&[1.5, 2.0, 3.0]).unwrap_or(&2.0),
                    }
                };
                events.push((s0, degrade));
                // Then kill the thing we just weakened.
                let s1 = s0 + 1 + rng.below(self.horizon / 2 + 1);
                let fatal = if self.max_kills > 0 && rng.unit() < 0.5 {
                    FaultEventKind::CoreDead { core }
                } else {
                    FaultEventKind::LinkDown { core }
                };
                events.push((s1, fatal));
            }
            Profile::RecoveryStorm => {
                let s0 = 1 + rng.below(self.horizon / 2);
                events.push((s0, self.persistent(&mut rng, &mut kills)));
                // Same-barrier transients queue behind the fatal event and
                // fire one per attempt against the recompiled unit.
                let n = 2 + rng.below(3);
                for _ in 0..n {
                    events.push((s0, self.transient(&mut rng)));
                }
            }
            Profile::Mixed => unreachable!("resolved above"),
        }
        FaultTimeline::from_events(
            seed,
            events
                .into_iter()
                .map(|(step, kind)| t10_sim::FaultEvent { step, kind }),
        )
    }

    fn transient(&self, rng: &mut XorShift) -> FaultEventKind {
        let core = rng.below(self.cores);
        if rng.unit() < 0.5 {
            FaultEventKind::TransientLinkDrop { core }
        } else {
            FaultEventKind::TransientStall { core }
        }
    }

    fn persistent(&self, rng: &mut XorShift, kills: &mut usize) -> FaultEventKind {
        let core = rng.below(self.cores);
        if *kills < self.max_kills && rng.unit() < 0.4 {
            *kills += 1;
            FaultEventKind::CoreDead { core }
        } else {
            FaultEventKind::LinkDown { core }
        }
    }

    fn any_kind(&self, rng: &mut XorShift, kills: &mut usize) -> FaultEventKind {
        let core = rng.below(self.cores);
        match rng.below(6) {
            0 => FaultEventKind::TransientLinkDrop { core },
            1 => FaultEventKind::TransientStall { core },
            2 => FaultEventKind::LinkDegrade {
                core,
                multiplier: *rng.pick(&[0.25, 0.5, 0.75]).unwrap_or(&0.5),
            },
            3 => FaultEventKind::CoreSlow {
                core,
                multiplier: *rng.pick(&[1.5, 2.0, 3.0]).unwrap_or(&2.0),
            },
            4 => FaultEventKind::LinkDown { core },
            _ => {
                if *kills < self.max_kills {
                    *kills += 1;
                    FaultEventKind::CoreDead { core }
                } else {
                    FaultEventKind::LinkDown { core }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::indexing_slicing)]
    use super::*;

    fn grammar() -> Grammar {
        Grammar::new(8, 12, 4)
    }

    #[test]
    fn generation_is_deterministic() {
        let g = grammar();
        for profile in Profile::CONCRETE.into_iter().chain([Profile::Mixed]) {
            for seed in 0..32 {
                let a = g.generate(profile, seed);
                let b = g.generate(profile, seed);
                assert_eq!(a, b, "{} seed {seed}", profile.name());
            }
        }
    }

    #[test]
    fn events_respect_the_grammar_bounds() {
        let g = grammar();
        for seed in 0..64 {
            let tl = g.generate(Profile::Mixed, seed);
            assert!(!tl.events().is_empty());
            let kills = tl
                .events()
                .iter()
                .filter(|e| matches!(e.kind, FaultEventKind::CoreDead { .. }))
                .count();
            assert!(kills <= g.max_kills, "seed {seed}: {kills} kills");
            for ev in tl.events() {
                assert!(ev.kind.core() < g.cores);
            }
        }
    }

    #[test]
    fn barrier_storm_targets_one_checkpoint_multiple() {
        let g = grammar();
        for seed in 0..32 {
            let tl = g.generate(Profile::BarrierStorm, seed);
            let steps: Vec<usize> = tl.events().iter().map(|e| e.step).collect();
            assert!(steps.windows(2).all(|w| w[0] == w[1]), "one barrier");
            assert_eq!(steps[0] % g.checkpoint_every, 0, "on a checkpoint");
            assert!(tl.events().iter().all(|e| e.kind.is_transient()));
        }
    }

    #[test]
    fn generated_timelines_round_trip_their_spec() {
        let g = grammar();
        for seed in 0..32 {
            let tl = g.generate(Profile::Mixed, seed);
            let spec = tl.to_spec();
            let back = t10_sim::FaultTimeline::parse(&spec, g.cores).unwrap();
            assert_eq!(back, tl, "seed {seed}: {spec}");
        }
    }

    #[test]
    fn profile_names_round_trip() {
        for p in Profile::CONCRETE.into_iter().chain([Profile::Mixed]) {
            assert_eq!(Profile::parse(p.name()), Some(p));
        }
        assert_eq!(Profile::parse("bogus"), None);
    }
}
