//! Delta-debugging for fault timelines: reduce a failing schedule to a
//! minimal replayable reproducer while the same oracle violation persists.
//!
//! Three passes, each run to a fixed point:
//!
//! 1. **chunk drop** (ddmin) — remove halves, then quarters, … of the
//!    event list;
//! 2. **single drop** — remove each remaining event individually;
//! 3. **advance** — halve each surviving event's step repeatedly, pulling
//!    the reproducer toward superstep 0.
//!
//! The judge is a caller-supplied predicate (`still_fails`), typically
//! "the oracle reports the *same violation class*" — shrinking must not
//! wander from one bug to a different one. Every candidate the shrinker
//! tries is a fresh [`FaultTimeline`] built by
//! [`FaultTimeline::from_events`], so the final reproducer serializes
//! straight back to a `--fault-timeline` spec via
//! [`FaultTimeline::to_spec`].

use t10_sim::{FaultEvent, FaultTimeline};

/// The shrinker's result: the minimal timeline plus effort accounting.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized timeline.
    pub timeline: FaultTimeline,
    /// The replayable `--fault-timeline` spec of the minimized timeline.
    pub spec: String,
    /// Events surviving in the reproducer.
    pub events: usize,
    /// Successful reductions (adopted candidates).
    pub reductions: usize,
    /// Total candidates executed.
    pub attempts: usize,
}

/// Shrinks `events` (the failing timeline's schedule, seed `seed`) while
/// `still_fails` holds. `still_fails` is guaranteed to have returned `true`
/// for the returned timeline.
pub fn shrink<F>(seed: u64, events: &[FaultEvent], mut still_fails: F) -> ShrinkOutcome
where
    F: FnMut(&FaultTimeline) -> bool,
{
    let mut current: Vec<FaultEvent> = events.to_vec();
    let mut reductions = 0usize;
    let mut attempts = 0usize;
    let mut check = |evs: &[FaultEvent], attempts: &mut usize| {
        *attempts += 1;
        still_fails(&FaultTimeline::from_events(seed, evs.iter().copied()))
    };

    // Pass 1+2: ddmin. Granularity starts at halves and refines; when a
    // chunk's removal still fails, adopt and restart coarse.
    let mut n = 2usize;
    while current.len() >= 2 && n <= current.len() {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0usize;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let candidate: Vec<FaultEvent> = current
                .iter()
                .enumerate()
                .filter(|(i, _)| *i < start || *i >= end)
                .map(|(_, e)| *e)
                .collect();
            if !candidate.is_empty() && check(&candidate, &mut attempts) {
                current = candidate;
                reductions += 1;
                reduced = true;
                n = 2;
                break;
            }
            start = end;
        }
        if !reduced {
            if chunk == 1 {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    // Single-event drop to a fixed point (covers what ddmin's final
    // granularity missed after adoptions).
    loop {
        let mut dropped = false;
        for i in 0..current.len() {
            if current.len() == 1 {
                break;
            }
            let candidate: Vec<FaultEvent> = current
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, e)| *e)
                .collect();
            if check(&candidate, &mut attempts) {
                current = candidate;
                reductions += 1;
                dropped = true;
                break;
            }
        }
        if !dropped {
            break;
        }
    }

    // Pass 3: advance surviving events toward step 0.
    for i in 0..current.len() {
        while let Some(ev) = current.get(i).copied() {
            if ev.step == 0 {
                break;
            }
            let mut candidate = current.clone();
            if let Some(slot) = candidate.get_mut(i) {
                slot.step /= 2;
            }
            if check(&candidate, &mut attempts) {
                current = candidate;
                reductions += 1;
            } else {
                break;
            }
        }
    }

    let timeline = FaultTimeline::from_events(seed, current.iter().copied());
    ShrinkOutcome {
        spec: timeline.to_spec(),
        events: current.len(),
        timeline,
        reductions,
        attempts,
    }
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::indexing_slicing)]
    use super::*;
    use t10_sim::FaultEventKind;

    fn ev(step: usize, core: usize) -> FaultEvent {
        FaultEvent {
            step,
            kind: FaultEventKind::TransientLinkDrop { core },
        }
    }

    #[test]
    fn shrinks_to_the_single_culprit() {
        // The "bug" fires iff an event targets core 3.
        let events: Vec<FaultEvent> = (0..8).map(|i| ev(i + 2, i)).collect();
        let out = shrink(7, &events, |tl| {
            tl.events().iter().any(|e| e.kind.core() == 3)
        });
        assert_eq!(out.events, 1);
        assert_eq!(out.timeline.events()[0].kind.core(), 3);
        // The advance pass pulled it to step 0.
        assert_eq!(out.timeline.events()[0].step, 0);
        assert!(out.reductions >= 1);
        assert!(out.attempts >= out.reductions);
        assert!(out.spec.starts_with("seed=7,"));
    }

    #[test]
    fn keeps_a_required_pair_together() {
        // The bug needs BOTH core 1 and core 5 present.
        let events: Vec<FaultEvent> = (0..8).map(|i| ev(4, i)).collect();
        let out = shrink(0, &events, |tl| {
            let cores: Vec<usize> = tl.events().iter().map(|e| e.kind.core()).collect();
            cores.contains(&1) && cores.contains(&5)
        });
        assert_eq!(out.events, 2);
        let mut cores: Vec<usize> = out
            .timeline
            .events()
            .iter()
            .map(|e| e.kind.core())
            .collect();
        cores.sort_unstable();
        assert_eq!(cores, vec![1, 5]);
    }

    #[test]
    fn result_round_trips_through_the_spec_grammar() {
        let events = vec![ev(3, 1), ev(5, 2)];
        let out = shrink(9, &events, |tl| !tl.events().is_empty());
        let back = FaultTimeline::parse(&out.spec, 8).unwrap();
        assert_eq!(back.events(), out.timeline.events());
    }
}
