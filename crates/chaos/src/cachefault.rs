//! Cache-fault campaign: adversarial corruption of the persistent plan
//! store, judged by a differential oracle.
//!
//! Each case compiles a chain from the chaos zoo cold (no cache) to get a
//! byte-level baseline, populates a fresh on-disk cache, injects one seeded
//! fault into the cache directory — truncation, a bit flip, a scribbled
//! header, a wrong format version, a stale key under the wrong filename, a
//! torn temp-file write, or a deleted entry — and recompiles warm. The
//! oracle demands, for every case:
//!
//! 1. the warm compile succeeds (a corrupt cache costs recompilation,
//!    never a failed compile);
//! 2. the warm plans are byte-identical to the cold baseline (a corrupt
//!    entry is never served, a served entry is never wrong);
//! 3. exactly the injected corruption is quarantined — corrupting faults
//!    quarantine one entry, benign faults (torn temp files, plain
//!    deletions) quarantine nothing.
//!
//! The campaign is fully seeded: case `i` derives its chain, fault mode,
//! and fault position from `mix(seed, i)`, so reports are deterministic
//! and every case is replayable from its index.

use std::fs;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use t10_core::search::SearchConfig;
use t10_core::{CompileOptions, Compiler, PlanCache};
use t10_device::ChipSpec;
use t10_store::DiskPlanCache;

use crate::rng::{mix, XorShift};
use crate::target::{chaos_zoo, single_node_graph};
use crate::Result;

/// Configuration for one cache-fault campaign.
#[derive(Debug, Clone)]
pub struct CacheCampaignConfig {
    /// Master seed; case `i` uses `mix(seed, i)`.
    pub seed: u64,
    /// Number of cases.
    pub count: usize,
    /// Chip size (the chaos default of 8 cores keeps campaigns fast).
    pub cores: usize,
}

impl Default for CacheCampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            count: 20,
            cores: 8,
        }
    }
}

/// The injected fault classes, exercised in seeded rotation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheFault {
    /// Truncate one entry at a seeded byte boundary.
    Truncate,
    /// Flip one seeded bit of one entry.
    BitFlip,
    /// Overwrite one entry with non-UTF-8 garbage.
    GarbageHeader,
    /// Rewrite one entry's magic line to a future format version.
    WrongVersion,
    /// Copy one entry's bytes over another entry's filename: the envelope
    /// decodes, but the embedded key disagrees with the address.
    StaleKey,
    /// Leave a torn temp file behind, as a writer killed mid-write would.
    TornWrite,
    /// Delete one entry outright — a clean miss, not a corruption.
    DeleteEntry,
}

impl CacheFault {
    const ALL: [CacheFault; 7] = [
        CacheFault::Truncate,
        CacheFault::BitFlip,
        CacheFault::GarbageHeader,
        CacheFault::WrongVersion,
        CacheFault::StaleKey,
        CacheFault::TornWrite,
        CacheFault::DeleteEntry,
    ];

    /// Stable label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            Self::Truncate => "truncate",
            Self::BitFlip => "bit-flip",
            Self::GarbageHeader => "garbage-header",
            Self::WrongVersion => "wrong-version",
            Self::StaleKey => "stale-key",
            Self::TornWrite => "torn-write",
            Self::DeleteEntry => "delete-entry",
        }
    }

    /// How many quarantined entries this fault must produce when the whole
    /// directory is re-read.
    fn expected_quarantined(&self) -> usize {
        match self {
            Self::TornWrite | Self::DeleteEntry => 0,
            _ => 1,
        }
    }
}

/// One way a case can fail the oracle.
#[derive(Debug, Clone, PartialEq)]
pub enum CacheViolation {
    /// The warm compile's plans differ from the cold baseline — a cache
    /// entry leaked wrong bytes into a released artifact.
    WarmPlanDiverged,
    /// The warm compile failed outright; cache faults must only ever cost
    /// recompilation.
    CompileFailed {
        /// The compile error's display form.
        detail: String,
    },
    /// The corrupted entry was not quarantined (or the wrong number of
    /// entries were).
    QuarantineMismatch {
        /// Quarantined entries the fault class demands.
        expected: usize,
        /// Quarantined entries observed.
        actual: usize,
    },
}

impl CacheViolation {
    /// Stable label for reports and CI grep.
    pub fn label(&self) -> &'static str {
        match self {
            Self::WarmPlanDiverged => "warm-plan-diverged",
            Self::CompileFailed { .. } => "cache-compile-failed",
            Self::QuarantineMismatch { .. } => "quarantine-mismatch",
        }
    }
}

/// One case's outcome.
#[derive(Debug, Clone)]
pub struct CacheCase {
    /// Case index (also the seed derivation input).
    pub index: usize,
    /// Chain name from the chaos zoo.
    pub chain: &'static str,
    /// Injected fault class.
    pub fault: CacheFault,
    /// Entries on disk before injection.
    pub entries: usize,
    /// Entries quarantined by the warm compile.
    pub quarantined: usize,
    /// Disk hits served to the warm compile.
    pub disk_hits: usize,
    /// Oracle violations (empty = the case passed).
    pub violations: Vec<CacheViolation>,
}

/// A finished cache-fault campaign.
#[derive(Debug, Clone)]
pub struct CacheCampaignReport {
    /// Master seed.
    pub seed: u64,
    /// Cases run.
    pub count: usize,
    /// Chip size.
    pub cores: usize,
    /// Per-case outcomes.
    pub cases: Vec<CacheCase>,
    /// Total violations across all cases.
    pub violations: usize,
}

fn fresh_dir(seed: u64, index: usize) -> PathBuf {
    std::env::temp_dir().join(format!(
        "t10-chaos-cache-{}-{seed}-{index}",
        std::process::id()
    ))
}

fn plan_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = fs::read_dir(dir)
        .into_iter()
        .flatten()
        .flatten()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "plan"))
        .collect();
    files.sort();
    files
}

/// The campaign's attack surface: the *exact* (shape-keyed) plan entries.
/// Family-level certificate entries (embedded key carries `|fam=`) are
/// excluded — a same-shape warm compile legitimately never reads them
/// (the exact key hits first), so corrupting one would make quarantine
/// accounting depend on which file the rng drew instead of on store
/// behavior. Family-entry corruption on the path that *does* read them is
/// pinned separately by
/// `corrupt_family_entry_quarantines_on_cross_shape_lookup`.
fn exact_plan_files(dir: &Path) -> Vec<PathBuf> {
    plan_files(dir)
        .into_iter()
        .filter(|p| fs::read(p).is_ok_and(|b| !String::from_utf8_lossy(&b).contains("|fam=")))
        .collect()
}

/// Injects `fault` into the cache directory, returning false if the
/// directory had no entries to attack (the case is then vacuous).
fn inject(fault: CacheFault, dir: &Path, rng: &mut XorShift) -> std::io::Result<bool> {
    let files = exact_plan_files(dir);
    let Some(victim) = files.get(rng.below(files.len().max(1))).cloned() else {
        return Ok(false);
    };
    match fault {
        CacheFault::Truncate => {
            let bytes = fs::read(&victim)?;
            // Cut strictly inside the file so the fault is a real partial
            // write, not a deletion.
            let cut = 1 + rng.below(bytes.len().saturating_sub(1).max(1));
            fs::write(&victim, bytes.get(..cut).unwrap_or(&bytes))?;
        }
        CacheFault::BitFlip => {
            let mut bytes = fs::read(&victim)?;
            let bit = rng.below(bytes.len() * 8);
            if let Some(b) = bytes.get_mut(bit / 8) {
                *b ^= 1 << (bit % 8);
            }
            fs::write(&victim, &bytes)?;
        }
        CacheFault::GarbageHeader => {
            fs::write(&victim, b"\x00\xff\xfe rogue process scribble \xfd\x00")?;
        }
        CacheFault::WrongVersion => {
            let text = fs::read(&victim)?;
            let text = String::from_utf8_lossy(&text).replacen("t10-store v1", "t10-store v9", 1);
            fs::write(&victim, text.as_bytes())?;
        }
        CacheFault::StaleKey => {
            // Serve entry A's bytes at entry B's address: the envelope
            // decodes, but the embedded key disagrees. With a single entry
            // there is no other address, so degrade to a payload flip.
            if let Some(other) = files.iter().find(|p| **p != victim) {
                fs::copy(other, &victim)?;
            } else {
                let mut bytes = fs::read(&victim)?;
                if let Some(b) = bytes.last_mut() {
                    *b ^= 0x01;
                }
                fs::write(&victim, &bytes)?;
            }
        }
        CacheFault::TornWrite => {
            let bytes = fs::read(&victim)?;
            let cut = rng.below(bytes.len().max(1));
            let tmp = dir.join(format!(".tmp-{}-killed", std::process::id()));
            fs::write(tmp, bytes.get(..cut).unwrap_or(&bytes))?;
        }
        CacheFault::DeleteEntry => {
            fs::remove_file(&victim)?;
        }
    }
    Ok(true)
}

/// Runs the campaign. Every case compiles its chain cold (uncached
/// baseline), populates a fresh cache, injects one fault, recompiles warm,
/// and judges the result.
pub fn run_cache_campaign(cfg: &CacheCampaignConfig) -> Result<CacheCampaignReport> {
    let spec = ChipSpec::ipu_with_cores(cfg.cores);
    let compiler = Compiler::try_new(spec, SearchConfig::fast())?;
    let chains = chaos_zoo()?;
    let mut cases = Vec::with_capacity(cfg.count);
    let mut total_violations = 0usize;

    for index in 0..cfg.count {
        let mut rng = XorShift::new(mix(cfg.seed, index as u64));
        let chain = rng
            .pick(&chains)
            .ok_or_else(|| t10_core::CompileError::internal("empty chaos zoo"))?;
        let fault = *rng.pick(&CacheFault::ALL).unwrap_or(&CacheFault::BitFlip);

        let graphs: Vec<_> = chain
            .ops
            .iter()
            .map(single_node_graph)
            .collect::<Result<_>>()?;
        let fingerprint = |compiled: &[t10_core::CompiledGraph]| {
            compiled
                .iter()
                .map(|c| format!("{:?}|{:?}", c.program, c.reconciled))
                .collect::<Vec<_>>()
                .join("\n")
        };

        // Cold baseline, no cache anywhere near it.
        let mut baseline = Vec::new();
        for g in &graphs {
            baseline.push(compiler.compile_graph_with(g, &CompileOptions::default())?);
        }
        let baseline_fp = fingerprint(&baseline);

        // Populate a fresh cache directory.
        let dir = fresh_dir(cfg.seed, index);
        let _ = fs::remove_dir_all(&dir);
        let store = Arc::new(
            DiskPlanCache::open(&dir)
                .map_err(|e| t10_core::CompileError::internal(e.to_string()))?
                .without_sync(),
        );
        let opts = CompileOptions {
            cache: Some(store.clone() as Arc<dyn PlanCache>),
            ..CompileOptions::default()
        };
        for g in &graphs {
            compiler.compile_graph_with(g, &opts)?;
        }
        let entries = plan_files(&dir).len();

        // Inject the fault, then recompile warm through a *fresh* store
        // instance (a service restart) so nothing is memoized in memory.
        inject(fault, &dir, &mut rng)
            .map_err(|e| t10_core::CompileError::internal(e.to_string()))?;
        let store2 = Arc::new(
            DiskPlanCache::open(&dir)
                .map_err(|e| t10_core::CompileError::internal(e.to_string()))?
                .without_sync(),
        );
        let opts2 = CompileOptions {
            cache: Some(store2.clone() as Arc<dyn PlanCache>),
            ..CompileOptions::default()
        };
        let mut violations = Vec::new();
        let mut warm = Vec::new();
        let mut disk_hits = 0usize;
        for g in &graphs {
            match compiler.compile_graph_with(g, &opts2) {
                Ok(c) => {
                    disk_hits += c.cache_stats.disk_hits;
                    warm.push(c);
                }
                Err(e) => {
                    violations.push(CacheViolation::CompileFailed {
                        detail: e.to_string(),
                    });
                    break;
                }
            }
        }
        let quarantined = store2.counters().quarantined;
        if warm.len() == graphs.len() {
            if fingerprint(&warm) != baseline_fp {
                violations.push(CacheViolation::WarmPlanDiverged);
            }
            let expected = fault.expected_quarantined();
            if quarantined != expected {
                violations.push(CacheViolation::QuarantineMismatch {
                    expected,
                    actual: quarantined,
                });
            }
        }
        let _ = fs::remove_dir_all(&dir);

        total_violations += violations.len();
        cases.push(CacheCase {
            index,
            chain: chain.name,
            fault,
            entries,
            quarantined,
            disk_hits,
            violations,
        });
    }

    Ok(CacheCampaignReport {
        seed: cfg.seed,
        count: cfg.count,
        cores: cfg.cores,
        cases,
        violations: total_violations,
    })
}

/// Renders the deterministic campaign report (schema `t10.chaos.cache.v1`):
/// byte-identical across same-seed reruns, so CI can diff it.
#[must_use]
pub fn cache_campaign_json(report: &CacheCampaignReport) -> String {
    let mut out = String::from("{\n  \"schema\": \"t10.chaos.cache.v1\",\n");
    out.push_str(&format!("  \"seed\": {},\n", report.seed));
    out.push_str(&format!("  \"count\": {},\n", report.count));
    out.push_str(&format!("  \"cores\": {},\n", report.cores));
    out.push_str(&format!("  \"violations\": {},\n", report.violations));
    out.push_str("  \"cases\": [\n");
    for (i, c) in report.cases.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"index\": {}, \"chain\": \"{}\", \"fault\": \"{}\", \
             \"entries\": {}, \"quarantined\": {}, \"disk_hits\": {}, \
             \"violations\": [{}]}}{}\n",
            c.index,
            c.chain,
            c.fault.label(),
            c.entries,
            c.quarantined,
            c.disk_hits,
            c.violations
                .iter()
                .map(|v| format!("\"{}\"", v.label()))
                .collect::<Vec<_>>()
                .join(", "),
            if i + 1 < report.cases.len() { "," } else { "" },
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn campaign_is_clean_and_deterministic() {
        let cfg = CacheCampaignConfig {
            seed: 11,
            count: 8,
            cores: 8,
        };
        let a = run_cache_campaign(&cfg).unwrap();
        assert_eq!(a.violations, 0, "{:?}", a.cases);
        assert_eq!(a.cases.len(), 8);
        // Every case found entries to attack, and warm compiles drew from
        // the surviving ones.
        assert!(a.cases.iter().all(|c| c.entries > 0));
        assert!(a.cases.iter().any(|c| c.disk_hits > 0));
        // Corrupting faults quarantined exactly one entry each.
        for c in &a.cases {
            assert_eq!(
                c.quarantined,
                c.fault.expected_quarantined(),
                "case {} ({})",
                c.index,
                c.fault.label()
            );
        }
        // Same seed, same report bytes.
        let b = run_cache_campaign(&cfg).unwrap();
        assert_eq!(cache_campaign_json(&a), cache_campaign_json(&b));
    }

    #[test]
    fn every_fault_class_is_reachable() {
        let cfg = CacheCampaignConfig {
            seed: 3,
            count: 40,
            cores: 8,
        };
        let report = run_cache_campaign(&cfg).unwrap();
        assert_eq!(report.violations, 0);
        let seen: std::collections::BTreeSet<&str> =
            report.cases.iter().map(|c| c.fault.label()).collect();
        assert_eq!(seen.len(), CacheFault::ALL.len(), "{seen:?}");
    }

    #[test]
    fn corrupt_family_entry_quarantines_on_cross_shape_lookup() {
        // The campaign above attacks exact entries only; this pins the
        // family-entry path it excludes: a *cross-shape* compile misses
        // the exact key, reads the corrupted family certificate, and the
        // store quarantines it while the compile degrades to a fresh
        // search — corruption costs a recompile, never a wrong plan.
        use t10_ir::builders;
        let spec = ChipSpec::ipu_with_cores(8);
        let compiler = Compiler::try_new(spec, SearchConfig::fast()).unwrap();
        let seed = single_node_graph(&builders::matmul(0, 1, 2, 64, 32, 32).unwrap()).unwrap();
        let cross = single_node_graph(&builders::matmul(0, 1, 2, 128, 32, 32).unwrap()).unwrap();

        let dir =
            std::env::temp_dir().join(format!("t10-chaos-cache-famquar-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = Arc::new(DiskPlanCache::open(&dir).unwrap().without_sync());
        let opts = CompileOptions {
            cache: Some(store as Arc<dyn PlanCache>),
            ..CompileOptions::default()
        };
        compiler.compile_graph_with(&seed, &opts).unwrap();

        let family: Vec<PathBuf> = plan_files(&dir)
            .into_iter()
            .filter(|p| fs::read(p).is_ok_and(|b| String::from_utf8_lossy(&b).contains("|fam=")))
            .collect();
        assert_eq!(family.len(), 1, "expected exactly one family entry");
        fs::write(family.first().unwrap(), b"\x00\xff rogue scribble").unwrap();

        let store2 = Arc::new(DiskPlanCache::open(&dir).unwrap().without_sync());
        let opts2 = CompileOptions {
            cache: Some(store2.clone() as Arc<dyn PlanCache>),
            ..CompileOptions::default()
        };
        let warm = compiler.compile_graph_with(&cross, &opts2).unwrap();
        assert_eq!(warm.cache_stats.family_hits, 0, "corrupt entry served");
        assert_eq!(store2.counters().quarantined, 1);
        assert!(!warm.program.steps.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn report_json_carries_the_schema() {
        let report = run_cache_campaign(&CacheCampaignConfig {
            seed: 1,
            count: 2,
            cores: 8,
        })
        .unwrap();
        let doc = cache_campaign_json(&report);
        let v = t10_trace::json::parse(&doc).unwrap();
        assert_eq!(
            v.get("schema").and_then(|s| s.as_str()),
            Some("t10.chaos.cache.v1")
        );
        assert_eq!(v.get("violations").and_then(|x| x.as_f64()), Some(0.0));
        assert_eq!(
            v.get("cases").and_then(|c| c.as_arr()).map(<[_]>::len),
            Some(2)
        );
    }
}
