//! Campaigns: many seeded timelines, one verdict per case, one
//! machine-readable summary.
//!
//! A campaign derives one seed per case ([`crate::rng::mix`]), generates a
//! timeline under the configured [`Profile`], runs it through the
//! [harness](crate::harness), judges it with the [oracle](crate::oracle),
//! and — for violations — [shrinks](crate::shrink) the timeline to a
//! minimal reproducer judged by "same violation class".
//!
//! Everything in the [`CampaignReport`] except `compile_wall_us` is a pure
//! function of the campaign seed, so `campaign_json` output is
//! byte-identical across same-seed reruns; wall-clock compile latencies
//! feed only the `BENCH_recovery.json` perf baseline.

use t10_core::CompileError;
use t10_trace::{Value, PID_CHAOS};

use crate::grammar::{Grammar, Profile};
use crate::harness::{healthy_frontiers, run_chain, RunConfig};
use crate::oracle::{Oracle, Outcome};
use crate::rng::mix;
use crate::shrink::{shrink, ShrinkOutcome};
use crate::target::chaos_zoo;
use crate::Result;

/// Campaign-level knobs.
#[derive(Clone)]
pub struct CampaignConfig {
    /// Master seed; case `i` uses `mix(seed, i)`.
    pub seed: u64,
    /// Number of timelines to run.
    pub count: usize,
    /// Which region of the fault space to sample.
    pub profile: Profile,
    /// Per-case harness configuration (cores, policy, mutation, trace).
    pub run: RunConfig,
    /// Whether to shrink violating timelines to minimal reproducers.
    pub shrink_violations: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            count: 20,
            profile: Profile::Mixed,
            run: RunConfig::default(),
            shrink_violations: true,
        }
    }
}

/// One campaign case's verdict and statistics.
pub struct CaseOutcome {
    /// Case ordinal within the campaign.
    pub index: usize,
    /// The chain the case ran.
    pub chain: String,
    /// The case's derived timeline seed.
    pub timeline_seed: u64,
    /// The generated timeline as a replayable `--fault-timeline` spec.
    pub spec: String,
    /// Scheduled fault events.
    pub events: usize,
    /// The oracle's verdict.
    pub outcome: Outcome,
    /// Total recovery events the run performed (0 when it errored).
    pub recoveries: usize,
    /// Recovery recompiles the run performed.
    pub recompiles: usize,
    /// Recovery overhead vs the healthy run, percent of healthy sim time
    /// (completed runs only).
    pub overhead_pct: Option<f64>,
    /// The minimized reproducer, when the case violated and shrinking ran.
    pub shrunk: Option<ShrinkOutcome>,
}

/// The whole campaign's summary.
pub struct CampaignReport {
    /// Master seed.
    pub seed: u64,
    /// Profile name.
    pub profile: &'static str,
    /// Cases run.
    pub count: usize,
    /// Healthy chip size.
    pub cores: usize,
    /// Cases that healed on the full chip.
    pub healed: usize,
    /// Cases that completed correctly on a shrunk chip.
    pub degraded_ok: usize,
    /// Cases where giving up was the explained outcome.
    pub unrecoverable_expected: usize,
    /// Cases the oracle flagged.
    pub violations: usize,
    /// Recovery-overhead percentiles over completed cases, percent of the
    /// healthy run's simulated time (backoff waits excluded).
    pub overhead_p50: f64,
    /// 90th percentile.
    pub overhead_p90: f64,
    /// 99th percentile.
    pub overhead_p99: f64,
    /// Mean checkpoint cost over completed cases, percent of total time.
    pub checkpoint_cost_pct: f64,
    /// Per-case verdicts.
    pub cases: Vec<CaseOutcome>,
    /// Wall-clock compile latencies (µs) across all cases, initial and
    /// recovery recompiles. **Not deterministic**; excluded from
    /// [`crate::report::campaign_json`].
    pub compile_wall_us: Vec<f64>,
    /// Final telemetry snapshot over the whole campaign (baselines, cases,
    /// shrink reruns). Recorded under a logical clock, so every field is a
    /// pure function of the campaign seed and safe to embed in the
    /// deterministic report.
    pub metrics_snapshot: t10_metrics::Snapshot,
}

impl CampaignReport {
    /// True when no case was judged an oracle violation.
    pub fn clean(&self) -> bool {
        self.violations == 0
    }
}

/// A percentile (0–1) of an unsorted sample by nearest-rank, 0 when empty.
pub fn percentile(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let rank = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted
        .get(rank.min(sorted.len() - 1))
        .copied()
        .unwrap_or(0.0)
}

/// Runs a whole campaign. Fails only if a *healthy* baseline cannot be
/// built (a broken compiler is not a chaos finding); per-case failures are
/// verdicts, not errors.
pub fn run_campaign(cfg: &CampaignConfig) -> Result<CampaignReport> {
    let zoo = chaos_zoo()?;
    let trace = &cfg.run.trace;
    if trace.enabled() {
        trace.meta("process_name", PID_CHAOS, 0, "chaos");
    }
    // A fresh logical-clock registry per campaign: recovery counters and
    // tick-delta histograms become pure functions of the seed, and the
    // embedded snapshot stays byte-identical across same-seed reruns.
    let metrics = t10_metrics::Registry::logical();
    let run_cfg = RunConfig {
        metrics: metrics.clone(),
        ..cfg.run.clone()
    };
    let cfg = &CampaignConfig {
        run: run_cfg,
        ..cfg.clone()
    };

    // Healthy baselines: one functional run + Pareto frontier per chain.
    let mut baselines = Vec::with_capacity(zoo.len());
    for chain in &zoo {
        let warm = healthy_frontiers(chain, cfg.run.cores)?;
        let healthy = run_chain(chain, None, &cfg.run, Some(&warm))?;
        let reference = chain.reference_output()?;
        if !healthy
            .output
            .approx_eq(&reference, crate::oracle::REPLAN_TOLERANCE)
        {
            return Err(CompileError::internal(format!(
                "healthy baseline for {} diverges from the reference executor",
                chain.name
            )));
        }
        let steps: usize = healthy.reports.iter().map(|r| r.steps).sum();
        baselines.push((chain, warm, healthy, reference, steps));
    }

    let mut cases = Vec::with_capacity(cfg.count);
    let mut overheads = Vec::new();
    let mut checkpoint_cost = Vec::new();
    let mut compile_wall_us = Vec::new();
    let (mut healed, mut degraded, mut expected, mut violations) = (0, 0, 0, 0);

    for i in 0..cfg.count {
        let Some((chain, warm, healthy, reference, steps)) = baselines.get(i % baselines.len())
        else {
            break;
        };
        let tseed = mix(cfg.seed, i as u64);
        let grammar = Grammar::new(cfg.run.cores, *steps, cfg.run.policy.checkpoint_every);
        let timeline = grammar.generate(cfg.profile, tseed);
        let spec = timeline.to_spec();
        let events = timeline.events().len();
        let oracle = Oracle {
            chain,
            healthy,
            reference,
            cores: cfg.run.cores,
        };
        let result = run_chain(chain, Some(timeline.clone()), &cfg.run, Some(warm));
        if let Ok(run) = &result {
            compile_wall_us.extend_from_slice(&run.compile_wall_us);
        }
        let outcome = oracle.judge(&result);
        let (recoveries, recompiles, overhead_pct) = match &result {
            Ok(run) => {
                // Overhead over sim execution time, backoff excluded: the
                // policy's backoff is wall-delay orders of magnitude above
                // these chains' simulated microseconds.
                let healthy_t = healthy.total_time().max(f64::MIN_POSITIVE);
                let pct = (run.execution_time() - healthy.total_time()) / healthy_t * 100.0;
                checkpoint_cost
                    .push(run.checkpoint_time() / run.execution_time().max(1e-30) * 100.0);
                (run.recoveries(), run.recompiles(), Some(pct))
            }
            Err(_) => (0, 0, None),
        };
        if let Some(pct) = overhead_pct {
            overheads.push(pct);
        }
        match &outcome {
            Outcome::Healed => healed += 1,
            Outcome::DegradedOk => degraded += 1,
            Outcome::UnrecoverableExpected => expected += 1,
            Outcome::Violation(_) => violations += 1,
        }

        let shrunk = match &outcome {
            Outcome::Violation(kind) if cfg.shrink_violations => {
                Some(shrink(tseed, timeline.events(), |candidate| {
                    let rerun = run_chain(chain, Some(candidate.clone()), &cfg.run, Some(warm));
                    matches!(
                        oracle.judge(&rerun),
                        Outcome::Violation(k) if k.same_kind(kind)
                    )
                }))
            }
            _ => None,
        };

        if trace.enabled() {
            trace.instant(
                "case",
                "chaos",
                PID_CHAOS,
                0,
                trace.now_us(),
                vec![
                    ("index", Value::U64(i as u64)),
                    ("chain", Value::Str(chain.name.to_string())),
                    ("seed", Value::U64(tseed)),
                    ("outcome", Value::Str(outcome.label().to_string())),
                    ("events", Value::U64(events as u64)),
                    ("recoveries", Value::U64(recoveries as u64)),
                ],
            );
        }

        cases.push(CaseOutcome {
            index: i,
            chain: chain.name.to_string(),
            timeline_seed: tseed,
            spec,
            events,
            outcome,
            recoveries,
            recompiles,
            overhead_pct,
            shrunk,
        });
    }

    let report = CampaignReport {
        seed: cfg.seed,
        profile: cfg.profile.name(),
        count: cfg.count,
        cores: cfg.run.cores,
        healed,
        degraded_ok: degraded,
        unrecoverable_expected: expected,
        violations,
        overhead_p50: percentile(&overheads, 0.50),
        overhead_p90: percentile(&overheads, 0.90),
        overhead_p99: percentile(&overheads, 0.99),
        checkpoint_cost_pct: if checkpoint_cost.is_empty() {
            0.0
        } else {
            checkpoint_cost.iter().sum::<f64>() / checkpoint_cost.len() as f64
        },
        cases,
        compile_wall_us,
        metrics_snapshot: metrics.snapshot(),
    };
    if trace.enabled() {
        trace.counter(
            "campaign",
            "chaos",
            PID_CHAOS,
            0,
            trace.now_us(),
            vec![
                ("healed", Value::U64(report.healed as u64)),
                ("degraded_ok", Value::U64(report.degraded_ok as u64)),
                (
                    "unrecoverable_expected",
                    Value::U64(report.unrecoverable_expected as u64),
                ),
                ("violations", Value::U64(report.violations as u64)),
            ],
        );
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn percentile_nearest_rank() {
        let xs = vec![10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&xs, 0.0), 10.0);
        assert_eq!(percentile(&xs, 1.0), 40.0);
        assert_eq!(percentile(&xs, 0.5), 30.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }

    #[test]
    fn small_campaign_is_clean_and_deterministic() {
        let cfg = CampaignConfig {
            seed: 11,
            count: 6,
            ..CampaignConfig::default()
        };
        let a = run_campaign(&cfg).unwrap();
        let b = run_campaign(&cfg).unwrap();
        assert!(a.clean(), "oracle violations in a healthy stack");
        assert_eq!(a.healed + a.degraded_ok + a.unrecoverable_expected, 6);
        assert_eq!(
            crate::report::campaign_json(&a),
            crate::report::campaign_json(&b),
            "same seed, same report bytes"
        );
    }
}
