//! Campaign targets: small operator chains the chaos engine runs under
//! fire.
//!
//! The zoo deliberately stays small (8-core chips, ≈16–64 element
//! dimensions): a campaign executes hundreds of full compile + functional
//! run + recovery cycles, and the fault-space coverage comes from the
//! timeline grammar, not from model size. Every chain is a straight-line
//! sequence of two-input operators (activation, weight), executed
//! operator-by-operator exactly like the Table-2 recovery demos.

use t10_ir::{builders, reference, DType, Graph, Operator, Tensor, Unary, ValueKind};

use crate::Result;

/// A straight-line operator chain plus its concrete inputs.
pub struct OpChain {
    /// Stable name, used in reports and for chain selection.
    pub name: &'static str,
    /// The operators, in execution order. `ops[i]` consumes the previous
    /// activation and `weights[i]`.
    pub ops: Vec<Operator>,
    /// The chain's input activation.
    pub input: Tensor,
    /// One weight tensor per operator.
    pub weights: Vec<Tensor>,
}

impl OpChain {
    /// The healthy ground truth: the chain through the naive reference
    /// executor.
    pub fn reference_output(&self) -> Result<Tensor> {
        let mut act = self.input.clone();
        for (op, w) in self.ops.iter().zip(&self.weights) {
            act = reference::execute(op, &[&act, w])?;
        }
        Ok(act)
    }
}

/// Wraps one operator in a single-node graph so the intra-operator search
/// (and its warm-start path) can run on it.
pub fn single_node_graph(op: &Operator) -> Result<Graph> {
    let mut g = Graph::new("node");
    let n_in = op.expr.num_inputs();
    for slot in 0..n_in {
        let kind = if slot == 0 {
            ValueKind::Input
        } else {
            ValueKind::Weight
        };
        g.add_value(
            format!("in{slot}"),
            op.expr.input_shape(slot),
            DType::F32,
            kind,
        );
    }
    g.add_value("out", op.expr.output_shape(), DType::F32, ValueKind::Output);
    let mut op = op.clone();
    op.inputs = (0..n_in).collect();
    op.output = n_in;
    g.add_node("n", op)?;
    Ok(g)
}

/// The chaos model zoo: three chains covering a two-layer FFN, a single
/// fused matmul+relu, and a wide single-layer projection.
pub fn chaos_zoo() -> Result<Vec<OpChain>> {
    let mut chains = Vec::new();

    // Two-layer FFN — the Table-2 recovery demo shape.
    let mut fc1 = builders::matmul(0, 1, 2, 16, 32, 32)?;
    fc1.unary = Some(Unary::Relu);
    let fc2 = builders::matmul(2, 3, 4, 16, 32, 16)?;
    chains.push(OpChain {
        name: "ffn2",
        ops: vec![fc1, fc2],
        input: Tensor::pattern(vec![16, 32], 0.3),
        weights: vec![
            Tensor::pattern(vec![32, 32], 0.7),
            Tensor::pattern(vec![32, 16], 0.5),
        ],
    });

    // One fused matmul+relu.
    let mut mlp = builders::matmul(0, 1, 2, 16, 32, 16)?;
    mlp.unary = Some(Unary::Relu);
    chains.push(OpChain {
        name: "mlp1",
        ops: vec![mlp],
        input: Tensor::pattern(vec![16, 32], 0.4),
        weights: vec![Tensor::pattern(vec![32, 16], 0.6)],
    });

    // A wide projection: long reduction dimension, more rotation steps.
    let wide = builders::matmul(0, 1, 2, 8, 64, 16)?;
    chains.push(OpChain {
        name: "wide",
        ops: vec![wide],
        input: Tensor::pattern(vec![8, 64], 0.2),
        weights: vec![Tensor::pattern(vec![64, 16], 0.8)],
    });

    Ok(chains)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn zoo_chains_have_consistent_shapes() {
        for chain in chaos_zoo().unwrap() {
            assert_eq!(chain.ops.len(), chain.weights.len());
            let out = chain.reference_output().unwrap();
            assert!(out.elements() > 0, "{}: empty output", chain.name);
        }
    }

    #[test]
    fn single_node_graphs_build_for_every_op() {
        for chain in chaos_zoo().unwrap() {
            for op in &chain.ops {
                single_node_graph(op).unwrap();
            }
        }
    }
}
