//! Corpus replay: re-run saved fault timelines through the oracle.
//!
//! A corpus file is plain text: `#` comment lines and blank lines are
//! ignored; every remaining line is one `--fault-timeline` spec (usually a
//! minimized reproducer a past campaign shrank, pinned so the bug it found
//! stays dead). Replay runs every corpus timeline against every chain in
//! the chaos zoo and judges each run with the same three-part oracle a
//! campaign uses, so a regression shows up as an `ORACLE-VIOLATION` verdict
//! rather than a silent behavior change.

use t10_sim::{FaultTimeline, TimelineParseError};

use crate::harness::{healthy_frontiers, run_chain, RunConfig};
use crate::oracle::{Oracle, Outcome};
use crate::target::chaos_zoo;
use crate::Result;

/// Parses a corpus file's text into timelines. Lines starting with `#`
/// (after trimming) and blank lines are skipped.
pub fn parse_corpus(
    text: &str,
    cores: usize,
) -> std::result::Result<Vec<FaultTimeline>, TimelineParseError> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        out.push(FaultTimeline::parse(line, cores)?);
    }
    Ok(out)
}

/// One corpus timeline's verdict on one chain.
pub struct ReplayOutcome {
    /// The replayed timeline, as its spec.
    pub spec: String,
    /// The chain it ran against.
    pub chain: String,
    /// The oracle's verdict.
    pub outcome: Outcome,
}

/// Replays every timeline against every chaos-zoo chain and judges each
/// run. Fails only if a healthy baseline cannot be built.
pub fn replay(timelines: &[FaultTimeline], cfg: &RunConfig) -> Result<Vec<ReplayOutcome>> {
    let zoo = chaos_zoo()?;
    let mut outcomes = Vec::with_capacity(timelines.len() * zoo.len());
    for chain in &zoo {
        let warm = healthy_frontiers(chain, cfg.cores)?;
        let healthy = run_chain(chain, None, cfg, Some(&warm))?;
        let reference = chain.reference_output()?;
        let oracle = Oracle {
            chain,
            healthy: &healthy,
            reference: &reference,
            cores: cfg.cores,
        };
        for tl in timelines {
            let run = run_chain(chain, Some(tl.clone()), cfg, Some(&warm));
            outcomes.push(ReplayOutcome {
                spec: tl.to_spec(),
                chain: chain.name.to_string(),
                outcome: oracle.judge(&run),
            });
        }
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used, clippy::indexing_slicing)]
    use super::*;

    #[test]
    fn corpus_text_skips_comments_and_blanks() {
        let text = "# a reproducer\n\nseed=7,drop=2@1\n  # another\nkill=1@3\n";
        let tls = parse_corpus(text, 8).unwrap();
        assert_eq!(tls.len(), 2);
        assert_eq!(tls[0].to_spec(), "seed=7,drop=2@1");
    }

    #[test]
    fn bad_corpus_line_surfaces_the_typed_error() {
        let err = parse_corpus("drop=2@99", 8).unwrap_err();
        assert!(matches!(
            err,
            TimelineParseError::CoreOutOfRange { core: 99, .. }
        ));
    }

    #[test]
    fn replayed_corpus_is_judged_clean_on_a_healthy_stack() {
        let tls = parse_corpus("seed=7,drop=2@1\ndown=1@2", 8).unwrap();
        let cfg = RunConfig::default();
        let outcomes = replay(&tls, &cfg).unwrap();
        assert_eq!(outcomes.len(), 2 * chaos_zoo().unwrap().len());
        for o in &outcomes {
            assert!(
                !matches!(o.outcome, Outcome::Violation(_)),
                "{} on {}: {:?}",
                o.spec,
                o.chain,
                o.outcome
            );
        }
    }
}
