//! Hand-rolled, deterministic JSON writers for campaign summaries and the
//! recovery perf-trajectory baseline.
//!
//! Same discipline as the rest of the workspace's JSON output: fixed field
//! order, no maps with unstable iteration, no wall-clock values in the
//! campaign report — so `campaign_json` is byte-identical across same-seed
//! reruns and diffable in CI. Wall-clock compile latencies appear only in
//! [`bench_json`] (`BENCH_recovery.json`), which tracks machine-dependent
//! perf and is *expected* to drift.

use crate::campaign::{percentile, CampaignReport};
use crate::oracle::Outcome;

fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn f(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The deterministic campaign summary (no wall-clock values).
pub fn campaign_json(r: &CampaignReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"t10.chaos.campaign.v1\",\n");
    s.push_str(&format!("  \"seed\": {},\n", r.seed));
    s.push_str(&format!("  \"profile\": \"{}\",\n", esc(r.profile)));
    s.push_str(&format!("  \"count\": {},\n", r.count));
    s.push_str(&format!("  \"cores\": {},\n", r.cores));
    s.push_str("  \"outcomes\": {\n");
    s.push_str(&format!("    \"healed\": {},\n", r.healed));
    s.push_str(&format!("    \"degraded_ok\": {},\n", r.degraded_ok));
    s.push_str(&format!(
        "    \"unrecoverable_expected\": {},\n",
        r.unrecoverable_expected
    ));
    s.push_str(&format!("    \"violations\": {}\n", r.violations));
    s.push_str("  },\n");
    s.push_str("  \"recovery_overhead_pct\": {\n");
    s.push_str(&format!("    \"p50\": {},\n", f(r.overhead_p50)));
    s.push_str(&format!("    \"p90\": {},\n", f(r.overhead_p90)));
    s.push_str(&format!("    \"p99\": {}\n", f(r.overhead_p99)));
    s.push_str("  },\n");
    s.push_str(&format!(
        "  \"checkpoint_cost_pct\": {},\n",
        f(r.checkpoint_cost_pct)
    ));
    // The campaign's telemetry snapshot, as a nested `t10.metrics.v1`
    // document. It is recorded under a logical clock, so it carries no
    // wall-clock values and stays byte-identical across same-seed reruns.
    s.push_str(&format!(
        "  \"metrics\": {},\n",
        r.metrics_snapshot.to_json_compact()
    ));
    s.push_str("  \"cases\": [\n");
    for (i, c) in r.cases.iter().enumerate() {
        s.push_str("    {");
        s.push_str(&format!("\"index\": {}, ", c.index));
        s.push_str(&format!("\"chain\": \"{}\", ", esc(&c.chain)));
        s.push_str(&format!("\"timeline_seed\": {}, ", c.timeline_seed));
        s.push_str(&format!("\"events\": {}, ", c.events));
        s.push_str(&format!("\"outcome\": \"{}\", ", c.outcome.label()));
        if let Outcome::Violation(kind) = &c.outcome {
            s.push_str(&format!("\"violation\": \"{}\", ", kind.label()));
        }
        s.push_str(&format!("\"recoveries\": {}, ", c.recoveries));
        s.push_str(&format!("\"recompiles\": {}, ", c.recompiles));
        match c.overhead_pct {
            Some(pct) => s.push_str(&format!("\"overhead_pct\": {}, ", f(pct))),
            None => s.push_str("\"overhead_pct\": null, "),
        }
        s.push_str(&format!("\"spec\": \"{}\"", esc(&c.spec)));
        if let Some(sh) = &c.shrunk {
            s.push_str(&format!(
                ", \"shrunk\": {{\"spec\": \"{}\", \"events\": {}, \
                 \"reductions\": {}, \"attempts\": {}}}",
                esc(&sh.spec),
                sh.events,
                sh.reductions,
                sh.attempts
            ));
        }
        s.push('}');
        if i + 1 < r.cases.len() {
            s.push(',');
        }
        s.push('\n');
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// The `BENCH_recovery.json` perf-trajectory baseline: recovery overhead
/// percentiles (deterministic sim time) plus compile-latency percentiles
/// and checkpoint cost (machine-dependent wall time).
pub fn bench_json(r: &CampaignReport) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"t10.bench.recovery.v1\",\n");
    s.push_str(&format!("  \"campaign_seed\": {},\n", r.seed));
    s.push_str(&format!("  \"profile\": \"{}\",\n", esc(r.profile)));
    s.push_str(&format!("  \"count\": {},\n", r.count));
    s.push_str(&format!("  \"cores\": {},\n", r.cores));
    s.push_str("  \"recovery_overhead_pct\": {\n");
    s.push_str(&format!("    \"p50\": {},\n", f(r.overhead_p50)));
    s.push_str(&format!("    \"p90\": {},\n", f(r.overhead_p90)));
    s.push_str(&format!("    \"p99\": {}\n", f(r.overhead_p99)));
    s.push_str("  },\n");
    s.push_str(&format!(
        "  \"checkpoint_cost_pct\": {},\n",
        f(r.checkpoint_cost_pct)
    ));
    s.push_str("  \"compile_latency_us\": {\n");
    s.push_str(&format!(
        "    \"p50\": {},\n",
        f(percentile(&r.compile_wall_us, 0.50))
    ));
    s.push_str(&format!(
        "    \"p99\": {},\n",
        f(percentile(&r.compile_wall_us, 0.99))
    ));
    s.push_str(&format!("    \"samples\": {}\n", r.compile_wall_us.len()));
    s.push_str("  }\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    #![allow(clippy::unwrap_used)]
    use super::*;

    #[test]
    fn escapes_json_strings() {
        assert_eq!(esc("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(esc("\u{1}"), "\\u0001");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(f(f64::NAN), "null");
        assert_eq!(f(f64::INFINITY), "null");
        assert_eq!(f(1.5), "1.5");
    }

    #[test]
    fn empty_campaign_serializes() {
        let r = CampaignReport {
            seed: 3,
            profile: "uniform",
            count: 0,
            cores: 8,
            healed: 0,
            degraded_ok: 0,
            unrecoverable_expected: 0,
            violations: 0,
            overhead_p50: 0.0,
            overhead_p90: 0.0,
            overhead_p99: 0.0,
            checkpoint_cost_pct: 0.0,
            cases: Vec::new(),
            compile_wall_us: Vec::new(),
            metrics_snapshot: t10_metrics::Snapshot::new("logical"),
        };
        let j = campaign_json(&r);
        assert!(j.contains("\"schema\": \"t10.chaos.campaign.v1\""));
        assert!(j.contains("\"violations\": 0"));
        assert!(j.contains("\"metrics\": {"));
        assert!(j.contains("\"schema\": \"t10.metrics.v1\""));
        let b = bench_json(&r);
        assert!(b.contains("\"schema\": \"t10.bench.recovery.v1\""));
        assert!(b.contains("\"samples\": 0"));
    }
}
