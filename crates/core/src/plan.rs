//! Compute-shift execution plans (paper §4.2).
//!
//! A plan fixes the operator partition factor `F_op` and one temporal
//! partitioning choice per input tensor. Everything else — rotating paces,
//! step counts, sub-task shapes, per-core memory, per-shift volumes — is
//! *derived*, following the alignment rules of §4.2:
//!
//! 1. rTensors rotating along the same axis share one rotating pace `rp`;
//! 2. `rp` never exceeds any rotating tensor's partition length; and
//! 3. to maximize compute intensity, `rp` is the minimum partition length.

use serde::{Deserialize, Serialize};
use t10_device::program::SubTaskDesc;
use t10_ir::{AxisId, AxisKind, Operator};

use crate::rtensor::{dim_extent, spatial_info, tiles, RTensor, SpatialInfo};
use crate::{compile_err, Result};

/// Temporal partitioning choice for one input tensor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TemporalChoice {
    /// Tensor dimension being temporally partitioned, if any.
    pub dim: Option<usize>,
    /// Temporal partition factor `Π f_t` (1 = no rotation: the sub-tensor is
    /// fully replicated on every sharing core).
    pub factor: usize,
}

impl TemporalChoice {
    /// No temporal partitioning (full replication across sharing cores).
    pub fn none() -> Self {
        Self {
            dim: None,
            factor: 1,
        }
    }

    /// Temporal partitioning of `dim` into `factor` rotating partitions.
    pub fn rotate(dim: usize, factor: usize) -> Self {
        Self {
            dim: Some(dim),
            factor,
        }
    }
}

/// A full plan configuration: the free variables of the search space.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PlanConfig {
    /// Operator partition factor, one entry per axis.
    pub f_op: Vec<usize>,
    /// Temporal choice per input slot.
    pub temporal: Vec<TemporalChoice>,
}

/// One level of the nested rotation loop.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RotationLevel {
    /// The operator axis rotated at this level (`None` for the virtual axis
    /// of an indirect/gather rotation).
    pub axis: Option<AxisId>,
    /// Steps in this loop level.
    pub steps: usize,
    /// Rotating pace: elements shifted along the axis per step.
    pub rp: usize,
    /// Input slots whose partitions rotate at this level.
    pub slots: Vec<usize>,
}

/// Derived plan state for one input tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SlotPlan {
    /// Spatial partitioning under `F_op`.
    pub spatial: SpatialInfo,
    /// The temporal choice made for this slot.
    pub temporal: TemporalChoice,
    /// Partition length along the temporal dimension (0 when not rotating).
    pub plen: usize,
    /// Elements of the per-core partition.
    pub partition_elems: usize,
    /// Bytes of the per-core partition.
    pub partition_bytes: usize,
    /// Elements shifted per rotation step.
    pub per_shift_elems: usize,
    /// Bytes shifted per rotation step.
    pub per_shift_bytes: usize,
    /// Number of rotation rings (`P / factor`) — also the replication count.
    pub rings: usize,
    /// Element size in bytes.
    pub dtype_bytes: usize,
}

/// Derived plan state for the output tensor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OutPlan {
    /// Spatial partitioning of the output under `F_op`.
    pub spatial: SpatialInfo,
    /// Elements of the per-core output partition.
    pub partition_elems: usize,
    /// Bytes of the per-core output partition.
    pub partition_bytes: usize,
    /// Cores holding partial results that must be cross-core reduced
    /// (`Π F_op[a]` over reduction axes; 1 = no reduction exchange).
    pub reduce_group: usize,
    /// Element size in bytes.
    pub dtype_bytes: usize,
}

/// A fully-derived compute-shift execution plan for one operator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Plan {
    /// The configuration that produced the plan.
    pub config: PlanConfig,
    /// Per-axis per-core tile sizes.
    pub tiles: Vec<usize>,
    /// Cores used (`Π F_op`).
    pub cores_used: usize,
    /// Per-input derived state.
    pub slots: Vec<SlotPlan>,
    /// Output derived state.
    pub out: OutPlan,
    /// Rotation loop nest, outermost first (§4.4 loop-order rule: the
    /// smaller tensors rotate in the inner loops).
    pub rotations: Vec<RotationLevel>,
    /// Total compute-shift steps (`Π` level steps).
    pub total_steps: usize,
    /// Shape description of one per-core per-step sub-task.
    pub subtask: SubTaskDesc,
    /// Active per-core memory footprint in bytes (partitions + output).
    pub mem_per_core: usize,
    /// `Π_a L_a / (tile_a * F_op[a])` — 1.0 means no padding waste.
    pub padding_efficiency: f64,
}

impl Plan {
    /// Derives a plan from a configuration.
    ///
    /// `dtype_bytes` gives the element size of each input slot;
    /// `out_dtype_bytes` that of the output.
    pub fn build(
        op: &Operator,
        dtype_bytes: &[usize],
        out_dtype_bytes: usize,
        config: PlanConfig,
    ) -> Result<Self> {
        let expr = &op.expr;
        let n_axes = expr.axes.len();
        if config.f_op.len() != n_axes {
            return Err(compile_err!(
                "F_op has {} entries for {} axes",
                config.f_op.len(),
                n_axes
            ));
        }
        if config.temporal.len() != expr.num_inputs() {
            return Err(compile_err!(
                "temporal choices: {} for {} inputs",
                config.temporal.len(),
                expr.num_inputs()
            ));
        }
        if config.f_op.contains(&0) {
            return Err(compile_err!("F_op factors must be positive"));
        }
        for (a, (&p, axis)) in config.f_op.iter().zip(&expr.axes).enumerate() {
            if p > axis.size {
                return Err(compile_err!(
                    "F_op[{a}] = {p} exceeds axis {} size {}",
                    axis.name,
                    axis.size
                ));
            }
        }
        let tile = tiles(expr, &config.f_op);
        let cores_used: usize = config.f_op.iter().product();

        // Per-slot spatial and temporal derivation.
        let mut slots = Vec::with_capacity(expr.num_inputs());
        for (s, t) in config.temporal.iter().enumerate() {
            let spatial = spatial_info(expr, &expr.inputs[s], &config.f_op);
            let eb = dtype_bytes[s];
            let slot = if t.factor <= 1 {
                SlotPlan {
                    partition_elems: spatial.sub_elems,
                    partition_bytes: spatial.sub_elems * eb,
                    per_shift_elems: 0,
                    per_shift_bytes: 0,
                    rings: spatial.sharing,
                    plen: 0,
                    spatial,
                    temporal: TemporalChoice::none(),
                    dtype_bytes: eb,
                }
            } else {
                let dim = t
                    .dim
                    .ok_or_else(|| compile_err!("slot {s}: temporal factor without dim"))?;
                let di = spatial
                    .dims
                    .get(dim)
                    .ok_or_else(|| compile_err!("slot {s}: dim {dim} out of range"))?;
                if di.rot_axis.is_none() && !di.indirect {
                    return Err(compile_err!(
                        "slot {s}: dim {dim} is a compound axis and cannot rotate"
                    ));
                }
                if !spatial.sharing.is_multiple_of(t.factor) {
                    return Err(compile_err!(
                        "slot {s}: factor {} does not divide sharing {}",
                        t.factor,
                        spatial.sharing
                    ));
                }
                // Axis-mapped rotations require exact splits (the aligned
                // rotation math relies on it); indirect rotations pad the
                // last partition (e.g. a 30,522-row vocabulary split 368
                // ways).
                if !di.indirect && di.extent % t.factor != 0 {
                    return Err(compile_err!(
                        "slot {s}: factor {} does not divide extent {}",
                        t.factor,
                        di.extent
                    ));
                }
                let plen = di.extent.div_ceil(t.factor);
                let partition_elems = (spatial.sub_elems / di.extent.max(1)) * plen;
                SlotPlan {
                    partition_elems,
                    partition_bytes: partition_elems * eb,
                    per_shift_elems: 0, // filled in once rp is known
                    per_shift_bytes: 0,
                    rings: spatial.sharing / t.factor,
                    plen,
                    spatial,
                    temporal: *t,
                    dtype_bytes: eb,
                }
            };
            slots.push(slot);
        }

        // Rotating-pace alignment: group rotating slots by axis; rp is the
        // minimum partition length in each group (§4.2).
        let mut levels: Vec<RotationLevel> = Vec::new();
        for (s, slot) in slots.iter().enumerate() {
            if slot.temporal.factor <= 1 {
                continue;
            }
            let dim = slot.temporal.dim.ok_or_else(|| {
                crate::verify::invariant(
                    t10_verify::RuleId::FactorSharing,
                    format!(
                        "slot {s}: temporal factor {} without a rotating dim",
                        slot.temporal.factor
                    ),
                )
            })?;
            let axis = slot
                .spatial
                .dims
                .get(dim)
                .ok_or_else(|| {
                    crate::verify::invariant(
                        t10_verify::RuleId::FactorSharing,
                        format!("slot {s}: rotating dim {dim} out of range"),
                    )
                })?
                .rot_axis;
            if let Some(k) = axis {
                if let Some(level) = levels.iter_mut().find(|l| l.axis == Some(k)) {
                    level.slots.push(s);
                    level.rp = level.rp.min(slot.plen);
                } else {
                    levels.push(RotationLevel {
                        axis: Some(k),
                        steps: 0,
                        rp: slot.plen,
                        slots: vec![s],
                    });
                }
            } else {
                // Indirect rotation: its own virtual level; whole partitions
                // shift each step.
                levels.push(RotationLevel {
                    axis: None,
                    steps: slot.temporal.factor,
                    rp: slot.plen,
                    slots: vec![s],
                });
            }
        }
        for level in &mut levels {
            if let Some(k) = level.axis {
                let extent = tile[k];
                if !extent.is_multiple_of(level.rp) {
                    return Err(compile_err!(
                        "axis {k}: rp {} does not divide tile {extent}",
                        level.rp
                    ));
                }
                level.steps = extent / level.rp;
            }
        }
        // Validate the placement-consistency requirement: slots rotating
        // along one axis must have pairwise-disjoint missing-axis sets so a
        // consistent diagonal placement exists (§4.4, Figure 10).
        for level in &levels {
            for (i, &a) in level.slots.iter().enumerate() {
                for &b in &level.slots[i + 1..] {
                    let ma = &slots[a].spatial.missing_axes;
                    let mb = &slots[b].spatial.missing_axes;
                    if ma.iter().any(|x| mb.contains(x)) {
                        return Err(compile_err!(
                            "slots {a} and {b} rotate along one axis but share missing axes"
                        ));
                    }
                }
            }
        }
        // Fill per-shift volumes now that rp is aligned.
        for level in &levels {
            for &s in &level.slots {
                let slot = &mut slots[s];
                let shift_slices = if level.axis.is_some() {
                    level.rp
                } else {
                    slot.plen
                };
                // Cross-section elements per slice of the temporal dim.
                let cross = slot.partition_elems / slot.plen.max(1);
                slot.per_shift_elems = cross * shift_slices;
                slot.per_shift_bytes = slot.per_shift_elems * slot.dtype_bytes;
            }
        }
        // Loop order: larger rotating tensors outermost so they shift the
        // fewest times (§4.4).
        levels.sort_by(|x, y| {
            let bx: usize = x.slots.iter().map(|&s| slots[s].partition_bytes).sum();
            let by: usize = y.slots.iter().map(|&s| slots[s].partition_bytes).sum();
            by.cmp(&bx)
        });
        let total_steps: usize = levels.iter().map(|l| l.steps.max(1)).product();

        // Output partitioning.
        let out_spatial = spatial_info(expr, &expr.output, &config.f_op);
        let reduce_group: usize = expr
            .axes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AxisKind::Reduction)
            .map(|(i, _)| config.f_op[i])
            .product();
        let out = OutPlan {
            partition_elems: out_spatial.sub_elems,
            partition_bytes: out_spatial.sub_elems * out_dtype_bytes,
            reduce_group,
            spatial: out_spatial,
            dtype_bytes: out_dtype_bytes,
        };

        // Sub-task shape: rotating axes contribute rp, others their tile.
        let mut sub_tile = tile.clone();
        for level in &levels {
            if let Some(k) = level.axis {
                sub_tile[k] = level.rp;
            }
        }
        let out_elems: u64 = expr
            .axes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AxisKind::Spatial)
            .map(|(i, _)| sub_tile[i] as u64)
            .product();
        let red_elems: u64 = expr
            .axes
            .iter()
            .enumerate()
            .filter(|(_, a)| a.kind == AxisKind::Reduction)
            .map(|(i, _)| sub_tile[i] as u64)
            .product();
        // Window: reduction axes appearing inside compound dimensions.
        let mut in_compound = vec![false; n_axes];
        for dims in &expr.inputs {
            for e in dims {
                if e.terms.len() > 1 {
                    for t in &e.terms {
                        in_compound[t.axis] = true;
                    }
                }
            }
        }
        let window: u64 = expr
            .axes
            .iter()
            .enumerate()
            .filter(|(i, a)| a.kind == AxisKind::Reduction && in_compound[*i])
            .map(|(i, _)| sub_tile[i] as u64)
            .product();
        let in_bytes: u64 = expr
            .inputs
            .iter()
            .enumerate()
            .map(|(s, dims)| {
                let elems: usize = dims
                    .iter()
                    .map(|e| {
                        if e.is_indirect() {
                            slots[s].plen.max(1)
                        } else {
                            dim_extent(e, &sub_tile)
                        }
                    })
                    .product();
                (elems * dtype_bytes[s]) as u64
            })
            .sum();
        let out_bytes = expr
            .output
            .iter()
            .map(|e| dim_extent(e, &sub_tile))
            .product::<usize>() as u64
            * out_dtype_bytes as u64;
        let subtask = SubTaskDesc {
            kind: op.kind,
            out_elems,
            red_elems,
            window: window.max(1),
            in_bytes,
            out_bytes,
        };

        let mem_per_core =
            slots.iter().map(|s| s.partition_bytes).sum::<usize>() + out.partition_bytes;
        let padding_efficiency = expr
            .axes
            .iter()
            .enumerate()
            .map(|(i, a)| a.size as f64 / (tile[i] * config.f_op[i]) as f64)
            .product();

        Ok(Plan {
            config,
            tiles: tile,
            cores_used,
            slots,
            out,
            rotations: levels,
            total_steps,
            subtask,
            mem_per_core,
            padding_efficiency,
        })
    }

    /// Shift events over the whole plan, per rotation level:
    /// `(level index, number of shift events, bytes shifted per core per
    /// event)`. Level `i` rotates once per completed cycle of all inner
    /// levels, so its event count is the product of step counts from the
    /// outermost level down to `i`.
    pub fn shift_events(&self) -> Vec<(usize, usize, u64)> {
        let mut out = Vec::with_capacity(self.rotations.len());
        let mut prod = 1usize;
        for (i, level) in self.rotations.iter().enumerate() {
            prod *= level.steps.max(1);
            let bytes: u64 = level
                .slots
                .iter()
                .map(|&s| self.slots[s].per_shift_bytes as u64)
                .sum();
            out.push((i, prod, bytes));
        }
        out
    }

    /// Total bytes every core shifts over the full plan execution.
    pub fn total_shift_bytes_per_core(&self) -> u64 {
        self.shift_events()
            .iter()
            .map(|&(_, events, bytes)| events as u64 * bytes)
            .sum()
    }

    /// The rTensor summary of one input slot (for reporting, Figure 5).
    pub fn rtensor(&self, slot: usize) -> RTensor {
        let s = &self.slots[slot];
        let rank = s.spatial.dims.len();
        let mut f_t = vec![1usize; rank];
        let mut rp = vec![0usize; rank];
        if let Some(d) = s.temporal.dim {
            if s.temporal.factor > 1 {
                f_t[d] = s.temporal.factor;
                let pace = self
                    .rotations
                    .iter()
                    .find(|l| l.slots.contains(&slot))
                    .map(|l| if l.axis.is_some() { l.rp } else { s.plen })
                    .unwrap_or(0);
                rp[d] = pace;
            }
        }
        RTensor {
            f_s: s.spatial.f_s(),
            f_t,
            rp,
            rings: s.rings,
            replication: s.rings,
        }
    }

    /// Per-core bytes of input partitions only (no output) — the footprint
    /// that persists when the operator is idle with this layout.
    pub fn input_bytes_per_core(&self) -> usize {
        self.slots.iter().map(|s| s.partition_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_ir::builders;

    fn mm(m: usize, k: usize, n: usize) -> Operator {
        builders::matmul(0, 1, 2, m, k, n).unwrap()
    }

    /// The exact example of paper Figure 7: F_op = [2,1,3], f_t^A = 3 along
    /// k, f_t^B = 2 along k → rp = 2, 3 steps.
    #[test]
    fn paper_fig7_plan() {
        let op = mm(2, 6, 3);
        let cfg = PlanConfig {
            f_op: vec![2, 1, 3],
            temporal: vec![TemporalChoice::rotate(1, 3), TemporalChoice::rotate(0, 2)],
        };
        let plan = Plan::build(&op, &[2, 2], 2, cfg).unwrap();
        assert_eq!(plan.cores_used, 6);
        assert_eq!(plan.rotations.len(), 1);
        let level = &plan.rotations[0];
        assert_eq!(level.axis, Some(1));
        assert_eq!(level.rp, 2);
        assert_eq!(level.steps, 3);
        assert_eq!(plan.total_steps, 3);
        // A partitions: sub-tensor [1,6] split into 3 → plen 2.
        assert_eq!(plan.slots[0].plen, 2);
        // B partitions: sub-tensor [6,1] split into 2 → plen 3.
        assert_eq!(plan.slots[1].plen, 3);
        // Sub-task: m=1, k=2 (rp), n=1.
        assert_eq!(plan.subtask.out_elems, 1);
        assert_eq!(plan.subtask.red_elems, 2);
        // Per-step shifts: A moves a [1,2] tile, B a [2,1] tile (both rp=2
        // slices of their cross-sections).
        assert_eq!(plan.slots[0].per_shift_elems, 2);
        assert_eq!(plan.slots[1].per_shift_elems, 2);
    }

    /// Figure 3 (b): replicate the weight on both cores — one step, no
    /// communication, higher memory.
    #[test]
    fn paper_fig3_replication_tradeoff() {
        let op = mm(4, 4, 4);
        let rep = Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![2, 1, 1],
                temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
            },
        )
        .unwrap();
        let rot = Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![2, 1, 1],
                temporal: vec![TemporalChoice::none(), TemporalChoice::rotate(1, 2)],
            },
        )
        .unwrap();
        assert_eq!(rep.total_steps, 1);
        assert_eq!(rep.total_shift_bytes_per_core(), 0);
        assert_eq!(rot.total_steps, 2);
        assert!(rot.total_shift_bytes_per_core() > 0);
        // Rotation halves the weight footprint.
        assert!(rot.slots[1].partition_bytes < rep.slots[1].partition_bytes);
        assert!(rot.mem_per_core < rep.mem_per_core);
    }

    #[test]
    fn two_axis_rotation_orders_larger_tensor_outermost() {
        // A [8, 64] rotates along k, B [64, 512] rotates along n: B's
        // partitions are larger, so B should be the outer loop.
        let op = mm(8, 64, 512);
        // Both A and B rotate along axis k (A's dim 1, B's dim 0).
        let cfg = PlanConfig {
            f_op: vec![2, 1, 2],
            temporal: vec![TemporalChoice::rotate(1, 2), TemporalChoice::rotate(0, 2)],
        };
        let plan = Plan::build(&op, &[2, 2], 2, cfg).unwrap();
        assert_eq!(plan.rotations.len(), 1);
        // Both rotate along k in one level; combined rp = min(plen).
        let l = &plan.rotations[0];
        assert_eq!(l.slots.len(), 2);
        assert_eq!(l.rp, 32);
        assert_eq!(plan.total_steps, 2);
    }

    #[test]
    fn nested_rotation_levels_multiply_steps() {
        // A rotates along k (4 steps), B rotates along n (2 steps).
        let op = mm(4, 16, 8);
        // A rotates along k (its dim 1); B rotates along n (its dim 1) —
        // two distinct rotation levels.
        let cfg = PlanConfig {
            f_op: vec![2, 1, 2],
            temporal: vec![TemporalChoice::rotate(1, 2), TemporalChoice::rotate(1, 2)],
        };
        let plan = Plan::build(&op, &[2, 2], 2, cfg).unwrap();
        assert_eq!(plan.rotations.len(), 2);
        assert_eq!(
            plan.total_steps,
            plan.rotations[0].steps * plan.rotations[1].steps
        );
        // Events: outer level rotates `steps_outer` times... the outer
        // level's event count equals its own steps; the inner level fires
        // every step.
        let ev = plan.shift_events();
        assert_eq!(ev[0].1, plan.rotations[0].steps);
        assert_eq!(ev[1].1, plan.total_steps);
    }

    #[test]
    fn reduce_group_follows_reduction_partitioning() {
        let op = mm(4, 8, 4);
        let plan = Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![1, 4, 1],
                temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
            },
        )
        .unwrap();
        assert_eq!(plan.out.reduce_group, 4);
        assert_eq!(plan.cores_used, 4);
    }

    #[test]
    fn padding_efficiency_below_one_when_uneven() {
        let op = mm(5, 4, 4);
        let plan = Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![2, 1, 1],
                temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
            },
        )
        .unwrap();
        // m: tile = 3, padded to 6 for L = 5.
        assert!((plan.padding_efficiency - 5.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_invalid_configs() {
        let op = mm(4, 4, 4);
        // Factor does not divide sharing.
        assert!(Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![1, 1, 3],
                temporal: vec![TemporalChoice::rotate(1, 2), TemporalChoice::none()],
            },
        )
        .is_err());
        // F_op exceeding the axis size.
        assert!(Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![8, 1, 1],
                temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
            },
        )
        .is_err());
        // Temporal factor without a dim.
        assert!(Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![1, 1, 2],
                temporal: vec![
                    TemporalChoice {
                        dim: None,
                        factor: 2
                    },
                    TemporalChoice::none()
                ],
            },
        )
        .is_err());
    }

    #[test]
    fn rtensor_summary_reports_factors() {
        let op = mm(2, 6, 3);
        let plan = Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![2, 1, 3],
                temporal: vec![TemporalChoice::rotate(1, 3), TemporalChoice::rotate(0, 2)],
            },
        )
        .unwrap();
        let ra = plan.rtensor(0);
        assert_eq!(ra.f_s, vec![2, 1]);
        assert_eq!(ra.f_t, vec![1, 3]);
        assert_eq!(ra.rp, vec![0, 2]);
        assert_eq!(ra.rings, 1);
        let rb = plan.rtensor(1);
        assert_eq!(rb.f_s, vec![1, 3]);
        assert_eq!(rb.f_t, vec![2, 1]);
        assert_eq!(rb.rp, vec![2, 0]);
    }

    #[test]
    fn gather_indirect_rotation() {
        let op = builders::gather(0, 1, 2, 64, 16, 8).unwrap();
        let plan = Plan::build(
            &op,
            &[2, 4],
            2,
            PlanConfig {
                f_op: vec![4, 1],
                temporal: vec![TemporalChoice::rotate(0, 4), TemporalChoice::none()],
            },
        )
        .unwrap();
        // Table rotates its 64-row vocab through 4 steps of 16 rows each.
        assert_eq!(plan.rotations.len(), 1);
        assert_eq!(plan.rotations[0].axis, None);
        assert_eq!(plan.rotations[0].steps, 4);
        assert_eq!(plan.slots[0].plen, 16);
        assert_eq!(plan.total_steps, 4);
    }
}
