//! Intra-operator Pareto search (paper §4.3.1).
//!
//! The search enumerates operator partition factors `F_op` and temporal
//! choices per input tensor, filters evidently-inefficient plans with two
//! rule-based, user-configurable constraints (§5):
//!
//! * the **parallelism constraint** — plans must use at least
//!   `min_core_utilization × C` cores;
//! * the **padding constraint** — plans whose padded tiles waste more than
//!   `1 - padding_threshold` of the tensor volume are discarded;
//!
//! and evaluates the survivors with the linear cost model, keeping the
//! Pareto-optimal set over (execution time, per-core memory).

use serde::{Deserialize, Serialize};
use t10_ir::Operator;

use crate::cost::{CostModel, PlanCost};
use crate::plan::{Plan, PlanConfig, TemporalChoice};
use crate::{CompileError, Result};

/// User-configurable search constraints and limits.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchConfig {
    /// Minimum fraction of cores a plan must use (parallelism constraint).
    pub min_core_utilization: f64,
    /// Minimum `original/padded` volume ratio (padding constraint).
    pub padding_threshold: f64,
    /// Cap on distinct partition-factor candidates per axis.
    pub max_candidates_per_axis: usize,
    /// Cap on fully-evaluated plan configurations.
    pub max_configs: usize,
    /// Worker threads for plan evaluation.
    pub threads: usize,
    /// Record a (memory, time) sample per evaluated plan (Figure 17/20
    /// scatter data).
    pub collect_samples: bool,
    /// Override of the per-core memory cap used to filter plans, bytes.
    /// `None` uses the chip's SRAM minus the shift-buffer reservation; the
    /// compiler lowers it when an injected SRAM fault shrinks a core.
    pub mem_cap_override: Option<usize>,
    /// Wall-clock deadline for the search ("anytime" mode): workers stop
    /// picking up new configurations once it passes and return whatever
    /// frontier they accumulated.
    #[serde(skip)]
    pub deadline: Option<std::time::Instant>,
}

impl Default for SearchConfig {
    fn default() -> Self {
        Self {
            min_core_utilization: 0.9,
            padding_threshold: 0.9,
            max_candidates_per_axis: 48,
            max_configs: 200_000,
            threads: 8,
            collect_samples: false,
            mem_cap_override: None,
            deadline: None,
        }
    }
}

impl SearchConfig {
    /// The default constraint setting of the paper's evaluation.
    pub fn strict() -> Self {
        Self::default()
    }

    /// A fast setting for tests: fewer candidates, single thread.
    pub fn fast() -> Self {
        Self {
            min_core_utilization: 0.5,
            padding_threshold: 0.7,
            max_candidates_per_axis: 12,
            max_configs: 20_000,
            threads: 1,
            collect_samples: false,
            ..Self::default()
        }
    }

    /// A relaxed setting exploring a larger space (Figure 19's loose end).
    pub fn relaxed() -> Self {
        Self {
            min_core_utilization: 0.5,
            padding_threshold: 0.6,
            max_candidates_per_axis: 96,
            max_configs: 800_000,
            threads: 8,
            collect_samples: false,
            ..Self::default()
        }
    }

    /// A minimal emergency setting: tiny candidate caps, single thread.
    /// Used as the last rung of the compiler's fallback chain so even a
    /// near-expired deadline yields *some* valid plan.
    pub fn emergency() -> Self {
        Self {
            min_core_utilization: 0.0,
            padding_threshold: 0.5,
            max_candidates_per_axis: 4,
            max_configs: 256,
            threads: 1,
            collect_samples: false,
            ..Self::default()
        }
    }
}

/// A plan together with its predicted cost and setup time.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScoredPlan {
    /// The derived plan.
    pub plan: Plan,
    /// Predicted steady-state cost.
    pub cost: PlanCost,
    /// Predicted idle-to-active setup time (§4.3.2).
    pub setup_time: f64,
}

/// The Pareto-optimal set over (execution time, per-core memory), sorted by
/// memory ascending (and therefore time descending).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ParetoSet {
    plans: Vec<ScoredPlan>,
}

impl ParetoSet {
    /// Inserts a plan, keeping only non-dominated entries.
    pub fn insert(&mut self, p: ScoredPlan) {
        // Dominated by an existing plan?
        if self.plans.iter().any(|q| {
            q.cost.mem_per_core <= p.cost.mem_per_core && q.cost.exec_time <= p.cost.exec_time
        }) {
            return;
        }
        self.plans.retain(|q| {
            !(p.cost.mem_per_core <= q.cost.mem_per_core && p.cost.exec_time <= q.cost.exec_time)
        });
        let at = self
            .plans
            .partition_point(|q| q.cost.mem_per_core < p.cost.mem_per_core);
        self.plans.insert(at, p);
    }

    /// Merges another Pareto set into this one.
    pub fn merge(&mut self, other: ParetoSet) {
        for p in other.plans {
            self.insert(p);
        }
    }

    /// All plans, memory-ascending.
    pub fn plans(&self) -> &[ScoredPlan] {
        &self.plans
    }

    /// Number of Pareto-optimal plans.
    pub fn len(&self) -> usize {
        self.plans.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.plans.is_empty()
    }

    /// The fastest plan whose active memory fits in `budget` bytes.
    pub fn fastest_within(&self, budget: usize) -> Option<&ScoredPlan> {
        self.plans
            .iter()
            .filter(|p| p.cost.mem_per_core <= budget)
            .min_by(|a, b| a.cost.exec_time.total_cmp(&b.cost.exec_time))
    }

    /// The plan with the smallest active memory footprint.
    pub fn min_memory(&self) -> Option<&ScoredPlan> {
        self.plans.first()
    }

    /// The fastest plan overall.
    pub fn fastest(&self) -> Option<&ScoredPlan> {
        self.plans.last()
    }
}

/// Search-space statistics (Figure 18's three bars).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Estimated size of the complete (unconstrained) space.
    pub complete_space: f64,
    /// Plans remaining after the rule-based constraints, before the cost
    /// model (the number actually evaluated).
    pub filtered_space: usize,
    /// Pareto-optimal plans kept.
    pub optimized_space: usize,
    /// Whether `max_configs` truncated the enumeration.
    pub truncated: bool,
    /// Optional (mem bytes, exec seconds, setup seconds) samples.
    pub samples: Vec<(usize, f64, f64)>,
}

/// Per-axis candidate partition factors.
///
/// Only factors producing distinct (tile, padding-acceptable) splits are
/// kept: for every achievable tile size `l`, the smallest `p` with
/// `ceil(L/p) = l` minimizes padding.
fn axis_candidates(len: usize, cores: usize, cfg: &SearchConfig) -> Vec<usize> {
    let maxp = len.min(cores).max(1);
    let mut cands = Vec::new();
    let mut last_tile = usize::MAX;
    for p in 1..=maxp {
        let tile = len.div_ceil(p);
        if tile == last_tile {
            continue;
        }
        last_tile = tile;
        let canonical = len.div_ceil(tile);
        let ratio = len as f64 / (tile * canonical) as f64;
        if ratio >= cfg.padding_threshold {
            cands.push(canonical);
        }
    }
    cands.dedup();
    if cands.len() > cfg.max_candidates_per_axis {
        // Keep all small factors (they matter most: reduction splits and
        // ring sizes), subsample the rest evenly, and keep the extremes.
        let (small, large): (Vec<usize>, Vec<usize>) = cands.iter().partition(|&&p| p <= 16);
        let n = cfg
            .max_candidates_per_axis
            .saturating_sub(small.len())
            .max(2);
        let mut picked = small;
        if !large.is_empty() {
            picked.extend((0..n).map(|i| large[i * (large.len() - 1) / (n - 1)]));
        }
        picked.dedup();
        return picked;
    }
    cands
}

/// Temporal choices for one slot under a fixed `F_op`.
fn temporal_choices(op: &Operator, slot: usize, f_op: &[usize]) -> Vec<TemporalChoice> {
    let info = crate::rtensor::spatial_info(&op.expr, &op.expr.inputs[slot], f_op);
    let mut out = vec![TemporalChoice::none()];
    if info.sharing <= 1 {
        return out;
    }
    for (d, di) in info.dims.iter().enumerate() {
        if di.rot_axis.is_none() && !di.indirect {
            continue;
        }
        for f in divisors(info.sharing) {
            // Indirect (gather) dimensions pad their last partition, so any
            // ring-compatible factor is admissible; axis-mapped rotations
            // require exact splits.
            let splits = di.indirect || di.extent % f == 0;
            if f > 1 && splits && di.extent.div_ceil(f) >= 1 {
                out.push(TemporalChoice::rotate(d, f));
            }
        }
    }
    out
}

fn divisors(n: usize) -> Vec<usize> {
    let mut d = Vec::new();
    let mut i = 1;
    while i * i <= n {
        if n.is_multiple_of(i) {
            d.push(i);
            if i != n / i {
                d.push(n / i);
            }
        }
        i += 1;
    }
    d.sort_unstable();
    d
}

/// Runs the intra-operator search.
pub fn search_operator(
    op: &Operator,
    dtype_bytes: &[usize],
    out_dtype_bytes: usize,
    cost: &CostModel,
    cfg: &SearchConfig,
) -> Result<(ParetoSet, SearchStats)> {
    let cores = cost.spec().num_cores;
    let mem_cap = cfg.mem_cap_override.unwrap_or_else(|| {
        cost.spec()
            .sram_per_core
            .saturating_sub(cost.spec().shift_buffer)
    });
    let axes = &op.expr.axes;
    let cand: Vec<Vec<usize>> = axes
        .iter()
        .map(|a| axis_candidates(a.size, cores, cfg))
        .collect();

    // Enumerate F_op vectors with Π ∈ [min_util*Cmax, C] by DFS with
    // bounds, where Cmax = min(C, Π min(L_a, C)) — the paper's parallelism
    // constraint is relative to the achievable parallelism `min(L, C)`
    // (§4.3.1), so small operators are not filtered into infeasibility.
    let achievable: usize = axes
        .iter()
        .fold(1usize, |acc, a| acc.saturating_mul(a.size.min(cores)))
        .min(cores);
    let min_cores = ((cfg.min_core_utilization * achievable as f64).ceil() as usize).max(1);
    let mut fops: Vec<Vec<usize>> = Vec::new();
    let mut truncated = false;
    {
        // Suffix products of per-axis maxima for pruning.
        let mut suffix_max = vec![1u128; axes.len() + 1];
        for i in (0..axes.len()).rev() {
            let m = *cand[i].iter().max().unwrap_or(&1) as u128;
            suffix_max[i] = (suffix_max[i + 1].saturating_mul(m)).min(u128::from(u64::MAX));
        }
        let mut cur = Vec::with_capacity(axes.len());
        dfs_fop(
            &cand,
            &suffix_max,
            cores,
            min_cores,
            cfg.max_configs * 4,
            &mut cur,
            1,
            &mut fops,
            &mut truncated,
        );
    }

    // Complete-space estimate: Π_a min(L_a, C) F_op choices times the mean
    // number of temporal combinations over the enumerated configurations.
    let fop_space: f64 = axes.iter().map(|a| a.size.min(cores) as f64).product();
    let mut temporal_combo_acc = 0.0f64;
    let mut temporal_combo_n = 0usize;

    // Evaluate configurations (parallel over F_op chunks).
    let threads = cfg.threads.max(1);
    let chunk = fops.len().div_ceil(threads).max(1);
    type WorkerResult = (ParetoSet, usize, Vec<(usize, f64, f64)>, f64, usize, bool);
    let mut results: Vec<WorkerResult> = Vec::new();
    let mut worker_panic: Option<String> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for ch in fops.chunks(chunk) {
            handles.push(scope.spawn(move || {
                let mut pareto = ParetoSet::default();
                let mut evaluated = 0usize;
                let mut samples = Vec::new();
                let mut combo_acc = 0.0f64;
                let mut combo_n = 0usize;
                let mut expired = false;
                for f_op in ch {
                    if cfg.deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                        expired = true;
                        break;
                    }
                    let per_slot: Vec<Vec<TemporalChoice>> = (0..op.expr.num_inputs())
                        .map(|s| temporal_choices(op, s, f_op))
                        .collect();
                    let combos: usize = per_slot.iter().map(Vec::len).product();
                    combo_acc += combos as f64;
                    combo_n += 1;
                    if evaluated >= cfg.max_configs / threads.max(1) {
                        continue;
                    }
                    let mut pick = vec![0usize; per_slot.len()];
                    let mut since_check = 0u32;
                    loop {
                        // Re-check the deadline inside long odometer runs so
                        // a single huge F_op cannot blow the budget.
                        since_check += 1;
                        if since_check >= 256 {
                            since_check = 0;
                            if cfg.deadline.is_some_and(|d| std::time::Instant::now() >= d) {
                                expired = true;
                                break;
                            }
                        }
                        let temporal: Vec<TemporalChoice> =
                            pick.iter().zip(&per_slot).map(|(&i, v)| v[i]).collect();
                        let config = PlanConfig {
                            f_op: f_op.clone(),
                            temporal,
                        };
                        if let Ok(plan) = Plan::build(op, dtype_bytes, out_dtype_bytes, config) {
                            if plan.padding_efficiency >= cfg.padding_threshold
                                && plan.mem_per_core <= mem_cap
                                && plan.total_steps <= 1 << 20
                            {
                                evaluated += 1;
                                let c = cost.estimate_plan(op, &plan);
                                let setup = cost.estimate_setup(&plan);
                                if cfg.collect_samples {
                                    samples.push((c.mem_per_core, c.exec_time, setup));
                                }
                                pareto.insert(ScoredPlan {
                                    plan,
                                    cost: c,
                                    setup_time: setup,
                                });
                            }
                        }
                        // Advance the per-slot odometer.
                        let mut done = true;
                        for i in (0..pick.len()).rev() {
                            pick[i] += 1;
                            if pick[i] < per_slot[i].len() {
                                done = false;
                                break;
                            }
                            pick[i] = 0;
                        }
                        if done {
                            break;
                        }
                    }
                    if expired {
                        break;
                    }
                }
                (pareto, evaluated, samples, combo_acc, combo_n, expired)
            }));
        }
        for h in handles {
            // A panicking worker must not take down the process: surface it
            // as a typed error and let the healthy workers' results stand.
            match h.join() {
                Ok(r) => results.push(r),
                Err(payload) => {
                    let detail = payload
                        .downcast_ref::<&str>()
                        .map(|s| (*s).to_string())
                        .or_else(|| payload.downcast_ref::<String>().cloned())
                        .unwrap_or_else(|| "non-string panic payload".to_string());
                    worker_panic.get_or_insert(detail);
                }
            }
        }
    });
    if let Some(detail) = worker_panic {
        return Err(CompileError::worker_panicked(detail));
    }

    let mut pareto = ParetoSet::default();
    let mut stats = SearchStats {
        truncated,
        ..Default::default()
    };
    for (p, evaluated, samples, combo_acc, combo_n, expired) in results {
        pareto.merge(p);
        stats.filtered_space += evaluated;
        stats.samples.extend(samples);
        stats.truncated |= expired;
        temporal_combo_acc += combo_acc;
        temporal_combo_n += combo_n;
    }
    let mean_combos = if temporal_combo_n > 0 {
        temporal_combo_acc / temporal_combo_n as f64
    } else {
        1.0
    };
    stats.complete_space = fop_space * mean_combos.max(1.0);
    stats.optimized_space = pareto.len();
    Ok((pareto, stats))
}

#[expect(clippy::too_many_arguments)]
fn dfs_fop(
    cand: &[Vec<usize>],
    suffix_max: &[u128],
    max_cores: usize,
    min_cores: usize,
    cap: usize,
    cur: &mut Vec<usize>,
    prod: usize,
    out: &mut Vec<Vec<usize>>,
    truncated: &mut bool,
) {
    if out.len() >= cap {
        *truncated = true;
        return;
    }
    let depth = cur.len();
    if depth == cand.len() {
        if prod >= min_cores {
            out.push(cur.clone());
        }
        return;
    }
    // Prune: even taking maxima for the rest cannot reach min_cores.
    if (prod as u128) * suffix_max[depth] < min_cores as u128 {
        return;
    }
    for &p in &cand[depth] {
        let next = prod.saturating_mul(p);
        if next > max_cores {
            continue;
        }
        cur.push(p);
        dfs_fop(
            cand, suffix_max, max_cores, min_cores, cap, cur, next, out, truncated,
        );
        cur.pop();
        if *truncated {
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_device::ChipSpec;
    use t10_ir::builders;

    fn model(cores: usize) -> CostModel {
        CostModel::calibrate(&ChipSpec::ipu_with_cores(cores), 128, 1).unwrap()
    }

    #[test]
    fn axis_candidates_respect_padding() {
        let cfg = SearchConfig::strict();
        let c = axis_candidates(64, 1000, &cfg);
        // All divisors of 64 are exact splits.
        for &p in &c {
            let tile = 64usize.div_ceil(p);
            assert!(64.0 / (tile * p) as f64 >= 0.9, "p={p}");
        }
        assert!(c.contains(&1));
        assert!(c.contains(&64));
        // 63 cannot be split into 2 without padding below… 63/2 → tile 32,
        // ratio 63/64 ≈ 0.98 → allowed.
        let c63 = axis_candidates(63, 1000, &cfg);
        assert!(c63.contains(&2));
    }

    #[test]
    fn axis_candidates_capped() {
        let mut cfg = SearchConfig::strict();
        cfg.max_candidates_per_axis = 8;
        let c = axis_candidates(4096, 4096, &cfg);
        // Small factors (≤ 16) are always kept; the large tail is capped.
        let large = c.iter().filter(|&&p| p > 16).count();
        assert!(large <= 8, "large tail has {large}");
        assert!(c.contains(&1));
        assert!(c.contains(&4096));
    }

    #[test]
    fn divisors_are_sorted_and_complete() {
        assert_eq!(divisors(12), vec![1, 2, 3, 4, 6, 12]);
        assert_eq!(divisors(1), vec![1]);
        assert_eq!(divisors(7), vec![1, 7]);
    }

    #[test]
    fn pareto_insert_keeps_frontier() {
        fn sp(mem: usize, time: f64) -> ScoredPlan {
            // A minimal plan stand-in: only cost matters for the set logic.
            let op = builders::matmul(0, 1, 2, 4, 4, 4).unwrap();
            let plan = Plan::build(
                &op,
                &[2, 2],
                2,
                crate::plan::PlanConfig {
                    f_op: vec![1, 1, 1],
                    temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
                },
            )
            .unwrap();
            ScoredPlan {
                plan,
                cost: PlanCost {
                    exec_time: time,
                    compute_time: time,
                    exchange_time: 0.0,
                    mem_per_core: mem,
                },
                setup_time: 0.0,
            }
        }
        let mut set = ParetoSet::default();
        set.insert(sp(100, 10.0));
        set.insert(sp(200, 5.0));
        set.insert(sp(150, 20.0)); // dominated by (100, 10)
        set.insert(sp(50, 30.0));
        assert_eq!(set.len(), 3);
        assert_eq!(set.min_memory().unwrap().cost.mem_per_core, 50);
        assert_eq!(set.fastest().unwrap().cost.mem_per_core, 200);
        assert_eq!(set.fastest_within(120).unwrap().cost.mem_per_core, 100);
        assert!(set.fastest_within(10).is_none());
        // A dominating insert evicts.
        set.insert(sp(40, 4.0));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn search_finds_tradeoff_curve_for_matmul() {
        let m = model(16);
        let op = builders::matmul(0, 1, 2, 64, 64, 64).unwrap();
        let (pareto, stats) = search_operator(&op, &[2, 2], 2, &m, &SearchConfig::fast()).unwrap();
        assert!(!pareto.is_empty());
        assert!(stats.filtered_space > 0);
        assert!(stats.complete_space >= stats.filtered_space as f64);
        assert_eq!(stats.optimized_space, pareto.len());
        // The frontier is sorted by memory and strictly improving in time.
        let plans = pareto.plans();
        for w in plans.windows(2) {
            assert!(w[0].cost.mem_per_core < w[1].cost.mem_per_core);
            assert!(w[0].cost.exec_time > w[1].cost.exec_time);
        }
    }

    #[test]
    fn parallelism_constraint_filters_small_plans() {
        let m = model(16);
        let op = builders::matmul(0, 1, 2, 64, 64, 64).unwrap();
        let mut cfg = SearchConfig::fast();
        cfg.min_core_utilization = 0.9;
        let (pareto, _) = search_operator(&op, &[2, 2], 2, &m, &cfg).unwrap();
        for p in pareto.plans() {
            assert!(p.plan.cores_used >= 15, "cores = {}", p.plan.cores_used);
        }
    }

    #[test]
    fn search_covers_elementwise_ops() {
        let m = model(8);
        let op = builders::unary(0, 1, vec![128, 128], t10_ir::Unary::Relu).unwrap();
        let (pareto, _) = search_operator(&op, &[2], 2, &m, &SearchConfig::fast()).unwrap();
        assert!(!pareto.is_empty());
        // Elementwise ops have no sharing → no rotation; exchange-free.
        assert_eq!(pareto.fastest().unwrap().cost.exchange_time, 0.0);
    }

    #[test]
    fn search_handles_gather() {
        // A narrow embedding dim (d = 4) forces heavy n-parallelism, so the
        // table is shared by many cores and rotating it saves real memory.
        let m = model(16);
        let op = builders::gather(0, 1, 2, 256, 512, 4).unwrap();
        let (pareto, _) = search_operator(&op, &[2, 4], 2, &m, &SearchConfig::fast()).unwrap();
        assert!(!pareto.is_empty());
        // Some plan should rotate the table (factor > 1 on slot 0).
        let rotating = pareto
            .plans()
            .iter()
            .any(|p| p.plan.slots[0].temporal.factor > 1);
        assert!(rotating);
    }
}
