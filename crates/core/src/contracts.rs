//! Boundary-contract derivation: the compiler side of graph-level analysis.
//!
//! The assembly loop in [`crate::compiler`] lowers one inter-operator
//! layout transition (§5) per producer node and either piggybacks it on
//! the node's last superstep or emits a dedicated `Phase::Transition`
//! step. This module turns that implicit handoff into typed
//! [`BoundaryContract`]s — one per dataflow edge — that
//! `t10_verify::graph` proves against the assembled program: layout
//! compatibility, byte conservation, transition-window residency, and
//! dataflow coverage.

use t10_device::boundary::{BoundaryContract, GraphEdge, OpClass};
use t10_ir::{Graph, IndexExpr, Node, OpKind, ValueKind};

use crate::plan::Plan;
use crate::reconcile::{weight_bytes_per_core, OpForSchedule, Reconciled};
use crate::search::ParetoSet;

/// Fusion class of an operator kind, as the FUSE lints consume it.
///
/// Matmul and convolution anchor fusion chains; gathers break them
/// (data-dependent access cannot ride a rotation ring); everything else
/// is glue that may sit in a chain's interior.
#[must_use]
pub fn op_class(kind: OpKind) -> OpClass {
    match kind {
        OpKind::MatMul | OpKind::Conv2d => OpClass::ComputeIntensive,
        OpKind::Gather => OpClass::MemoryBound,
        OpKind::Elementwise | OpKind::Reduce | OpKind::Pool => OpClass::Elementwise,
    }
}

/// The ring signature `(rings, pace)` a plan sustains for one input slot,
/// or for its stationary output when `slot` is `None` (the innermost
/// rotation level — the ring a fused intermediate would ride).
///
/// `(0, 0)` when nothing rotates: a stationary operand has no ring, and
/// the pair is kept jointly zero so a contract never claims rings without
/// a pace (GRAPH08 treats that as malformed).
fn ring_signature(plan: &Plan, slot: Option<usize>) -> (usize, usize) {
    let (rings, pace) = match slot {
        Some(s) => {
            let pace = plan
                .rotations
                .iter()
                .find(|level| level.slots.contains(&s))
                .map_or(0, |level| level.rp);
            (plan.slots.get(s).map_or(0, |sp| sp.rings), pace)
        }
        None => match plan.rotations.last() {
            Some(level) => {
                let rings = level
                    .slots
                    .first()
                    .and_then(|&s| plan.slots.get(s))
                    .map_or(0, |sp| sp.rings);
                (rings, level.rp)
            }
            None => (0, 0),
        },
    };
    if rings == 0 || pace == 0 {
        (0, 0)
    } else {
        (rings, pace)
    }
}

/// Whether `exprs` addresses the stored value identically: one stride-1
/// zero-offset axis per dimension, with the accessed extent equal to the
/// stored extent. Only then is per-byte coverage arithmetic exact across a
/// boundary — windowed accesses (conv/pool halos), cropped interiors of
/// padded values, and data-dependent gathers all legitimately touch fewer
/// or more bytes than `cores x partition`, so such boundaries are proved
/// at placement granularity instead (see `t10_verify::graph`).
fn identity_access(node: &Node, exprs: &[IndexExpr], shape: &[usize]) -> bool {
    exprs.len() == shape.len()
        && exprs.iter().zip(shape).all(|(e, &extent)| {
            e.single_axis().is_some() && e.dim_size(&node.op.expr.axes) == extent
        })
}

/// Derives the graph's dataflow edges and one boundary contract per edge.
///
/// `transition_at[i]` is the superstep carrying node `i`'s §5 transition
/// (`(step index, piggybacked)`), as recorded by the assembly loop; `None`
/// for the last node, which has no downstream boundary. Edges whose
/// producer has no transition step (impossible for compiler-assembled
/// programs) are still emitted so the graph pass reports the hole instead
/// of silently narrowing coverage.
#[must_use]
pub fn derive(
    graph: &Graph,
    node_pareto: &[ParetoSet],
    reconciled: &Reconciled,
    ops: &[OpForSchedule],
    transition_at: &[Option<(usize, bool)>],
) -> (Vec<GraphEdge>, Vec<BoundaryContract>) {
    let mut edges = Vec::new();
    let mut contracts = Vec::new();
    let chosen = |i: usize| -> Option<&Plan> {
        let choice = reconciled.choices.get(i)?;
        Some(&node_pareto.get(i)?.plans().get(choice.active)?.plan)
    };
    // Producer map: which node writes each value.
    let mut producer_of = std::collections::BTreeMap::new();
    for (i, node) in graph.nodes().iter().enumerate() {
        producer_of.insert(node.op.output, i);
    }
    for (j, node) in graph.nodes().iter().enumerate() {
        for (s, &v) in node.op.inputs.iter().enumerate() {
            if graph.value(v).kind == ValueKind::Weight {
                continue;
            }
            let Some(&i) = producer_of.get(&v) else {
                continue; // graph input: loaded off-chip, not a boundary
            };
            let tensor_bytes = graph.value(v).bytes() as u64;
            edges.push(GraphEdge {
                producer: i,
                consumer: j,
                value: v,
                consumer_slot: s,
                tensor_bytes,
            });
            let (Some(pplan), Some(cplan)) = (chosen(i), chosen(j)) else {
                continue;
            };
            let Some(&Some((step, piggybacked))) = transition_at.get(i) else {
                continue;
            };
            let (producer_rings, producer_pace) = ring_signature(pplan, None);
            let (consumer_rings, consumer_pace) = ring_signature(cplan, Some(s));
            let setup = ops
                .get(j)
                .map_or(0, |op| weight_bytes_per_core(cplan, &op.weight_slots));
            contracts.push(BoundaryContract {
                producer: i,
                consumer: j,
                value: v,
                tensor_bytes,
                producer_dtype_bytes: pplan.out.dtype_bytes,
                consumer_dtype_bytes: cplan.slots.get(s).map_or(0, |sp| sp.dtype_bytes),
                producer_cores: pplan.cores_used,
                producer_partition_bytes: pplan.out.partition_bytes,
                producer_rings,
                producer_pace,
                consumer_cores: cplan.cores_used,
                consumer_slot: s,
                consumer_partition_bytes: cplan.slots.get(s).map_or(0, |sp| sp.partition_bytes),
                consumer_rings,
                consumer_pace,
                consumer_per_shift_bytes: cplan.slots.get(s).map_or(0, |sp| sp.per_shift_bytes),
                consumer_setup_bytes: setup,
                transition_step: step,
                piggybacked,
                transition_bytes: pplan.out.partition_bytes as u64 * pplan.cores_used as u64,
                dense_layout: identity_access(
                    graph.node(i),
                    &graph.node(i).op.expr.output,
                    &graph.value(v).shape,
                ) && node
                    .op
                    .expr
                    .inputs
                    .get(s)
                    .is_some_and(|exprs| identity_access(node, exprs, &graph.value(v).shape)),
                producer_class: op_class(graph.node(i).op.kind),
                consumer_class: op_class(node.op.kind),
            });
        }
    }
    (edges, contracts)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_class_maps_every_kind() {
        assert_eq!(op_class(OpKind::MatMul), OpClass::ComputeIntensive);
        assert_eq!(op_class(OpKind::Conv2d), OpClass::ComputeIntensive);
        assert_eq!(op_class(OpKind::Gather), OpClass::MemoryBound);
        assert_eq!(op_class(OpKind::Elementwise), OpClass::Elementwise);
        assert_eq!(op_class(OpKind::Reduce), OpClass::Elementwise);
        assert_eq!(op_class(OpKind::Pool), OpClass::Elementwise);
    }
}
