//! Self-healing execution: retry, re-plan, migrate, resume.
//!
//! The [`RecoveryController`] supervises a program running on the simulator
//! under a [`FaultTimeline`]. Failures surface at BSP barriers as typed
//! [`DeviceError::RuntimeFault`]s, and the controller's response depends on
//! the fault class:
//!
//! * **transient** — the machine is fine, the superstep wasn't. Roll back
//!   to the last checkpoint, wait out a capped exponential backoff, and
//!   replay. Replayed supersteps recompute the same f32 values on the same
//!   state, so the run stays numerically identical to a healthy one.
//! * **persistent** (link death, core death) — the compiled plan no longer
//!   matches the machine. Derive the surviving [`ChipSpec`]/[`FaultPlan`],
//!   recompile through the fallback chain — warm-starting from the prior
//!   Pareto frontier, since link faults don't change plan feasibility —
//!   salvage the distributed *input* state from the last checkpoint
//!   (rotation is a permutation, so the full global input reconstructs at
//!   any barrier), compute the sub-tensor migration map from the old
//!   placement to the new, and restart the operator on the surviving chip.
//!   Output partial sums are tied to the dead placement and are discarded;
//!   the supersteps they took are counted as lost.
//!
//! Everything the run survived is folded into a
//! [`RecoveryReport`](t10_sim::RecoveryReport) inside the final
//! [`RunReport`].

use std::collections::BTreeMap;

use t10_device::boundary::{BoundaryContract, GraphEdge};
use t10_device::program::{BufferId, Program};
use t10_device::ChipSpec;
use t10_ir::Tensor;
use t10_metrics::{names as metric_names, Registry};
use t10_sim::timeline::FaultEventKind;
use t10_sim::{
    FaultPlan, FaultTimeline, LinkFault, RecoveryReport, RunReport, RunStateEvent, RunStateLog,
    Simulator, SimulatorMode,
};
use t10_trace::{Trace, Value, PID_RECOVERY};

use crate::search::ParetoSet;
use crate::{CompileError, Result};

/// Knobs governing how hard the controller tries before giving up.
#[derive(Debug, Clone)]
pub struct RecoveryPolicy {
    /// Total recovery events (retries + recompiles) allowed before the run
    /// is declared unrecoverable.
    pub max_retries: usize,
    /// Checkpoint interval in supersteps (minimum 1: a baseline checkpoint
    /// is always taken right after inputs are bound).
    pub checkpoint_every: usize,
    /// First-retry backoff in seconds; doubles per consecutive retry.
    pub backoff_base: f64,
    /// Backoff ceiling in seconds.
    pub backoff_cap: f64,
    /// Jitter fraction applied to each backoff, in `[0, 1]`: the capped
    /// exponential delay is scaled by `1 − j/2 + j·u` with `u ∈ [0, 1)`
    /// derived deterministically from the fault's global step and the retry
    /// ordinal, so repeated faults at the *same* barrier desynchronize
    /// (mean delay is preserved, and same-seed runs stay byte-identical).
    pub backoff_jitter: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        Self {
            max_retries: 3,
            checkpoint_every: 4,
            backoff_base: 1e-3,
            backoff_cap: 8e-3,
            backoff_jitter: 0.25,
        }
    }
}

/// Deterministic jitter source: a splitmix64 finalizer over the (global
/// step, retry ordinal) pair, mapped to `[0, 1)`. Pure function of run
/// state — no wall clock, no shared RNG — so recovery stays replayable.
fn jitter_unit(step: usize, retry: usize) -> f64 {
    let mut x = (step as u64)
        .wrapping_shl(32)
        .wrapping_add(retry as u64)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// One verification-gate decision for a (re)compiled unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnitAudit {
    /// 0 for the initial compile, `n` for the n-th recovery recompile.
    pub index: usize,
    /// Whether the unit passed the static verifier (`t10-verify`).
    pub verified: bool,
    /// Whether the unit passed translation validation (`t10-prove`).
    pub proved: bool,
}

/// One recovery decision: a transient retry or a persistent re-plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryAudit {
    /// Global superstep at which the fault fired.
    pub step: usize,
    /// Transient (rollback + replay) vs persistent (recompile + migrate).
    pub transient: bool,
    /// Backoff charged for this retry, in seconds (0 for re-plans).
    pub backoff: f64,
    /// Supersteps of work discarded by this recovery.
    pub supersteps_lost: usize,
}

/// Introspectable history of everything the controller did to a run, built
/// for the chaos oracle: every verification-gate decision, every
/// retry/re-plan with its backoff, and the simulators' append-only
/// [`RunStateLog`]s concatenated in occurrence order.
///
/// [`RecoveryAudit::invariant_violations`] checks the recovery invariants
/// the tentpole oracle enforces; a healthy controller always returns an
/// empty list (the intentionally-buggy [`RecoveryMutation`]s exist to trip
/// it in tests).
#[derive(Debug, Clone, Default)]
pub struct RecoveryAudit {
    /// Verification-gate decisions, initial compile first.
    pub units: Vec<UnitAudit>,
    /// Recovery decisions in occurrence order.
    pub retries: Vec<RetryAudit>,
    /// Checkpoint/restore/absorb/fatal history across all simulators.
    pub state_events: RunStateLog,
    /// The retry cap in force (from [`RecoveryPolicy::max_retries`]).
    pub max_retries: usize,
}

impl RecoveryAudit {
    /// Total recovery events recorded (transient retries + re-plans).
    pub fn recoveries(&self) -> usize {
        self.retries.len()
    }

    /// Checks the recovery invariants and describes every violation:
    ///
    /// * the retry cap was respected (`retries ≤ max_retries`);
    /// * every (re)compiled unit passed both the verifier and the prover;
    /// * no checkpoint regression — every restore targets a previously
    ///   logged checkpoint at or before the failing step, and no later
    ///   checkpoint lands before the step a restore rewound to.
    pub fn invariant_violations(&self) -> Vec<String> {
        let mut out = Vec::new();
        if self.retries.len() > self.max_retries {
            out.push(format!(
                "retry cap exceeded: {} recoveries against a budget of {}",
                self.retries.len(),
                self.max_retries
            ));
        }
        for u in &self.units {
            if !u.verified || !u.proved {
                out.push(format!(
                    "unit {} ran uncertified (verified={}, proved={})",
                    u.index, u.verified, u.proved
                ));
            }
        }
        let mut ck_steps: std::collections::BTreeSet<usize> = std::collections::BTreeSet::new();
        let mut floor = 0usize;
        for ev in &self.state_events {
            match *ev {
                RunStateEvent::Checkpoint { step, .. } => {
                    if step < floor {
                        out.push(format!(
                            "checkpoint regression: snapshot at step {step} after a \
                             restore rewound to step {floor}"
                        ));
                    }
                    ck_steps.insert(step);
                }
                RunStateEvent::Restore { from, to } => {
                    if to > from {
                        out.push(format!(
                            "restore moved forward: from step {from} to step {to}"
                        ));
                    }
                    if !ck_steps.contains(&to) {
                        out.push(format!(
                            "restore targeted step {to}, which no logged checkpoint covers"
                        ));
                    }
                    floor = to;
                }
                RunStateEvent::Absorbed { .. } | RunStateEvent::Fatal { .. } => {}
            }
        }
        out
    }
}

/// Intentionally-buggy controller behaviors, used by the chaos tests to
/// demonstrate that the differential oracle catches real recovery defects
/// and that failing timelines shrink to minimal reproducers. Never enabled
/// on any production path.
#[doc(hidden)]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryMutation {
    /// The controller behaves correctly.
    #[default]
    None,
    /// Perturbs the first salvaged input element after a persistent fault,
    /// so the healed output silently diverges from the healthy reference.
    CorruptSalvage,
    /// Ignores `max_retries`, so a fault storm burns unbounded recoveries
    /// (terminates only because timeline events are consumed once).
    UncapRetries,
    /// Skips the verify/prove gate on every (re)compiled unit.
    SkipVerification,
}

/// One compiled, runnable unit: the program plus the metadata recovery
/// needs — the Pareto frontiers to warm-start a recompile from, and the
/// buffer lists to salvage inputs and read outputs.
///
/// Produced by the `recompile` closure passed to
/// [`RecoveryController::execute`]; for functional execution the buffer
/// lists come from `lower_functional`, for timing execution they may be
/// empty.
pub struct RecoveryUnit {
    /// The device program to execute.
    pub program: Program,
    /// Per-node Pareto frontiers the program was chosen from (warm-start
    /// input for the next recompile).
    pub pareto: Vec<ParetoSet>,
    /// Per input slot, the buffers holding its distributed pieces.
    pub input_buffers: Vec<Vec<BufferId>>,
    /// Buffers holding final output values.
    pub output_buffers: Vec<BufferId>,
    /// Dataflow edges of the compiled graph, for graph-level
    /// re-certification after a recompile. Empty disables the graph pass
    /// (timing-only or hand-built units).
    pub graph_edges: Vec<GraphEdge>,
    /// Boundary contracts matching `graph_edges`.
    pub boundaries: Vec<BoundaryContract>,
}

/// Where live sub-tensor state must move when a re-plan changes placement:
/// bytes per (old core → new core) pair, at element granularity.
#[derive(Debug, Clone, Default)]
pub struct MigrationMap {
    /// Bytes to move per (source core, destination core) pair. Elements
    /// whose owner did not change are not listed.
    pub moves: BTreeMap<(usize, usize), u64>,
    /// Total bytes crossing cores.
    pub total_bytes: u64,
}

impl MigrationMap {
    /// Element-wise owner diff between two placements of the same input
    /// tensors. An element owned by the same core in both placements stays
    /// put; everything else is charged as a move.
    pub fn between(
        old_prog: &Program,
        old_inputs: &[Vec<BufferId>],
        new_prog: &Program,
        new_inputs: &[Vec<BufferId>],
    ) -> Self {
        let mut map = Self::default();
        for (slot, old_ids) in old_inputs.iter().enumerate() {
            let Some(new_ids) = new_inputs.get(slot) else {
                continue;
            };
            let old_owners = owners(old_prog, old_ids);
            let new_owners = owners(new_prog, new_ids);
            for (coord, (old_core, bytes)) in &old_owners {
                if let Some(&(new_core, _)) = new_owners.get(coord) {
                    if new_core != *old_core {
                        *map.moves.entry((*old_core, new_core)).or_insert(0) += *bytes;
                        map.total_bytes += *bytes;
                    }
                }
            }
        }
        map
    }
}

/// First-owner core and per-element bytes for every coordinate a buffer set
/// covers (replicas resolve to the lowest buffer id, matching extract's
/// "replicas must agree" rule).
fn owners(prog: &Program, ids: &[BufferId]) -> BTreeMap<Vec<usize>, (usize, u64)> {
    let mut map = BTreeMap::new();
    for &id in ids {
        let Some(decl) = prog.buffers.get(id) else {
            continue;
        };
        let elems: usize = decl.coords.iter().map(Vec::len).product();
        if elems == 0 {
            continue;
        }
        let elem_bytes = (decl.bytes / elems).max(1) as u64;
        let lens: Vec<usize> = decl.coords.iter().map(Vec::len).collect();
        let mut pos = vec![0usize; lens.len()];
        loop {
            let coord: Vec<usize> = pos
                .iter()
                .enumerate()
                .map(|(d, &p)| decl.coords[d][p])
                .collect();
            map.entry(coord).or_insert((decl.core, elem_bytes));
            let mut done = true;
            for d in (0..pos.len()).rev() {
                pos[d] += 1;
                if pos[d] < lens[d] {
                    done = false;
                    break;
                }
                pos[d] = 0;
            }
            if done {
                break;
            }
        }
    }
    map
}

/// The outcome of a supervised run: the final report (recovery statistics
/// folded in) plus everything needed to keep going — the simulator holding
/// final output state, the unit that produced it, and the surviving
/// machine/timeline to thread into the next unit.
pub struct Recovered {
    /// Cumulative run report; `report.recovery` is always `Some`.
    pub report: RunReport,
    /// The simulator after the final superstep (extract outputs from it).
    pub sim: Simulator,
    /// The unit that ultimately completed (its `output_buffers` index into
    /// `sim`).
    pub unit: RecoveryUnit,
    /// The chip that survived (shrunk if cores died).
    pub spec: ChipSpec,
    /// The fault plan the surviving chip runs under.
    pub faults: FaultPlan,
    /// The timeline with all fired events consumed, for the next unit.
    pub timeline: Option<FaultTimeline>,
    /// Global superstep numbering for the next unit.
    pub next_step_offset: usize,
    /// Everything the controller did to this run, for the chaos oracle.
    pub audit: RecoveryAudit,
}

/// Supervises execution of compiled units, recovering from mid-run faults.
pub struct RecoveryController {
    mode: SimulatorMode,
    policy: RecoveryPolicy,
    trace: Trace,
    metrics: Registry,
    trace_cores: Option<usize>,
    mutation: RecoveryMutation,
}

impl RecoveryController {
    /// A controller executing in `mode` under `policy`.
    pub fn new(mode: SimulatorMode, policy: RecoveryPolicy) -> Self {
        Self {
            mode,
            policy,
            trace: Trace::disabled(),
            metrics: Registry::disabled(),
            trace_cores: None,
            mutation: RecoveryMutation::default(),
        }
    }

    /// Installs an intentionally-buggy behavior (chaos tests only).
    #[doc(hidden)]
    pub fn with_mutation(mut self, mutation: RecoveryMutation) -> Self {
        self.mutation = mutation;
        self
    }

    /// Attaches a structured event sink. The same handle is passed to every
    /// simulator the controller builds, so one trace file interleaves the
    /// per-superstep spans with the controller's `retry` / `rollback` /
    /// `replan` / `migrate` instants — all stamped in **sim time**, hence
    /// deterministic under a fixed seed.
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Attaches a metric registry: transient retries, rollbacks, and
    /// persistent-fault recompiles land on the `t10_recovery_*` counters,
    /// and each recompile's latency on `t10_recovery_recompile_us` in
    /// registry-clock microseconds (deterministic tick deltas under a
    /// logical clock — the controller reads the clock single-threaded).
    pub fn with_metrics(mut self, metrics: Registry) -> Self {
        self.metrics = metrics;
        self
    }

    /// Caps how many per-core span tracks each simulator records (default
    /// [`t10_sim::DEFAULT_TRACE_CORES`]).
    pub fn with_trace_cores(mut self, cores: usize) -> Self {
        self.trace_cores = Some(cores);
        self
    }

    /// The active policy.
    pub fn policy(&self) -> &RecoveryPolicy {
        &self.policy
    }

    /// Runs one unit to completion under a fault timeline, recovering as
    /// needed.
    ///
    /// `recompile` builds a [`RecoveryUnit`] for a given machine; it is
    /// called once up front and again after every persistent fault, with
    /// the previous Pareto frontiers offered for warm-starting. `inputs`
    /// are the unit's global input tensors (bound into the distributed
    /// placement in functional mode; unused in timing mode).
    ///
    /// On success the returned [`Recovered`] carries the report (with
    /// `recovery` statistics), the simulator holding output state, and the
    /// surviving machine. Exhausting the retry budget, or losing the last
    /// core, yields [`CompileError::Unrecoverable`].
    pub fn execute<F>(
        &self,
        spec: &ChipSpec,
        faults: FaultPlan,
        timeline: Option<FaultTimeline>,
        step_offset: usize,
        inputs: &[Tensor],
        mut recompile: F,
    ) -> Result<Recovered>
    where
        F: FnMut(&ChipSpec, &FaultPlan, Option<&[ParetoSet]>) -> Result<RecoveryUnit>,
    {
        let mut spec = spec.clone();
        let mut faults = faults;
        let mut inputs: Vec<Tensor> = inputs.to_vec();
        let mut audit = RecoveryAudit {
            max_retries: self.policy.max_retries,
            ..RecoveryAudit::default()
        };
        let mut unit = recompile(&spec, &faults, None)?;
        audit.units.push(self.certify(&spec, &faults, &unit, 0)?);
        let mut sim = self.build_sim(&spec, &faults, timeline, step_offset, &unit, &inputs)?;
        let mut rr = RecoveryReport::default();
        loop {
            let err = match sim.resume(&unit.program) {
                Ok(mut report) => {
                    report.total_time += rr.backoff_time;
                    rr.checkpoint_bytes = report.checkpoint_bytes;
                    rr.checkpoint_time = report.checkpoint_time;
                    report.recovery = Some(rr);
                    let next_step_offset = sim.global_step();
                    let timeline = sim.take_fault_timeline();
                    audit.state_events.extend(sim.take_run_state_log());
                    return Ok(Recovered {
                        report,
                        sim,
                        unit,
                        spec,
                        faults,
                        timeline,
                        next_step_offset,
                        audit,
                    });
                }
                Err(e) => e,
            };
            let Some(ev) = sim.take_pending_fault() else {
                // Not a timeline fault — a genuine program/device error that
                // no amount of retrying fixes.
                return Err(err.into());
            };
            if self.mutation != RecoveryMutation::UncapRetries
                && rr.recoveries() >= self.policy.max_retries
            {
                return Err(CompileError::unrecoverable(format!(
                    "recovery budget of {} exhausted at {}",
                    self.policy.max_retries,
                    ev.describe()
                )));
            }
            rr.events.push(ev.describe());
            if ev.kind.is_transient() {
                // The machine is intact: roll back to the last checkpoint,
                // back off, replay. The deterministic jitter keeps repeated
                // faults at one barrier from lock-stepping their delays.
                rr.transient_retries += 1;
                self.metrics
                    .counter(metric_names::RECOVERY_RETRIES_TOTAL, &[])
                    .inc();
                let raw = (self.policy.backoff_base * 2f64.powi(rr.transient_retries as i32 - 1))
                    .min(self.policy.backoff_cap);
                let j = self.policy.backoff_jitter.clamp(0.0, 1.0);
                let u = jitter_unit(sim.global_step(), rr.transient_retries);
                let backoff = raw * (1.0 - j * 0.5 + j * u);
                rr.backoff_time += backoff;
                let ck = sim
                    .last_checkpoint()
                    .cloned()
                    .ok_or_else(|| CompileError::internal("no checkpoint to retry from"))?;
                let lost = sim.cursor() - ck.step();
                rr.supersteps_lost += lost;
                audit.retries.push(RetryAudit {
                    step: sim.global_step(),
                    transient: true,
                    backoff,
                    supersteps_lost: lost,
                });
                if self.trace.enabled() {
                    let now_us = sim.elapsed_sim_time() * 1e6;
                    self.trace.instant(
                        "retry",
                        "recovery",
                        PID_RECOVERY,
                        0,
                        now_us,
                        vec![
                            ("step", Value::U64(sim.global_step() as u64)),
                            ("fault", Value::Str(ev.describe())),
                            ("backoff_us", Value::F64(backoff * 1e6)),
                        ],
                    );
                    self.trace.instant(
                        "rollback",
                        "recovery",
                        PID_RECOVERY,
                        0,
                        now_us,
                        vec![
                            ("from_step", Value::U64(sim.global_step() as u64)),
                            ("to_step", Value::U64((sim.global_step() - lost) as u64)),
                            ("supersteps_lost", Value::U64(lost as u64)),
                        ],
                    );
                }
                sim.restore(&ck)?;
                self.metrics
                    .counter(metric_names::RECOVERY_ROLLBACKS_TOTAL, &[])
                    .inc();
                continue;
            }
            // Persistent fault: the plan is dead. Everything this unit
            // computed is tied to the old placement's partial sums and is
            // discarded; the inputs, though, reconstruct from the last
            // consistent snapshot and migrate to the new placement.
            rr.recompiles += 1;
            self.metrics
                .counter(metric_names::RECOVERY_RECOMPILES_TOTAL, &[])
                .inc();
            rr.supersteps_lost += sim.cursor();
            let fault_global = sim.global_step();
            audit.retries.push(RetryAudit {
                step: fault_global,
                transient: false,
                backoff: 0.0,
                supersteps_lost: sim.cursor(),
            });
            let replan_ts_us = sim.elapsed_sim_time() * 1e6;
            if self.trace.enabled() {
                self.trace.instant(
                    "replan",
                    "recovery",
                    PID_RECOVERY,
                    0,
                    replan_ts_us,
                    vec![
                        ("step", Value::U64(fault_global as u64)),
                        ("fault", Value::Str(ev.describe())),
                        ("supersteps_lost", Value::U64(sim.cursor() as u64)),
                    ],
                );
            }
            let ck = sim
                .last_checkpoint()
                .cloned()
                .ok_or_else(|| CompileError::internal("no checkpoint to re-plan from"))?;
            sim.restore(&ck)?;
            self.metrics
                .counter(metric_names::RECOVERY_ROLLBACKS_TOTAL, &[])
                .inc();
            if self.mode == SimulatorMode::Functional {
                // Rotation permutes input windows without destroying them,
                // so the full global input reassembles at any barrier.
                let mut salvaged = Vec::with_capacity(inputs.len());
                for (slot, ids) in unit.input_buffers.iter().enumerate() {
                    salvaged.push(sim.extract(ids, inputs[slot].shape())?);
                }
                inputs = salvaged;
                if self.mutation == RecoveryMutation::CorruptSalvage {
                    if let Some(v) = inputs.first_mut().and_then(|t| t.data_mut().first_mut()) {
                        *v += 1.0;
                    }
                }
            }
            let mut timeline = sim.take_fault_timeline();
            match ev.kind {
                FaultEventKind::LinkDown { core } => {
                    // The chip keeps all cores; the plan must route around
                    // the dead link from now on.
                    faults = faults.set_link_fault(core, Some(LinkFault::Lost));
                }
                FaultEventKind::CoreDead { core } => {
                    if spec.num_cores <= 1 {
                        return Err(CompileError::unrecoverable("last surviving core died"));
                    }
                    let old_n = spec.num_cores;
                    spec.num_cores -= 1;
                    spec.cores_per_chip = spec.cores_per_chip.min(spec.num_cores).max(1);
                    faults = faults.without_core(core);
                    if let Some(tl) = timeline.as_mut() {
                        let map: Vec<Option<usize>> = (0..old_n)
                            .map(|c| match c.cmp(&core) {
                                std::cmp::Ordering::Less => Some(c),
                                std::cmp::Ordering::Equal => None,
                                std::cmp::Ordering::Greater => Some(c - 1),
                            })
                            .collect();
                        tl.retarget(&map);
                    }
                }
                // Transient and absorbable kinds never reach here.
                _ => {
                    return Err(CompileError::internal(format!(
                        "unexpected fatal event {}",
                        ev.describe()
                    )))
                }
            }
            audit.state_events.extend(sim.take_run_state_log());
            let prev = std::mem::take(&mut unit.pareto);
            let recompile_t0 = self.metrics.now_us();
            let new_unit = recompile(&spec, &faults, Some(&prev))?;
            self.metrics
                .histogram(metric_names::RECOVERY_RECOMPILE_US, &[])
                .observe(self.metrics.now_us().saturating_sub(recompile_t0));
            audit
                .units
                .push(self.certify(&spec, &faults, &new_unit, rr.recompiles)?);
            let migration = MigrationMap::between(
                &unit.program,
                &unit.input_buffers,
                &new_unit.program,
                &new_unit.input_buffers,
            );
            let moved = if self.mode == SimulatorMode::Functional {
                migration.total_bytes
            } else {
                // Timing units carry no buffer lists; model the re-plan as a
                // full redistribution of the program's input state.
                new_unit
                    .program
                    .buffers
                    .iter()
                    .map(|d| d.bytes as u64)
                    .sum()
            };
            rr.migrated_bytes += moved;
            if self.trace.enabled() {
                self.trace.instant(
                    "migrate",
                    "recovery",
                    PID_RECOVERY,
                    0,
                    replan_ts_us,
                    vec![
                        ("bytes", Value::U64(moved)),
                        ("pairs", Value::U64(migration.moves.len() as u64)),
                    ],
                );
            }
            unit = new_unit;
            sim = self.build_sim(&spec, &faults, timeline, fault_global, &unit, &inputs)?;
        }
    }

    /// Statically verifies a freshly (re)compiled unit against the
    /// *surviving* machine before any execution starts: the fault plan's
    /// degraded per-core capacities apply, plus the checkpoint staging the
    /// controller always reserves (`with_checkpointing` holds one
    /// shift-buffer's worth per core). A warm-started recompile that reuses
    /// a stale Pareto plan no longer fitting the shrunk chip is rejected
    /// here as a typed [`CompileError::Verification`] instead of surfacing
    /// mid-run as a device OOM.
    fn verify_unit(&self, spec: &ChipSpec, faults: &FaultPlan, unit: &RecoveryUnit) -> Result<()> {
        let verifier = t10_verify::Verifier::new(spec)
            .with_faults(faults)
            .with_reserved(spec.shift_buffer)
            .with_trace(self.trace.clone());
        crate::verify::require(verifier.verify_program(&unit.program))?;
        // Graph-level re-certification: the recompiled program must still
        // honor every boundary contract — a warm-started re-plan that
        // changed a producer's output partitioning without re-deriving the
        // consumer handoff is refused here (GRAPH01-08), not discovered as
        // a garbled tensor downstream.
        let analysis = t10_verify::graph::check(
            &verifier,
            &unit.program,
            &unit.graph_edges,
            &unit.boundaries,
        );
        crate::verify::require(analysis.report)?;
        // Translation validation of the (possibly migrated) unit: a
        // recompiled program whose rotation rings no longer deliver every
        // shard, or whose partial outputs are not reduced exactly once, is
        // refused before it can produce silently wrong numerics. Vacuous
        // for timing-only programs.
        let proof = t10_prove::Prover::new()
            .with_trace(self.trace.clone())
            .prove_program(&unit.program, &unit.output_buffers);
        crate::verify::require(proof.report)
    }

    /// Runs the verify/prove gate and records the decision for the audit.
    /// Under [`RecoveryMutation::SkipVerification`] the gate is bypassed and
    /// the unit is honestly recorded as uncertified — which is exactly what
    /// the chaos oracle's second clause exists to catch.
    fn certify(
        &self,
        spec: &ChipSpec,
        faults: &FaultPlan,
        unit: &RecoveryUnit,
        index: usize,
    ) -> Result<UnitAudit> {
        if self.mutation == RecoveryMutation::SkipVerification {
            return Ok(UnitAudit {
                index,
                verified: false,
                proved: false,
            });
        }
        self.verify_unit(spec, faults, unit)?;
        Ok(UnitAudit {
            index,
            verified: true,
            proved: true,
        })
    }

    /// Builds a simulator for one unit: fault plan installed, checkpoint
    /// staging reserved, timeline attached, program loaded, inputs bound
    /// (functional mode), and the baseline checkpoint taken.
    fn build_sim(
        &self,
        spec: &ChipSpec,
        faults: &FaultPlan,
        timeline: Option<FaultTimeline>,
        step_offset: usize,
        unit: &RecoveryUnit,
        inputs: &[Tensor],
    ) -> Result<Simulator> {
        let mut sim = Simulator::new(spec.clone(), self.mode).with_trace(self.trace.clone());
        if let Some(cap) = self.trace_cores {
            sim = sim.with_trace_cores(cap);
        }
        let mut sim = sim
            .with_fault_plan(faults.clone())?
            .with_checkpointing(self.policy.checkpoint_every.max(1))?
            .with_step_offset(step_offset);
        if let Some(tl) = timeline {
            sim = sim.with_fault_timeline(tl);
        }
        sim.load(&unit.program)?;
        if self.mode == SimulatorMode::Functional {
            for (slot, ids) in unit.input_buffers.iter().enumerate() {
                let tensor = inputs.get(slot).ok_or_else(|| {
                    CompileError::internal(format!("no input tensor for slot {slot}"))
                })?;
                for &id in ids {
                    sim.bind(id, tensor)?;
                }
            }
        }
        // The baseline checkpoint: even a fault at superstep 0 has a
        // consistent snapshot to recover from.
        sim.checkpoint();
        Ok(sim)
    }
}
