//! The rTensor abstraction: spatial and temporal tensor partitioning.
//!
//! An rTensor (paper §4.1, Figure 5) describes how a tensor is partitioned,
//! mapped, and shifted across the interconnected cores:
//!
//! * the **spatial partition factor** `f_s` splits the tensor into
//!   sub-tensors, derived from the operator partition factor `F_op` via the
//!   data dependences of the tensor expression;
//! * the **temporal partition factor** `f_t` splits each sub-tensor into the
//!   partitions that circulate around a rotation ring;
//! * the **rotating pace** `rp` is how many elements shift per step.
//!
//! This module computes the spatial side: per-core tile sizes, per-tensor
//! sub-tensor extents (including convolution halos from compound axes), the
//! set of cores sharing each sub-tensor (`P`), and ring/replication counts.

use serde::{Deserialize, Serialize};
use t10_ir::{AxisId, IndexExpr, TensorExpr};

/// Per-core tile size of every axis under an operator partition factor.
///
/// `tiles[a] = ceil(L_a / F_op[a])`; sizes that do not divide evenly are
/// padded (the padding constraint of §5 bounds the waste).
pub fn tiles(expr: &TensorExpr, f_op: &[usize]) -> Vec<usize> {
    expr.axes
        .iter()
        .zip(f_op)
        .map(|(a, &p)| a.size.div_ceil(p.max(1)))
        .collect()
}

/// Description of one tensor dimension under a spatial partitioning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimInfo {
    /// Per-core extent of the dimension (with halo for compound axes).
    pub extent: usize,
    /// The axis this dimension rotates along if temporally partitioned —
    /// only single-axis stride-1 dimensions are eligible.
    pub rot_axis: Option<AxisId>,
    /// Whether the dimension is data-dependent (gather tables).
    pub indirect: bool,
    /// Number of spatial partitions of this dimension (`f_s` component).
    pub spatial_parts: usize,
}

/// Spatial partitioning of one tensor slot under a given `F_op`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpatialInfo {
    /// Per-dimension partitioning.
    pub dims: Vec<DimInfo>,
    /// Operator axes absent from the tensor (and from `f_s`).
    pub missing_axes: Vec<AxisId>,
    /// Number of cores sharing each sub-tensor:
    /// `P = Π F_op[a]` over the missing axes.
    pub sharing: usize,
    /// Elements of one per-core sub-tensor (product of extents).
    pub sub_elems: usize,
}

impl SpatialInfo {
    /// The `f_s` vector (spatial partitions per dimension).
    pub fn f_s(&self) -> Vec<usize> {
        self.dims.iter().map(|d| d.spatial_parts).collect()
    }
}

/// Per-core extent of a dimension given the axis tiles.
///
/// For an affine dimension this is `Σ stride*(tile_a - 1) + 1` — a
/// convolution's `h + kh` dimension keeps its halo. Indirect dimensions are
/// never spatially partitioned and keep their full extent.
pub fn dim_extent(e: &IndexExpr, tile: &[usize]) -> usize {
    if let Some(size) = e.indirect_size {
        return size;
    }
    e.terms
        .iter()
        .map(|t| t.stride * (tile[t.axis] - 1))
        .sum::<usize>()
        + 1
}

/// Global base offset of a dimension for a core at the given axis
/// coordinates (each in `0..F_op[a]`).
pub fn dim_base(e: &IndexExpr, tile: &[usize], core_coords: &[usize]) -> usize {
    if e.indirect_size.is_some() {
        return 0;
    }
    e.offset
        + e.terms
            .iter()
            .map(|t| t.stride * core_coords[t.axis] * tile[t.axis])
            .sum::<usize>()
}

/// Computes the spatial partitioning of a tensor access under `F_op`.
pub fn spatial_info(expr: &TensorExpr, dims: &[IndexExpr], f_op: &[usize]) -> SpatialInfo {
    let tile = tiles(expr, f_op);
    let mut present = vec![false; expr.axes.len()];
    let dim_infos: Vec<DimInfo> = dims
        .iter()
        .map(|e| {
            let mut parts = 1usize;
            for t in &e.terms {
                present[t.axis] = true;
                parts *= f_op[t.axis];
            }
            DimInfo {
                extent: dim_extent(e, &tile),
                rot_axis: e.single_axis(),
                indirect: e.is_indirect(),
                spatial_parts: if e.is_indirect() { 1 } else { parts },
            }
        })
        .collect();
    let missing_axes: Vec<AxisId> = (0..expr.axes.len()).filter(|&a| !present[a]).collect();
    let sharing = missing_axes.iter().map(|&a| f_op[a]).product();
    let sub_elems = dim_infos.iter().map(|d| d.extent).product();
    SpatialInfo {
        dims: dim_infos,
        missing_axes,
        sharing,
        sub_elems,
    }
}

/// Summary of one rTensor configuration (for reporting and tests).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RTensor {
    /// Spatial partition factor per dimension.
    pub f_s: Vec<usize>,
    /// Temporal partition factor per dimension (1 everywhere if the tensor
    /// does not rotate).
    pub f_t: Vec<usize>,
    /// Rotating pace per dimension (0 for non-rotating dimensions).
    pub rp: Vec<usize>,
    /// Number of rotation rings sharing copies of each sub-tensor
    /// (`P / Π f_t`).
    pub rings: usize,
    /// Replication count — identical to `rings` (each ring holds one copy,
    /// paper §4.2).
    pub replication: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_ir::builders::{self, Conv2dCfg};

    fn matmul_expr() -> TensorExpr {
        builders::matmul(0, 1, 2, 6, 6, 6).unwrap().expr
    }

    #[test]
    fn paper_fig7_derivation() {
        // F_op = [2, 1, 3] on [m, k, n] (paper §4.1 example).
        let expr = matmul_expr();
        let f_op = [2, 1, 3];
        let a = spatial_info(&expr, &expr.inputs[0], &f_op);
        let b = spatial_info(&expr, &expr.inputs[1], &f_op);
        let c = spatial_info(&expr, &expr.output, &f_op);
        // f_s^A = [2, 1], f_s^B = [1, 3], f_s^C = [2, 3].
        assert_eq!(a.f_s(), vec![2, 1]);
        assert_eq!(b.f_s(), vec![1, 3]);
        assert_eq!(c.f_s(), vec![2, 3]);
        // A is shared by P = 3 cores (missing n), B by P = 2 (missing m).
        assert_eq!(a.sharing, 3);
        assert_eq!(a.missing_axes, vec![2]);
        assert_eq!(b.sharing, 2);
        assert_eq!(b.missing_axes, vec![0]);
        assert_eq!(c.sharing, 1);
        // Sub-tensor shapes: A = [3, 6], B = [6, 2].
        assert_eq!(a.dims[0].extent, 3);
        assert_eq!(a.dims[1].extent, 6);
        assert_eq!(a.sub_elems, 18);
        assert_eq!(b.sub_elems, 12);
    }

    #[test]
    fn tiles_round_up() {
        let expr = matmul_expr();
        assert_eq!(tiles(&expr, &[4, 1, 6]), vec![2, 6, 1]);
        // 6/4 pads to 2.
    }

    #[test]
    fn conv_halo_extent() {
        let cfg = Conv2dCfg {
            batch: 1,
            c_in: 4,
            c_out: 8,
            h_out: 16,
            w_out: 16,
            kh: 3,
            kw: 3,
            stride: 1,
        };
        let op = builders::conv2d(0, 1, 2, cfg).unwrap();
        // Partition h into 4: per-core h tile = 4, input extent = 4+3-1 = 6.
        let f_op = [1, 1, 4, 1, 1, 1, 1];
        let i = spatial_info(&op.expr, &op.expr.inputs[0], &f_op);
        assert_eq!(i.dims[2].extent, 6);
        // The h+kh dim has spatial_parts = p_h * p_kh = 4.
        assert_eq!(i.dims[2].spatial_parts, 4);
        // The kernel K[f,c,kh,kw] misses b, h, and w; only h is partitioned,
        // so the h-partitioned cores share each kernel sub-tensor.
        let k = spatial_info(&op.expr, &op.expr.inputs[1], &f_op);
        assert_eq!(k.sharing, 4);
        assert_eq!(k.missing_axes, vec![0, 2, 3]);
    }

    #[test]
    fn strided_conv_base_offsets() {
        // 2*h + kh with tiles h=4, kh=3: core at h-coord 1 starts at 8.
        let cfg = Conv2dCfg {
            batch: 1,
            c_in: 1,
            c_out: 1,
            h_out: 8,
            w_out: 8,
            kh: 3,
            kw: 3,
            stride: 2,
        };
        let op = builders::conv2d(0, 1, 2, cfg).unwrap();
        let f_op = [1, 1, 2, 1, 1, 1, 1];
        let tile = tiles(&op.expr, &f_op);
        let e = &op.expr.inputs[0][2];
        let mut coords = vec![0usize; 7];
        assert_eq!(dim_base(e, &tile, &coords), 0);
        coords[2] = 1;
        assert_eq!(dim_base(e, &tile, &coords), 8);
        assert_eq!(dim_extent(e, &tile), 2 * 3 + 3);
    }

    #[test]
    fn gather_table_is_shared_via_indirection() {
        let op = builders::gather(0, 1, 2, 1000, 32, 8).unwrap();
        let f_op = [4, 2];
        let t = spatial_info(&op.expr, &op.expr.inputs[0], &f_op);
        // Table misses axis n → shared by 4 cores; indirect dim keeps its
        // full 1000-row extent and is never spatially partitioned.
        assert_eq!(t.sharing, 4);
        assert!(t.dims[0].indirect);
        assert_eq!(t.dims[0].extent, 1000);
        assert_eq!(t.dims[0].spatial_parts, 1);
        assert_eq!(t.dims[1].extent, 4);
    }
}
