//! T10: a deep-learning compiler for inter-core connected intelligence
//! processors.
//!
//! This crate implements the paper's primary contribution (SOSP '24):
//!
//! * [`rtensor`] — the **rTensor** abstraction (§4.1): spatial partition
//!   factors `f_s` derived from the operator partition factor `F_op`,
//!   temporal partition factors `f_t`, rotation rings and replication;
//! * [`plan`] — **compute-shift execution plans** (§4.2): rotating-pace
//!   alignment, sub-task shapes, nested rotation loops, and the analytic
//!   memory/communication properties of a plan;
//! * [`cost`] — the **linear cost model** (§4.3.1), calibrated against the
//!   simulated hardware exactly as the paper calibrates against a physical
//!   IPU core;
//! * [`search`] — **intra-operator Pareto search** (§4.3.1) under the
//!   parallelism and padding constraints of §5;
//! * [`reconcile`] — **inter-operator memory reconciliation** (§4.3.2,
//!   Algorithm 1): idle/active plans and the greedy `-ΔT_S/ΔM_I` policy;
//! * [`placement`] / [`lower`] — sub-tensor placement (§4.4, Figure 10) and
//!   lowering to device programs, both functionally (explicit data movement,
//!   for correctness tests) and for timing (superstep summaries);
//! * [`compiler`] — the end-to-end entry point compiling a whole
//!   [`t10_ir::Graph`];
//! * [`hbm`] — the §6.8 extension: double-buffered off-chip prefetch with
//!   single-operator and operator-group scheduling.
//!
//! # Examples
//!
//! ```
//! use t10_core::compiler::Compiler;
//! use t10_core::search::SearchConfig;
//! use t10_device::ChipSpec;
//! use t10_ir::{builders, DType, Graph, ValueKind};
//!
//! let mut g = Graph::new("fc");
//! let a = g.add_value("a", vec![64, 64], DType::F16, ValueKind::Input);
//! let w = g.add_value("w", vec![64, 64], DType::F16, ValueKind::Weight);
//! let c = g.add_value("c", vec![64, 64], DType::F16, ValueKind::Output);
//! g.add_node("fc", builders::matmul(a, w, c, 64, 64, 64).unwrap())
//!     .unwrap();
//!
//! let spec = ChipSpec::ipu_with_cores(16);
//! let compiler = Compiler::new(spec, SearchConfig::fast());
//! let compiled = compiler.compile_graph(&g).unwrap();
//! assert!(compiled.estimated_time > 0.0);
//! ```

// Partition grids, factor vectors, and slot tables are validated by
// `Plan::build` and the search's feasibility checks; the compiler's
// inner loops index within those validated bounds. The analysis crates
// (`t10-verify`, `t10-prove`) stay index-hardened.
#![allow(clippy::indexing_slicing)]
// Tests may unwrap freely; library code must not (workspace lint).
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod cache;
pub mod compiler;
pub mod contracts;
pub mod cost;
pub mod error;
pub mod hbm;
pub mod lower;
pub mod placement;
pub mod plan;
pub mod reconcile;
pub mod recovery;
pub mod rtensor;
pub mod search;
pub mod semantics;
pub mod symbolic;
pub mod verify;
pub mod viz;

pub use cache::{family_cache_key, family_digest, plan_cache_key, CacheStats, PlanCache};
pub use compiler::{CompileOptions, CompiledGraph, Compiler};
pub use cost::CostModel;
pub use error::CompileError;
pub use plan::{Plan, PlanConfig, TemporalChoice};
pub use recovery::{
    MigrationMap, Recovered, RecoveryAudit, RecoveryController, RecoveryMutation, RecoveryPolicy,
    RecoveryUnit, RetryAudit, UnitAudit,
};
pub use search::{ParetoSet, SearchConfig, SearchStats};
pub use semantics::{prove_plan, OperatorSemantics, ProveOutcome};
pub use verify::{verify_lowering, verify_plan};

/// Result alias used throughout the compiler.
pub type Result<T> = std::result::Result<T, CompileError>;
