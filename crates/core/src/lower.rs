//! Lowering execution plans to device programs (paper §4.4, Figure 11).
//!
//! Two paths share the same schedule structure:
//!
//! * [`lower_functional`] emits explicit per-core buffers, vertices, and
//!   shifts so the simulator can move real data — the correctness oracle
//!   for the whole compiler (a compiled plan must reproduce the reference
//!   executor bit-for-bit);
//! * [`lower_timing`] emits only per-superstep summaries, cheap enough for
//!   end-to-end models on thousands of cores.
//!
//! The schedule is the §4.4 loop nest: nested rotation levels with one
//! compute phase per step and shifts for every level that advances, then a
//! cross-core reduction of partial outputs (when a reduction axis is
//! spatially partitioned) and a unary epilogue.

use t10_device::program::{
    BufferDecl, BufferId, ComputeSummary, ExchangeSummary, FuncTask, Phase, Program, ShiftKind,
    ShiftOp, SubTaskDesc, Superstep, VertexTask,
};
use t10_device::ChipSpec;
use t10_ir::{OpKind, Operator};

use crate::placement::{ring_assignment, sigma, upstream_coords, CoreGrid};
use crate::plan::Plan;
use crate::rtensor::dim_base;
use crate::{compile_err, Result};

/// Artifacts of a functional lowering.
#[derive(Debug, Clone)]
pub struct FunctionalLowering {
    /// The explicit program.
    pub program: Program,
    /// Per input slot, every buffer holding a piece (bind each from the
    /// global input tensor before running).
    pub input_buffers: Vec<Vec<BufferId>>,
    /// Output buffers that hold final (fully reduced) values.
    pub output_buffers: Vec<BufferId>,
}

/// Lowers a plan to an explicit functional program.
///
/// Functional lowering requires exact divisibility (no padding): every axis
/// must divide by its partition factor and every rotating extent by its
/// temporal factor. The search produces such plans for the shapes used in
/// tests; padded plans are priced by the timing path only.
pub fn lower_functional(op: &Operator, plan: &Plan) -> Result<FunctionalLowering> {
    for (i, axis) in op.expr.axes.iter().enumerate() {
        if axis.size % plan.config.f_op[i] != 0 {
            return Err(compile_err!(
                "functional lowering requires exact split: axis {} size {} vs factor {}",
                axis.name,
                axis.size,
                plan.config.f_op[i]
            ));
        }
    }
    for (s, slot) in plan.slots.iter().enumerate() {
        if slot.temporal.factor > 1 {
            let dim = slot.temporal.dim.ok_or_else(|| {
                crate::verify::invariant(
                    t10_verify::RuleId::FactorSharing,
                    format!(
                        "slot {s}: temporal factor {} without a rotating dim",
                        slot.temporal.factor
                    ),
                )
            })?;
            let extent = slot
                .spatial
                .dims
                .get(dim)
                .ok_or_else(|| {
                    crate::verify::invariant(
                        t10_verify::RuleId::FactorSharing,
                        format!("slot {s}: rotating dim {dim} out of range"),
                    )
                })?
                .extent;
            if slot.plen * slot.temporal.factor != extent {
                return Err(compile_err!(
                    "functional lowering requires exact temporal split: slot {s} \
                     extent {extent} vs factor {}",
                    slot.temporal.factor
                ));
            }
        }
    }
    let grid = CoreGrid::new(&plan.config.f_op);
    let cores = grid.num_cores();
    let mut prog = Program::new();
    let op_idx = prog.add_op(op.clone());

    // --- Buffers -----------------------------------------------------------
    // input_bufs[slot][core], out_bufs[core].
    let mut input_bufs: Vec<Vec<BufferId>> = vec![Vec::with_capacity(cores); op.expr.num_inputs()];
    let mut out_bufs: Vec<BufferId> = Vec::with_capacity(cores);
    for core in 0..cores {
        let coords = grid.coords(core);
        for (s, slot) in plan.slots.iter().enumerate() {
            let dims = &op.expr.inputs[s];
            let mut buf_coords: Vec<Vec<usize>> = Vec::with_capacity(dims.len());
            for (d, e) in dims.iter().enumerate() {
                let di = &slot.spatial.dims[d];
                let base = dim_base(e, &plan.tiles, &coords);
                if slot.temporal.factor > 1 && slot.temporal.dim == Some(d) {
                    // Rotating window: starts at σ for axis-mapped dims, at
                    // q*plen for indirect dims.
                    let start = match di.rot_axis {
                        Some(_) => {
                            let level = plan
                                .rotations
                                .iter()
                                .position(|l| l.slots.contains(&s))
                                .ok_or_else(|| compile_err!("slot {s} missing from levels"))?;
                            sigma(plan, level, &coords)?
                        }
                        None => {
                            let ra = ring_assignment(
                                &coords,
                                &slot.spatial.missing_axes,
                                &plan.config.f_op,
                                slot.temporal.factor,
                            );
                            ra.q * slot.plen
                        }
                    };
                    buf_coords.push(
                        (0..slot.plen)
                            .map(|i| (start + i) % di.extent + base)
                            .collect(),
                    );
                } else {
                    buf_coords.push((base..base + di.extent).collect());
                }
            }
            let elems: usize = buf_coords.iter().map(Vec::len).product();
            let id = prog.add_buffer(BufferDecl {
                core,
                label: format!("in{s}@{core}"),
                bytes: elems * slot.dtype_bytes,
                coords: buf_coords,
                init: 0.0,
            });
            input_bufs[s].push(id);
        }
        // Output partition.
        let mut out_coords = Vec::with_capacity(op.expr.output.len());
        for (d, e) in op.expr.output.iter().enumerate() {
            let di = &plan.out.spatial.dims[d];
            let base = dim_base(e, &plan.tiles, &coords);
            out_coords.push((base..base + di.extent).collect());
        }
        let elems: usize = out_coords.iter().map(Vec::len).product();
        let id = prog.add_buffer(BufferDecl {
            core,
            label: format!("out@{core}"),
            bytes: elems * plan.out.dtype_bytes,
            coords: out_coords,
            init: op.reduce.identity(),
        });
        out_bufs.push(id);
    }

    // --- Main loop nest ----------------------------------------------------
    let levels = &plan.rotations;
    let mut counters = vec![0usize; levels.len()];
    for step in 0..plan.total_steps {
        let mut ss = Superstep::new(None, Phase::Execute);
        // Compute phase: one vertex per core.
        for core in 0..cores {
            let coords = grid.coords(core);
            let mut axis_coords: Vec<Vec<usize>> = Vec::with_capacity(op.expr.axes.len());
            for (a, _) in op.expr.axes.iter().enumerate() {
                let base = coords[a] * plan.tiles[a];
                if let Some(li) = levels.iter().position(|l| l.axis == Some(a)) {
                    let s0 = sigma(plan, li, &coords)?;
                    let rp = levels[li].rp;
                    let t = counters[li];
                    let extent = plan.tiles[a];
                    axis_coords.push((0..rp).map(|i| (s0 + t * rp + i) % extent + base).collect());
                } else {
                    axis_coords.push((base..base + plan.tiles[a]).collect());
                }
            }
            ss.compute.push(VertexTask {
                core,
                desc: plan.subtask,
                func: Some(FuncTask {
                    op: op_idx,
                    axis_coords,
                    inputs: input_bufs.iter().map(|v| v[core]).collect(),
                    output: out_bufs[core],
                    apply_unary: false,
                }),
            });
        }
        // Exchange phase: advance the loop nest odometer; every level that
        // ticks rotates its slots. The final step emits no shifts.
        if step + 1 < plan.total_steps {
            let mut ticking = Vec::new();
            for li in (0..levels.len()).rev() {
                ticking.push(li);
                counters[li] += 1;
                if counters[li] < levels[li].steps.max(1) {
                    break;
                }
                counters[li] = 0;
            }
            for &li in &ticking {
                let level = &levels[li];
                for &s in &level.slots {
                    let slot = &plan.slots[s];
                    let dim = slot.temporal.dim.ok_or_else(|| {
                        crate::verify::invariant(
                            t10_verify::RuleId::FactorSharing,
                            format!("slot {s}: rotating slot lost its temporal dim"),
                        )
                    })?;
                    let count = if level.axis.is_some() {
                        level.rp
                    } else {
                        slot.plen
                    };
                    for core in 0..cores {
                        let coords = grid.coords(core);
                        let up = upstream_coords(
                            &coords,
                            &slot.spatial.missing_axes,
                            &plan.config.f_op,
                            slot.temporal.factor,
                        );
                        let up_core = grid.linear(&up);
                        if up_core == core {
                            continue;
                        }
                        ss.exchange.push(ShiftOp {
                            src: input_bufs[s][up_core],
                            dst: input_bufs[s][core],
                            kind: ShiftKind::RotateSlices { dim, count },
                        });
                    }
                }
            }
        }
        prog.steps.push(ss);
    }

    // --- Cross-core reduction of partial outputs ---------------------------
    let mut roots: Vec<BufferId> = Vec::new();
    let red_axes: Vec<usize> = op
        .expr
        .axes
        .iter()
        .enumerate()
        .filter(|(i, a)| a.kind == t10_ir::AxisKind::Reduction && plan.config.f_op[*i] > 1)
        .map(|(i, _)| i)
        .collect();
    if red_axes.is_empty() {
        roots = out_bufs.clone();
    } else {
        // Group members enumerate the reduction-axes coordinates; the root
        // has them all zero. Binary-tree accumulation: in round `r`, every
        // member whose rank is an odd multiple of 2^r sends to the member
        // 2^r below it (all groups reduce in parallel).
        let group: usize = red_axes.iter().map(|&a| plan.config.f_op[a]).product();
        let mut stride = 1usize;
        while stride < group {
            let mut ss = Superstep::new(None, Phase::Execute);
            for core in 0..cores {
                let coords = grid.coords(core);
                // Rank of this member within its reduction group.
                let rank = red_axes
                    .iter()
                    .fold(0, |acc, &a| acc * plan.config.f_op[a] + coords[a]);
                if rank % (2 * stride) != stride {
                    continue;
                }
                let dst_rank = rank - stride;
                // Unrank dst over the reduction axes.
                let mut dst_coords = coords.clone();
                let mut rem = dst_rank;
                for &a in red_axes.iter().rev() {
                    dst_coords[a] = rem % plan.config.f_op[a];
                    rem /= plan.config.f_op[a];
                }
                let dst = grid.linear(&dst_coords);
                ss.exchange.push(ShiftOp {
                    src: out_bufs[core],
                    dst: out_bufs[dst],
                    kind: ShiftKind::Accumulate { reduce: op.reduce },
                });
            }
            prog.steps.push(ss);
            stride *= 2;
        }
        for (core, &buf) in out_bufs.iter().enumerate() {
            let coords = grid.coords(core);
            if red_axes.iter().all(|&a| coords[a] == 0) {
                roots.push(buf);
            }
        }
    }

    // --- Unary epilogue -----------------------------------------------------
    if op.unary.is_some() {
        let mut ss = Superstep::new(None, Phase::Execute);
        for &root in &roots {
            let core = prog.buffers[root].core;
            ss.compute.push(VertexTask {
                core,
                desc: SubTaskDesc {
                    kind: OpKind::Elementwise,
                    out_elems: plan.out.partition_elems as u64,
                    red_elems: 1,
                    window: 1,
                    in_bytes: plan.out.partition_bytes as u64,
                    out_bytes: plan.out.partition_bytes as u64,
                },
                func: Some(FuncTask {
                    op: op_idx,
                    axis_coords: Vec::new(),
                    inputs: Vec::new(),
                    output: root,
                    apply_unary: true,
                }),
            });
        }
        prog.steps.push(ss);
    }

    Ok(FunctionalLowering {
        program: prog,
        input_buffers: input_bufs,
        output_buffers: roots,
    })
}

/// Cross-chip traffic estimate for a rotation: a ring of `factor` members
/// crosses each chip boundary at most twice, so at most `2*(chips-1)` of its
/// `factor` hops are inter-chip.
fn cross_fraction(spec: &ChipSpec, factor: usize) -> f64 {
    let chips = spec.num_chips();
    if chips <= 1 || factor == 0 {
        return 0.0;
    }
    (2.0 * (chips - 1) as f64 / factor as f64).min(1.0)
}

/// Lowers a plan to timing-only supersteps for one operator execution.
pub fn lower_timing(
    op: &Operator,
    plan: &Plan,
    spec: &ChipSpec,
    node: Option<usize>,
) -> Vec<Superstep> {
    let cores = plan.cores_used;
    let mut steps = Vec::with_capacity(plan.total_steps + 2);
    let levels = &plan.rotations;
    let mut counters = vec![0usize; levels.len()];
    for step in 0..plan.total_steps {
        let mut ss = Superstep::new(node, Phase::Execute);
        ss.compute_summary = Some(ComputeSummary {
            desc: plan.subtask,
            active_cores: cores,
        });
        if step + 1 < plan.total_steps {
            let mut per_core: u64 = 0;
            let mut cross: f64 = 0.0;
            let mut msg_count: u64 = 0;
            for li in (0..levels.len()).rev() {
                let level = &levels[li];
                for &s in &level.slots {
                    let b = plan.slots[s].per_shift_bytes as u64;
                    per_core += b;
                    msg_count += 1;
                    cross += b as f64
                        * cores as f64
                        * cross_fraction(spec, plan.slots[s].temporal.factor);
                }
                counters[li] += 1;
                if counters[li] < level.steps.max(1) {
                    break;
                }
                counters[li] = 0;
            }
            if per_core > 0 {
                ss.exchange_summary = Some(ExchangeSummary {
                    total_bytes: per_core * cores as u64,
                    max_core_out: per_core,
                    max_core_in: per_core,
                    cross_chip_bytes: cross as u64,
                    offchip_bytes: 0,
                    active_cores: cores,
                    // One bulk transfer to the ring neighbour per rotating
                    // tensor — the compute-shift pattern's key property.
                    max_core_messages: msg_count,
                });
            }
        }
        steps.push(ss);
    }
    // Cross-core reduction of partial outputs: a binary tree over the
    // group, halving the participating senders each round.
    if plan.out.reduce_group > 1 {
        let groups = cores / plan.out.reduce_group;
        let mut senders = plan.out.reduce_group / 2 + plan.out.reduce_group % 2;
        let mut remaining = plan.out.reduce_group;
        while remaining > 1 {
            let mut ss = Superstep::new(node, Phase::Execute);
            ss.exchange_summary = Some(ExchangeSummary {
                total_bytes: plan.out.partition_bytes as u64 * (groups * senders) as u64,
                max_core_out: plan.out.partition_bytes as u64,
                max_core_in: plan.out.partition_bytes as u64,
                cross_chip_bytes: 0,
                offchip_bytes: 0,
                active_cores: 2 * groups * senders,
                max_core_messages: 1,
            });
            steps.push(ss);
            remaining = remaining.div_ceil(2);
            senders = remaining / 2 + remaining % 2;
        }
    }
    if op.unary.is_some() {
        let mut ss = Superstep::new(node, Phase::Execute);
        ss.compute_summary = Some(ComputeSummary {
            desc: SubTaskDesc {
                kind: OpKind::Elementwise,
                out_elems: plan.out.partition_elems as u64,
                red_elems: 1,
                window: 1,
                in_bytes: plan.out.partition_bytes as u64,
                out_bytes: plan.out.partition_bytes as u64,
            },
            active_cores: cores,
        });
        steps.push(ss);
    }
    steps
}

/// The idle-to-active setup superstep (paper §4.3.2, Figure 9): every core
/// gathers the weight partitions its active plan needs from the idle
/// layout. `need_bytes_per_core` is the per-core volume to move (0 when the
/// idle plan already matches the active layout).
pub fn setup_step(
    spec: &ChipSpec,
    node: Option<usize>,
    need_bytes_per_core: u64,
    cores: usize,
) -> Superstep {
    let mut ss = Superstep::new(node, Phase::Setup);
    if need_bytes_per_core > 0 {
        ss.exchange_summary = Some(ExchangeSummary {
            total_bytes: need_bytes_per_core * cores as u64,
            max_core_out: need_bytes_per_core,
            max_core_in: need_bytes_per_core,
            cross_chip_bytes: (need_bytes_per_core as f64
                * cores as f64
                * cross_fraction(spec, cores)) as u64,
            offchip_bytes: 0,
            active_cores: cores,
            // A setup gathers weight partitions from the striped idle
            // layout: a batched multi-peer transfer.
            max_core_messages: 8,
        });
    }
    ss
}

/// An inter-operator layout transition (§5): an all-to-all exchange of the
/// producer's output into the consumer's expected placement.
pub fn transition_step(bytes_per_core: usize, cores: usize, node: Option<usize>) -> Superstep {
    let mut ss = Superstep::new(node, Phase::Transition);
    if bytes_per_core > 0 {
        ss.exchange_summary = Some(ExchangeSummary {
            total_bytes: (bytes_per_core * cores) as u64,
            max_core_out: bytes_per_core as u64,
            max_core_in: bytes_per_core as u64,
            cross_chip_bytes: 0,
            offchip_bytes: 0,
            active_cores: cores,
            max_core_messages: 4,
        });
    }
    ss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanConfig, TemporalChoice};
    use t10_ir::builders;

    fn plan_for(op: &Operator, f_op: Vec<usize>, temporal: Vec<TemporalChoice>) -> Plan {
        Plan::build(
            op,
            &vec![4; op.expr.num_inputs()],
            4,
            PlanConfig { f_op, temporal },
        )
        .unwrap()
    }

    #[test]
    fn functional_lowering_shapes() {
        let op = builders::matmul(0, 1, 2, 2, 6, 3).unwrap();
        let plan = plan_for(
            &op,
            vec![2, 1, 3],
            vec![TemporalChoice::rotate(1, 3), TemporalChoice::rotate(0, 2)],
        );
        let f = lower_functional(&op, &plan).unwrap();
        // 6 cores × (A, B, C) buffers.
        assert_eq!(f.program.buffers.len(), 18);
        // 3 steps; shifts on all but the last.
        assert_eq!(f.program.steps.len(), 3);
        assert!(!f.program.steps[0].exchange.is_empty());
        assert!(f.program.steps[2].exchange.is_empty());
        assert_eq!(f.output_buffers.len(), 6);
        // A-buffers hold plen=2 along k; B-buffers plen=3.
        let a0 = &f.program.buffers[f.input_buffers[0][0]];
        assert_eq!(a0.coords[1].len(), 2);
        let b0 = &f.program.buffers[f.input_buffers[1][0]];
        assert_eq!(b0.coords[0].len(), 3);
    }

    #[test]
    fn functional_lowering_rejects_padding() {
        let op = builders::matmul(0, 1, 2, 5, 4, 4).unwrap();
        let plan = plan_for(
            &op,
            vec![2, 1, 1],
            vec![TemporalChoice::none(), TemporalChoice::none()],
        );
        assert!(lower_functional(&op, &plan).is_err());
    }

    #[test]
    fn reduction_emits_accumulate_steps() {
        let op = builders::matmul(0, 1, 2, 4, 8, 4).unwrap();
        let plan = plan_for(
            &op,
            vec![1, 4, 1],
            vec![TemporalChoice::none(), TemporalChoice::none()],
        );
        let f = lower_functional(&op, &plan).unwrap();
        // 1 compute step + log2(4) = 2 tree-accumulate rounds.
        assert_eq!(f.program.steps.len(), 3);
        assert_eq!(f.output_buffers.len(), 1);
        // Round 1 has two senders (ranks 1→0, 3→2); round 2 one (2→0).
        assert_eq!(f.program.steps[1].exchange.len(), 2);
        assert_eq!(f.program.steps[2].exchange.len(), 1);
    }

    #[test]
    fn epilogue_present_for_unary_ops() {
        let op = builders::unary(0, 1, vec![8, 8], t10_ir::Unary::Relu).unwrap();
        let plan = plan_for(&op, vec![2, 2], vec![TemporalChoice::none()]);
        let f = lower_functional(&op, &plan).unwrap();
        let last = f.program.steps.last().unwrap();
        assert!(last
            .compute
            .iter()
            .all(|t| t.func.as_ref().unwrap().apply_unary));
    }

    #[test]
    fn timing_lowering_counts_steps_and_bytes() {
        let op = builders::matmul(0, 1, 2, 64, 64, 64).unwrap();
        let plan = plan_for(
            &op,
            vec![4, 1, 4],
            vec![TemporalChoice::rotate(1, 4), TemporalChoice::rotate(0, 4)],
        );
        let spec = ChipSpec::ipu_with_cores(16);
        let steps = lower_timing(&op, &plan, &spec, Some(7));
        assert_eq!(steps.len(), plan.total_steps);
        // All but the last execute step carry an exchange.
        let with_exch = steps
            .iter()
            .filter(|s| s.exchange_summary.is_some())
            .count();
        assert_eq!(with_exch, plan.total_steps - 1);
        assert!(steps.iter().all(|s| s.node == Some(7)));
        let e = steps[0].exchange_summary.unwrap();
        assert_eq!(
            e.max_core_out,
            2 * plan
                .slots
                .iter()
                .map(|s| s.per_shift_bytes as u64)
                .sum::<u64>()
                / 2
        );
        assert_eq!(e.total_bytes, e.max_core_out * 16);
    }

    #[test]
    fn setup_step_scales_with_need() {
        let spec = ChipSpec::ipu_with_cores(16);
        let full = setup_step(&spec, None, 4096, 16);
        let part = setup_step(&spec, None, 2048, 16);
        let none = setup_step(&spec, None, 0, 16);
        assert!(
            full.exchange_summary.unwrap().total_bytes > part.exchange_summary.unwrap().total_bytes
        );
        assert!(none.exchange_summary.is_none());
        assert_eq!(full.phase, Phase::Setup);
    }

    #[test]
    fn cross_fraction_bounds() {
        let one = ChipSpec::ipu_mk2();
        let two = ChipSpec::vipu(2);
        assert_eq!(cross_fraction(&one, 8), 0.0);
        assert!((cross_fraction(&two, 8) - 0.25).abs() < 1e-12);
        assert_eq!(cross_fraction(&two, 1), 1.0);
    }
}
