//! Combining distributed on-chip memory with off-chip HBM (paper §6.8).
//!
//! The paper emulates HBM on the IPU by delaying each operator by the
//! roofline time of loading it from HBM, with double buffering to overlap
//! execution and transfer. Two schedules are evaluated:
//!
//! * **Single-Op** — execute operator *i* while prefetching operator *i+1*;
//! * **Inter-Op** — prefetch a *group* of operators while the previous
//!   group executes, with groups sized to the prefetch buffer. Grouping
//!   operators of different compute intensity balances execution against
//!   prefetching (the paper's observation at low HBM bandwidth).

use serde::{Deserialize, Serialize};

/// One operator's view for HBM scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HbmOp {
    /// On-chip execution time with the chosen plan, seconds.
    pub exec_time: f64,
    /// Total parameter bytes that must stream from HBM before execution.
    pub weight_bytes: u64,
}

/// Double-buffered single-operator schedule: `t_i = max(exec_i, load_{i+1})`
/// plus the initial load.
pub fn schedule_single_op(ops: &[HbmOp], hbm_bw: f64) -> f64 {
    if ops.is_empty() {
        return 0.0;
    }
    let load = |op: &HbmOp| op.weight_bytes as f64 / hbm_bw;
    let mut total = load(&ops[0]);
    for i in 0..ops.len() {
        let next_load = ops.get(i + 1).map(load).unwrap_or(0.0);
        total += ops[i].exec_time.max(next_load);
    }
    total
}

/// Greedy operator grouping: consecutive operators are packed while the
/// group's weights fit in the prefetch buffer.
pub fn group_ops(ops: &[HbmOp], prefetch_buffer: u64) -> Vec<Vec<HbmOp>> {
    let mut groups: Vec<Vec<HbmOp>> = Vec::new();
    let mut cur: Vec<HbmOp> = Vec::new();
    let mut cur_bytes = 0u64;
    for &op in ops {
        if !cur.is_empty() && cur_bytes + op.weight_bytes > prefetch_buffer {
            groups.push(std::mem::take(&mut cur));
            cur_bytes = 0;
        }
        cur_bytes += op.weight_bytes;
        cur.push(op);
    }
    if !cur.is_empty() {
        groups.push(cur);
    }
    groups
}

/// Double-buffered group schedule: prefetch group *g+1* while executing
/// group *g*.
pub fn schedule_inter_op(ops: &[HbmOp], hbm_bw: f64, prefetch_buffer: u64) -> f64 {
    let groups = group_ops(ops, prefetch_buffer);
    if groups.is_empty() {
        return 0.0;
    }
    let load = |g: &[HbmOp]| g.iter().map(|o| o.weight_bytes).sum::<u64>() as f64 / hbm_bw;
    let exec = |g: &[HbmOp]| g.iter().map(|o| o.exec_time).sum::<f64>();
    let mut total = load(&groups[0]);
    for i in 0..groups.len() {
        let next_load = groups.get(i + 1).map(|g| load(g)).unwrap_or(0.0);
        total += exec(&groups[i]).max(next_load);
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<HbmOp> {
        // Alternating light operators and compute/memory-heavy operators:
        // a light op's execution cannot hide the following heavy load, so
        // fine-grained overlap stalls where group overlap does not.
        (0..8)
            .map(|i| HbmOp {
                exec_time: if i % 2 == 0 { 0.1e-3 } else { 10e-3 },
                weight_bytes: if i % 2 == 0 { 1 << 20 } else { 64 << 20 },
            })
            .collect()
    }

    #[test]
    fn single_op_overlaps_execution_and_load() {
        let ops = ops();
        let serial: f64 = ops
            .iter()
            .map(|o| o.exec_time + o.weight_bytes as f64 / 100e9)
            .sum();
        let overlapped = schedule_single_op(&ops, 100e9);
        assert!(overlapped < serial);
        // Lower bound: neither total exec nor total load can be beaten.
        let exec_total: f64 = ops.iter().map(|o| o.exec_time).sum();
        assert!(overlapped >= exec_total);
    }

    #[test]
    fn more_bandwidth_never_slower() {
        let ops = ops();
        let slow = schedule_single_op(&ops, 50e9);
        let fast = schedule_single_op(&ops, 900e9);
        assert!(fast <= slow);
        let slow_g = schedule_inter_op(&ops, 50e9, 256 << 20);
        let fast_g = schedule_inter_op(&ops, 900e9, 256 << 20);
        assert!(fast_g <= slow_g);
    }

    #[test]
    fn grouping_respects_buffer() {
        let ops = ops();
        let groups = group_ops(&ops, 70 << 20);
        for g in &groups {
            let bytes: u64 = g.iter().map(|o| o.weight_bytes).sum();
            // A single op larger than the buffer still forms its own group.
            assert!(bytes <= (70 << 20) || g.len() == 1);
        }
        let n: usize = groups.iter().map(Vec::len).sum();
        assert_eq!(n, ops.len());
    }

    #[test]
    fn inter_op_wins_at_low_bandwidth() {
        // With compute-heavy and memory-heavy ops interleaved, grouping
        // balances execution against prefetching when HBM is slow (§6.8).
        let ops = ops();
        let single = schedule_single_op(&ops, 30e9);
        let grouped = schedule_inter_op(&ops, 30e9, 256 << 20);
        assert!(
            grouped <= single + 1e-12,
            "grouped={grouped}, single={single}"
        );
    }

    #[test]
    fn compute_bound_regime_is_insensitive() {
        // At very high bandwidth both schedules approach total exec time.
        let ops = ops();
        let exec_total: f64 = ops.iter().map(|o| o.exec_time).sum();
        let s = schedule_single_op(&ops, 5e12);
        let g = schedule_inter_op(&ops, 5e12, 256 << 20);
        assert!((s - exec_total) / exec_total < 0.05);
        assert!((g - exec_total) / exec_total < 0.05);
    }

    #[test]
    fn empty_input() {
        assert_eq!(schedule_single_op(&[], 1e9), 0.0);
        assert_eq!(schedule_inter_op(&[], 1e9, 1), 0.0);
    }
}
