//! Persistent plan-cache interface: keys, codec, and the cache trait.
//!
//! The ROADMAP's compile-service arc keys cached search results by
//! *(operator signature, ChipSpec, fault state)* so a fleet compiling
//! millions of recurring shapes hits cache instead of re-running the Pareto
//! search. This module owns the compiler-side half of that contract:
//!
//! * [`plan_cache_key`] — the full cache key. Beyond the operator signature
//!   the key digests the chip datasheet, the fault state the compile plans
//!   against, and the search configuration, so an entry tuned for a healthy
//!   chip can never be served to a degraded one (or vice versa), and a
//!   `fast()` frontier can never masquerade as a `strict()` one.
//! * [`encode_frontier`] / [`decode_frontier`] — a versioned text codec for
//!   a Pareto frontier's *configurations* (the search's free variables).
//!   Cached entries store only [`PlanConfig`]s: plans, costs, and programs
//!   are re-derived deterministically on every hit, so a hit flows through
//!   the exact same build → reconcile → verify(+prove) pipeline as a cold
//!   compile and byte-identical artifacts fall out by construction.
//! * [`PlanCache`] — the object-safe trait the compiler consults. The
//!   interface is deliberately infallible: a backend that hits corruption
//!   quarantines internally and reports a miss, so the compiler always
//!   falls through to recompilation and can never serve a bad entry.
//!
//! The disk backend (atomic writes, integrity checksums, quarantine) lives
//! in the `t10-store` crate; this module has no I/O.

use t10_sim::FaultPlan;

use crate::plan::{PlanConfig, TemporalChoice};
use crate::search::{SearchConfig, SearchStats};
use t10_device::ChipSpec;
use t10_ir::Operator;

/// Codec version tag; bump on any format change so stale entries decode to
/// `None` (a miss) instead of misparsing.
const FRONTIER_VERSION: &str = "t10-frontier v1";

/// 64-bit FNV-1a over a byte string — the workspace's stable, dependency-free
/// digest for cache keys and integrity checks. Not cryptographic; it guards
/// against corruption and accidental collisions, not adversaries.
#[must_use]
pub fn fnv64(bytes: &[u8]) -> u64 {
    fnv64_seeded(0xcbf2_9ce4_8422_2325, bytes)
}

/// FNV-1a with a caller-chosen offset basis, for deriving independent
/// digests of the same bytes (e.g. a two-lane filename hash).
#[must_use]
pub fn fnv64_seeded(offset: u64, bytes: &[u8]) -> u64 {
    let mut h = offset;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The full persistent-cache key for one operator search.
///
/// Layout: `v1|op=<fnv>|chip=<fnv>|fault=<fnv>|search=<fnv>` — each
/// component digested separately so a mismatch is attributable. The raw
/// renderings feeding the digests are stable, explicit field listings (not
/// `Debug` of foreign types), so the key survives refactors that don't
/// change planning-relevant state.
#[must_use]
pub fn plan_cache_key(
    op: &Operator,
    dtype_bytes: &[usize],
    out_dtype_bytes: usize,
    spec: &ChipSpec,
    faults: Option<&FaultPlan>,
    cfg: &SearchConfig,
) -> String {
    let op_sig = operator_signature(op, dtype_bytes, out_dtype_bytes);
    format!(
        "v1|op={:016x}|chip={:016x}|fault={:016x}|search={:016x}",
        fnv64(op_sig.as_bytes()),
        fnv64(chip_digest_string(spec).as_bytes()),
        fnv64(fault_digest_string(faults).as_bytes()),
        fnv64(search_digest_string(cfg).as_bytes()),
    )
}

/// The operator half of the cache key: kind, expression, combinators, and
/// element sizes — exactly what [`crate::compiler`]'s in-process memo keys
/// on, shared so the two caches can never disagree about operator identity.
#[must_use]
pub fn operator_signature(op: &Operator, dtype_bytes: &[usize], out_dtype_bytes: usize) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}",
        op.kind, op.expr, op.combine, op.reduce, op.unary, dtype_bytes, out_dtype_bytes
    )
}

/// The *shape-erased* operator signature: everything
/// [`operator_signature`] captures except the axis extents and indirect
/// dimension sizes. Two operators share a family exactly when they differ
/// only in shape — same kind, combinators, dtypes, axis names/kinds, and
/// index-expression structure (strides, offsets, indirection markers).
/// Family-level cache entries and `t10.cert.symbolic.v1` certificates key
/// on this string's digest.
#[must_use]
pub fn family_signature(op: &Operator, dtype_bytes: &[usize], out_dtype_bytes: usize) -> String {
    let mut axes = String::new();
    for a in &op.expr.axes {
        axes.push_str(&format!("{}:{:?};", a.name, a.kind));
    }
    let mut accesses = String::new();
    for dims in op
        .expr
        .inputs
        .iter()
        .chain(std::iter::once(&op.expr.output))
    {
        accesses.push('[');
        for e in dims {
            if e.is_indirect() {
                accesses.push_str("ind;");
                continue;
            }
            for t in &e.terms {
                accesses.push_str(&format!("{}*{},", t.stride, t.axis));
            }
            accesses.push_str(&format!("+{};", e.offset));
        }
        accesses.push(']');
    }
    format!(
        "fam|{:?}|{:?}|{:?}|{:?}|{axes}|{accesses}|{:?}|{}",
        op.kind, op.combine, op.reduce, op.unary, dtype_bytes, out_dtype_bytes
    )
}

/// Hex digest of the family signature, as recorded in parametric
/// certificates (`family=` line) and checked by SYM06.
#[must_use]
pub fn family_digest(op: &Operator, dtype_bytes: &[usize], out_dtype_bytes: usize) -> String {
    format!(
        "{:016x}",
        fnv64(family_signature(op, dtype_bytes, out_dtype_bytes).as_bytes())
    )
}

/// The family-level persistent-cache key: like [`plan_cache_key`] but with
/// the shape-erased operator digest in the operator slot (`fam=` instead of
/// `op=`), so a family entry can never shadow an exact-shape entry and the
/// chip/fault/search guards still apply unchanged.
#[must_use]
pub fn family_cache_key(
    op: &Operator,
    dtype_bytes: &[usize],
    out_dtype_bytes: usize,
    spec: &ChipSpec,
    faults: Option<&FaultPlan>,
    cfg: &SearchConfig,
) -> String {
    format!(
        "v1|fam={}|chip={:016x}|fault={:016x}|search={:016x}",
        family_digest(op, dtype_bytes, out_dtype_bytes),
        fnv64(chip_digest_string(spec).as_bytes()),
        fnv64(fault_digest_string(faults).as_bytes()),
        fnv64(search_digest_string(cfg).as_bytes()),
    )
}

/// Stable rendering of every ChipSpec field that influences planning or
/// costing. Any datasheet change — core count, SRAM, bandwidths, AMP
/// quanta — re-keys the cache.
#[must_use]
pub fn chip_digest_string(spec: &ChipSpec) -> String {
    format!(
        "chip|{}|cores={}|per_chip={}|sram={}|link={:e}|interchip={:e}|sync={:e}|flops={:e}\
         |membw={:e}|vtx={:e}|offchip={:e}|amp={}x{}|shiftbuf={}|msg={:e}",
        spec.name,
        spec.num_cores,
        spec.cores_per_chip,
        spec.sram_per_core,
        spec.link_bw,
        spec.interchip_bw,
        spec.sync_latency,
        spec.flops_per_core,
        spec.local_mem_bw,
        spec.vertex_overhead,
        spec.offchip_bw,
        spec.amp_out,
        spec.amp_red,
        spec.shift_buffer,
        spec.exchange_msg_overhead,
    )
}

/// Stable rendering of the fault state a compile plans against. A healthy
/// chip (or no fault plan at all) renders as `fault|healthy`, so the two
/// spellings of "nothing is wrong" share cache entries; any degraded core,
/// link, or shrunk SRAM produces a distinct digest.
#[must_use]
pub fn fault_digest_string(faults: Option<&FaultPlan>) -> String {
    match faults {
        None => "fault|healthy".to_string(),
        Some(f) if f.is_healthy() => "fault|healthy".to_string(),
        Some(f) => format!("fault|{}", f.digest_string()),
    }
}

/// Stable rendering of the search knobs that shape a frontier. The
/// wall-clock deadline is deliberately excluded (it is per-run, and
/// truncated frontiers are never recorded); `collect_samples` is excluded
/// because it does not change the frontier. `threads` *is* included: plans
/// with identical (memory, time) cost can tie, and which one survives the
/// Pareto merge depends on chunking, so byte-identical warm replays require
/// the same worker split.
#[must_use]
pub fn search_digest_string(cfg: &SearchConfig) -> String {
    format!(
        "search|util={:e}|pad={:e}|cand={}|max={}|threads={}|memcap={:?}",
        cfg.min_core_utilization,
        cfg.padding_threshold,
        cfg.max_candidates_per_axis,
        cfg.max_configs,
        cfg.threads,
        cfg.mem_cap_override,
    )
}

/// Serializes a frontier's plan configurations, in frontier order
/// (memory-ascending), one line per plan:
///
/// ```text
/// t10-frontier v1
/// stats complete=1.2e3 filtered=42
/// plans=2
/// f_op=4,2,1 temporal=.:1;0:4
/// f_op=8,1,1 temporal=.:1;.:1
/// ```
///
/// `.` marks "no temporal dimension" ([`TemporalChoice::none`]). The
/// search-space statistics ride along so a cache-hit compile reports the
/// same telemetry the original search did. Truncated frontiers must never
/// be recorded (the compiler enforces this), so the codec carries no
/// truncation flag; per-plan cost samples are intentionally dropped.
#[must_use]
pub fn encode_frontier(configs: &[PlanConfig], stats: &SearchStats) -> String {
    let mut out = String::new();
    out.push_str(FRONTIER_VERSION);
    out.push('\n');
    out.push_str(&format!(
        "stats complete={:e} filtered={}\n",
        stats.complete_space, stats.filtered_space
    ));
    out.push_str(&format!("plans={}\n", configs.len()));
    for c in configs {
        out.push_str("f_op=");
        for (i, f) in c.f_op.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&f.to_string());
        }
        out.push_str(" temporal=");
        for (i, t) in c.temporal.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            match t.dim {
                Some(d) => out.push_str(&format!("{d}:{}", t.factor)),
                None => out.push_str(&format!(".:{}", t.factor)),
            }
        }
        out.push('\n');
    }
    out
}

/// Parses an [`encode_frontier`] payload. Returns `None` on any malformation
/// — wrong version, bad counts, unparseable fields — which callers treat as
/// a cache miss (stale entry), never an error.
#[must_use]
pub fn decode_frontier(payload: &str) -> Option<(Vec<PlanConfig>, SearchStats)> {
    let mut lines = payload.lines();
    if lines.next()? != FRONTIER_VERSION {
        return None;
    }
    let stats_line = lines.next()?.strip_prefix("stats complete=")?;
    let (complete, filtered) = stats_line.split_once(" filtered=")?;
    let complete_space: f64 = complete.parse().ok()?;
    let filtered_space: usize = filtered.parse().ok()?;
    if !complete_space.is_finite() || complete_space < 0.0 {
        return None;
    }
    let count: usize = lines.next()?.strip_prefix("plans=")?.parse().ok()?;
    let mut configs = Vec::with_capacity(count);
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let rest = line.strip_prefix("f_op=")?;
        let (fop_str, temporal_str) = rest.split_once(" temporal=")?;
        let f_op: Vec<usize> = fop_str
            .split(',')
            .map(str::parse)
            .collect::<Result<_, _>>()
            .ok()?;
        let mut temporal = Vec::new();
        if !temporal_str.is_empty() {
            for part in temporal_str.split(';') {
                let (dim, factor) = part.split_once(':')?;
                let factor: usize = factor.parse().ok()?;
                let choice = if dim == "." {
                    if factor != 1 {
                        return None;
                    }
                    TemporalChoice::none()
                } else {
                    TemporalChoice::rotate(dim.parse().ok()?, factor)
                };
                temporal.push(choice);
            }
        }
        configs.push(PlanConfig { f_op, temporal });
    }
    if configs.len() != count {
        return None;
    }
    let stats = SearchStats {
        complete_space,
        filtered_space,
        optimized_space: configs.len(),
        truncated: false,
        samples: Vec::new(),
    };
    Some((configs, stats))
}

/// A persistent plan cache the compiler can consult per operator search.
///
/// The interface is infallible by design: `lookup` returns `None` for
/// misses *and* for any backend failure (corruption, I/O errors, stale
/// formats) — the backend quarantines or drops the entry internally and the
/// compiler falls through to a fresh search. `record` is fire-and-forget; a
/// failed write costs a future cache miss, never a failed compile.
pub trait PlanCache: Send + Sync {
    /// The stored payload for `key`, if a valid entry exists.
    fn lookup(&self, key: &str) -> Option<String>;

    /// Stores `payload` under `key` (best effort).
    fn record(&self, key: &str, payload: &str);
}

/// Per-compile cache telemetry, carried on [`crate::CompiledGraph`] so
/// callers (CLI, serve loop, benchmarks) can report hit rates without
/// re-deriving them from traces.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Node searches answered from the persistent cache.
    pub disk_hits: usize,
    /// Node searches that consulted the persistent cache and missed.
    pub disk_misses: usize,
    /// Entries that decoded but rebuilt to an empty/unusable frontier and
    /// were treated as misses (stale format or shape drift).
    pub stale_entries: usize,
    /// Fresh search results written back to the persistent cache.
    pub recorded: usize,
    /// Node searches answered by the in-process memo (identical operators
    /// within one graph, §6.3).
    pub memo_hits: usize,
    /// Node searches warm-started from a *family* certificate at a shape
    /// the exact-key cache had never seen (cross-shape reuse).
    pub family_hits: usize,
    /// Family certificates consulted but refused: validation or residual
    /// checks failed (SYM02–SYM07), or no cached configuration survived the
    /// divisibility filters at the new shape.
    pub residual_failures: usize,
    /// Family certificates derived and written back after a fresh search.
    pub family_recorded: usize,
}

impl CacheStats {
    /// Hit rate over persistent-cache consultations, or `None` when the
    /// cache was never consulted.
    #[must_use]
    pub fn hit_rate(&self) -> Option<f64> {
        let total = self.disk_hits + self.disk_misses;
        if total == 0 {
            None
        } else {
            Some(self.disk_hits as f64 / total as f64)
        }
    }

    /// Cross-shape hit rate: of the exact-key misses that consulted a
    /// family certificate, how many warm-started from it. `None` when no
    /// family lookup ever ran.
    #[must_use]
    pub fn cross_shape_hit_rate(&self) -> Option<f64> {
        let total = self.family_hits + self.residual_failures;
        if total == 0 {
            None
        } else {
            Some(self.family_hits as f64 / total as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_ir::builders;

    fn op() -> Operator {
        builders::matmul(0, 1, 2, 64, 32, 16).unwrap()
    }

    #[test]
    fn fnv_is_stable_and_seed_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv64(b"abc"), fnv64_seeded(1, b"abc"));
    }

    #[test]
    fn key_distinguishes_every_component() {
        let spec = ChipSpec::ipu_with_cores(16);
        let cfg = SearchConfig::fast();
        let base = plan_cache_key(&op(), &[2, 2], 2, &spec, None, &cfg);

        // Same inputs -> same key.
        assert_eq!(base, plan_cache_key(&op(), &[2, 2], 2, &spec, None, &cfg));

        // Different operator shape.
        let other = builders::matmul(0, 1, 2, 64, 32, 32).unwrap();
        assert_ne!(base, plan_cache_key(&other, &[2, 2], 2, &spec, None, &cfg));

        // Different dtypes.
        assert_ne!(base, plan_cache_key(&op(), &[4, 4], 4, &spec, None, &cfg));

        // Different chip.
        let spec2 = ChipSpec::ipu_with_cores(32);
        assert_ne!(base, plan_cache_key(&op(), &[2, 2], 2, &spec2, None, &cfg));

        // Different search config.
        let strict = SearchConfig::strict();
        assert_ne!(
            base,
            plan_cache_key(&op(), &[2, 2], 2, &spec, None, &strict)
        );
    }

    #[test]
    fn degraded_chip_never_hits_a_healthy_key() {
        // The ROADMAP-specified key regression: an entry compiled for a
        // healthy chip must not be addressable from a degraded one.
        let spec = ChipSpec::ipu_with_cores(16);
        let cfg = SearchConfig::fast();
        let healthy = plan_cache_key(&op(), &[2, 2], 2, &spec, None, &cfg);

        let degraded = FaultPlan::seeded(16, 7).shrink_sram(3, 0.5);
        let degraded_key = plan_cache_key(&op(), &[2, 2], 2, &spec, Some(&degraded), &cfg);
        assert_ne!(healthy, degraded_key);

        // Link loss also re-keys (it changes costing via reroutes).
        let lossy = FaultPlan::seeded(16, 7).lose_links(0.2);
        assert_ne!(
            healthy,
            plan_cache_key(&op(), &[2, 2], 2, &spec, Some(&lossy), &cfg)
        );

        // But an explicitly healthy plan is the same as no plan at all.
        let noop = FaultPlan::new(16);
        assert_eq!(
            healthy,
            plan_cache_key(&op(), &[2, 2], 2, &spec, Some(&noop), &cfg)
        );
    }

    #[test]
    fn family_key_erases_shape_and_nothing_else() {
        let spec = ChipSpec::ipu_with_cores(16);
        let cfg = SearchConfig::fast();
        let base = family_cache_key(&op(), &[2, 2], 2, &spec, None, &cfg);

        // Same operator at a different shape: same family.
        let scaled = builders::matmul(0, 1, 2, 256, 32, 16).unwrap();
        assert_eq!(
            base,
            family_cache_key(&scaled, &[2, 2], 2, &spec, None, &cfg)
        );

        // A gather's indirect table size is shape, too.
        let g1 = builders::gather(0, 1, 2, 1000, 32, 8).unwrap();
        let g2 = builders::gather(0, 1, 2, 30_522, 32, 8).unwrap();
        assert_eq!(
            family_cache_key(&g1, &[2, 2], 2, &spec, None, &cfg),
            family_cache_key(&g2, &[2, 2], 2, &spec, None, &cfg)
        );

        // Different dtypes, chip, or search config split the family.
        assert_ne!(base, family_cache_key(&op(), &[4, 4], 4, &spec, None, &cfg));
        let spec2 = ChipSpec::ipu_with_cores(32);
        assert_ne!(
            base,
            family_cache_key(&op(), &[2, 2], 2, &spec2, None, &cfg)
        );
        let strict = SearchConfig::strict();
        assert_ne!(
            base,
            family_cache_key(&op(), &[2, 2], 2, &spec, None, &strict)
        );

        // A structurally different operator (gather vs matmul) is a
        // different family even with matching dtypes.
        assert_ne!(base, family_cache_key(&g1, &[2, 2], 2, &spec, None, &cfg));

        // Family keys and exact keys live in disjoint namespaces.
        assert!(base.starts_with("v1|fam="));
        assert!(plan_cache_key(&op(), &[2, 2], 2, &spec, None, &cfg).starts_with("v1|op="));
        assert_eq!(
            family_digest(&op(), &[2, 2], 2),
            family_digest(&scaled, &[2, 2], 2)
        );
    }

    #[test]
    fn cross_shape_hit_rate_accounting() {
        let mut s = CacheStats::default();
        assert_eq!(s.cross_shape_hit_rate(), None);
        s.family_hits = 3;
        s.residual_failures = 1;
        assert_eq!(s.cross_shape_hit_rate(), Some(0.75));
    }

    #[test]
    fn frontier_codec_round_trips() {
        let configs = vec![
            PlanConfig {
                f_op: vec![4, 2, 1],
                temporal: vec![TemporalChoice::none(), TemporalChoice::rotate(0, 4)],
            },
            PlanConfig {
                f_op: vec![8, 1, 1],
                temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
            },
            PlanConfig {
                f_op: vec![1],
                temporal: vec![],
            },
        ];
        let stats = SearchStats {
            complete_space: 1234.5,
            filtered_space: 42,
            optimized_space: configs.len(),
            truncated: false,
            samples: Vec::new(),
        };
        let text = encode_frontier(&configs, &stats);
        let (decoded, dstats) = decode_frontier(&text).unwrap();
        assert_eq!(decoded, configs);
        assert_eq!(dstats, stats);
        // Encoding the decoded entry is byte-identical (codec fixpoint).
        assert_eq!(encode_frontier(&decoded, &dstats), text);
    }

    #[test]
    fn frontier_codec_rejects_malformed_payloads() {
        const STATS: &str = "stats complete=1e2 filtered=7\n";
        assert_eq!(decode_frontier(""), None);
        assert_eq!(
            decode_frontier(&format!("t10-frontier v0\n{STATS}plans=0\n")),
            None
        );
        // Missing stats line.
        assert_eq!(decode_frontier("t10-frontier v1\nplans=0\n"), None);
        // Non-finite search-space size.
        assert_eq!(
            decode_frontier("t10-frontier v1\nstats complete=inf filtered=7\nplans=0\n"),
            None
        );
        // Fewer plans than declared.
        assert_eq!(
            decode_frontier(&format!("t10-frontier v1\n{STATS}plans=2\n")),
            None
        );
        assert_eq!(
            decode_frontier(&format!(
                "t10-frontier v1\n{STATS}plans=1\nf_op=x temporal=.:1\n"
            )),
            None
        );
        assert_eq!(
            decode_frontier(&format!(
                "t10-frontier v1\n{STATS}plans=1\nf_op=2 temporal=0:x\n"
            )),
            None
        );
        // A "none" choice with a factor is contradictory.
        assert_eq!(
            decode_frontier(&format!(
                "t10-frontier v1\n{STATS}plans=1\nf_op=2 temporal=.:4\n"
            )),
            None
        );
        // Valid entries still parse when a trailing newline is doubled.
        let ok = format!("t10-frontier v1\n{STATS}plans=1\nf_op=2,2 temporal=.:1;3:2\n\n");
        let (decoded, dstats) = decode_frontier(&ok).unwrap();
        assert_eq!(
            decoded,
            vec![PlanConfig {
                f_op: vec![2, 2],
                temporal: vec![TemporalChoice::none(), TemporalChoice::rotate(3, 2)],
            }]
        );
        assert_eq!(dstats.filtered_space, 7);
    }
}
