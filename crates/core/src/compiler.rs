//! End-to-end compilation of operator graphs (paper Figure 4).
//!
//! The pipeline: calibrate the cost model once per chip, run the
//! intra-operator Pareto search per distinct operator (identical operators
//! share cached results, §6.3), reconcile memory across operators
//! (Algorithm 1), and emit a device program of setup / execute / transition
//! supersteps that the simulator prices.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use t10_device::boundary::{BoundaryContract, GraphEdge};
use t10_device::program::Program;
use t10_device::ChipSpec;
use t10_ir::{Graph, NodeId, Operator, ValueKind};
use t10_metrics::{names as metric_names, Registry};
use t10_sim::{FaultPlan, RunReport};
use t10_trace::{Trace, Value, CHIP_TID, PID_COMPILER, PID_SIM, PID_STORE};

use crate::cache::{
    decode_frontier, encode_frontier, family_cache_key, plan_cache_key, CacheStats, PlanCache,
};
use crate::cost::CostModel;
use crate::lower::{lower_timing, setup_step, transition_step};
use crate::plan::Plan;
use crate::reconcile::{reconcile_traced, weight_bytes_per_core, OpForSchedule, Reconciled};
use crate::search::{search_operator, ParetoSet, ScoredPlan, SearchConfig, SearchStats};
use crate::{compile_err, CompileError, Result};

/// Per-run compilation knobs, beyond the persistent [`SearchConfig`].
///
/// The defaults reproduce the unconstrained compile exactly: no deadline,
/// no faults, full nominal capacity.
#[derive(Clone, Default)]
pub struct CompileOptions {
    /// Wall-clock budget for the whole compile. The search becomes
    /// *anytime*: workers stop enumerating once the budget passes and the
    /// compiler returns the best plan found so far, falling back to a small
    /// emergency search if nothing was found in time.
    pub deadline: Option<Duration>,
    /// Fault plan the target chip is running under. SRAM faults lower the
    /// per-core capacity the compiler plans against (a uniform plan must
    /// fit the most constrained core); link and compute faults don't change
    /// plan feasibility, only simulated timing.
    pub faults: Option<FaultPlan>,
    /// Per-node Pareto frontiers from a previous compile of the same graph
    /// (index = node id). Plans that remain feasible on the current target
    /// are reused directly instead of searching from scratch — the fast
    /// path when recompiling mid-run for a degraded chip, where the graph
    /// is unchanged and only the capacity/core count moved.
    pub warm_start: Option<Vec<ParetoSet>>,
    /// Structured event sink. When enabled, every operator search emits a
    /// span (plans enumerated/filtered/kept), every frontier a `pareto`
    /// snapshot instant, and every reconciler round its score — all on the
    /// compiler's track in **trace time** ([`Trace::now_us`]): wall
    /// microseconds by default, or a deterministic logical counter when the
    /// handle came from [`Trace::logical`]. The threaded search workers
    /// themselves never touch the clock, so logical-clock traces stay
    /// byte-identical across same-seed runs.
    pub trace: Trace,
    /// Run translation validation as an extra post-pass: every chosen plan
    /// is lowered functionally and its compute-shift program symbolically
    /// interpreted (`t10-prove`) to certify it computes the operator —
    /// exactly-once coverage, rotation provenance, reduction flow. Plans
    /// the functional lowering cannot express (padded partitions) are
    /// skipped, not failed. Off by default: the structural post-pass is
    /// mandatory, the semantic one is opt-in (`t10 compile --prove`).
    pub prove: bool,
    /// Persistent plan cache consulted per distinct operator search and fed
    /// with fresh (complete, non-truncated) frontiers. A hit skips the
    /// Pareto search but nothing downstream: the cached configurations are
    /// re-built, re-costed, reconciled, and re-certified by the mandatory
    /// structural verifier — plus the semantic prover, regardless of
    /// [`CompileOptions::prove`] — so a poisoned or stale cache can never
    /// ship an uncertified program. Backend failures degrade to misses.
    pub cache: Option<Arc<dyn PlanCache>>,
    /// Worker threads for the *per-operator* axis of the search (distinct
    /// operators are searched concurrently; each search may itself be
    /// threaded via [`SearchConfig::threads`]). `0` and `1` both mean
    /// sequential. Parallelism never changes results: searches land in a
    /// fixed node order, trace events are emitted after the join, and the
    /// first error in node order wins.
    pub op_parallelism: usize,
    /// Service metric registry. Operator-resolution counters
    /// (`t10_compiler_ops_total` by `source=warm|memo|disk|searched`) are
    /// recorded under any clock; per-operator search latency and
    /// parallel-utilization series are **wall-gated**
    /// ([`t10_metrics::Registry::is_wall`]) because workers measure with
    /// `Instant` off the registry clock — logical-clock snapshots stay
    /// byte-identical, exactly like the trace guarantee above.
    pub metrics: Registry,
}

impl std::fmt::Debug for CompileOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Manual because `dyn PlanCache` has no Debug; everything else
        // renders normally.
        f.debug_struct("CompileOptions")
            .field("deadline", &self.deadline)
            .field("faults", &self.faults)
            .field("warm_start", &self.warm_start)
            .field("trace", &self.trace)
            .field("prove", &self.prove)
            .field("cache", &self.cache.as_ref().map(|_| "dyn PlanCache"))
            .field("op_parallelism", &self.op_parallelism)
            .field("metrics", &self.metrics)
            .finish()
    }
}

impl CompileOptions {
    /// Options with a compile deadline only.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// Options with a fault plan only.
    pub fn with_faults(faults: FaultPlan) -> Self {
        Self {
            faults: Some(faults),
            ..Self::default()
        }
    }

    /// Options with a persistent plan cache only.
    pub fn with_cache(cache: Arc<dyn PlanCache>) -> Self {
        Self {
            cache: Some(cache),
            ..Self::default()
        }
    }
}

/// The T10 compiler for one chip configuration.
pub struct Compiler {
    spec: ChipSpec,
    cost: CostModel,
    cfg: SearchConfig,
}

/// A fully compiled model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledGraph {
    /// Timing program covering every operator (off-chip input load, setup,
    /// execute, transition, off-chip output store).
    pub program: Program,
    /// The reconciled idle/active schedule.
    pub reconciled: Reconciled,
    /// Per-node Pareto sets (index = node id).
    pub node_pareto: Vec<ParetoSet>,
    /// Per-node search statistics.
    pub node_stats: Vec<SearchStats>,
    /// Cost-model estimate of end-to-end time (exec + setup), seconds.
    pub estimated_time: f64,
    /// Wall-clock compilation time, seconds (Figure 16/19).
    pub compile_seconds: f64,
    /// Persistent/in-process cache telemetry for this compile.
    pub cache_stats: CacheStats,
    /// Dataflow edges of the compiled graph (producer → consumer), carried
    /// so recovery re-certification can rerun the graph-level pass without
    /// the IR graph.
    pub graph_edges: Vec<GraphEdge>,
    /// One typed §5 handoff contract per dataflow edge, proved by the
    /// mandatory graph-level post-pass.
    pub boundaries: Vec<BoundaryContract>,
}

impl Compiler {
    /// Creates a compiler, calibrating the cost model for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if cost-model calibration fails, which would indicate a bug in
    /// the calibration sampling rather than a user error.
    pub fn new(spec: ChipSpec, cfg: SearchConfig) -> Self {
        Self::try_new(spec, cfg).expect("cost-model calibration")
    }

    /// Creates a compiler, surfacing calibration failure as a typed error
    /// instead of panicking — the entry point for long-lived callers (the
    /// compile service) that must not die on a bad chip description.
    pub fn try_new(spec: ChipSpec, cfg: SearchConfig) -> Result<Self> {
        let cost = CostModel::calibrate(&spec, 192, 7)?;
        Ok(Self { spec, cost, cfg })
    }

    /// Creates a compiler reusing an existing cost model.
    pub fn with_cost_model(cost: CostModel, cfg: SearchConfig) -> Self {
        Self {
            spec: cost.spec().clone(),
            cost,
            cfg,
        }
    }

    /// The target chip.
    pub fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    /// The calibrated cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The search configuration.
    pub fn search_config(&self) -> &SearchConfig {
        &self.cfg
    }

    /// Runs the intra-operator search for one graph node.
    pub fn compile_node(&self, graph: &Graph, node: NodeId) -> Result<(ParetoSet, SearchStats)> {
        self.compile_node_with(graph, node, &CompileOptions::default())
    }

    /// Runs the intra-operator search for one graph node under per-run
    /// options, with the same fallback chain [`Compiler::compile_graph_with`]
    /// uses.
    pub fn compile_node_with(
        &self,
        graph: &Graph,
        node: NodeId,
        opts: &CompileOptions,
    ) -> Result<(ParetoSet, SearchStats)> {
        let base = self.base_config(opts, Instant::now())?;
        if let Some(warm) = self.warm_plans(opts, node, &base) {
            return Ok((warm, SearchStats::default()));
        }
        let op = &graph.node(node).op;
        let (dtypes, out_dtype) = node_dtypes(graph, op);
        self.search_with_fallback(op, &dtypes, out_dtype, &base)
    }

    /// The still-feasible subset of a warm-start frontier for `node`, or
    /// `None` when no warm plans survive (fall through to a full search).
    ///
    /// Feasibility on the new target is a per-plan filter: the plan must
    /// fit the (possibly shrunken) per-core capacity and not use more cores
    /// than survive. Link and compute faults don't invalidate plans — they
    /// only change timing — so after a pure link loss the entire previous
    /// frontier carries over.
    fn warm_plans(
        &self,
        opts: &CompileOptions,
        node: NodeId,
        cfg: &SearchConfig,
    ) -> Option<ParetoSet> {
        let frontier = opts.warm_start.as_ref()?.get(node)?;
        let capacity = self.effective_capacity(cfg);
        let mut kept = ParetoSet::default();
        for sp in frontier.plans() {
            if sp.cost.mem_per_core <= capacity && sp.plan.cores_used <= self.spec.num_cores {
                kept.insert(sp.clone());
            }
        }
        if kept.is_empty() {
            None
        } else {
            Some(kept)
        }
    }

    /// Compiles a whole graph into a timing program.
    pub fn compile_graph(&self, graph: &Graph) -> Result<CompiledGraph> {
        self.compile_graph_with(graph, &CompileOptions::default())
    }

    /// Resolves the search configuration for one run: the deadline becomes
    /// an absolute instant, and an injected SRAM fault lowers the per-core
    /// memory cap to the most constrained core's capacity.
    fn base_config(&self, opts: &CompileOptions, t0: Instant) -> Result<SearchConfig> {
        let mut cfg = self.cfg.clone();
        cfg.deadline = opts.deadline.map(|d| t0 + d);
        if let Some(faults) = &opts.faults {
            if faults.num_cores() != self.spec.num_cores {
                return Err(compile_err!(
                    "fault plan covers {} cores, chip has {}",
                    faults.num_cores(),
                    self.spec.num_cores
                ));
            }
            cfg.mem_cap_override =
                Some(faults.min_capacity(self.spec.sram_per_core, self.spec.shift_buffer));
        }
        Ok(cfg)
    }

    /// The per-core capacity the whole compile plans against.
    fn effective_capacity(&self, cfg: &SearchConfig) -> usize {
        cfg.mem_cap_override.unwrap_or_else(|| {
            self.spec
                .sram_per_core
                .saturating_sub(self.spec.shift_buffer)
        })
    }

    /// Searches one operator with graceful degradation: the configured
    /// search first, then progressively relaxed constraints, then a small
    /// unconstrained emergency pass.
    ///
    /// The parallelism and padding constraints are compile-time filters,
    /// not feasibility rules: when an operator's awkward factorization
    /// leaves the constrained window empty, relaxing them trades plan
    /// quality for a plan at all (the paper's constraints are
    /// user-configurable for exactly this trade-off, §5). The emergency
    /// rung runs without a deadline so an anytime compile still returns a
    /// valid plan whenever one exists in its reduced candidate set.
    fn search_with_fallback(
        &self,
        op: &Operator,
        dtypes: &[usize],
        out_dtype: usize,
        base: &SearchConfig,
    ) -> Result<(ParetoSet, SearchStats)> {
        let mut cfg = base.clone();
        let mut r = search_operator(op, dtypes, out_dtype, &self.cost, &cfg)?;
        while r.0.is_empty() && cfg.min_core_utilization > 0.05 {
            cfg.min_core_utilization /= 2.0;
            r = search_operator(op, dtypes, out_dtype, &self.cost, &cfg)?;
        }
        if r.0.is_empty() && cfg.padding_threshold > 0.5 {
            cfg.min_core_utilization = 0.0;
            cfg.padding_threshold = 0.5;
            r = search_operator(op, dtypes, out_dtype, &self.cost, &cfg)?;
        }
        if r.0.is_empty() {
            let mut em = SearchConfig::emergency();
            em.mem_cap_override = base.mem_cap_override;
            let mut rescue = search_operator(op, dtypes, out_dtype, &self.cost, &em)?;
            rescue.1.truncated |= r.1.truncated;
            r = rescue;
        }
        Ok(r)
    }

    /// Compiles a whole graph under per-run options: an optional wall-clock
    /// deadline (anytime compilation) and an optional fault plan (plans are
    /// fitted to the degraded chip's capacity).
    pub fn compile_graph_with(
        &self,
        graph: &Graph,
        opts: &CompileOptions,
    ) -> Result<CompiledGraph> {
        let t0 = Instant::now();
        let trace = &opts.trace;
        let compile_start = trace.now_us();
        if trace.enabled() {
            trace.meta("process_name", PID_COMPILER, 0, "t10 compiler (trace time)");
            trace.meta("thread_name", PID_COMPILER, CHIP_TID, "reconciler");
        }
        let base_cfg = self.base_config(opts, t0)?;
        let nodes = graph.nodes();
        let mut cache_stats = CacheStats::default();

        // Intra-operator search in three passes — resolve, search, stitch —
        // so distinct operators can search on worker threads while trace
        // events, cache writes, and error selection all stay in node order
        // (parallelism must never change what the compile produces).
        //
        // Pass 1 — resolve every node to a warm-start frontier or a cache
        // key; distinct nodes with the same key share one `uniques` slot
        // (the §6.3 in-process memo).
        enum Resolved {
            Warm(ParetoSet),
            Keyed { unique: usize, memo: bool },
        }
        struct UniqueSearch<'g> {
            key: String,
            family_key: String,
            op: &'g Operator,
            dtypes: Vec<usize>,
            out_dtype: usize,
            result: Option<(ParetoSet, SearchStats)>,
            from_disk: bool,
        }
        let mut resolved: Vec<Resolved> = Vec::with_capacity(nodes.len());
        let mut uniques: Vec<UniqueSearch> = Vec::new();
        let mut by_key: HashMap<String, usize> = HashMap::new();
        for (i, node) in nodes.iter().enumerate() {
            if let Some(warm) = self.warm_plans(opts, i, &base_cfg) {
                resolved.push(Resolved::Warm(warm));
                continue;
            }
            let (dtypes, out_dtype) = node_dtypes(graph, &node.op);
            let key = op_cache_key(
                &node.op,
                &dtypes,
                out_dtype,
                &self.spec,
                opts.faults.as_ref(),
                &base_cfg,
            );
            match by_key.get(&key) {
                Some(&unique) => {
                    cache_stats.memo_hits += 1;
                    resolved.push(Resolved::Keyed { unique, memo: true });
                }
                None => {
                    let unique = uniques.len();
                    by_key.insert(key.clone(), unique);
                    let family_key = family_cache_key(
                        &node.op,
                        &dtypes,
                        out_dtype,
                        &self.spec,
                        opts.faults.as_ref(),
                        &base_cfg,
                    );
                    uniques.push(UniqueSearch {
                        key,
                        family_key,
                        op: &node.op,
                        dtypes,
                        out_dtype,
                        result: None,
                        from_disk: false,
                    });
                    resolved.push(Resolved::Keyed {
                        unique,
                        memo: false,
                    });
                }
            }
        }

        // Pass 2 — consult the persistent cache. A hit's configurations are
        // re-built and re-costed on *this* chip (bit-identical to what the
        // search scores for the same configs); anything that no longer
        // decodes, builds, or passes the admission filters marks the entry
        // stale and falls through to a fresh search.
        if let Some(cache) = &opts.cache {
            for u in &mut uniques {
                match cache.lookup(&u.key) {
                    Some(payload) => {
                        match self.rebuild_frontier(
                            &payload,
                            u.op,
                            &u.dtypes,
                            u.out_dtype,
                            &base_cfg,
                        ) {
                            Some(r) => {
                                cache_stats.disk_hits += 1;
                                u.from_disk = true;
                                u.result = Some(r);
                            }
                            None => {
                                cache_stats.disk_misses += 1;
                                cache_stats.stale_entries += 1;
                            }
                        }
                    }
                    None => cache_stats.disk_misses += 1,
                }
                // Family-level fallback (cross-shape reuse): an exact miss
                // or stale exact entry may still warm-start from a covering
                // `t10.cert.symbolic.v1` certificate recorded for the
                // shape-erased operator family. The certificate is
                // validated (SYM02/03/04/06), the shape's coverage checked
                // (SYM05), and every configuration re-built at the new
                // extents — the residual re-check; divisibility residuals a
                // new shape refuses drop individual configurations, not the
                // whole entry. `from_disk` stays true so the mandatory
                // verify + prove re-certification gate applies unchanged.
                if u.result.is_none() {
                    if let Some(payload) = cache.lookup(&u.family_key) {
                        match self.family_warm(&payload, u.op, &u.dtypes, u.out_dtype, &base_cfg) {
                            Some(r) => {
                                cache_stats.family_hits += 1;
                                opts.metrics
                                    .counter(metric_names::COMPILER_FAMILY_HITS_TOTAL, &[])
                                    .inc();
                                u.from_disk = true;
                                u.result = Some(r);
                            }
                            None => {
                                cache_stats.residual_failures += 1;
                                opts.metrics
                                    .counter(metric_names::COMPILER_RESIDUAL_FAILURES_TOTAL, &[])
                                    .inc();
                            }
                        }
                    }
                }
            }
        }

        // Pass 3 — search the remaining uniques, across `op_parallelism`
        // workers when asked. Workers pull indices from a shared counter
        // and park results in per-index slots; they never touch the trace
        // clock, and the first error in node order wins after the join.
        let pending: Vec<usize> = uniques
            .iter()
            .enumerate()
            .filter(|(_, u)| u.result.is_none())
            .map(|(i, _)| i)
            .collect();
        type SearchSlot = Mutex<Option<(Result<(ParetoSet, SearchStats)>, Duration)>>;
        let workers = opts.op_parallelism.max(1).min(pending.len().max(1));
        if !pending.is_empty() {
            opts.metrics
                .gauge(metric_names::COMPILER_SEARCH_JOBS, &[])
                .set(workers as i64);
        }
        if workers > 1 {
            let next = AtomicUsize::new(0);
            let slots: Vec<SearchSlot> = pending.iter().map(|_| Mutex::new(None)).collect();
            let (uniques_ref, pending_ref, slots_ref, next_ref, cfg_ref) =
                (&uniques, &pending, &slots, &next, &base_cfg);
            let mut worker_panic: Option<String> = None;
            let fanout_t0 = Instant::now();
            std::thread::scope(|scope| {
                let mut handles = Vec::new();
                for _ in 0..workers {
                    handles.push(scope.spawn(move || loop {
                        let j = next_ref.fetch_add(1, Ordering::Relaxed);
                        let Some(&u) = pending_ref.get(j) else { break };
                        let us = &uniques_ref[u];
                        // Workers time their own search with `Instant`, never
                        // the registry clock; the main thread observes the
                        // durations after the join (wall-gated).
                        let st = Instant::now();
                        let r = self.search_with_fallback(us.op, &us.dtypes, us.out_dtype, cfg_ref);
                        let took = st.elapsed();
                        if let Ok(mut slot) = slots_ref[j].lock() {
                            *slot = Some((r, took));
                        }
                    }));
                }
                for h in handles {
                    // Same policy as the inner search: a panicking worker
                    // surfaces as a typed error, not a process abort.
                    if let Err(payload) = h.join() {
                        let detail = payload
                            .downcast_ref::<&str>()
                            .map(|s| (*s).to_string())
                            .or_else(|| payload.downcast_ref::<String>().cloned())
                            .unwrap_or_else(|| "non-string panic payload".to_string());
                        worker_panic.get_or_insert(detail);
                    }
                }
            });
            let fanout_wall = fanout_t0.elapsed();
            if let Some(detail) = worker_panic {
                return Err(CompileError::worker_panicked(detail));
            }
            let search_us = opts.metrics.is_wall().then(|| {
                opts.metrics
                    .histogram(metric_names::COMPILER_OP_SEARCH_US, &[("mode", "parallel")])
            });
            let mut busy = Duration::ZERO;
            for (j, &u) in pending.iter().enumerate() {
                let (r, took) = slots[j]
                    .lock()
                    .map_err(|_| CompileError::internal("search result slot poisoned"))?
                    .take()
                    .ok_or_else(|| CompileError::internal("operator search returned no result"))?;
                busy += took;
                if let Some(h) = &search_us {
                    h.observe(took.as_micros() as u64);
                }
                uniques[u].result = Some(r?);
            }
            if opts.metrics.is_wall() && !fanout_wall.is_zero() {
                let pct = 100.0 * busy.as_secs_f64() / (workers as f64 * fanout_wall.as_secs_f64());
                opts.metrics
                    .gauge(metric_names::COMPILER_PARALLEL_UTILIZATION_PCT, &[])
                    .set(pct.clamp(0.0, 100.0) as i64);
            }
        } else {
            let search_us = opts.metrics.is_wall().then(|| {
                opts.metrics
                    .histogram(metric_names::COMPILER_OP_SEARCH_US, &[("mode", "seq")])
            });
            for &u in &pending {
                let (op, out_dtype) = (uniques[u].op, uniques[u].out_dtype);
                let dtypes = uniques[u].dtypes.clone();
                let st = Instant::now();
                let r = self.search_with_fallback(op, &dtypes, out_dtype, &base_cfg)?;
                if let Some(h) = &search_us {
                    h.observe(st.elapsed().as_micros() as u64);
                }
                uniques[u].result = Some(r);
            }
        }

        // Fresh, complete frontiers feed the persistent cache. Truncated
        // frontiers (deadline-cut or enumeration-capped) are never recorded:
        // they are an artifact of this run's budget, not reusable knowledge.
        if let Some(cache) = &opts.cache {
            for u in &uniques {
                if u.from_disk {
                    continue;
                }
                if let Some((pareto, search_stats)) = &u.result {
                    if !search_stats.truncated && !pareto.is_empty() {
                        let configs: Vec<_> = pareto
                            .plans()
                            .iter()
                            .map(|sp| sp.plan.config.clone())
                            .collect();
                        cache.record(&u.key, &encode_frontier(&configs, search_stats));
                        cache_stats.recorded += 1;
                        // Record the family-level entry alongside: derive
                        // the parametric certificate (validity region
                        // widened from this shape while the most frugal
                        // configuration still fits) and store it with the
                        // same frontier under the shape-erased key. Same-
                        // family operators with different shapes share one
                        // key, and no single box region can be proven
                        // around widely separated shapes, so the entry is
                        // a *union of boxes*: a valid box that already
                        // covers this shape keeps the entry untouched,
                        // otherwise a box widened around this shape is
                        // appended (bounded by `MAX_FAMILY_BOXES`).
                        let capacity = self.effective_capacity(&base_cfg) as u64;
                        let mut boxes = cache
                            .lookup(&u.family_key)
                            .and_then(|p| crate::symbolic::decode_family_entries(&p))
                            .unwrap_or_default();
                        let covered_already = boxes.iter().any(|(old, old_configs, _)| {
                            crate::symbolic::validate_cert(
                                old,
                                u.op,
                                &u.dtypes,
                                u.out_dtype,
                                old_configs,
                                capacity,
                            )
                            .is_ok()
                                && crate::symbolic::check_coverage(old, u.op).is_ok()
                        });
                        if covered_already || boxes.len() >= crate::symbolic::MAX_FAMILY_BOXES {
                            // Nothing to do: a standing box already proves
                            // this shape, or the union is at capacity.
                        } else if let Ok(cert) = crate::symbolic::derive_cert(
                            u.op,
                            &u.dtypes,
                            u.out_dtype,
                            &configs,
                            capacity,
                        ) {
                            boxes.push((cert, configs.clone(), search_stats.clone()));
                            cache.record(
                                &u.family_key,
                                &crate::symbolic::encode_family_entries(&boxes),
                            );
                            cache_stats.family_recorded += 1;
                        }
                    }
                }
            }
            if trace.enabled() {
                trace.meta("process_name", PID_STORE, 0, "t10 plan store (trace time)");
                trace.counter(
                    "plan_cache",
                    "store",
                    PID_STORE,
                    0,
                    trace.now_us(),
                    vec![
                        ("hits", Value::U64(cache_stats.disk_hits as u64)),
                        ("misses", Value::U64(cache_stats.disk_misses as u64)),
                        ("stale", Value::U64(cache_stats.stale_entries as u64)),
                        ("recorded", Value::U64(cache_stats.recorded as u64)),
                    ],
                );
            }
        }

        // Stitch in node order: emit trace events deterministically and run
        // the empty-frontier (deadline vs infeasible) checks exactly as the
        // sequential compiler did.
        let mut node_pareto = Vec::with_capacity(nodes.len());
        let mut node_stats = Vec::with_capacity(nodes.len());
        let mut node_from_disk = vec![false; nodes.len()];
        // Resolution-source counters land here, in node order, so they are
        // deterministic under any registry clock.
        let ops_total = |source: &str| {
            opts.metrics
                .counter(metric_names::COMPILER_OPS_TOTAL, &[("source", source)])
        };
        for (i, node) in nodes.iter().enumerate() {
            let (pareto, stats, memo, from_disk) = match &resolved[i] {
                Resolved::Warm(warm) => {
                    ops_total("warm").inc();
                    if trace.enabled() {
                        let ts = trace.now_us();
                        trace.span(
                            format!("search:{}", node.name),
                            "compiler",
                            PID_COMPILER,
                            i as u32,
                            ts,
                            0.0,
                            vec![
                                ("warm", Value::Bool(true)),
                                ("kept", Value::U64(warm.len() as u64)),
                            ],
                        );
                        emit_pareto_snapshot(trace, i, &node.name, warm);
                    }
                    node_pareto.push(warm.clone());
                    node_stats.push(SearchStats::default());
                    continue;
                }
                Resolved::Keyed { unique, memo } => {
                    let u = &uniques[*unique];
                    let (pareto, stats) = u.result.as_ref().ok_or_else(|| {
                        CompileError::internal("operator search slot left unresolved")
                    })?;
                    (pareto, stats, *memo, u.from_disk)
                }
            };
            // A memo node shared another node's search; the unique's own
            // provenance (disk vs fresh search) is counted once, on the
            // node that owns it.
            ops_total(if memo {
                "memo"
            } else if from_disk {
                "disk"
            } else {
                "searched"
            })
            .inc();
            if trace.enabled() {
                let search_start = trace.now_us();
                let end = trace.now_us();
                let mut args = vec![
                    ("enumerated", Value::U64(stats.complete_space as u64)),
                    ("filtered", Value::U64(stats.filtered_space as u64)),
                    ("kept", Value::U64(pareto.len() as u64)),
                    ("truncated", Value::Bool(stats.truncated)),
                    ("cached", Value::Bool(memo)),
                ];
                if opts.cache.is_some() {
                    args.push(("disk", Value::Bool(from_disk)));
                }
                trace.span(
                    format!("search:{}", node.name),
                    "compiler",
                    PID_COMPILER,
                    i as u32,
                    search_start,
                    end - search_start,
                    args,
                );
                emit_pareto_snapshot(trace, i, &node.name, pareto);
            }
            if pareto.is_empty() {
                // With an expired deadline, infeasibility was never
                // established — the search was cut short.
                if let Some(budget) = opts.deadline {
                    if t0.elapsed() >= budget {
                        return Err(CompileError::deadline(
                            budget.as_millis() as u64,
                            format!(
                                "operator {} still unplanned when the budget expired",
                                node.name
                            ),
                        ));
                    }
                }
                return Err(compile_err!(
                    "operator {} has no feasible execution plan (does not fit on chip)",
                    node.name
                ));
            }
            node_from_disk[i] = from_disk;
            node_pareto.push(pareto.clone());
            node_stats.push(stats.clone());
        }

        // Inter-operator reconciliation.
        let build_ops = |node_pareto: &[ParetoSet]| -> Vec<OpForSchedule> {
            graph
                .nodes()
                .iter()
                .zip(node_pareto)
                .map(|(node, pareto)| {
                    let weight_slots: Vec<bool> = node
                        .op
                        .inputs
                        .iter()
                        .map(|&v| graph.value(v).kind == ValueKind::Weight)
                        .collect();
                    let weight_total: usize = node
                        .op
                        .inputs
                        .iter()
                        .zip(&weight_slots)
                        .filter(|(_, &w)| w)
                        .map(|(&v, _)| graph.value(v).bytes())
                        .sum();
                    OpForSchedule {
                        name: node.name.clone(),
                        pareto: pareto.clone(),
                        weight_slots,
                        sharded_idle_bytes: weight_total.div_ceil(self.spec.num_cores),
                    }
                })
                .collect()
        };
        let mut ops = build_ops(&node_pareto);
        let capacity = self.effective_capacity(&base_cfg);
        let reconciled = match reconcile_traced(&ops, &self.cost, capacity, trace) {
            Ok(r) => r,
            Err(oom @ CompileError::OutOfMemory { .. }) => {
                // Reconciliation walks each operator's Pareto frontier from
                // fastest toward smallest, so this failure means even the
                // frontier's smallest plans don't coexist. Re-search every
                // operator with the emergency configuration (parallelism
                // and padding constraints dropped), which admits
                // smaller-footprint plans the constrained search filtered
                // out, and reconcile once more.
                let mut em = SearchConfig::emergency();
                em.mem_cap_override = base_cfg.mem_cap_override;
                let mut cache: HashMap<String, (ParetoSet, SearchStats)> = HashMap::new();
                let mut retry_pareto = Vec::with_capacity(graph.nodes().len());
                let mut retry_stats = Vec::with_capacity(graph.nodes().len());
                for (i, node) in graph.nodes().iter().enumerate() {
                    let (dtypes, out_dtype) = node_dtypes(graph, &node.op);
                    let key = op_cache_key(
                        &node.op,
                        &dtypes,
                        out_dtype,
                        &self.spec,
                        opts.faults.as_ref(),
                        &em,
                    );
                    let search_start = trace.now_us();
                    let cached = cache.contains_key(&key);
                    let entry = match cache.get(&key) {
                        Some(hit) => hit.clone(),
                        None => {
                            let r = search_operator(&node.op, &dtypes, out_dtype, &self.cost, &em)?;
                            cache.insert(key, r.clone());
                            r
                        }
                    };
                    if trace.enabled() {
                        let end = trace.now_us();
                        trace.span(
                            format!("search:{}", node.name),
                            "compiler",
                            PID_COMPILER,
                            i as u32,
                            search_start,
                            end - search_start,
                            vec![
                                ("enumerated", Value::U64(entry.1.complete_space as u64)),
                                ("filtered", Value::U64(entry.1.filtered_space as u64)),
                                ("kept", Value::U64(entry.0.len() as u64)),
                                ("truncated", Value::Bool(entry.1.truncated)),
                                ("cached", Value::Bool(cached)),
                                ("emergency", Value::Bool(true)),
                            ],
                        );
                        emit_pareto_snapshot(trace, i, &node.name, &entry.0);
                    }
                    if entry.0.is_empty() {
                        return Err(oom);
                    }
                    retry_pareto.push(entry.0);
                    retry_stats.push(entry.1);
                }
                node_pareto = retry_pareto;
                node_stats = retry_stats;
                // The emergency frontiers are freshly searched; no node's
                // plans originate from the persistent cache any more.
                node_from_disk = vec![false; nodes.len()];
                ops = build_ops(&node_pareto);
                reconcile_traced(&ops, &self.cost, capacity, trace)?
            }
            Err(e) => return Err(e),
        };

        // Assemble the timing program. Latency follows the paper's
        // methodology: the model is resident on chip and host I/O is
        // excluded (inputs are warm; §6.1 measures on-chip execution).
        let mut program = Program::new();
        let last = graph.nodes().len().saturating_sub(1);
        let mut transition_at: Vec<Option<(usize, bool)>> = vec![None; graph.nodes().len()];
        for (i, node) in graph.nodes().iter().enumerate() {
            let choice = &reconciled.choices[i];
            let active = &node_pareto[i].plans()[choice.active];
            if choice.setup_time > 0.0 {
                let need = weight_bytes_per_core(&active.plan, &ops[i].weight_slots) as u64;
                program.steps.push(setup_step(
                    &self.spec,
                    Some(i),
                    need,
                    active.plan.cores_used,
                ));
            }
            program
                .steps
                .extend(lower_timing(&node.op, &active.plan, &self.spec, Some(i)));
            if i != last {
                // The inter-operator layout transition (§5) piggybacks on
                // the node's final superstep when that step has no exchange
                // of its own — the all-to-all rides the same BSP sync.
                let t = transition_step(
                    active.plan.out.partition_bytes,
                    active.plan.cores_used,
                    Some(i),
                );
                match program.steps.last_mut() {
                    Some(lastss) if lastss.exchange_summary.is_none() => {
                        lastss.exchange_summary = t.exchange_summary;
                        transition_at[i] = Some((program.steps.len() - 1, true));
                    }
                    _ => {
                        program.steps.push(t);
                        transition_at[i] = Some((program.steps.len() - 1, false));
                    }
                }
            }
        }
        let (graph_edges, boundaries) =
            crate::contracts::derive(graph, &node_pareto, &reconciled, &ops, &transition_at);
        // Mandatory static post-pass (pure analysis, no simulation): prove
        // the assembled program and every chosen plan before handing the
        // compile out. A violation here is a compiler bug or a corrupted
        // warm-start, and must surface as a typed error rather than a
        // mid-run OOM or deadlock.
        let mut verifier = t10_verify::Verifier::new(&self.spec).with_trace(opts.trace.clone());
        if let Some(faults) = &opts.faults {
            verifier = verifier.with_faults(faults);
        }
        let mut report = verifier.verify_program(&program);
        for (i, node) in graph.nodes().iter().enumerate() {
            let choice = &reconciled.choices[i];
            let active = &node_pareto[i].plans()[choice.active];
            report.merge(
                crate::verify::verify_plan(&node.op, &active.plan, capacity, self.spec.num_cores)
                    .tag_node(i),
            );
        }
        crate::verify::require(report)?;
        // Graph-level post-pass: prove every boundary contract against the
        // assembled program — layout handoff, byte conservation, residency
        // during the transition window, dataflow coverage. FUSE lints are
        // advisory and recorded as metrics only; they never gate a compile.
        let analysis = t10_verify::graph::check(&verifier, &program, &graph_edges, &boundaries);
        opts.metrics
            .counter(metric_names::VERIFY_GRAPH_EDGES_TOTAL, &[])
            .add(analysis.edges_checked as u64);
        opts.metrics
            .counter(metric_names::VERIFY_FUSE_CANDIDATES_TOTAL, &[])
            .add(analysis.candidates.len() as u64);
        opts.metrics
            .counter(metric_names::VERIFY_FUSE_BYTES_SAVED_TOTAL, &[])
            .add(analysis.bytes_saved());
        crate::verify::require(analysis.report)?;
        // Semantic post-pass: translation-validate chosen plans. Opt-in for
        // freshly searched plans (`opts.prove`), but *mandatory* for any
        // node whose frontier came out of the persistent cache — a cache
        // hit must carry the full verify+prove certificate before it is
        // served, so a poisoned or stale store can never ship an
        // uncertified program. Refutations surface as the same typed
        // verification error the structural pass uses.
        if opts.prove || node_from_disk.iter().any(|&b| b) {
            let mut prove_report = t10_verify::Report::new();
            prove_report.stats.rules_checked = t10_verify::RuleId::SEMANTIC.len();
            for (i, node) in graph.nodes().iter().enumerate() {
                if !opts.prove && !node_from_disk[i] {
                    continue;
                }
                let choice = &reconciled.choices[i];
                let active = &node_pareto[i].plans()[choice.active];
                match crate::semantics::prove_plan(&node.op, &active.plan, &opts.trace) {
                    crate::semantics::ProveOutcome::Checked(p) => {
                        prove_report.merge(p.report.tag_node(i));
                    }
                    crate::semantics::ProveOutcome::Skipped { .. } => {}
                }
            }
            crate::verify::require(prove_report)?;
        }
        if trace.enabled() {
            let end = trace.now_us();
            trace.span(
                "compile_graph".to_string(),
                "compiler",
                PID_COMPILER,
                CHIP_TID,
                compile_start,
                end - compile_start,
                vec![
                    ("nodes", Value::U64(graph.nodes().len() as u64)),
                    ("estimated_us", Value::F64(reconciled.total_time * 1e6)),
                    ("idle_mem", Value::U64(reconciled.idle_mem as u64)),
                    (
                        "reconcile_rounds",
                        Value::U64(reconciled.trajectory.len() as u64),
                    ),
                ],
            );
        }
        Ok(CompiledGraph {
            program,
            estimated_time: reconciled.total_time,
            reconciled,
            node_pareto,
            node_stats,
            compile_seconds: t0.elapsed().as_secs_f64(),
            cache_stats,
            graph_edges,
            boundaries,
        })
    }

    /// Rebuilds a cached frontier payload into scored plans on this chip.
    ///
    /// Every configuration is re-built and re-costed exactly as the search
    /// scores it, and the search's admission filters (padding threshold,
    /// memory cap, step bound) re-apply — so a rebuilt frontier is
    /// bit-identical to what a fresh search would keep for the same
    /// configurations. `None` (the entry is stale) when the payload does
    /// not decode, any configuration no longer builds or passes the
    /// filters, or the frontier comes out empty.
    fn rebuild_frontier(
        &self,
        payload: &str,
        op: &Operator,
        dtypes: &[usize],
        out_dtype: usize,
        cfg: &SearchConfig,
    ) -> Option<(ParetoSet, SearchStats)> {
        let (configs, mut stats) = decode_frontier(payload)?;
        if configs.is_empty() {
            return None;
        }
        let mem_cap = self.effective_capacity(cfg);
        let mut pareto = ParetoSet::default();
        for config in configs {
            let plan = Plan::build(op, dtypes, out_dtype, config).ok()?;
            if plan.padding_efficiency < cfg.padding_threshold
                || plan.mem_per_core > mem_cap
                || plan.total_steps > 1 << 20
            {
                return None;
            }
            let cost = self.cost.estimate_plan(op, &plan);
            let setup_time = self.cost.estimate_setup(&plan);
            pareto.insert(ScoredPlan {
                plan,
                cost,
                setup_time,
            });
        }
        stats.optimized_space = pareto.len();
        Some((pareto, stats))
    }

    /// Instantiates a family-level cache entry at this operator's concrete
    /// shape, or `None` when the entry cannot safely serve it.
    ///
    /// The gate has three stages, in order:
    ///
    /// 1. **certificate validation** — decode, family digest (SYM06),
    ///    region well-formedness and dimension names (SYM03), re-derived
    ///    upper-corner high-water (SYM02), residual completeness (SYM04);
    /// 2. **coverage** — the concrete shape must lie inside the validity
    ///    region (SYM05);
    /// 3. **residual re-check** — every configuration is re-built and
    ///    re-admitted at the new extents. Unlike [`Self::rebuild_frontier`],
    ///    a configuration the new shape refuses (a divisibility residual:
    ///    `f_t ∤ extent`, `rp ∤ tile`) drops out *individually* — fixed
    ///    factors rarely divide every shape in a region — and only an empty
    ///    surviving frontier rejects the entry.
    ///
    /// Anything served from here still carries `from_disk = true`, so the
    /// mandatory structural verify and semantic prove re-certification run
    /// before the compile is handed out (belt and suspenders).
    fn family_warm(
        &self,
        payload: &str,
        op: &Operator,
        dtypes: &[usize],
        out_dtype: usize,
        cfg: &SearchConfig,
    ) -> Option<(ParetoSet, SearchStats)> {
        let boxes = crate::symbolic::decode_family_entries(payload)?;
        let mem_cap = self.effective_capacity(cfg);
        // The entry is a union of boxes; the first box whose certificate
        // validates, whose region covers this shape, and whose frontier
        // survives the residual re-check at the new extents serves it.
        for (cert, configs, mut stats) in boxes {
            if !crate::symbolic::validate_cert(
                &cert,
                op,
                dtypes,
                out_dtype,
                &configs,
                mem_cap as u64,
            )
            .is_ok()
            {
                continue;
            }
            if !crate::symbolic::check_coverage(&cert, op).is_ok() {
                continue;
            }
            let mut pareto = ParetoSet::default();
            for config in configs {
                let Ok(plan) = Plan::build(op, dtypes, out_dtype, config) else {
                    continue;
                };
                if plan.padding_efficiency < cfg.padding_threshold
                    || plan.mem_per_core > mem_cap
                    || plan.total_steps > 1 << 20
                {
                    continue;
                }
                let cost = self.cost.estimate_plan(op, &plan);
                let setup_time = self.cost.estimate_setup(&plan);
                pareto.insert(ScoredPlan {
                    plan,
                    cost,
                    setup_time,
                });
            }
            if pareto.is_empty() {
                continue;
            }
            stats.optimized_space = pareto.len();
            return Some((pareto, stats));
        }
        None
    }
}

/// Emits a `pareto` frontier snapshot for one operator onto the compiler
/// track: frontier size, the fastest plan's predicted time, and the smallest
/// per-core footprint. A sequence of these instants reconstructs how the
/// frontier evolved across the graph (and across the emergency re-search).
fn emit_pareto_snapshot(trace: &Trace, node: usize, name: &str, pareto: &ParetoSet) {
    let best_exec = pareto
        .plans()
        .iter()
        .map(|p| p.cost.exec_time)
        .fold(f64::INFINITY, f64::min);
    let min_mem = pareto
        .plans()
        .iter()
        .map(|p| p.cost.mem_per_core)
        .min()
        .unwrap_or(0);
    trace.instant(
        "pareto".to_string(),
        "compiler",
        PID_COMPILER,
        node as u32,
        trace.now_us(),
        vec![
            ("node", Value::Str(name.to_string())),
            ("size", Value::U64(pareto.len() as u64)),
            (
                "best_exec_us",
                Value::F64(if best_exec.is_finite() {
                    best_exec * 1e6
                } else {
                    0.0
                }),
            ),
            ("min_mem", Value::U64(min_mem as u64)),
        ],
    );
}

/// Pairs each operator's predicted time (cost model: active-plan execution +
/// idle-to-active setup) with its simulated time from a [`RunReport`] — the
/// data behind the paper's Figure 15 accuracy study. Nodes the report never
/// attributed time to (e.g. elided by plan degradation) are skipped.
pub fn accuracy_samples(
    graph: &Graph,
    compiled: &CompiledGraph,
    report: &RunReport,
) -> Vec<t10_trace::AccuracySample> {
    graph
        .nodes()
        .iter()
        .enumerate()
        .filter_map(|(i, node)| {
            let choice = compiled.reconciled.choices.get(i)?;
            let sim = report.per_node.get(&i)?;
            Some(t10_trace::AccuracySample {
                name: node.name.clone(),
                predicted_us: (choice.exec_time + choice.setup_time) * 1e6,
                simulated_us: (sim.compute + sim.exchange + sim.setup) * 1e6,
            })
        })
        .collect()
}

/// Records the predicted-vs-simulated pair of every operator as `op_time`
/// instants (category `accuracy`) on the simulator's aggregate track, so a
/// trace file carries everything `t10 trace` needs to print the aggregate
/// MAPE / Spearman figures. No-op when the trace is disabled.
pub fn emit_accuracy_events(
    trace: &Trace,
    graph: &Graph,
    compiled: &CompiledGraph,
    report: &RunReport,
) {
    if !trace.enabled() {
        return;
    }
    for s in accuracy_samples(graph, compiled, report) {
        trace.instant(
            "op_time".to_string(),
            "accuracy",
            PID_SIM,
            CHIP_TID,
            report.total_time * 1e6,
            vec![
                ("node", Value::Str(s.name)),
                ("predicted_us", Value::F64(s.predicted_us)),
                ("simulated_us", Value::F64(s.simulated_us)),
            ],
        );
    }
}

/// Element sizes of an operator's inputs and output, from the graph.
pub fn node_dtypes(graph: &Graph, op: &Operator) -> (Vec<usize>, usize) {
    let dtypes = op
        .inputs
        .iter()
        .map(|&v| graph.value(v).dtype.bytes())
        .collect();
    let out = graph.value(op.output).dtype.bytes();
    (dtypes, out)
}

/// The cache key for one operator search — in-process memo and persistent
/// store share it, so the two layers can never disagree about entry
/// identity. Beyond the operator signature it digests the [`ChipSpec`], the
/// fault state, and the search configuration (the ROADMAP-specified key):
/// an entry computed for a healthy chip is unreachable from a degraded one,
/// and a relaxed search's frontier can never answer a strict query.
fn op_cache_key(
    op: &Operator,
    dtypes: &[usize],
    out_dtype: usize,
    spec: &ChipSpec,
    faults: Option<&FaultPlan>,
    cfg: &SearchConfig,
) -> String {
    plan_cache_key(op, dtypes, out_dtype, spec, faults, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_device::program::Phase;
    use t10_ir::{builders, DType};

    fn two_layer_graph(m: usize, k: usize, n: usize) -> Graph {
        let mut g = Graph::new("mlp");
        let a = g.add_value("a", vec![m, k], DType::F16, ValueKind::Input);
        let w1 = g.add_value("w1", vec![k, n], DType::F16, ValueKind::Weight);
        let h = g.add_value("h", vec![m, n], DType::F16, ValueKind::Activation);
        let w2 = g.add_value("w2", vec![n, n], DType::F16, ValueKind::Weight);
        let o = g.add_value("o", vec![m, n], DType::F16, ValueKind::Output);
        g.add_node("fc1", builders::matmul(a, w1, h, m, k, n).unwrap())
            .unwrap();
        g.add_node("fc2", builders::matmul(h, w2, o, m, n, n).unwrap())
            .unwrap();
        g
    }

    #[test]
    fn compile_graph_produces_program() {
        let g = two_layer_graph(64, 64, 64);
        let c = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());
        let out = c.compile_graph(&g).unwrap();
        assert_eq!(out.node_pareto.len(), 2);
        assert!(out.estimated_time > 0.0);
        assert!(out.compile_seconds > 0.0);
        // The program has execute steps for both nodes; the inter-operator
        // transition is either its own step or merged into node 0's final
        // superstep as an exchange.
        let has_transition = out.program.steps.iter().any(|s| {
            s.phase == Phase::Transition
                || (s.node == Some(0)
                    && s.exchange_summary
                        .map(|e| e.total_bytes > 0)
                        .unwrap_or(false))
        });
        assert!(has_transition);
        let exec0 = out
            .program
            .steps
            .iter()
            .any(|s| s.phase == Phase::Execute && s.node == Some(0));
        let exec1 = out
            .program
            .steps
            .iter()
            .any(|s| s.phase == Phase::Execute && s.node == Some(1));
        assert!(exec0 && exec1);
    }

    #[test]
    fn identical_operators_share_search() {
        // fc2 in a square graph reuses fc1's search when shapes match.
        let mut g = Graph::new("twin");
        let a = g.add_value("a", vec![64, 64], DType::F16, ValueKind::Input);
        let w1 = g.add_value("w1", vec![64, 64], DType::F16, ValueKind::Weight);
        let h = g.add_value("h", vec![64, 64], DType::F16, ValueKind::Activation);
        let w2 = g.add_value("w2", vec![64, 64], DType::F16, ValueKind::Weight);
        let o = g.add_value("o", vec![64, 64], DType::F16, ValueKind::Output);
        g.add_node("fc1", builders::matmul(a, w1, h, 64, 64, 64).unwrap())
            .unwrap();
        g.add_node("fc2", builders::matmul(h, w2, o, 64, 64, 64).unwrap())
            .unwrap();
        let c = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());
        let out = c.compile_graph(&g).unwrap();
        assert_eq!(out.node_pareto[0], out.node_pareto[1]);
    }

    #[test]
    fn program_runs_on_timing_simulator() {
        let g = two_layer_graph(64, 64, 64);
        let c = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());
        let out = c.compile_graph(&g).unwrap();
        let mut sim =
            t10_sim::Simulator::new(ChipSpec::ipu_with_cores(16), t10_sim::SimulatorMode::Timing);
        let report = sim.run(&out.program).unwrap();
        assert!(report.total_time > 0.0);
        assert!(report.per_node.contains_key(&0));
        assert!(report.per_node.contains_key(&1));
    }

    #[test]
    fn traced_compile_emits_search_and_accuracy_events() {
        let g = two_layer_graph(64, 64, 64);
        let c = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());

        let compile_once = || {
            let trace = Trace::logical();
            let opts = CompileOptions {
                trace: trace.clone(),
                ..CompileOptions::default()
            };
            let out = c.compile_graph_with(&g, &opts).unwrap();
            (trace, out)
        };
        let (trace, out) = compile_once();
        let events = trace.snapshot();

        // One search span per node, each with an evolved frontier snapshot.
        let searches: Vec<_> = events
            .iter()
            .filter(|e| e.name.starts_with("search:"))
            .collect();
        assert_eq!(searches.len(), 2);
        assert!(searches[0].arg_f64("enumerated").unwrap() >= 1.0);
        let cached = searches[1]
            .args
            .iter()
            .find(|(k, _)| *k == "cached")
            .map(|(_, v)| v.clone());
        assert_eq!(cached, Some(t10_trace::Value::Bool(true))); // fc2 hits cache
        let paretos: Vec<_> = events.iter().filter(|e| e.name == "pareto").collect();
        assert_eq!(paretos.len(), 2);
        assert!(paretos[0].arg_f64("size").unwrap() >= 1.0);

        // Reconciler rounds carry monotone scores; the compile span wraps it.
        assert!(events.iter().any(|e| e.name == "reconcile_round"));
        let compile_span = events
            .iter()
            .find(|e| e.name == "compile_graph")
            .expect("compile span");
        assert_eq!(
            compile_span.arg_f64("reconcile_rounds").unwrap() as usize,
            out.reconciled.trajectory.len()
        );

        // Accuracy pairing: every node has a sample, both times positive.
        let mut sim =
            t10_sim::Simulator::new(ChipSpec::ipu_with_cores(16), t10_sim::SimulatorMode::Timing);
        let report = sim.run(&out.program).unwrap();
        let samples = accuracy_samples(&g, &out, &report);
        assert_eq!(samples.len(), 2);
        assert!(samples.iter().all(|s| s.predicted_us > 0.0));
        assert!(samples.iter().all(|s| s.simulated_us > 0.0));
        emit_accuracy_events(&trace, &g, &out, &report);
        let acc = trace
            .snapshot()
            .iter()
            .filter(|e| e.cat == "accuracy")
            .count();
        assert_eq!(acc, 2);

        // Logical-clock compiles are deterministic: two identical compiles
        // serialize to byte-identical Chrome traces.
        let (trace2, _) = compile_once();
        assert_eq!(
            t10_trace::write_chrome_trace(&events),
            t10_trace::write_chrome_trace(&trace2.snapshot())
        );
    }

    #[test]
    fn cache_key_separates_healthy_and_degraded_chips() {
        // Regression for the latent in-process bug: before the key carried
        // a ChipSpec + fault digest, a compile for a degraded chip could
        // hit an entry searched for the healthy chip (same operator bytes,
        // different capacity), silently reusing an over-budget frontier.
        let op = builders::matmul(0, 1, 2, 64, 64, 64).unwrap();
        let spec = ChipSpec::ipu_with_cores(16);
        let cfg = SearchConfig::fast();
        let healthy = op_cache_key(&op, &[2, 2], 2, &spec, None, &cfg);
        let degraded_plan = FaultPlan::new(16).shrink_sram(3, 0.5);
        let degraded = op_cache_key(&op, &[2, 2], 2, &spec, Some(&degraded_plan), &cfg);
        assert_ne!(healthy, degraded);

        // Different chips and different search configs also re-key.
        let other_spec = ChipSpec::ipu_with_cores(32);
        assert_ne!(
            healthy,
            op_cache_key(&op, &[2, 2], 2, &other_spec, None, &cfg)
        );
        assert_ne!(
            healthy,
            op_cache_key(&op, &[2, 2], 2, &spec, None, &SearchConfig::emergency())
        );
        // And an explicitly healthy fault plan shares the healthy key.
        assert_eq!(
            healthy,
            op_cache_key(&op, &[2, 2], 2, &spec, Some(&FaultPlan::new(16)), &cfg)
        );
    }

    /// In-memory [`PlanCache`] used by the tests below; the crash-safe disk
    /// backend lives in `t10-store`.
    #[derive(Default)]
    struct MemCache {
        entries: Mutex<HashMap<String, String>>,
        hits: std::sync::atomic::AtomicUsize,
    }

    impl PlanCache for MemCache {
        fn lookup(&self, key: &str) -> Option<String> {
            let hit = self.entries.lock().unwrap().get(key).cloned();
            if hit.is_some() {
                self.hits.fetch_add(1, Ordering::Relaxed);
            }
            hit
        }
        fn record(&self, key: &str, payload: &str) {
            self.entries
                .lock()
                .unwrap()
                .insert(key.to_string(), payload.to_string());
        }
    }

    #[test]
    fn warm_cache_compile_is_byte_identical_to_cold() {
        let g = two_layer_graph(64, 64, 64);
        let c = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());
        let cache = Arc::new(MemCache::default());

        let compile = |use_cache: bool| {
            let opts = CompileOptions {
                cache: use_cache.then(|| cache.clone() as Arc<dyn PlanCache>),
                ..CompileOptions::default()
            };
            c.compile_graph_with(&g, &opts).unwrap()
        };

        let cold = compile(true);
        assert_eq!(cold.cache_stats.disk_hits, 0);
        assert!(cold.cache_stats.recorded > 0);

        let warm = compile(true);
        assert!(warm.cache_stats.disk_hits > 0);
        assert_eq!(warm.cache_stats.recorded, 0);
        assert!(cache.hits.load(Ordering::Relaxed) > 0);

        // Everything the compile produces — program, frontiers, schedule,
        // stats — is byte-identical between the populated-cache compile and
        // the cold one (only wall-clock compile_seconds may differ).
        assert_eq!(format!("{:?}", warm.program), format!("{:?}", cold.program));
        assert_eq!(warm.node_pareto, cold.node_pareto);
        assert_eq!(warm.node_stats, cold.node_stats);
        assert_eq!(
            format!("{:?}", warm.reconciled),
            format!("{:?}", cold.reconciled)
        );

        // A cacheless compile agrees too (the cache changes nothing).
        let plain = compile(false);
        assert_eq!(
            format!("{:?}", plain.program),
            format!("{:?}", cold.program)
        );
    }

    #[test]
    fn corrupt_cache_entries_fall_through_to_recompile() {
        let g = two_layer_graph(64, 64, 64);
        let c = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());
        let cache = Arc::new(MemCache::default());
        let opts = CompileOptions::with_cache(cache.clone());
        let cold = c.compile_graph_with(&g, &opts).unwrap();

        // Poison every entry with undecodable bytes: the compile must
        // succeed identically via fresh searches, counting stale entries.
        let keys: Vec<String> = cache.entries.lock().unwrap().keys().cloned().collect();
        for k in &keys {
            cache.record(k, "t10-frontier v1\ngarbage");
        }
        let healed = c.compile_graph_with(&g, &opts).unwrap();
        assert_eq!(healed.cache_stats.disk_hits, 0);
        assert!(healed.cache_stats.stale_entries > 0);
        assert_eq!(
            format!("{:?}", healed.program),
            format!("{:?}", cold.program)
        );
    }

    #[test]
    fn parallel_op_search_matches_sequential() {
        // A graph with several distinct operators so the per-operator axis
        // actually fans out.
        let mut g = Graph::new("mixed");
        let a = g.add_value("a", vec![64, 48], DType::F16, ValueKind::Input);
        let w1 = g.add_value("w1", vec![48, 32], DType::F16, ValueKind::Weight);
        let h = g.add_value("h", vec![64, 32], DType::F16, ValueKind::Activation);
        let w2 = g.add_value("w2", vec![32, 64], DType::F16, ValueKind::Weight);
        let o = g.add_value("o", vec![64, 64], DType::F16, ValueKind::Output);
        g.add_node("fc1", builders::matmul(a, w1, h, 64, 48, 32).unwrap())
            .unwrap();
        g.add_node("fc2", builders::matmul(h, w2, o, 64, 32, 64).unwrap())
            .unwrap();
        let c = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());

        let compile = |threads: usize| {
            let trace = Trace::logical();
            let opts = CompileOptions {
                op_parallelism: threads,
                trace: trace.clone(),
                ..CompileOptions::default()
            };
            let out = c.compile_graph_with(&g, &opts).unwrap();
            (out, trace)
        };
        let (seq, seq_trace) = compile(1);
        let (par, par_trace) = compile(4);
        assert_eq!(format!("{:?}", par.program), format!("{:?}", seq.program));
        assert_eq!(par.node_pareto, seq.node_pareto);
        // Even the logical-clock traces agree: workers never touch the
        // trace clock, and all events are emitted in node order.
        assert_eq!(
            t10_trace::write_chrome_trace(&seq_trace.snapshot()),
            t10_trace::write_chrome_trace(&par_trace.snapshot())
        );
    }

    #[test]
    fn oversized_graph_is_rejected() {
        // A single enormous matmul cannot fit 16 tiny cores.
        let mut g = Graph::new("big");
        let m = 4096;
        let a = g.add_value("a", vec![m, m], DType::F16, ValueKind::Input);
        let w = g.add_value("w", vec![m, m], DType::F16, ValueKind::Weight);
        let o = g.add_value("o", vec![m, m], DType::F16, ValueKind::Output);
        g.add_node("fc", builders::matmul(a, w, o, m, m, m).unwrap())
            .unwrap();
        let mut spec = ChipSpec::ipu_with_cores(4);
        spec.sram_per_core = 64 * 1024;
        let c = Compiler::new(spec, SearchConfig::fast());
        assert!(c.compile_graph(&g).is_err());
    }
}
