//! End-to-end compilation of operator graphs (paper Figure 4).
//!
//! The pipeline: calibrate the cost model once per chip, run the
//! intra-operator Pareto search per distinct operator (identical operators
//! share cached results, §6.3), reconcile memory across operators
//! (Algorithm 1), and emit a device program of setup / execute / transition
//! supersteps that the simulator prices.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use t10_device::program::Program;
use t10_device::ChipSpec;
use t10_ir::{Graph, NodeId, Operator, ValueKind};
use t10_sim::{FaultPlan, RunReport};
use t10_trace::{Trace, Value, CHIP_TID, PID_COMPILER, PID_SIM};

use crate::cost::CostModel;
use crate::lower::{lower_timing, setup_step, transition_step};
use crate::reconcile::{reconcile_traced, weight_bytes_per_core, OpForSchedule, Reconciled};
use crate::search::{search_operator, ParetoSet, SearchConfig, SearchStats};
use crate::{compile_err, CompileError, Result};

/// Per-run compilation knobs, beyond the persistent [`SearchConfig`].
///
/// The defaults reproduce the unconstrained compile exactly: no deadline,
/// no faults, full nominal capacity.
#[derive(Debug, Clone, Default)]
pub struct CompileOptions {
    /// Wall-clock budget for the whole compile. The search becomes
    /// *anytime*: workers stop enumerating once the budget passes and the
    /// compiler returns the best plan found so far, falling back to a small
    /// emergency search if nothing was found in time.
    pub deadline: Option<Duration>,
    /// Fault plan the target chip is running under. SRAM faults lower the
    /// per-core capacity the compiler plans against (a uniform plan must
    /// fit the most constrained core); link and compute faults don't change
    /// plan feasibility, only simulated timing.
    pub faults: Option<FaultPlan>,
    /// Per-node Pareto frontiers from a previous compile of the same graph
    /// (index = node id). Plans that remain feasible on the current target
    /// are reused directly instead of searching from scratch — the fast
    /// path when recompiling mid-run for a degraded chip, where the graph
    /// is unchanged and only the capacity/core count moved.
    pub warm_start: Option<Vec<ParetoSet>>,
    /// Structured event sink. When enabled, every operator search emits a
    /// span (plans enumerated/filtered/kept), every frontier a `pareto`
    /// snapshot instant, and every reconciler round its score — all on the
    /// compiler's track in **trace time** ([`Trace::now_us`]): wall
    /// microseconds by default, or a deterministic logical counter when the
    /// handle came from [`Trace::logical`]. The threaded search workers
    /// themselves never touch the clock, so logical-clock traces stay
    /// byte-identical across same-seed runs.
    pub trace: Trace,
    /// Run translation validation as an extra post-pass: every chosen plan
    /// is lowered functionally and its compute-shift program symbolically
    /// interpreted (`t10-prove`) to certify it computes the operator —
    /// exactly-once coverage, rotation provenance, reduction flow. Plans
    /// the functional lowering cannot express (padded partitions) are
    /// skipped, not failed. Off by default: the structural post-pass is
    /// mandatory, the semantic one is opt-in (`t10 compile --prove`).
    pub prove: bool,
}

impl CompileOptions {
    /// Options with a compile deadline only.
    pub fn with_deadline(deadline: Duration) -> Self {
        Self {
            deadline: Some(deadline),
            ..Self::default()
        }
    }

    /// Options with a fault plan only.
    pub fn with_faults(faults: FaultPlan) -> Self {
        Self {
            faults: Some(faults),
            ..Self::default()
        }
    }
}

/// The T10 compiler for one chip configuration.
pub struct Compiler {
    spec: ChipSpec,
    cost: CostModel,
    cfg: SearchConfig,
}

/// A fully compiled model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CompiledGraph {
    /// Timing program covering every operator (off-chip input load, setup,
    /// execute, transition, off-chip output store).
    pub program: Program,
    /// The reconciled idle/active schedule.
    pub reconciled: Reconciled,
    /// Per-node Pareto sets (index = node id).
    pub node_pareto: Vec<ParetoSet>,
    /// Per-node search statistics.
    pub node_stats: Vec<SearchStats>,
    /// Cost-model estimate of end-to-end time (exec + setup), seconds.
    pub estimated_time: f64,
    /// Wall-clock compilation time, seconds (Figure 16/19).
    pub compile_seconds: f64,
}

impl Compiler {
    /// Creates a compiler, calibrating the cost model for `spec`.
    ///
    /// # Panics
    ///
    /// Panics if cost-model calibration fails, which would indicate a bug in
    /// the calibration sampling rather than a user error.
    pub fn new(spec: ChipSpec, cfg: SearchConfig) -> Self {
        let cost = CostModel::calibrate(&spec, 192, 7).expect("cost-model calibration");
        Self { spec, cost, cfg }
    }

    /// Creates a compiler reusing an existing cost model.
    pub fn with_cost_model(cost: CostModel, cfg: SearchConfig) -> Self {
        Self {
            spec: cost.spec().clone(),
            cost,
            cfg,
        }
    }

    /// The target chip.
    pub fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    /// The calibrated cost model.
    pub fn cost_model(&self) -> &CostModel {
        &self.cost
    }

    /// The search configuration.
    pub fn search_config(&self) -> &SearchConfig {
        &self.cfg
    }

    /// Runs the intra-operator search for one graph node.
    pub fn compile_node(&self, graph: &Graph, node: NodeId) -> Result<(ParetoSet, SearchStats)> {
        self.compile_node_with(graph, node, &CompileOptions::default())
    }

    /// Runs the intra-operator search for one graph node under per-run
    /// options, with the same fallback chain [`Compiler::compile_graph_with`]
    /// uses.
    pub fn compile_node_with(
        &self,
        graph: &Graph,
        node: NodeId,
        opts: &CompileOptions,
    ) -> Result<(ParetoSet, SearchStats)> {
        let base = self.base_config(opts, Instant::now())?;
        if let Some(warm) = self.warm_plans(opts, node, &base) {
            return Ok((warm, SearchStats::default()));
        }
        let op = &graph.node(node).op;
        let (dtypes, out_dtype) = node_dtypes(graph, op);
        self.search_with_fallback(op, &dtypes, out_dtype, &base)
    }

    /// The still-feasible subset of a warm-start frontier for `node`, or
    /// `None` when no warm plans survive (fall through to a full search).
    ///
    /// Feasibility on the new target is a per-plan filter: the plan must
    /// fit the (possibly shrunken) per-core capacity and not use more cores
    /// than survive. Link and compute faults don't invalidate plans — they
    /// only change timing — so after a pure link loss the entire previous
    /// frontier carries over.
    fn warm_plans(
        &self,
        opts: &CompileOptions,
        node: NodeId,
        cfg: &SearchConfig,
    ) -> Option<ParetoSet> {
        let frontier = opts.warm_start.as_ref()?.get(node)?;
        let capacity = self.effective_capacity(cfg);
        let mut kept = ParetoSet::default();
        for sp in frontier.plans() {
            if sp.cost.mem_per_core <= capacity && sp.plan.cores_used <= self.spec.num_cores {
                kept.insert(sp.clone());
            }
        }
        if kept.is_empty() {
            None
        } else {
            Some(kept)
        }
    }

    /// Compiles a whole graph into a timing program.
    pub fn compile_graph(&self, graph: &Graph) -> Result<CompiledGraph> {
        self.compile_graph_with(graph, &CompileOptions::default())
    }

    /// Resolves the search configuration for one run: the deadline becomes
    /// an absolute instant, and an injected SRAM fault lowers the per-core
    /// memory cap to the most constrained core's capacity.
    fn base_config(&self, opts: &CompileOptions, t0: Instant) -> Result<SearchConfig> {
        let mut cfg = self.cfg.clone();
        cfg.deadline = opts.deadline.map(|d| t0 + d);
        if let Some(faults) = &opts.faults {
            if faults.num_cores() != self.spec.num_cores {
                return Err(compile_err!(
                    "fault plan covers {} cores, chip has {}",
                    faults.num_cores(),
                    self.spec.num_cores
                ));
            }
            cfg.mem_cap_override =
                Some(faults.min_capacity(self.spec.sram_per_core, self.spec.shift_buffer));
        }
        Ok(cfg)
    }

    /// The per-core capacity the whole compile plans against.
    fn effective_capacity(&self, cfg: &SearchConfig) -> usize {
        cfg.mem_cap_override.unwrap_or_else(|| {
            self.spec
                .sram_per_core
                .saturating_sub(self.spec.shift_buffer)
        })
    }

    /// Searches one operator with graceful degradation: the configured
    /// search first, then progressively relaxed constraints, then a small
    /// unconstrained emergency pass.
    ///
    /// The parallelism and padding constraints are compile-time filters,
    /// not feasibility rules: when an operator's awkward factorization
    /// leaves the constrained window empty, relaxing them trades plan
    /// quality for a plan at all (the paper's constraints are
    /// user-configurable for exactly this trade-off, §5). The emergency
    /// rung runs without a deadline so an anytime compile still returns a
    /// valid plan whenever one exists in its reduced candidate set.
    fn search_with_fallback(
        &self,
        op: &Operator,
        dtypes: &[usize],
        out_dtype: usize,
        base: &SearchConfig,
    ) -> Result<(ParetoSet, SearchStats)> {
        let mut cfg = base.clone();
        let mut r = search_operator(op, dtypes, out_dtype, &self.cost, &cfg)?;
        while r.0.is_empty() && cfg.min_core_utilization > 0.05 {
            cfg.min_core_utilization /= 2.0;
            r = search_operator(op, dtypes, out_dtype, &self.cost, &cfg)?;
        }
        if r.0.is_empty() && cfg.padding_threshold > 0.5 {
            cfg.min_core_utilization = 0.0;
            cfg.padding_threshold = 0.5;
            r = search_operator(op, dtypes, out_dtype, &self.cost, &cfg)?;
        }
        if r.0.is_empty() {
            let mut em = SearchConfig::emergency();
            em.mem_cap_override = base.mem_cap_override;
            let mut rescue = search_operator(op, dtypes, out_dtype, &self.cost, &em)?;
            rescue.1.truncated |= r.1.truncated;
            r = rescue;
        }
        Ok(r)
    }

    /// Compiles a whole graph under per-run options: an optional wall-clock
    /// deadline (anytime compilation) and an optional fault plan (plans are
    /// fitted to the degraded chip's capacity).
    pub fn compile_graph_with(
        &self,
        graph: &Graph,
        opts: &CompileOptions,
    ) -> Result<CompiledGraph> {
        let t0 = Instant::now();
        let trace = &opts.trace;
        let compile_start = trace.now_us();
        if trace.enabled() {
            trace.meta("process_name", PID_COMPILER, 0, "t10 compiler (trace time)");
            trace.meta("thread_name", PID_COMPILER, CHIP_TID, "reconciler");
        }
        let base_cfg = self.base_config(opts, t0)?;
        // Intra-operator search, cached across identical operators.
        let mut cache: HashMap<String, (ParetoSet, SearchStats)> = HashMap::new();
        let mut node_pareto = Vec::with_capacity(graph.nodes().len());
        let mut node_stats = Vec::with_capacity(graph.nodes().len());
        for (i, node) in graph.nodes().iter().enumerate() {
            if let Some(warm) = self.warm_plans(opts, i, &base_cfg) {
                if trace.enabled() {
                    let ts = trace.now_us();
                    trace.span(
                        format!("search:{}", node.name),
                        "compiler",
                        PID_COMPILER,
                        i as u32,
                        ts,
                        0.0,
                        vec![
                            ("warm", Value::Bool(true)),
                            ("kept", Value::U64(warm.len() as u64)),
                        ],
                    );
                    emit_pareto_snapshot(trace, i, &node.name, &warm);
                }
                node_pareto.push(warm);
                node_stats.push(SearchStats::default());
                continue;
            }
            let (dtypes, out_dtype) = node_dtypes(graph, &node.op);
            let key = op_cache_key(&node.op, &dtypes, out_dtype);
            let search_start = trace.now_us();
            let cached = cache.contains_key(&key);
            let entry = match cache.get(&key) {
                Some(hit) => hit.clone(),
                None => {
                    let r = self.search_with_fallback(&node.op, &dtypes, out_dtype, &base_cfg)?;
                    cache.insert(key, r.clone());
                    r
                }
            };
            if trace.enabled() {
                let end = trace.now_us();
                trace.span(
                    format!("search:{}", node.name),
                    "compiler",
                    PID_COMPILER,
                    i as u32,
                    search_start,
                    end - search_start,
                    vec![
                        ("enumerated", Value::U64(entry.1.complete_space as u64)),
                        ("filtered", Value::U64(entry.1.filtered_space as u64)),
                        ("kept", Value::U64(entry.0.len() as u64)),
                        ("truncated", Value::Bool(entry.1.truncated)),
                        ("cached", Value::Bool(cached)),
                    ],
                );
                emit_pareto_snapshot(trace, i, &node.name, &entry.0);
            }
            if entry.0.is_empty() {
                // With an expired deadline, infeasibility was never
                // established — the search was cut short.
                if let Some(budget) = opts.deadline {
                    if t0.elapsed() >= budget {
                        return Err(CompileError::deadline(
                            budget.as_millis() as u64,
                            format!(
                                "operator {} still unplanned when the budget expired",
                                node.name
                            ),
                        ));
                    }
                }
                return Err(compile_err!(
                    "operator {} has no feasible execution plan (does not fit on chip)",
                    node.name
                ));
            }
            node_pareto.push(entry.0);
            node_stats.push(entry.1);
        }

        // Inter-operator reconciliation.
        let build_ops = |node_pareto: &[ParetoSet]| -> Vec<OpForSchedule> {
            graph
                .nodes()
                .iter()
                .zip(node_pareto)
                .map(|(node, pareto)| {
                    let weight_slots: Vec<bool> = node
                        .op
                        .inputs
                        .iter()
                        .map(|&v| graph.value(v).kind == ValueKind::Weight)
                        .collect();
                    let weight_total: usize = node
                        .op
                        .inputs
                        .iter()
                        .zip(&weight_slots)
                        .filter(|(_, &w)| w)
                        .map(|(&v, _)| graph.value(v).bytes())
                        .sum();
                    OpForSchedule {
                        name: node.name.clone(),
                        pareto: pareto.clone(),
                        weight_slots,
                        sharded_idle_bytes: weight_total.div_ceil(self.spec.num_cores),
                    }
                })
                .collect()
        };
        let mut ops = build_ops(&node_pareto);
        let capacity = self.effective_capacity(&base_cfg);
        let reconciled = match reconcile_traced(&ops, &self.cost, capacity, trace) {
            Ok(r) => r,
            Err(oom @ CompileError::OutOfMemory { .. }) => {
                // Reconciliation walks each operator's Pareto frontier from
                // fastest toward smallest, so this failure means even the
                // frontier's smallest plans don't coexist. Re-search every
                // operator with the emergency configuration (parallelism
                // and padding constraints dropped), which admits
                // smaller-footprint plans the constrained search filtered
                // out, and reconcile once more.
                let mut em = SearchConfig::emergency();
                em.mem_cap_override = base_cfg.mem_cap_override;
                let mut cache: HashMap<String, (ParetoSet, SearchStats)> = HashMap::new();
                let mut retry_pareto = Vec::with_capacity(graph.nodes().len());
                let mut retry_stats = Vec::with_capacity(graph.nodes().len());
                for (i, node) in graph.nodes().iter().enumerate() {
                    let (dtypes, out_dtype) = node_dtypes(graph, &node.op);
                    let key = op_cache_key(&node.op, &dtypes, out_dtype);
                    let search_start = trace.now_us();
                    let cached = cache.contains_key(&key);
                    let entry = match cache.get(&key) {
                        Some(hit) => hit.clone(),
                        None => {
                            let r = search_operator(&node.op, &dtypes, out_dtype, &self.cost, &em)?;
                            cache.insert(key, r.clone());
                            r
                        }
                    };
                    if trace.enabled() {
                        let end = trace.now_us();
                        trace.span(
                            format!("search:{}", node.name),
                            "compiler",
                            PID_COMPILER,
                            i as u32,
                            search_start,
                            end - search_start,
                            vec![
                                ("enumerated", Value::U64(entry.1.complete_space as u64)),
                                ("filtered", Value::U64(entry.1.filtered_space as u64)),
                                ("kept", Value::U64(entry.0.len() as u64)),
                                ("truncated", Value::Bool(entry.1.truncated)),
                                ("cached", Value::Bool(cached)),
                                ("emergency", Value::Bool(true)),
                            ],
                        );
                        emit_pareto_snapshot(trace, i, &node.name, &entry.0);
                    }
                    if entry.0.is_empty() {
                        return Err(oom);
                    }
                    retry_pareto.push(entry.0);
                    retry_stats.push(entry.1);
                }
                node_pareto = retry_pareto;
                node_stats = retry_stats;
                ops = build_ops(&node_pareto);
                reconcile_traced(&ops, &self.cost, capacity, trace)?
            }
            Err(e) => return Err(e),
        };

        // Assemble the timing program. Latency follows the paper's
        // methodology: the model is resident on chip and host I/O is
        // excluded (inputs are warm; §6.1 measures on-chip execution).
        let mut program = Program::new();
        let last = graph.nodes().len().saturating_sub(1);
        for (i, node) in graph.nodes().iter().enumerate() {
            let choice = &reconciled.choices[i];
            let active = &node_pareto[i].plans()[choice.active];
            if choice.setup_time > 0.0 {
                let need = weight_bytes_per_core(&active.plan, &ops[i].weight_slots) as u64;
                program.steps.push(setup_step(
                    &self.spec,
                    Some(i),
                    need,
                    active.plan.cores_used,
                ));
            }
            program
                .steps
                .extend(lower_timing(&node.op, &active.plan, &self.spec, Some(i)));
            if i != last {
                // The inter-operator layout transition (§5) piggybacks on
                // the node's final superstep when that step has no exchange
                // of its own — the all-to-all rides the same BSP sync.
                let t = transition_step(
                    active.plan.out.partition_bytes,
                    active.plan.cores_used,
                    Some(i),
                );
                match program.steps.last_mut() {
                    Some(lastss) if lastss.exchange_summary.is_none() => {
                        lastss.exchange_summary = t.exchange_summary;
                    }
                    _ => program.steps.push(t),
                }
            }
        }
        // Mandatory static post-pass (pure analysis, no simulation): prove
        // the assembled program and every chosen plan before handing the
        // compile out. A violation here is a compiler bug or a corrupted
        // warm-start, and must surface as a typed error rather than a
        // mid-run OOM or deadlock.
        let mut verifier = t10_verify::Verifier::new(&self.spec).with_trace(opts.trace.clone());
        if let Some(faults) = &opts.faults {
            verifier = verifier.with_faults(faults);
        }
        let mut report = verifier.verify_program(&program);
        for (i, node) in graph.nodes().iter().enumerate() {
            let choice = &reconciled.choices[i];
            let active = &node_pareto[i].plans()[choice.active];
            report.merge(
                crate::verify::verify_plan(&node.op, &active.plan, capacity, self.spec.num_cores)
                    .tag_node(i),
            );
        }
        crate::verify::require(report)?;
        // Opt-in semantic post-pass: translation-validate every chosen
        // plan. Refutations surface as the same typed verification error
        // the structural pass uses.
        if opts.prove {
            let mut prove_report = t10_verify::Report::new();
            prove_report.stats.rules_checked = t10_verify::RuleId::SEMANTIC.len();
            for (i, node) in graph.nodes().iter().enumerate() {
                let choice = &reconciled.choices[i];
                let active = &node_pareto[i].plans()[choice.active];
                match crate::semantics::prove_plan(&node.op, &active.plan, &opts.trace) {
                    crate::semantics::ProveOutcome::Checked(p) => {
                        prove_report.merge(p.report.tag_node(i));
                    }
                    crate::semantics::ProveOutcome::Skipped { .. } => {}
                }
            }
            crate::verify::require(prove_report)?;
        }
        if trace.enabled() {
            let end = trace.now_us();
            trace.span(
                "compile_graph".to_string(),
                "compiler",
                PID_COMPILER,
                CHIP_TID,
                compile_start,
                end - compile_start,
                vec![
                    ("nodes", Value::U64(graph.nodes().len() as u64)),
                    ("estimated_us", Value::F64(reconciled.total_time * 1e6)),
                    ("idle_mem", Value::U64(reconciled.idle_mem as u64)),
                    (
                        "reconcile_rounds",
                        Value::U64(reconciled.trajectory.len() as u64),
                    ),
                ],
            );
        }
        Ok(CompiledGraph {
            program,
            estimated_time: reconciled.total_time,
            reconciled,
            node_pareto,
            node_stats,
            compile_seconds: t0.elapsed().as_secs_f64(),
        })
    }
}

/// Emits a `pareto` frontier snapshot for one operator onto the compiler
/// track: frontier size, the fastest plan's predicted time, and the smallest
/// per-core footprint. A sequence of these instants reconstructs how the
/// frontier evolved across the graph (and across the emergency re-search).
fn emit_pareto_snapshot(trace: &Trace, node: usize, name: &str, pareto: &ParetoSet) {
    let best_exec = pareto
        .plans()
        .iter()
        .map(|p| p.cost.exec_time)
        .fold(f64::INFINITY, f64::min);
    let min_mem = pareto
        .plans()
        .iter()
        .map(|p| p.cost.mem_per_core)
        .min()
        .unwrap_or(0);
    trace.instant(
        "pareto".to_string(),
        "compiler",
        PID_COMPILER,
        node as u32,
        trace.now_us(),
        vec![
            ("node", Value::Str(name.to_string())),
            ("size", Value::U64(pareto.len() as u64)),
            (
                "best_exec_us",
                Value::F64(if best_exec.is_finite() {
                    best_exec * 1e6
                } else {
                    0.0
                }),
            ),
            ("min_mem", Value::U64(min_mem as u64)),
        ],
    );
}

/// Pairs each operator's predicted time (cost model: active-plan execution +
/// idle-to-active setup) with its simulated time from a [`RunReport`] — the
/// data behind the paper's Figure 15 accuracy study. Nodes the report never
/// attributed time to (e.g. elided by plan degradation) are skipped.
pub fn accuracy_samples(
    graph: &Graph,
    compiled: &CompiledGraph,
    report: &RunReport,
) -> Vec<t10_trace::AccuracySample> {
    graph
        .nodes()
        .iter()
        .enumerate()
        .filter_map(|(i, node)| {
            let choice = compiled.reconciled.choices.get(i)?;
            let sim = report.per_node.get(&i)?;
            Some(t10_trace::AccuracySample {
                name: node.name.clone(),
                predicted_us: (choice.exec_time + choice.setup_time) * 1e6,
                simulated_us: (sim.compute + sim.exchange + sim.setup) * 1e6,
            })
        })
        .collect()
}

/// Records the predicted-vs-simulated pair of every operator as `op_time`
/// instants (category `accuracy`) on the simulator's aggregate track, so a
/// trace file carries everything `t10 trace` needs to print the aggregate
/// MAPE / Spearman figures. No-op when the trace is disabled.
pub fn emit_accuracy_events(
    trace: &Trace,
    graph: &Graph,
    compiled: &CompiledGraph,
    report: &RunReport,
) {
    if !trace.enabled() {
        return;
    }
    for s in accuracy_samples(graph, compiled, report) {
        trace.instant(
            "op_time".to_string(),
            "accuracy",
            PID_SIM,
            CHIP_TID,
            report.total_time * 1e6,
            vec![
                ("node", Value::Str(s.name)),
                ("predicted_us", Value::F64(s.predicted_us)),
                ("simulated_us", Value::F64(s.simulated_us)),
            ],
        );
    }
}

/// Element sizes of an operator's inputs and output, from the graph.
pub fn node_dtypes(graph: &Graph, op: &Operator) -> (Vec<usize>, usize) {
    let dtypes = op
        .inputs
        .iter()
        .map(|&v| graph.value(v).dtype.bytes())
        .collect();
    let out = graph.value(op.output).dtype.bytes();
    (dtypes, out)
}

fn op_cache_key(op: &Operator, dtypes: &[usize], out_dtype: usize) -> String {
    format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{}",
        op.kind, op.expr, op.combine, op.reduce, op.unary, dtypes, out_dtype
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_device::program::Phase;
    use t10_ir::{builders, DType};

    fn two_layer_graph(m: usize, k: usize, n: usize) -> Graph {
        let mut g = Graph::new("mlp");
        let a = g.add_value("a", vec![m, k], DType::F16, ValueKind::Input);
        let w1 = g.add_value("w1", vec![k, n], DType::F16, ValueKind::Weight);
        let h = g.add_value("h", vec![m, n], DType::F16, ValueKind::Activation);
        let w2 = g.add_value("w2", vec![n, n], DType::F16, ValueKind::Weight);
        let o = g.add_value("o", vec![m, n], DType::F16, ValueKind::Output);
        g.add_node("fc1", builders::matmul(a, w1, h, m, k, n).unwrap())
            .unwrap();
        g.add_node("fc2", builders::matmul(h, w2, o, m, n, n).unwrap())
            .unwrap();
        g
    }

    #[test]
    fn compile_graph_produces_program() {
        let g = two_layer_graph(64, 64, 64);
        let c = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());
        let out = c.compile_graph(&g).unwrap();
        assert_eq!(out.node_pareto.len(), 2);
        assert!(out.estimated_time > 0.0);
        assert!(out.compile_seconds > 0.0);
        // The program has execute steps for both nodes; the inter-operator
        // transition is either its own step or merged into node 0's final
        // superstep as an exchange.
        let has_transition = out.program.steps.iter().any(|s| {
            s.phase == Phase::Transition
                || (s.node == Some(0)
                    && s.exchange_summary
                        .map(|e| e.total_bytes > 0)
                        .unwrap_or(false))
        });
        assert!(has_transition);
        let exec0 = out
            .program
            .steps
            .iter()
            .any(|s| s.phase == Phase::Execute && s.node == Some(0));
        let exec1 = out
            .program
            .steps
            .iter()
            .any(|s| s.phase == Phase::Execute && s.node == Some(1));
        assert!(exec0 && exec1);
    }

    #[test]
    fn identical_operators_share_search() {
        // fc2 in a square graph reuses fc1's search when shapes match.
        let mut g = Graph::new("twin");
        let a = g.add_value("a", vec![64, 64], DType::F16, ValueKind::Input);
        let w1 = g.add_value("w1", vec![64, 64], DType::F16, ValueKind::Weight);
        let h = g.add_value("h", vec![64, 64], DType::F16, ValueKind::Activation);
        let w2 = g.add_value("w2", vec![64, 64], DType::F16, ValueKind::Weight);
        let o = g.add_value("o", vec![64, 64], DType::F16, ValueKind::Output);
        g.add_node("fc1", builders::matmul(a, w1, h, 64, 64, 64).unwrap())
            .unwrap();
        g.add_node("fc2", builders::matmul(h, w2, o, 64, 64, 64).unwrap())
            .unwrap();
        let c = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());
        let out = c.compile_graph(&g).unwrap();
        assert_eq!(out.node_pareto[0], out.node_pareto[1]);
    }

    #[test]
    fn program_runs_on_timing_simulator() {
        let g = two_layer_graph(64, 64, 64);
        let c = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());
        let out = c.compile_graph(&g).unwrap();
        let mut sim =
            t10_sim::Simulator::new(ChipSpec::ipu_with_cores(16), t10_sim::SimulatorMode::Timing);
        let report = sim.run(&out.program).unwrap();
        assert!(report.total_time > 0.0);
        assert!(report.per_node.contains_key(&0));
        assert!(report.per_node.contains_key(&1));
    }

    #[test]
    fn traced_compile_emits_search_and_accuracy_events() {
        let g = two_layer_graph(64, 64, 64);
        let c = Compiler::new(ChipSpec::ipu_with_cores(16), SearchConfig::fast());

        let compile_once = || {
            let trace = Trace::logical();
            let opts = CompileOptions {
                trace: trace.clone(),
                ..CompileOptions::default()
            };
            let out = c.compile_graph_with(&g, &opts).unwrap();
            (trace, out)
        };
        let (trace, out) = compile_once();
        let events = trace.snapshot();

        // One search span per node, each with an evolved frontier snapshot.
        let searches: Vec<_> = events
            .iter()
            .filter(|e| e.name.starts_with("search:"))
            .collect();
        assert_eq!(searches.len(), 2);
        assert!(searches[0].arg_f64("enumerated").unwrap() >= 1.0);
        let cached = searches[1]
            .args
            .iter()
            .find(|(k, _)| *k == "cached")
            .map(|(_, v)| v.clone());
        assert_eq!(cached, Some(t10_trace::Value::Bool(true))); // fc2 hits cache
        let paretos: Vec<_> = events.iter().filter(|e| e.name == "pareto").collect();
        assert_eq!(paretos.len(), 2);
        assert!(paretos[0].arg_f64("size").unwrap() >= 1.0);

        // Reconciler rounds carry monotone scores; the compile span wraps it.
        assert!(events.iter().any(|e| e.name == "reconcile_round"));
        let compile_span = events
            .iter()
            .find(|e| e.name == "compile_graph")
            .expect("compile span");
        assert_eq!(
            compile_span.arg_f64("reconcile_rounds").unwrap() as usize,
            out.reconciled.trajectory.len()
        );

        // Accuracy pairing: every node has a sample, both times positive.
        let mut sim =
            t10_sim::Simulator::new(ChipSpec::ipu_with_cores(16), t10_sim::SimulatorMode::Timing);
        let report = sim.run(&out.program).unwrap();
        let samples = accuracy_samples(&g, &out, &report);
        assert_eq!(samples.len(), 2);
        assert!(samples.iter().all(|s| s.predicted_us > 0.0));
        assert!(samples.iter().all(|s| s.simulated_us > 0.0));
        emit_accuracy_events(&trace, &g, &out, &report);
        let acc = trace
            .snapshot()
            .iter()
            .filter(|e| e.cat == "accuracy")
            .count();
        assert_eq!(acc, 2);

        // Logical-clock compiles are deterministic: two identical compiles
        // serialize to byte-identical Chrome traces.
        let (trace2, _) = compile_once();
        assert_eq!(
            t10_trace::write_chrome_trace(&events),
            t10_trace::write_chrome_trace(&trace2.snapshot())
        );
    }

    #[test]
    fn oversized_graph_is_rejected() {
        // A single enormous matmul cannot fit 16 tiny cores.
        let mut g = Graph::new("big");
        let m = 4096;
        let a = g.add_value("a", vec![m, m], DType::F16, ValueKind::Input);
        let w = g.add_value("w", vec![m, m], DType::F16, ValueKind::Weight);
        let o = g.add_value("o", vec![m, m], DType::F16, ValueKind::Output);
        g.add_node("fc", builders::matmul(a, w, o, m, m, m).unwrap())
            .unwrap();
        let mut spec = ChipSpec::ipu_with_cores(4);
        spec.sram_per_core = 64 * 1024;
        let c = Compiler::new(spec, SearchConfig::fast());
        assert!(c.compile_graph(&g).is_err());
    }
}
