//! Sub-tensor placement (paper §4.4, Figure 10).
//!
//! T10 "arranges the initial placement of each tensor partition step-by-step
//! by analyzing the computing order of each sub-operator and their data
//! dependencies", such that (1) the initial placement satisfies every
//! per-core dependency and (2) partitions stay in ascending order so the
//! dependency still holds after each rotation.
//!
//! The closed form implemented here: a core's sub-task window along a
//! rotating axis `k` starts at
//!
//! ```text
//! σ_c(k) = Σ_{s rotating along k} q_s(c) · plen_s   (mod extent_k)
//! ```
//!
//! where `q_s(c)` is the core's position inside tensor `s`'s rotation ring
//! and `plen_s` the tensor's partition length. Every rotating tensor's
//! initial window also starts at `σ_c(k)`, which makes consecutive ring
//! members tile the extent (the diagonal placement of Figure 10) and keeps
//! every sub-task inside all local windows at every step.

use serde::{Deserialize, Serialize};

use crate::plan::Plan;
use crate::{CompileError, Result};

/// The logical core grid implied by `F_op`: one grid coordinate per axis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoreGrid {
    radices: Vec<usize>,
}

impl CoreGrid {
    /// Builds the grid for an operator partition factor.
    pub fn new(f_op: &[usize]) -> Self {
        Self {
            radices: f_op.to_vec(),
        }
    }

    /// Number of cores in the grid.
    pub fn num_cores(&self) -> usize {
        self.radices.iter().product()
    }

    /// Per-axis coordinates of a linear core index (row-major, axis 0 most
    /// significant).
    pub fn coords(&self, mut linear: usize) -> Vec<usize> {
        let mut out = vec![0usize; self.radices.len()];
        for i in (0..self.radices.len()).rev() {
            out[i] = linear % self.radices[i];
            linear /= self.radices[i];
        }
        out
    }

    /// Linear index of per-axis coordinates.
    pub fn linear(&self, coords: &[usize]) -> usize {
        coords
            .iter()
            .zip(&self.radices)
            .fold(0, |acc, (&c, &r)| acc * r + c)
    }
}

/// A core's position in one tensor's sharing group and rotation ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RingAssignment {
    /// Linearized position among the cores sharing the sub-tensor.
    pub group_pos: usize,
    /// Ring index (`group_pos / factor`); rings replicate the sub-tensor.
    pub ring: usize,
    /// Position within the ring (`group_pos % factor`) — the initial
    /// partition index `q`.
    pub q: usize,
}

/// Linearized position of a core among the group sharing a sub-tensor:
/// mixed-radix rank of its coordinates over the tensor's missing axes.
pub fn group_pos(coords: &[usize], missing_axes: &[usize], f_op: &[usize]) -> usize {
    missing_axes
        .iter()
        .fold(0, |acc, &a| acc * f_op[a] + coords[a])
}

/// Ring assignment of a core for a tensor temporally split into `factor`
/// partitions.
pub fn ring_assignment(
    coords: &[usize],
    missing_axes: &[usize],
    f_op: &[usize],
    factor: usize,
) -> RingAssignment {
    let g = group_pos(coords, missing_axes, f_op);
    RingAssignment {
        group_pos: g,
        ring: g / factor,
        q: g % factor,
    }
}

/// The core a ring member receives data from: same ring, position `q+1`.
///
/// Returns the neighbour's full grid coordinates.
pub fn upstream_coords(
    coords: &[usize],
    missing_axes: &[usize],
    f_op: &[usize],
    factor: usize,
) -> Vec<usize> {
    let ra = ring_assignment(coords, missing_axes, f_op, factor);
    let g2 = ra.ring * factor + (ra.q + 1) % factor;
    // Unrank g2 over the missing axes (most-significant first).
    let mut out = coords.to_vec();
    let mut rem = g2;
    for &a in missing_axes.iter().rev() {
        out[a] = rem % f_op[a];
        rem /= f_op[a];
    }
    out
}

/// The sub-task window start `σ_c(k)` for one rotation level (see module
/// docs).
pub fn sigma(plan: &Plan, level_idx: usize, coords: &[usize]) -> Result<usize> {
    let level = plan.rotations.get(level_idx).ok_or_else(|| {
        CompileError::internal(format!("rotation level {level_idx} out of range"))
    })?;
    let Some(axis) = level.axis else {
        return Ok(0);
    };
    let extent = *plan
        .tiles
        .get(axis)
        .ok_or_else(|| CompileError::internal(format!("rotation axis {axis} has no tile")))?;
    if extent == 0 {
        return Err(CompileError::internal(format!(
            "rotation axis {axis} has zero tile extent"
        )));
    }
    let mut s = 0usize;
    for &slot in &level.slots {
        let sp = plan
            .slots
            .get(slot)
            .ok_or_else(|| CompileError::internal(format!("rotation slot {slot} out of range")))?;
        let ra = ring_assignment(
            coords,
            &sp.spatial.missing_axes,
            &plan.config.f_op,
            sp.temporal.factor,
        );
        s += ra.q * sp.plen;
    }
    Ok(s % extent)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanConfig, TemporalChoice};
    use t10_ir::builders;

    #[test]
    fn grid_round_trip() {
        let g = CoreGrid::new(&[2, 3, 4]);
        assert_eq!(g.num_cores(), 24);
        for i in 0..24 {
            assert_eq!(g.linear(&g.coords(i)), i);
        }
        assert_eq!(g.coords(0), vec![0, 0, 0]);
        assert_eq!(g.coords(23), vec![1, 2, 3]);
        // Axis 0 most significant: next core varies the last axis.
        assert_eq!(g.coords(1), vec![0, 0, 1]);
    }

    #[test]
    fn group_pos_ranks_missing_axes() {
        // F_op = [2, 1, 3]; tensor missing axis 2 (n).
        let f_op = [2, 1, 3];
        assert_eq!(group_pos(&[0, 0, 0], &[2], &f_op), 0);
        assert_eq!(group_pos(&[0, 0, 2], &[2], &f_op), 2);
        assert_eq!(group_pos(&[1, 0, 2], &[2], &f_op), 2);
        // Two missing axes rank mixed-radix.
        assert_eq!(group_pos(&[1, 0, 2], &[0, 2], &f_op), 5);
    }

    #[test]
    fn ring_assignment_splits_group() {
        let f_op = [1, 1, 4];
        // Group of 4 sharing cores, factor 2 → 2 rings of 2.
        let ra0 = ring_assignment(&[0, 0, 0], &[2], &f_op, 2);
        let ra1 = ring_assignment(&[0, 0, 1], &[2], &f_op, 2);
        let ra2 = ring_assignment(&[0, 0, 2], &[2], &f_op, 2);
        assert_eq!((ra0.ring, ra0.q), (0, 0));
        assert_eq!((ra1.ring, ra1.q), (0, 1));
        assert_eq!((ra2.ring, ra2.q), (1, 0));
    }

    #[test]
    fn upstream_wraps_within_ring() {
        let f_op = [1, 1, 4];
        // Ring 0 = {n=0, n=1}: upstream of n=1 is n=0.
        let up = upstream_coords(&[0, 0, 1], &[2], &f_op, 2);
        assert_eq!(up, vec![0, 0, 0]);
        let up0 = upstream_coords(&[0, 0, 0], &[2], &f_op, 2);
        assert_eq!(up0, vec![0, 0, 1]);
        // Ring 1 = {n=2, n=3}.
        assert_eq!(upstream_coords(&[0, 0, 3], &[2], &f_op, 2), vec![0, 0, 2]);
    }

    /// The Figure 7 (d) placement: σ(m, n) = 3m + 2n mod 6.
    #[test]
    fn sigma_matches_fig7_diagonal() {
        let op = builders::matmul(0, 1, 2, 2, 6, 3).unwrap();
        let plan = Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![2, 1, 3],
                temporal: vec![TemporalChoice::rotate(1, 3), TemporalChoice::rotate(0, 2)],
            },
        )
        .unwrap();
        // A (slot 0) q = n, plen 2; B (slot 1) q = m, plen 3.
        for m in 0..2 {
            for n in 0..3 {
                let s = sigma(&plan, 0, &[m, 0, n]).unwrap();
                assert_eq!(s, (3 * m + 2 * n) % 6, "core ({m},{n})");
            }
        }
    }

    /// Figure 10's 3×3 matmul: σ(m, n) = m + n mod 3 — the staircase.
    #[test]
    fn sigma_matches_fig10_staircase() {
        let op = builders::matmul(0, 1, 2, 3, 3, 3).unwrap();
        let plan = Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![3, 1, 3],
                temporal: vec![TemporalChoice::rotate(1, 3), TemporalChoice::rotate(0, 3)],
            },
        )
        .unwrap();
        for m in 0..3 {
            for n in 0..3 {
                assert_eq!(sigma(&plan, 0, &[m, 0, n]).unwrap(), (m + n) % 3);
            }
        }
    }
}
