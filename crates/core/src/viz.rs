//! ASCII visualization of execution plans.
//!
//! Renders the rotation schedule of a compute-shift plan — which global
//! slice of each rotating tensor every core holds at every step — in the
//! style of the paper's Figure 7, plus a text scatter of a Pareto frontier
//! (Figure 17). Useful for debugging placements and for documentation.

use std::fmt::Write as _;

use t10_ir::Operator;

use crate::placement::{sigma, CoreGrid};
use crate::plan::Plan;
use crate::search::ParetoSet;

/// Renders the per-step rotation schedule of one rotation level.
///
/// Each row is a core (labelled by its grid coordinates); each column is a
/// compute-shift step; each cell shows the global index range of the
/// sub-task the core computes along the rotating axis.
pub fn rotation_schedule(op: &Operator, plan: &Plan, level: usize) -> String {
    let mut out = String::new();
    let Some(l) = plan.rotations.get(level) else {
        return "plan has no such rotation level\n".to_string();
    };
    let Some(axis) = l.axis else {
        let slot = l.slots.first().copied().unwrap_or(0);
        let _ = writeln!(
            out,
            "indirect rotation of input {slot}: {} partitions of {} rows",
            l.steps, plan.slots[slot].plen
        );
        return out;
    };
    let axis_name = &op.expr.axes[axis].name;
    let _ = writeln!(
        out,
        "rotation along axis `{axis_name}` (rp = {}, {} steps, slots {:?}):",
        l.rp, l.steps, l.slots
    );
    let grid = CoreGrid::new(&plan.config.f_op);
    let cores = grid.num_cores().min(16);
    let extent = plan.tiles[axis];
    let _ = write!(out, "{:>12} ", "core");
    for t in 0..l.steps {
        let _ = write!(out, "step{t:<3} ");
    }
    out.push('\n');
    for core in 0..cores {
        let coords = grid.coords(core);
        // Display-only: an inconsistent plan renders as window 0 rather
        // than aborting the dump.
        let s0 = sigma(plan, level, &coords).unwrap_or(0);
        let _ = write!(out, "{:>12} ", format!("{coords:?}"));
        for t in 0..l.steps {
            let start = (s0 + t * l.rp) % extent;
            let _ = write!(out, "[{start:>2}..{:<2}) ", start + l.rp);
        }
        out.push('\n');
    }
    if grid.num_cores() > cores {
        let _ = writeln!(out, "... ({} more cores)", grid.num_cores() - cores);
    }
    out
}

/// Renders a Pareto frontier as an ASCII scatter: memory on the x axis,
/// execution time on the y axis, `*` for frontier points.
pub fn pareto_scatter(pareto: &ParetoSet, width: usize, height: usize) -> String {
    let plans = pareto.plans();
    if plans.is_empty() {
        return "(empty frontier)\n".to_string();
    }
    let (w, h) = (width.max(16), height.max(6));
    let min_m = plans.iter().map(|p| p.cost.mem_per_core).min().unwrap_or(0) as f64;
    let max_m = plans.iter().map(|p| p.cost.mem_per_core).max().unwrap_or(0) as f64;
    let min_t = plans
        .iter()
        .map(|p| p.cost.exec_time)
        .fold(f64::INFINITY, f64::min);
    let max_t = plans
        .iter()
        .map(|p| p.cost.exec_time)
        .fold(f64::NEG_INFINITY, f64::max);
    let mut canvas = vec![vec![b' '; w]; h];
    for p in plans {
        let x = if max_m > min_m {
            ((p.cost.mem_per_core as f64 - min_m) / (max_m - min_m) * (w - 1) as f64) as usize
        } else {
            0
        };
        let y = if max_t > min_t {
            ((p.cost.exec_time - min_t) / (max_t - min_t) * (h - 1) as f64) as usize
        } else {
            0
        };
        canvas[h - 1 - y][x] = b'*';
    }
    let mut out = String::new();
    let _ = writeln!(
        out,
        "exec time {:.1}us (top) .. {:.1}us (bottom)",
        max_t * 1e6,
        min_t * 1e6
    );
    for row in canvas {
        out.push('|');
        out.push_str(std::str::from_utf8(&row).expect("ascii"));
        out.push('\n');
    }
    out.push('+');
    out.push_str(&"-".repeat(w));
    out.push('\n');
    let _ = writeln!(
        out,
        " mem/core {:.0}KB .. {:.0}KB",
        min_m / 1024.0,
        max_m / 1024.0
    );
    out
}

/// One-line summary of a plan's rTensor configurations.
pub fn plan_summary(op: &Operator, plan: &Plan) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "F_op {:?} on {} cores, {} steps",
        plan.config.f_op, plan.cores_used, plan.total_steps
    );
    for (s, _) in plan.slots.iter().enumerate() {
        let rt = plan.rtensor(s);
        let _ = write!(out, " | in{s}: fs{:?} ft{:?} rp{:?}", rt.f_s, rt.f_t, rt.rp);
    }
    let _ = write!(out, " | {} axes", op.expr.axes.len());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::plan::{PlanConfig, TemporalChoice};
    use crate::search::{search_operator, SearchConfig};
    use t10_device::ChipSpec;
    use t10_ir::builders;

    fn fig7_plan() -> (Operator, Plan) {
        let op = builders::matmul(0, 1, 2, 2, 6, 3).unwrap();
        let plan = Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![2, 1, 3],
                temporal: vec![TemporalChoice::rotate(1, 3), TemporalChoice::rotate(0, 2)],
            },
        )
        .unwrap();
        (op, plan)
    }

    #[test]
    fn rotation_schedule_shows_diagonal() {
        let (op, plan) = fig7_plan();
        let s = rotation_schedule(&op, &plan, 0);
        // All 6 cores and 3 steps rendered; the first core starts at 0.
        assert!(s.contains("axis `k`"));
        assert!(s.contains("step0"));
        assert!(s.contains("step2"));
        assert!(s.contains("[ 0..2 )") || s.contains("[ 0..2)"), "{s}");
        assert_eq!(s.lines().count(), 2 + 6);
    }

    #[test]
    fn rotation_schedule_out_of_range_level() {
        let (op, plan) = fig7_plan();
        let s = rotation_schedule(&op, &plan, 9);
        assert!(s.contains("no such rotation level"));
    }

    #[test]
    fn pareto_scatter_renders() {
        let cost = CostModel::calibrate(&ChipSpec::ipu_with_cores(16), 128, 3).unwrap();
        let op = builders::matmul(0, 1, 2, 128, 128, 128).unwrap();
        let (pareto, _) = search_operator(&op, &[2, 2], 2, &cost, &SearchConfig::fast()).unwrap();
        let s = pareto_scatter(&pareto, 40, 10);
        assert!(s.contains('*'));
        assert!(s.contains("mem/core"));
        // The frontier is monotone: higher memory → lower time, so the
        // leftmost star is in the upper half.
        let rows: Vec<&str> = s.lines().filter(|l| l.starts_with('|')).collect();
        let first_star_row = rows.iter().position(|r| r.contains('*')).unwrap();
        assert!(first_star_row < rows.len());
    }

    #[test]
    fn pareto_scatter_empty() {
        let s = pareto_scatter(&ParetoSet::default(), 20, 5);
        assert!(s.contains("empty"));
    }

    #[test]
    fn plan_summary_mentions_factors() {
        let (op, plan) = fig7_plan();
        let s = plan_summary(&op, &plan);
        assert!(s.contains("F_op [2, 1, 3]"));
        assert!(s.contains("in0"));
        assert!(s.contains("in1"));
    }
}
