//! Holistic inter-operator memory reconciliation (paper §4.3.2,
//! Algorithm 1).
//!
//! Every operator gets two plans: an *idle* plan — the layout its weights
//! keep while other operators run — and an *active* plan used during its own
//! execution. Turning the idle layout into the active one costs a *setup
//! phase* (Figure 9). With every operator starting from its most
//! memory-efficient idle layout, the policy greedily spends leftover memory
//! on the operator with the best setup-time-saved per idle-byte-added ratio
//! (`-ΔT_S / ΔM_I`), re-deriving every operator's fastest feasible active
//! plan at each step, and keeps the best schedule seen.
//!
//! Modeling note: an idle plan is one of the operator's Pareto layouts; the
//! setup cost is zero exactly when the idle layout already *is* the active
//! plan's layout and a full weight-partition gather otherwise. The greedy
//! upgrade therefore pins an operator's idle layout to its current active
//! plan, which is how T10 "performs the setup phase for the
//! performance-critical operators in advance" (§6.4).

use serde::{Deserialize, Serialize};
use t10_trace::{Trace, Value, CHIP_TID, PID_COMPILER};

use crate::cost::CostModel;
use crate::plan::Plan;
use crate::search::ParetoSet;
use crate::{compile_err, CompileError, Result};

/// Input to the reconciliation: one entry per graph operator.
#[derive(Debug, Clone)]
pub struct OpForSchedule {
    /// Operator name (diagnostics).
    pub name: String,
    /// Pareto-optimal plans from the intra-operator search.
    pub pareto: ParetoSet,
    /// Which input slots are persistent weights.
    pub weight_slots: Vec<bool>,
    /// Per-core bytes of the *fully sharded* idle layout: total weight
    /// bytes striped evenly over all cores. Always feasible as an idle
    /// layout (any active plan can gather from it during setup), even when
    /// no Pareto plan distributes the weights that thinly.
    pub sharded_idle_bytes: usize,
}

/// Idle-footprint lookup with a typed failure instead of an indexing
/// panic. `reconcile` sits on the serve hot path: a schedule index that
/// escaped its table (a poisoned cache entry, a future refactor slip)
/// must surface as a `CompileError` the service can report, not a worker
/// panic (exit 6) that takes the request down.
fn idle_option_bytes(idle_bytes: &[Vec<usize>], op: usize, option: usize) -> Result<usize> {
    idle_bytes
        .get(op)
        .and_then(|v| v.get(option))
        .copied()
        .ok_or_else(|| {
            compile_err!("reconcile: idle option {option} out of range for operator {op}")
        })
}

/// Operator-name lookup for diagnostics and trace events, with a typed
/// failure instead of an indexing panic.
fn op_name(ops: &[OpForSchedule], i: usize) -> Result<&str> {
    ops.get(i)
        .map(|o| o.name.as_str())
        .ok_or_else(|| compile_err!("reconcile: operator index {i} out of range"))
}

/// Per-core bytes of a plan's weight partitions (its idle-layout footprint).
pub fn weight_bytes_per_core(plan: &Plan, weight_slots: &[bool]) -> usize {
    plan.slots
        .iter()
        .zip(weight_slots)
        .filter(|(_, &w)| w)
        .map(|(s, _)| s.partition_bytes)
        .sum()
}

/// The chosen idle/active plan pair for one operator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduleChoice {
    /// Index of the idle layout: a Pareto-plan index, or `pareto.len()` for
    /// the fully sharded layout.
    pub idle: usize,
    /// Index of the active plan.
    pub active: usize,
    /// Predicted idle-to-active setup time, seconds.
    pub setup_time: f64,
    /// Predicted execution time of the active plan, seconds.
    pub exec_time: f64,
    /// Idle (weight) bytes per core of the idle plan.
    pub idle_bytes: usize,
}

/// One point of the search trajectory (Figure 20's dots).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Total idle memory per core, bytes.
    pub idle_mem: usize,
    /// Predicted end-to-end time (exec + setup), seconds.
    pub total_time: f64,
    /// Setup component.
    pub setup_time: f64,
    /// Execution component.
    pub exec_time: f64,
}

/// Result of the reconciliation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Reconciled {
    /// Per-operator choices of the best schedule found.
    pub choices: Vec<ScheduleChoice>,
    /// Predicted end-to-end time of the best schedule, seconds.
    pub total_time: f64,
    /// Total idle memory per core of the best schedule, bytes.
    pub idle_mem: usize,
    /// All schedules explored, in search order.
    pub trajectory: Vec<TrajectoryPoint>,
}

/// Runs Algorithm 1.
///
/// `capacity` is the usable per-core scratchpad (after the shift-buffer
/// reservation). Fails when even the most memory-efficient idle layouts do
/// not fit, or when some operator has no feasible active plan — the model
/// does not fit on the chip (the `*` entries of Figure 12).
pub fn reconcile(ops: &[OpForSchedule], cost: &CostModel, capacity: usize) -> Result<Reconciled> {
    reconcile_traced(ops, cost, capacity, &Trace::disabled())
}

/// [`reconcile`] with a structured event sink: every greedy round emits a
/// `reconcile_round` instant (idle memory, predicted total/setup/exec time)
/// and every upgrade a `reconcile_pick` instant carrying the winning
/// operator and its `-ΔT_S/ΔM_I` score, on the compiler's aggregate track.
pub fn reconcile_traced(
    ops: &[OpForSchedule],
    cost: &CostModel,
    capacity: usize,
    trace: &Trace,
) -> Result<Reconciled> {
    if ops.is_empty() {
        return Ok(Reconciled {
            choices: Vec::new(),
            total_time: 0.0,
            idle_mem: 0,
            trajectory: Vec::new(),
        });
    }
    for op in ops {
        if op.pareto.is_empty() {
            return Err(compile_err!("operator {} has no feasible plans", op.name));
        }
    }
    // Idle weight bytes of every idle option, per op. Option indices
    // `0..pareto.len()` are the Pareto plans' layouts; the extra last
    // option is the fully sharded layout (weights striped 1/C).
    let idle_bytes: Vec<Vec<usize>> = ops
        .iter()
        .map(|op| {
            let mut v: Vec<usize> = op
                .pareto
                .plans()
                .iter()
                .map(|p| weight_bytes_per_core(&p.plan, &op.weight_slots))
                .collect();
            v.push(op.sharded_idle_bytes);
            v
        })
        .collect();
    // Start from the minimum-idle-memory plan for every operator (line 3).
    let mut idle: Vec<usize> = idle_bytes
        .iter()
        .map(|b| {
            b.iter()
                .enumerate()
                .min_by_key(|(_, &v)| v)
                .map(|(i, _)| i)
                .unwrap_or(0)
        })
        .collect();

    let mut best: Option<Reconciled> = None;
    let mut trajectory = Vec::new();
    // The paper's complexity bound: only Σ_i num_idle_plans(i) promising
    // combinations are visited. The cap plus revisit detection guarantees
    // termination when pinning one operator's idle layout re-derives
    // another's active plan.
    let mut visited: std::collections::HashSet<Vec<usize>> = std::collections::HashSet::new();
    let max_rounds: usize = ops.iter().map(|o| o.pareto.len()).sum::<usize>() + ops.len() + 1;
    for round in 0..max_rounds {
        if !visited.insert(idle.clone()) {
            break;
        }
        let mut idle_mem = 0usize;
        for (i, &p) in idle.iter().enumerate() {
            idle_mem += idle_option_bytes(&idle_bytes, i, p)?;
        }
        if idle_mem > capacity {
            break;
        }
        // Update the active plan for each op: the fastest plan whose active
        // footprint fits in the memory left after all *other* idle layouts
        // (line 8). The op's own idle bytes are reclaimed while it runs.
        let mut choices = Vec::with_capacity(ops.len());
        let mut feasible = true;
        let mut infeasible_op: Option<(&str, usize, usize)> = None;
        let mut exec_total = 0.0;
        let mut setup_total = 0.0;
        for (i, op) in ops.iter().enumerate() {
            let pinned = idle
                .get(i)
                .copied()
                .ok_or_else(|| compile_err!("reconcile: no idle choice for operator {i}"))?;
            let own = idle_option_bytes(&idle_bytes, i, pinned)?;
            let avail = capacity - idle_mem + own;
            let Some((active_idx, active)) = op
                .pareto
                .plans()
                .iter()
                .enumerate()
                .filter(|(_, p)| p.cost.mem_per_core <= avail)
                .min_by(|a, b| a.1.cost.exec_time.total_cmp(&b.1.cost.exec_time))
            else {
                feasible = false;
                let needed = op
                    .pareto
                    .plans()
                    .iter()
                    .map(|p| p.cost.mem_per_core)
                    .min()
                    .unwrap_or(0);
                infeasible_op = Some((&op.name, avail, needed));
                break;
            };
            let setup = if active_idx == pinned {
                0.0
            } else {
                cost.predict_exchange(weight_bytes_per_core(&active.plan, &op.weight_slots) as u64)
            };
            exec_total += active.cost.exec_time;
            setup_total += setup;
            choices.push(ScheduleChoice {
                idle: pinned,
                active: active_idx,
                setup_time: setup,
                exec_time: active.cost.exec_time,
                idle_bytes: own,
            });
        }
        if !feasible {
            if best.is_none() {
                if let Some((name, avail, needed)) = infeasible_op {
                    return Err(CompileError::out_of_memory(
                        None,
                        needed,
                        avail,
                        format!("model does not fit: operator {name} has no active plan"),
                    ));
                }
            }
            break;
        }
        let total = exec_total + setup_total;
        trajectory.push(TrajectoryPoint {
            idle_mem,
            total_time: total,
            setup_time: setup_total,
            exec_time: exec_total,
        });
        if trace.enabled() {
            trace.instant(
                "reconcile_round",
                "compiler",
                PID_COMPILER,
                CHIP_TID,
                trace.now_us(),
                vec![
                    ("round", Value::U64(round as u64)),
                    ("idle_mem", Value::U64(idle_mem as u64)),
                    ("total_us", Value::F64(total * 1e6)),
                    ("setup_us", Value::F64(setup_total * 1e6)),
                    ("exec_us", Value::F64(exec_total * 1e6)),
                ],
            );
        }
        if best.as_ref().map(|b| total < b.total_time).unwrap_or(true) {
            best = Some(Reconciled {
                choices: choices.clone(),
                total_time: total,
                idle_mem,
                trajectory: Vec::new(),
            });
        }
        // Pick the op with the highest -ΔT_S/ΔM_I (line 13): pinning its
        // idle layout to its active plan removes its setup time at the cost
        // of the idle-memory delta.
        let mut best_ratio = f64::NEG_INFINITY;
        let mut pick: Option<(usize, usize)> = None;
        for (i, c) in choices.iter().enumerate() {
            if c.active == c.idle || c.setup_time <= 0.0 {
                continue;
            }
            // `c.idle_bytes` already carries this round's pinned footprint,
            // so only the upgrade target needs a fresh (fallible) lookup.
            let dm = idle_option_bytes(&idle_bytes, i, c.active)? as i64 - c.idle_bytes as i64;
            let ratio = if dm <= 0 {
                f64::INFINITY
            } else {
                c.setup_time / dm as f64
            };
            if ratio > best_ratio {
                best_ratio = ratio;
                pick = Some((i, c.active));
            }
        }
        match pick {
            Some((i, a)) => {
                if trace.enabled() {
                    trace.instant(
                        "reconcile_pick",
                        "compiler",
                        PID_COMPILER,
                        CHIP_TID,
                        trace.now_us(),
                        vec![
                            ("op", Value::Str(op_name(ops, i)?.to_string())),
                            // -ΔT_S/ΔM_I in seconds per byte; a free upgrade
                            // (ΔM_I ≤ 0) is scored +∞ and clamps for export.
                            ("ratio", Value::F64(best_ratio.min(1e30))),
                        ],
                    );
                }
                idle[i] = a;
            }
            None => break,
        }
    }
    let mut best = best.ok_or_else(|| {
        // The cheapest possible resident set still exceeds capacity.
        let min_idle: usize = idle_bytes
            .iter()
            .map(|v| v.iter().copied().min().unwrap_or(0))
            .sum();
        CompileError::out_of_memory(
            None,
            min_idle,
            capacity,
            "model does not fit: idle layouts exceed per-core capacity".to_string(),
        )
    })?;
    best.trajectory = trajectory;
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::{search_operator, SearchConfig};
    use t10_device::ChipSpec;
    use t10_ir::builders;

    fn setup(cores: usize) -> (CostModel, Vec<OpForSchedule>) {
        let cost = CostModel::calibrate(&ChipSpec::ipu_with_cores(cores), 128, 3).unwrap();
        let ops: Vec<OpForSchedule> = (0..3)
            .map(|i| {
                let op = builders::matmul(0, 1, 2, 128, 128, 128).unwrap();
                let (pareto, _) =
                    search_operator(&op, &[2, 2], 2, &cost, &SearchConfig::fast()).unwrap();
                OpForSchedule {
                    name: format!("mm{i}"),
                    pareto,
                    weight_slots: vec![false, true],
                    sharded_idle_bytes: (128 * 128 * 2_usize).div_ceil(cores),
                }
            })
            .collect();
        (cost, ops)
    }

    #[test]
    fn reconcile_produces_feasible_schedule() {
        let (cost, ops) = setup(16);
        let cap = cost.spec().sram_per_core - cost.spec().shift_buffer;
        let r = reconcile(&ops, &cost, cap).unwrap();
        assert_eq!(r.choices.len(), 3);
        assert!(r.total_time > 0.0);
        assert!(r.idle_mem <= cap);
        assert!(!r.trajectory.is_empty());
        // The best schedule is no worse than the first trajectory point.
        assert!(r.total_time <= r.trajectory[0].total_time + 1e-12);
    }

    #[test]
    fn more_memory_never_hurts() {
        let (cost, ops) = setup(16);
        let cap = cost.spec().sram_per_core - cost.spec().shift_buffer;
        let tight = reconcile(&ops, &cost, cap / 4).map(|r| r.total_time);
        let loose = reconcile(&ops, &cost, cap).unwrap().total_time;
        if let Ok(tight) = tight {
            assert!(loose <= tight + 1e-12, "loose={loose}, tight={tight}");
        }
    }

    #[test]
    fn trajectory_spends_idle_memory_monotonically() {
        let (cost, ops) = setup(16);
        let cap = cost.spec().sram_per_core - cost.spec().shift_buffer;
        let r = reconcile(&ops, &cost, cap).unwrap();
        for w in r.trajectory.windows(2) {
            assert!(w[0].idle_mem <= w[1].idle_mem);
            assert!(w[1].setup_time <= w[0].setup_time + 1e-12);
        }
    }

    #[test]
    fn traced_reconcile_emits_rounds_and_matches_untraced() {
        let (cost, ops) = setup(16);
        let cap = cost.spec().sram_per_core - cost.spec().shift_buffer;
        let trace = Trace::logical();
        let traced = reconcile_traced(&ops, &cost, cap, &trace).unwrap();
        let events = trace.snapshot();
        let rounds = events
            .iter()
            .filter(|e| e.name == "reconcile_round")
            .count();
        assert_eq!(rounds, traced.trajectory.len());
        // Rounds report monotonically non-decreasing idle memory.
        let idle: Vec<f64> = events
            .iter()
            .filter(|e| e.name == "reconcile_round")
            .filter_map(|e| e.arg_f64("idle_mem"))
            .collect();
        assert!(idle.windows(2).all(|w| w[0] <= w[1]));
        // Each pick carries a score.
        for pick in events.iter().filter(|e| e.name == "reconcile_pick") {
            assert!(pick.arg_str("op").is_some());
            assert!(pick.arg_f64("ratio").is_some());
        }
        // Tracing must not change the result.
        let plain = reconcile(&ops, &cost, cap).unwrap();
        assert_eq!(plain.total_time, traced.total_time);
        assert_eq!(plain.choices, traced.choices);
    }

    #[test]
    fn rejects_oversized_models() {
        let (cost, ops) = setup(16);
        // A 1-byte capacity cannot hold anything.
        assert!(reconcile(&ops, &cost, 1).is_err());
    }

    #[test]
    fn empty_input_is_trivial() {
        let (cost, _) = setup(8);
        let r = reconcile(&[], &cost, 1000).unwrap();
        assert_eq!(r.total_time, 0.0);
    }

    // Regression tests for the former indexing panics on the reconcile hot
    // path: each converted site now reports a typed `CompileError` through
    // the fallible lookups below instead of taking the worker down.

    #[test]
    fn idle_lookup_rejects_out_of_range_option() {
        // Former `idle_bytes[i][p]` / `idle_bytes[i][idle[i]]` panics.
        let table = vec![vec![10, 20], vec![30]];
        assert_eq!(idle_option_bytes(&table, 0, 1).unwrap(), 20);
        let err = idle_option_bytes(&table, 0, 2).unwrap_err();
        assert!(err.to_string().contains("idle option 2"), "{err}");
    }

    #[test]
    fn idle_lookup_rejects_out_of_range_operator() {
        // Former `idle_bytes[i][c.active]` panic with a stale operator index.
        let table = vec![vec![10]];
        let err = idle_option_bytes(&table, 5, 0).unwrap_err();
        assert!(err.to_string().contains("operator 5"), "{err}");
    }

    #[test]
    fn op_name_lookup_is_fallible() {
        // Former `ops[i].name` panic in the reconcile_pick trace emission.
        let (_, ops) = setup(8);
        assert_eq!(op_name(&ops, 0).unwrap(), "mm0");
        let err = op_name(&ops, 99).unwrap_err();
        assert!(err.to_string().contains("operator index 99"), "{err}");
    }

    #[test]
    fn schedule_choice_carries_its_idle_footprint() {
        // The ratio scan now trusts `ScheduleChoice::idle_bytes` instead of
        // re-indexing: it must equal the pinned idle option's bytes.
        let (cost, ops) = setup(16);
        let cap = cost.spec().sram_per_core - cost.spec().shift_buffer;
        let r = reconcile(&ops, &cost, cap).unwrap();
        for (i, c) in r.choices.iter().enumerate() {
            let mut options: Vec<usize> = ops[i]
                .pareto
                .plans()
                .iter()
                .map(|p| weight_bytes_per_core(&p.plan, &ops[i].weight_slots))
                .collect();
            options.push(ops[i].sharded_idle_bytes);
            assert_eq!(c.idle_bytes, options[c.idle]);
        }
    }

    #[test]
    fn weight_bytes_counts_only_weight_slots() {
        let (_, ops) = setup(8);
        let p = &ops[0].pareto.plans()[0].plan;
        let w_only = weight_bytes_per_core(p, &[false, true]);
        let all = weight_bytes_per_core(p, &[true, true]);
        let none = weight_bytes_per_core(p, &[false, false]);
        assert_eq!(none, 0);
        assert!(w_only <= all);
        assert_eq!(w_only, p.slots[1].partition_bytes);
    }
}
