//! Compiler error type.

/// An error produced during plan construction, search, or lowering.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompileError {
    message: String,
}

impl CompileError {
    /// Creates a new error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
        }
    }

    /// The human-readable message.
    pub fn message(&self) -> &str {
        &self.message
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.message)
    }
}

impl std::error::Error for CompileError {}

impl From<t10_device::iface::DeviceError> for CompileError {
    fn from(e: t10_device::iface::DeviceError) -> Self {
        Self::new(e.message().to_string())
    }
}

impl From<t10_ir::IrError> for CompileError {
    fn from(e: t10_ir::IrError) -> Self {
        Self::new(e.message().to_string())
    }
}

/// Builds a [`CompileError`] from format arguments.
#[macro_export]
macro_rules! compile_err {
    ($($arg:tt)*) => {
        $crate::CompileError::new(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = CompileError::new("no plan");
        assert_eq!(e.to_string(), "compile error: no plan");
        let d: CompileError = t10_device::iface::DeviceError::new("oom").into();
        assert_eq!(d.message(), "oom");
        let i: CompileError = t10_ir::IrError::new("bad").into();
        assert_eq!(i.message(), "bad");
    }
}
