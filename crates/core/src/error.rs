//! Compiler error taxonomy.
//!
//! Errors are structured so callers can react programmatically: the fallback
//! chain in `compiler.rs` retries on [`CompileError::OutOfMemory`] and
//! [`CompileError::PlanInfeasible`], the anytime search surfaces
//! [`CompileError::DeadlineExceeded`] only when *no* plan was found in time,
//! and the CLI maps each variant to a distinct exit code.

use t10_device::iface::DeviceError;
use t10_ir::IrError;

/// An error produced during plan construction, search, or lowering.
#[derive(Debug, Clone, PartialEq)]
pub enum CompileError {
    /// A required allocation exceeds per-core SRAM. `core` is `Some` when a
    /// specific core is the binding constraint (e.g. under an injected SRAM
    /// fault); `None` when the limit applies uniformly to all cores.
    OutOfMemory {
        core: Option<usize>,
        needed: usize,
        available: usize,
        context: String,
    },
    /// No execution plan satisfies the structural, placement, or diagonal
    /// constraints (independent of memory capacity).
    PlanInfeasible { detail: String },
    /// The compile deadline expired before any feasible plan was found.
    DeadlineExceeded { budget_ms: u64, detail: String },
    /// A search worker thread panicked; the panic payload is preserved.
    WorkerPanicked { detail: String },
    /// Runtime recovery was exhausted: the retry budget ran out, or the
    /// surviving machine cannot execute the program at all.
    Unrecoverable { detail: String },
    /// The device layer rejected an operation.
    Device(DeviceError),
    /// The IR layer rejected the graph or expression.
    Ir(IrError),
    /// The static verifier refuted the compiled artifact: one or more
    /// invariants (capacity, ring consistency, BSP safety, cost sanity) do
    /// not hold. Carries the typed findings.
    Verification {
        diagnostics: Vec<t10_verify::Diagnostic>,
    },
    /// An internal invariant failed (cost-model fitting, bookkeeping).
    Internal { detail: String },
}

impl CompileError {
    /// Creates an out-of-memory error.
    pub fn out_of_memory(
        core: Option<usize>,
        needed: usize,
        available: usize,
        context: impl Into<String>,
    ) -> Self {
        Self::OutOfMemory {
            core,
            needed,
            available,
            context: context.into(),
        }
    }

    /// Creates an infeasible-plan error.
    pub fn infeasible(detail: impl Into<String>) -> Self {
        Self::PlanInfeasible {
            detail: detail.into(),
        }
    }

    /// Creates a deadline-exceeded error.
    pub fn deadline(budget_ms: u64, detail: impl Into<String>) -> Self {
        Self::DeadlineExceeded {
            budget_ms,
            detail: detail.into(),
        }
    }

    /// Creates a worker-panicked error.
    pub fn worker_panicked(detail: impl Into<String>) -> Self {
        Self::WorkerPanicked {
            detail: detail.into(),
        }
    }

    /// Creates an unrecoverable-run error.
    pub fn unrecoverable(detail: impl Into<String>) -> Self {
        Self::Unrecoverable {
            detail: detail.into(),
        }
    }

    /// Creates an internal-invariant error.
    pub fn internal(detail: impl Into<String>) -> Self {
        Self::Internal {
            detail: detail.into(),
        }
    }

    /// Creates a verification-failure error from the verifier's findings.
    pub fn verification(diagnostics: Vec<t10_verify::Diagnostic>) -> Self {
        Self::Verification { diagnostics }
    }

    /// The human-readable message (without the "compile error:" prefix).
    pub fn message(&self) -> String {
        match self {
            Self::OutOfMemory {
                core,
                needed,
                available,
                context,
            } => {
                let where_ = match core {
                    Some(c) => format!("core {c}"),
                    None => "every core".to_string(),
                };
                format!(
                    "{context}: out of memory on {where_} (need {needed} B, {available} B available)"
                )
            }
            Self::PlanInfeasible { detail } => detail.clone(),
            Self::DeadlineExceeded { budget_ms, detail } => {
                format!("compile deadline of {budget_ms} ms exceeded: {detail}")
            }
            Self::WorkerPanicked { detail } => {
                format!("search worker panicked: {detail}")
            }
            Self::Unrecoverable { detail } => {
                format!("unrecoverable: {detail}")
            }
            Self::Device(e) => e.message(),
            Self::Ir(e) => e.message().to_string(),
            Self::Verification { diagnostics } => {
                let first = diagnostics
                    .iter()
                    .find(|d| d.severity == t10_verify::Severity::Error)
                    .or_else(|| diagnostics.first());
                match first {
                    Some(d) => format!(
                        "static verification failed ({} finding(s)); first: {}",
                        diagnostics.len(),
                        d.render()
                    ),
                    None => "static verification failed".to_string(),
                }
            }
            Self::Internal { detail } => detail.clone(),
        }
    }
}

impl std::fmt::Display for CompileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "compile error: {}", self.message())
    }
}

impl std::error::Error for CompileError {}

impl From<DeviceError> for CompileError {
    fn from(e: DeviceError) -> Self {
        match e {
            // A device-side OOM is a capacity problem the fallback chain can
            // act on; lift it into the structured compiler variant.
            DeviceError::OutOfMemory {
                core,
                needed,
                available,
            } => Self::OutOfMemory {
                core: Some(core),
                needed,
                available,
                context: "device allocation".to_string(),
            },
            other => Self::Device(other),
        }
    }
}

impl From<IrError> for CompileError {
    fn from(e: IrError) -> Self {
        Self::Ir(e)
    }
}

/// Builds a [`CompileError::PlanInfeasible`] from format arguments — sugar
/// for the by-far most common error class (structural feasibility checks).
#[macro_export]
macro_rules! compile_err {
    ($($arg:tt)*) => {
        $crate::CompileError::infeasible(format!($($arg)*))
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = CompileError::infeasible("no plan");
        assert_eq!(e.to_string(), "compile error: no plan");
        let d: CompileError = DeviceError::new("link dark").into();
        assert_eq!(d.message(), "link dark");
        let i: CompileError = IrError::new("bad").into();
        assert_eq!(i.message(), "bad");
    }

    #[test]
    fn device_oom_lifts_to_compiler_oom() {
        let e: CompileError = DeviceError::out_of_memory(5, 2048, 1024).into();
        match &e {
            CompileError::OutOfMemory {
                core,
                needed,
                available,
                ..
            } => assert_eq!((*core, *needed, *available), (Some(5), 2048, 1024)),
            other => panic!("unexpected variant {other:?}"),
        }
        assert!(e.message().contains("out of memory"));
    }

    #[test]
    fn deadline_message_names_the_budget() {
        let e = CompileError::deadline(50, "0 of 3 operators searched");
        assert!(e.message().contains("50 ms"));
        assert!(matches!(
            e,
            CompileError::DeadlineExceeded { budget_ms: 50, .. }
        ));
    }
}
