//! Canonical index-space semantics of operators, and the glue that proves
//! a chosen plan against them.
//!
//! [`OperatorSemantics::of`] distils a [`t10_ir::Operator`] into the facts
//! translation validation is defined over: the iteration space, which axes
//! reduce, which axes each operand is *shared* along (the axes a rotation
//! ring must stream past every core), and the output shape. [`prove_plan`]
//! then lowers an (operator, plan) pair functionally and hands the
//! resulting program to `t10-prove`'s symbolic dataflow engine — plans the
//! functional lowering cannot express (padded partitions) are reported as
//! [`ProveOutcome::Skipped`] rather than silently passed.

use t10_ir::{AxisId, Operator};
use t10_prove::{ProofOutcome, Prover};
use t10_trace::Trace;

use crate::lower::lower_functional;
use crate::plan::Plan;

/// The index-space facts an operator's compiled program must respect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OperatorSemantics {
    /// Total iteration points (`Π` axis sizes): the exactly-once coverage
    /// obligation.
    pub iteration_points: u128,
    /// Axes absent from the output — iteration points along them merge
    /// into one output element via the operator's reduction.
    pub reduction_axes: Vec<AxisId>,
    /// Per input slot, the axes absent from that operand: the sub-tensor
    /// is shared by every core whose partition differs only along them
    /// (paper §4.1), so a valid plan must rotate it past all of them.
    pub shared_axes: Vec<Vec<AxisId>>,
    /// Output shape implied by the axes.
    pub output_shape: Vec<usize>,
    /// Whether any operand dimension is data-dependent (gather): those
    /// dimensions cannot be proved statically and are skipped.
    pub has_indirect: bool,
}

impl OperatorSemantics {
    /// Extracts the canonical semantics of one operator.
    pub fn of(op: &Operator) -> Self {
        Self {
            iteration_points: op.expr.iteration_points(),
            reduction_axes: op.expr.axes_missing_from_output(),
            shared_axes: (0..op.expr.num_inputs())
                .map(|s| op.expr.axes_missing_from_input(s))
                .collect(),
            output_shape: op.expr.output_shape(),
            has_indirect: op.has_indirect_access(),
        }
    }
}

/// The result of proving one (operator, plan) pair.
#[derive(Debug)]
pub enum ProveOutcome {
    /// The plan was lowered functionally and interpreted symbolically.
    /// (Boxed: a proof outcome carries the full report and certificate,
    /// dwarfing the skip arm.)
    Checked(Box<ProofOutcome>),
    /// The plan cannot be expressed by the functional lowering (padded
    /// partitions); nothing was claimed and nothing proved.
    Skipped {
        /// Why the lowering declined.
        reason: String,
    },
}

impl ProveOutcome {
    /// Whether a semantic obligation was refuted (skips never refute).
    pub fn refuted(&self) -> bool {
        match self {
            ProveOutcome::Checked(p) => !p.proved(),
            ProveOutcome::Skipped { .. } => false,
        }
    }

    /// The proof outcome, when the plan was actually checked.
    pub fn proof(&self) -> Option<&ProofOutcome> {
        match self {
            ProveOutcome::Checked(p) => Some(p),
            ProveOutcome::Skipped { .. } => None,
        }
    }
}

/// Proves that the compute-shift program a plan lowers to computes the
/// operator: exactly-once coverage, rotation provenance (σ/`rp` end to
/// end), output placement, reduction flow, and the dataflow lints.
pub fn prove_plan(op: &Operator, plan: &Plan, trace: &Trace) -> ProveOutcome {
    match lower_functional(op, plan) {
        Err(e) => ProveOutcome::Skipped {
            reason: e.to_string(),
        },
        Ok(f) => ProveOutcome::Checked(Box::new(
            Prover::new()
                .with_trace(trace.clone())
                .prove_program(&f.program, &f.output_buffers),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_ir::builders;

    #[test]
    fn matmul_semantics_are_canonical() {
        let op = builders::matmul(0, 1, 2, 8, 16, 4).expect("matmul");
        let s = OperatorSemantics::of(&op);
        assert_eq!(s.iteration_points, 8 * 16 * 4);
        assert_eq!(s.reduction_axes.len(), 1, "k reduces");
        assert_eq!(s.output_shape, vec![8, 4]);
        // A[m,k] is shared along n; B[k,n] is shared along m.
        assert_eq!(s.shared_axes.len(), 2);
        assert_eq!(s.shared_axes[0].len(), 1);
        assert_eq!(s.shared_axes[1].len(), 1);
        assert!(!s.has_indirect);
    }

    #[test]
    fn elementwise_semantics_have_no_sharing() {
        let op = builders::binary(0, 1, 2, vec![8, 8], t10_ir::Combine::Add).expect("binary add");
        let s = OperatorSemantics::of(&op);
        assert!(s.reduction_axes.is_empty());
        assert!(s.shared_axes.iter().all(Vec::is_empty));
    }
}
