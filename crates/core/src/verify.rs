//! Plan-level static verification: the rules that need [`Plan`] itself.
//!
//! `t10-verify` owns the diagnostic vocabulary and every program-level rule
//! (it sees only `t10-device` programs, so this crate can depend on it and
//! run it as a mandatory post-pass). The invariants below need the plan —
//! rotating paces, temporal factors, the diagonal placement — so they live
//! here and speak the same [`t10_verify::Diagnostic`] language:
//!
//! * **CAP03 / CAP01** — the plan's active footprint fits the capacity the
//!   search was bounded by, and its `F_op` product fits the chip;
//! * **RING01–RING03** — paces tile their axes, align to the minimum
//!   partition length (§4.2), and temporal factors divide their sharing;
//! * **RING07** — every lowered rotation's source core is the placement's
//!   upstream of its destination (the diagonal sigma, §4.4 Figure 10);
//! * **BSP04** — the lowered output buffers cover every output coordinate
//!   exactly once.

use std::collections::{HashMap, HashSet};

use t10_device::program::ShiftKind;
use t10_ir::Operator;
use t10_verify::{Diagnostic, Report, RuleId};

use crate::lower::FunctionalLowering;
use crate::placement::{upstream_coords, CoreGrid};
use crate::plan::Plan;
use crate::rtensor::dim_extent;
use crate::{CompileError, Result};

/// Output spaces larger than this are checked by element counts only;
/// smaller ones get exact coordinate-coverage enumeration. Functional
/// lowerings (the only path with output buffers) stay well under it.
const COVERAGE_ENUM_LIMIT: usize = 1 << 20;

/// Proves or refutes the plan-level rule inventory for one operator's plan.
///
/// `capacity` is the per-core byte budget the plan must fit (the compiler's
/// effective, fault-aware capacity); `num_cores` the physical core count.
pub fn verify_plan(op: &Operator, plan: &Plan, capacity: usize, num_cores: usize) -> Report {
    let mut report = Report::new();
    report.stats.rules_checked = RuleId::STRUCTURAL.len();
    if plan.cores_used > num_cores {
        report.push(
            Diagnostic::error(
                RuleId::CoreOutOfRange,
                format!(
                    "plan partitions {} onto {} cores but the chip has {num_cores}",
                    op.kind, plan.cores_used
                ),
            )
            .hint("the F_op product must not exceed the (surviving) core count"),
        );
    }
    if plan.mem_per_core > capacity {
        report.push(
            Diagnostic::error(
                RuleId::PlanMemOverflow,
                format!(
                    "plan for {} needs {} B per core but the capacity bound is {capacity} B",
                    op.kind, plan.mem_per_core
                ),
            )
            .hint("raise a temporal factor (smaller partitions, more rotation steps)"),
        );
    }
    // RING03: temporal factors must agree with their spatial sharing.
    for (s, slot) in plan.slots.iter().enumerate() {
        if slot.temporal.factor <= 1 {
            continue;
        }
        let factor = slot.temporal.factor;
        let Some(dim) = slot.temporal.dim else {
            report.push(
                Diagnostic::error(
                    RuleId::FactorSharing,
                    format!("slot {s}: temporal factor {factor} without a tensor dimension"),
                )
                .hint("a rotating rTensor names the dimension its f_t partitions"),
            );
            continue;
        };
        let sharing = slot.spatial.sharing;
        if sharing % factor != 0 {
            report.push(
                Diagnostic::error(
                    RuleId::FactorSharing,
                    format!("slot {s}: temporal factor {factor} does not divide sharing {sharing}"),
                )
                .hint("f_t must divide the number of cores sharing the sub-tensor (§4.2)"),
            );
        } else if slot.rings != sharing / factor {
            report.push(
                Diagnostic::error(
                    RuleId::FactorSharing,
                    format!(
                        "slot {s}: {} rings recorded for sharing {sharing} / factor {factor}",
                        slot.rings
                    ),
                )
                .hint("rings = sharing / f_t; rebuild the plan"),
            );
        }
        match slot.spatial.dims.get(dim) {
            None => report.push(
                Diagnostic::error(
                    RuleId::FactorSharing,
                    format!("slot {s}: temporal dimension {dim} out of range"),
                )
                .hint("the rotating dimension must exist on the tensor"),
            ),
            Some(di) => {
                if !di.indirect && slot.plen * factor != di.extent {
                    report.push(
                        Diagnostic::error(
                            RuleId::FactorSharing,
                            format!(
                                "slot {s}: plen {} × factor {factor} ≠ extent {}",
                                slot.plen, di.extent
                            ),
                        )
                        .hint("axis-mapped rotations require an exact temporal split"),
                    );
                }
            }
        }
    }
    // RING01 / RING02 per rotation level. Alignment (RING02) is only
    // meaningful once the pace tiles the axis, so a level failing RING01
    // reports that alone.
    for (li, level) in plan.rotations.iter().enumerate() {
        match level.axis {
            Some(k) => {
                let extent = plan.tiles.get(k).copied().unwrap_or(0);
                if level.rp == 0 || extent % level.rp != 0 || level.steps * level.rp != extent {
                    report.push(
                        Diagnostic::error(
                            RuleId::PaceDividesExtent,
                            format!(
                                "level {li}: pace {} × {} steps does not tile axis {k}'s \
                                 temporal extent {extent}",
                                level.rp, level.steps
                            ),
                        )
                        .hint("rp must divide the per-core tile so the rotation closes (§4.2)"),
                    );
                    continue;
                }
                let min_plen = level
                    .slots
                    .iter()
                    .filter_map(|&s| plan.slots.get(s).map(|sl| sl.plen))
                    .min();
                if let Some(min_plen) = min_plen {
                    if level.rp != min_plen {
                        report.push(
                            Diagnostic::error(
                                RuleId::PaceAlignment,
                                format!(
                                    "level {li}: pace {} but the smallest rotating partition \
                                     has length {min_plen}",
                                    level.rp
                                ),
                            )
                            .hint(
                                "rTensors rotating along one axis share rp = min(plen) \
                                 (§4.2 rules 1–3)",
                            ),
                        );
                    }
                }
            }
            None => {
                // Indirect (virtual-axis) rotation: exactly one slot, whole
                // partitions shift each step.
                for &s in &level.slots {
                    let Some(slot) = plan.slots.get(s) else {
                        continue;
                    };
                    if level.steps != slot.temporal.factor || level.rp != slot.plen {
                        report.push(
                            Diagnostic::error(
                                RuleId::PaceDividesExtent,
                                format!(
                                    "level {li}: indirect rotation of slot {s} runs {} steps \
                                     at pace {} (expected {} steps at plen {})",
                                    level.steps, level.rp, slot.temporal.factor, slot.plen
                                ),
                            )
                            .hint("an indirect rotation shifts one whole partition per step"),
                        );
                    }
                }
            }
        }
    }
    report
}

/// Proves or refutes the lowering-level rules for one functional lowering:
/// RING07 (rotations follow the placement's upstream) and BSP04 (output
/// coverage).
pub fn verify_lowering(op: &Operator, plan: &Plan, lowering: &FunctionalLowering) -> Report {
    let mut report = Report::new();
    report.stats.rules_checked = RuleId::STRUCTURAL.len();
    let grid = CoreGrid::new(&plan.config.f_op);

    // RING07: map each input buffer back to its (slot, core) and require
    // every rotation's source to be the placement's upstream neighbour.
    let mut owner: HashMap<usize, (usize, usize)> = HashMap::new();
    for (s, bufs) in lowering.input_buffers.iter().enumerate() {
        for (core, &b) in bufs.iter().enumerate() {
            owner.insert(b, (s, core));
        }
    }
    for (step, ss) in lowering.program.steps.iter().enumerate() {
        for shift in &ss.exchange {
            if !matches!(shift.kind, ShiftKind::RotateSlices { .. }) {
                continue;
            }
            let (Some(&(src_slot, src_core)), Some(&(dst_slot, dst_core))) =
                (owner.get(&shift.src), owner.get(&shift.dst))
            else {
                continue; // rotations only ever touch input buffers
            };
            if src_slot != dst_slot {
                report.push(
                    Diagnostic::error(
                        RuleId::SigmaMismatch,
                        format!(
                            "superstep {step}: rotation moves slot {src_slot}'s partition into \
                             slot {dst_slot}'s buffer"
                        ),
                    )
                    .at_step(step)
                    .at_buffer(shift.dst)
                    .hint("a ring rotates one rTensor; shifts never cross tensors"),
                );
                continue;
            }
            let Some(slot) = plan.slots.get(src_slot) else {
                continue;
            };
            let expected = grid.linear(&upstream_coords(
                &grid.coords(dst_core),
                &slot.spatial.missing_axes,
                &plan.config.f_op,
                slot.temporal.factor,
            ));
            if src_core != expected {
                report.push(
                    Diagnostic::error(
                        RuleId::SigmaMismatch,
                        format!(
                            "superstep {step}: core {dst_core} receives slot {src_slot}'s \
                             rotation from core {src_core}, but the diagonal placement's \
                             upstream is core {expected}"
                        ),
                    )
                    .at_step(step)
                    .at_core(dst_core)
                    .at_buffer(shift.dst)
                    .hint("shift endpoints must follow σ's ring order (§4.4, Figure 10)"),
                );
            }
        }
    }

    // BSP04: the roots must cover every output coordinate exactly once.
    let sizes: Vec<usize> = op.expr.axes.iter().map(|a| a.size).collect();
    let expected: usize = op
        .expr
        .output
        .iter()
        .map(|e| dim_extent(e, &sizes))
        .product();
    let mut total = 0usize;
    let mut seen: HashSet<Vec<usize>> = HashSet::new();
    let mut duplicated = false;
    let enumerate = expected <= COVERAGE_ENUM_LIMIT;
    for &root in &lowering.output_buffers {
        let Some(b) = lowering.program.buffers.get(root) else {
            continue; // dangling roots are BSP02 at program level
        };
        total += b.elements();
        if enumerate {
            for tuple in CoordIter::new(&b.coords) {
                duplicated |= !seen.insert(tuple);
            }
        }
    }
    let covered = if enumerate { seen.len() } else { total };
    if duplicated {
        report.push(
            Diagnostic::error(
                RuleId::OutputCoverage,
                format!(
                    "{}: an output coordinate is produced by two root buffers",
                    op.kind
                ),
            )
            .hint("every output sub-tensor has exactly one final owner"),
        );
    }
    if covered != expected {
        report.push(
            Diagnostic::error(
                RuleId::OutputCoverage,
                format!(
                    "{}: root buffers cover {covered} of {expected} output elements",
                    op.kind
                ),
            )
            .hint("the reduction roots must tile the whole output exactly once"),
        );
    }
    report
}

/// Fails compilation when a report carries error findings.
pub fn require(report: Report) -> Result<()> {
    if report.is_ok() {
        Ok(())
    } else {
        Err(CompileError::verification(report.diagnostics))
    }
}

/// A single-finding verification error: the typed replacement for what used
/// to be an `assert!`/`expect` in plan construction and lowering.
pub(crate) fn invariant(rule: RuleId, message: impl Into<String>) -> CompileError {
    CompileError::verification(vec![Diagnostic::error(rule, message)])
}

/// Odometer over a buffer's per-dimension coordinate lists, yielding global
/// coordinate tuples.
struct CoordIter<'a> {
    coords: &'a [Vec<usize>],
    idx: Vec<usize>,
    done: bool,
}

impl<'a> CoordIter<'a> {
    fn new(coords: &'a [Vec<usize>]) -> Self {
        Self {
            coords,
            idx: vec![0; coords.len()],
            done: coords.iter().any(|c| c.is_empty()),
        }
    }
}

impl Iterator for CoordIter<'_> {
    type Item = Vec<usize>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        let tuple: Vec<usize> = self
            .idx
            .iter()
            .zip(self.coords)
            .map(|(&i, c)| c.get(i).copied().unwrap_or(0))
            .collect();
        // Tick the odometer, last dimension fastest.
        self.done = true;
        for (slot, c) in self.idx.iter_mut().zip(self.coords).rev() {
            *slot += 1;
            if *slot < c.len() {
                self.done = false;
                break;
            }
            *slot = 0;
        }
        Some(tuple)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower_functional;
    use crate::plan::{PlanConfig, TemporalChoice};
    use t10_ir::builders;

    fn fig7() -> (Operator, Plan) {
        let op = builders::matmul(0, 1, 2, 2, 6, 3).unwrap();
        let cfg = PlanConfig {
            f_op: vec![2, 1, 3],
            temporal: vec![TemporalChoice::rotate(1, 3), TemporalChoice::rotate(0, 2)],
        };
        let plan = Plan::build(&op, &[2, 2], 2, cfg).unwrap();
        (op, plan)
    }

    #[test]
    fn valid_plan_and_lowering_verify_clean() {
        let (op, plan) = fig7();
        let r = verify_plan(&op, &plan, usize::MAX, 6);
        assert!(r.is_ok(), "plan diagnostics: {:?}", r.diagnostics);
        let lowering = lower_functional(&op, &plan).unwrap();
        let r = verify_lowering(&op, &plan, &lowering);
        assert!(r.is_ok(), "lowering diagnostics: {:?}", r.diagnostics);
    }

    #[test]
    fn corrupted_pace_is_ring01() {
        let (op, mut plan) = fig7();
        plan.rotations[0].rp = 5; // does not divide the k-tile of 6
        let r = verify_plan(&op, &plan, usize::MAX, 6);
        assert_eq!(r.violated_rules(), vec!["RING01"]);
    }

    #[test]
    fn misaligned_pace_is_ring02() {
        let (op, mut plan) = fig7();
        // rp 1 still tiles the extent (6 = 6×1) but violates min-plen
        // alignment (min plen is 2).
        plan.rotations[0].rp = 1;
        plan.rotations[0].steps = 6;
        let r = verify_plan(&op, &plan, usize::MAX, 6);
        assert_eq!(r.violated_rules(), vec!["RING02"]);
    }

    #[test]
    fn corrupted_factor_is_ring03() {
        let (op, mut plan) = fig7();
        plan.slots[1].temporal.factor = 4; // sharing is 2 per ring grouping
        let r = verify_plan(&op, &plan, usize::MAX, 6);
        assert!(r.violated_rules().contains(&"RING03"));
    }

    #[test]
    fn undersized_capacity_is_cap03_and_small_chip_is_cap01() {
        let (op, plan) = fig7();
        let r = verify_plan(&op, &plan, 1, 6);
        assert_eq!(r.violated_rules(), vec!["CAP03"]);
        let r = verify_plan(&op, &plan, usize::MAX, 4);
        assert_eq!(r.violated_rules(), vec!["CAP01"]);
    }

    #[test]
    fn swapped_ring_destinations_are_ring07() {
        let (op, plan) = fig7();
        let mut lowering = lower_functional(&op, &plan).unwrap();
        // Swap the destinations of the first two rotations in step 0: the
        // per-step degrees stay 1-in/1-out (RING04/05 are blind to it) but
        // the ring no longer follows the placement's σ.
        let step = &mut lowering.program.steps[0];
        let rotates: Vec<usize> = step
            .exchange
            .iter()
            .enumerate()
            .filter(|(_, s)| matches!(s.kind, ShiftKind::RotateSlices { .. }))
            .map(|(i, _)| i)
            .collect();
        assert!(rotates.len() >= 2, "fig7 rotates on every non-final step");
        let (a, b) = (rotates[0], rotates[1]);
        let tmp = step.exchange[a].dst;
        step.exchange[a].dst = step.exchange[b].dst;
        step.exchange[b].dst = tmp;
        let r = verify_lowering(&op, &plan, &lowering);
        assert_eq!(r.violated_rules(), vec!["RING07"]);
    }

    #[test]
    fn dropped_root_is_bsp04() {
        let (op, plan) = fig7();
        let mut lowering = lower_functional(&op, &plan).unwrap();
        lowering.output_buffers.pop();
        let r = verify_lowering(&op, &plan, &lowering);
        assert_eq!(r.violated_rules(), vec!["BSP04"]);
    }

    #[test]
    fn require_surfaces_diagnostics_as_compile_error() {
        let (op, plan) = fig7();
        let err = require(verify_plan(&op, &plan, 1, 6)).unwrap_err();
        match err {
            CompileError::Verification { diagnostics } => {
                assert_eq!(diagnostics.len(), 1);
                assert_eq!(diagnostics[0].rule, RuleId::PlanMemOverflow);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
