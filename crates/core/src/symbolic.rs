//! Shape-parametric symbolic certification: the operator-side derivation.
//!
//! `t10_verify::symbolic` supplies the pure abstract domain (intervals,
//! monotone expressions, regions, the `t10.cert.symbolic.v1` codec);
//! `t10_prove::family` classifies the semantic rules. This module connects
//! both to concrete compiler state: it derives the **symbolic SRAM
//! high-water expression** of a plan configuration by mirroring
//! [`Plan::build`]'s `mem_per_core` derivation term-for-term over symbolic
//! extents, widens a validity region around the compiled shape, and owns
//! certificate derivation, validation, and instantiation for the
//! family-level cache path.
//!
//! The symbolic dimensions of a family are the operator's axes (in axis
//! order, named by their axis names) followed by one dimension per indirect
//! input dimension (gather tables, named `ind{slot}d{dim}`) — exactly the
//! extents [`crate::cache::family_signature`] erases.
//!
//! Soundness leans on two facts proven in `t10_verify::symbolic`:
//! every footprint expression is built from monotone constructors, so its
//! maximum over a region sits at the upper corner; and the pointwise
//! minimum of monotone functions is monotone, so proving that the *most
//! frugal* configuration fits at the upper corner proves that at every
//! shape in the region at least one cached configuration fits.

use t10_ir::{IndexExpr, Operator};
use t10_prove::family as prove_family;
use t10_verify::symbolic::{
    closed_structural, residual_structural, Region, SymDim, SymError, SymExpr, SymbolicCert,
};
use t10_verify::{Diagnostic, Report, RuleId};

use crate::cache::{decode_frontier, encode_frontier, family_digest};
use crate::plan::PlanConfig;
use crate::search::SearchStats;

/// Separator between the certificate and the frontier payload inside one
/// family-level cache entry.
const FAMILY_SEPARATOR: &str = "---frontier---\n";

/// Separator between certificate *boxes* inside one family-level cache
/// entry. A family's proven validity is a union of boxes: the family key
/// erases every extent, so shapes as different as a 112×112/3-channel and
/// a 7×7/512-channel convolution share one key, and the footprint bound
/// makes a single box around both corners unprovable. Each box carries
/// its own certificate and seed frontier; lookup serves from any covering
/// box, recording appends a box when none covers the new shape.
const BOX_SEPARATOR: &str = "\n===box===\n";

/// How many boxes one family entry may accumulate before recording stops
/// appending. Bounds payload growth under an adversarial shape stream; a
/// shape no box covers simply pays a fresh search.
pub const MAX_FAMILY_BOXES: usize = 8;

/// How many times region widening may double one dimension's upper bound.
/// Six rounds cover a 64× extent range (`batch ∈ [1, 64]` from a batch-1
/// compile) — ample for the cross-shape reuse the family cache targets
/// while keeping derivation cost bounded.
const WIDEN_ROUNDS: u32 = 6;

/// The symbolic dimension names of an operator's family: axis names in
/// axis order, then `ind{slot}d{dim}` per indirect input dimension.
pub fn family_dim_names(op: &Operator) -> Vec<String> {
    let mut names: Vec<String> = op.expr.axes.iter().map(|a| a.name.clone()).collect();
    for (s, dims) in op.expr.inputs.iter().enumerate() {
        for (d, e) in dims.iter().enumerate() {
            if e.is_indirect() {
                names.push(format!("ind{s}d{d}"));
            }
        }
    }
    names
}

/// The concrete extent assignment of an operator under its own shape, in
/// [`family_dim_names`] order.
pub fn family_extents(op: &Operator) -> Vec<u64> {
    let mut extents: Vec<u64> = op.expr.axes.iter().map(|a| a.size as u64).collect();
    for dims in &op.expr.inputs {
        for e in dims {
            if let Some(size) = e.indirect_size {
                extents.push(size as u64);
            }
        }
    }
    extents
}

/// Index of the symbolic dimension carrying input slot `s`, dimension `d`'s
/// indirect extent (after the axis block).
fn indirect_dim_index(op: &Operator, slot: usize, dim: usize) -> usize {
    let mut idx = op.expr.axes.len();
    for (s, dims) in op.expr.inputs.iter().enumerate() {
        for (d, e) in dims.iter().enumerate() {
            if e.is_indirect() {
                if s == slot && d == dim {
                    return idx;
                }
                idx += 1;
            }
        }
    }
    idx
}

/// Symbolic per-core tile of axis `a`: `ceil(L_a / F_op[a])`, mirroring
/// [`crate::rtensor::tiles`].
fn tile_expr(axis: usize, f_op: usize) -> SymExpr {
    SymExpr::DivCeil(Box::new(SymExpr::Dim(axis)), (f_op.max(1)) as u64)
}

/// Symbolic per-core extent of one tensor dimension, mirroring
/// [`crate::rtensor::dim_extent`]: `Σ stride·(tile_a − 1) + 1` for affine
/// dimensions (the offset does not enter the extent), the full indirect
/// size for indirect ones.
fn extent_expr(op: &Operator, slot: usize, dim: usize, e: &IndexExpr, f_op: &[usize]) -> SymExpr {
    if e.is_indirect() {
        return SymExpr::Dim(indirect_dim_index(op, slot, dim));
    }
    let mut terms: Vec<SymExpr> = e
        .terms
        .iter()
        .map(|t| {
            SymExpr::Prod(vec![
                SymExpr::Const(t.stride as u64),
                SymExpr::SatSub(Box::new(tile_expr(t.axis, f_op[t.axis])), 1),
            ])
        })
        .collect();
    terms.push(SymExpr::Const(1));
    SymExpr::Sum(terms)
}

/// The symbolic SRAM high-water of one plan configuration, in bytes:
/// `Σ_slots partition_bytes + out partition_bytes`, mirroring
/// [`Plan::build`]'s `mem_per_core` term-for-term. A rotating slot's
/// partition keeps `ceil(extent / f_t)` slices of the temporal dimension
/// and the full extent of every other dimension.
///
/// [`Plan::build`]: crate::plan::Plan::build
pub fn footprint_expr(
    op: &Operator,
    dtype_bytes: &[usize],
    out_dtype_bytes: usize,
    config: &PlanConfig,
) -> SymExpr {
    let expr = &op.expr;
    let mut total: Vec<SymExpr> = Vec::with_capacity(expr.num_inputs() + 1);
    for (s, (dims, t)) in expr.inputs.iter().zip(&config.temporal).enumerate() {
        let mut factors: Vec<SymExpr> =
            vec![SymExpr::Const(*dtype_bytes.get(s).unwrap_or(&1) as u64)];
        for (d, e) in dims.iter().enumerate() {
            let ext = extent_expr(op, s, d, e, &config.f_op);
            if t.factor > 1 && t.dim == Some(d) {
                // plen = ceil(extent / f_t); the partition holds plen
                // slices of this dimension instead of the full extent.
                factors.push(SymExpr::DivCeil(Box::new(ext), t.factor as u64));
            } else {
                factors.push(ext);
            }
        }
        total.push(SymExpr::Prod(factors));
    }
    let mut out_factors: Vec<SymExpr> = vec![SymExpr::Const(out_dtype_bytes as u64)];
    for (d, e) in expr.output.iter().enumerate() {
        // The output never rotates; slot index is only used for indirect
        // lookups, which a valid output access cannot contain.
        out_factors.push(extent_expr(op, usize::MAX, d, e, &config.f_op));
    }
    total.push(SymExpr::Prod(out_factors));
    SymExpr::Sum(total)
}

/// Renders the symbolic ring-pace expression of one configuration: per
/// rotation group, `rp = min` over the group's partition lengths
/// (`ceil(extent / f_t)`, §4.2 alignment), groups joined by `; `. `"-"`
/// when the configuration has no rotation.
pub fn pace_expr_render(op: &Operator, config: &PlanConfig, region: &Region) -> String {
    // Group rotating slots by rotation axis exactly as `Plan::build` does.
    let mut groups: Vec<(Option<usize>, Vec<String>)> = Vec::new();
    for (s, (dims, t)) in op.expr.inputs.iter().zip(&config.temporal).enumerate() {
        if t.factor <= 1 {
            continue;
        }
        let Some(d) = t.dim else { continue };
        let Some(e) = dims.get(d) else { continue };
        let plen = SymExpr::DivCeil(
            Box::new(extent_expr(op, s, d, e, &config.f_op)),
            t.factor as u64,
        )
        .render(region);
        let axis = e.single_axis();
        if axis.is_some() {
            if let Some(g) = groups.iter_mut().find(|(a, _)| *a == axis) {
                g.1.push(plen);
                continue;
            }
        }
        groups.push((axis, vec![plen]));
    }
    if groups.is_empty() {
        return "-".to_string();
    }
    groups
        .iter()
        .map(|(_, plens)| {
            if plens.len() == 1 {
                plens[0].clone()
            } else {
                format!("min({})", plens.join(", "))
            }
        })
        .collect::<Vec<_>>()
        .join("; ")
}

/// The family's high-water at one corner, over pre-built footprint
/// expressions: the **minimum** across the cached configurations — at any
/// shape where this fits the capacity, at least one configuration is
/// servable. Expressions are built once per configuration (not per corner
/// probe): the region-widening loop evaluates many corners.
fn min_eval(exprs: &[SymExpr], assign: &[u64]) -> Result<(u64, usize), SymError> {
    let mut best: Option<(u64, usize)> = None;
    for (i, expr) in exprs.iter().enumerate() {
        let v = expr.eval(assign)?;
        if best.map(|(b, _)| v < b).unwrap_or(true) {
            best = Some((v, i));
        }
    }
    best.ok_or(SymError::Overflow {
        op: "min",
        lhs: 0,
        rhs: 0,
    })
}

/// [`min_eval`] building the expressions in place (validation runs it for
/// a single corner, so pre-building buys nothing there).
fn min_footprint_at(
    op: &Operator,
    dtype_bytes: &[usize],
    out_dtype_bytes: usize,
    configs: &[PlanConfig],
    assign: &[u64],
) -> Result<(u64, usize), SymError> {
    let exprs: Vec<SymExpr> = configs
        .iter()
        .map(|c| footprint_expr(op, dtype_bytes, out_dtype_bytes, c))
        .collect();
    min_eval(&exprs, assign)
}

/// Derives a `t10.cert.symbolic.v1` certificate for an operator family from
/// the frontier configurations a concrete compile produced.
///
/// The validity region starts at the compiled shape and widens each
/// dimension's upper bound by doubling (up to [`WIDEN_ROUNDS`] times) while
/// the most frugal configuration still fits `capacity` at the region's
/// upper corner; lower bounds drop to 1 (capacity bounds are monotone, so
/// anything below the proven corner is covered). Closed/residual rule sets
/// come from the structural closure (`t10_verify::symbolic`) and the
/// semantic classification (`t10_prove::family`).
pub fn derive_cert(
    op: &Operator,
    dtype_bytes: &[usize],
    out_dtype_bytes: usize,
    configs: &[PlanConfig],
    capacity: u64,
) -> Result<SymbolicCert, SymError> {
    let names = family_dim_names(op);
    let concrete = family_extents(op);
    let mut his = concrete.clone();
    let exprs: Vec<SymExpr> = configs
        .iter()
        .map(|c| footprint_expr(op, dtype_bytes, out_dtype_bytes, c))
        .collect();
    // Widen one dimension at a time against the current upper corner; the
    // accepted corner is re-proven as a whole below, so the order only
    // affects how generous each dimension's bound comes out, not soundness.
    for d in 0..his.len() {
        for _ in 0..WIDEN_ROUNDS {
            let Some(doubled) = his[d].checked_mul(2) else {
                break;
            };
            let mut corner = his.clone();
            corner[d] = doubled;
            match min_eval(&exprs, &corner) {
                Ok((peak, _)) if peak <= capacity => his[d] = doubled,
                _ => break,
            }
        }
    }
    let region = Region::new(
        names
            .iter()
            .zip(&his)
            .map(|(n, &hi)| SymDim::new(n.clone(), 1, hi))
            .collect(),
    );
    let (peak_hi, frugal) = min_eval(&exprs, &region.hi_corner())?;
    let frugal_cfg = &configs[frugal];
    let sem = prove_family::classify(op);
    let mut closed = closed_structural();
    closed.extend(sem.closed);
    let mut residual = residual_structural();
    residual.extend(sem.residual);
    let peak_expr = footprint_expr(op, dtype_bytes, out_dtype_bytes, frugal_cfg).render(&region);
    let pace_expr = pace_expr_render(op, frugal_cfg, &region);
    Ok(SymbolicCert {
        family: family_digest(op, dtype_bytes, out_dtype_bytes),
        region,
        capacity,
        peak_hi,
        peak_expr,
        pace_expr,
        closed,
        residual,
    })
}

/// Validates a (possibly cache-loaded, possibly corrupted) certificate
/// against the operator family it claims to cover.
///
/// Checks, each mapped to exactly one SYM rule so the mutation suite can
/// pin them individually:
///
/// * **SYM06** — the recorded family digest does not match this operator's
///   shape-erased signature (stale or transplanted entry);
/// * **SYM03** — malformed region (empty, inverted, zero lower bound,
///   duplicate names, wrong arity/names for this family) or overlapping
///   closed/residual sets;
/// * **SYM02** — the recorded region outgrew the proof: the re-derived
///   high-water of the most frugal configuration at the region's upper
///   corner exceeds the capacity (a *widened region* corruption changes
///   the corner, so re-deriving catches it even when `peak_hi` was left
///   consistent);
/// * **SYM04** — a rule this family requires to be re-checked per
///   instantiation is missing from the residual set (a *dropped residual*
///   corruption);
/// * **SYM01** — symbolic arithmetic overflowed while re-deriving.
pub fn validate_cert(
    cert: &SymbolicCert,
    op: &Operator,
    dtype_bytes: &[usize],
    out_dtype_bytes: usize,
    configs: &[PlanConfig],
    capacity: u64,
) -> Report {
    let mut report = cert.validate_shape();
    let expected = family_digest(op, dtype_bytes, out_dtype_bytes);
    if cert.family != expected {
        report.push(
            Diagnostic::error(
                RuleId::SymFamilyKeyMismatch,
                format!(
                    "certificate covers family {} but the operator's family is {expected}",
                    cert.family
                ),
            )
            .hint("the family entry is stale or transplanted; recompile to refresh it"),
        );
    }
    let names = family_dim_names(op);
    let cert_names: Vec<&str> = cert.region.dims.iter().map(|d| d.name.as_str()).collect();
    if cert_names != names.iter().map(String::as_str).collect::<Vec<_>>() {
        report.push(Diagnostic::error(
            RuleId::SymRegionMalformed,
            format!(
                "region dimensions [{}] do not name this family's dimensions [{}]",
                cert_names.join(", "),
                names.join(", ")
            ),
        ));
    } else if !configs.is_empty() {
        match min_footprint_at(
            op,
            dtype_bytes,
            out_dtype_bytes,
            configs,
            &cert.region.hi_corner(),
        ) {
            Ok((peak, _)) => {
                if peak > capacity {
                    report.push(
                        Diagnostic::error(
                            RuleId::SymRegionUnprovable,
                            format!(
                                "re-derived SRAM high-water {peak} B at the upper corner of {} \
                                 exceeds per-core capacity {capacity} B",
                                cert.region.render()
                            ),
                        )
                        .hint("the recorded validity region is wider than the footprint proof"),
                    );
                }
            }
            Err(e) => report.push(e.diagnostic()),
        }
    }
    let mut required = residual_structural();
    required.extend(prove_family::classify(op).residual);
    for r in required {
        if !cert.residual.contains(&r) {
            report.push(
                Diagnostic::error(
                    RuleId::SymResidualIncomplete,
                    format!(
                        "rule {} must be re-checked per instantiation but is missing from the \
                         residual set",
                        r.id()
                    ),
                )
                .hint("a family certificate may narrow the region, never the residual set"),
            );
        }
    }
    report
}

/// Checks that a certificate's validity region covers one concrete shape.
///
/// * **SYM03** when the shape's dimension count disagrees with the region;
/// * **SYM05** when the shape falls outside the region — the diagnostic
///   carries both the violated region and the concrete extents so JSON
///   consumers see exactly which bound failed.
pub fn check_coverage(cert: &SymbolicCert, op: &Operator) -> Report {
    let mut report = Report::new();
    report.stats.rules_checked = RuleId::SYMBOLIC.len();
    let extents = family_extents(op);
    match cert.region.covers(&extents) {
        None => report.push(Diagnostic::error(
            RuleId::SymRegionMalformed,
            format!(
                "shape has {} family dimensions but the region has {}",
                extents.len(),
                cert.region.dims.len()
            ),
        )),
        Some(false) => {
            let shape = extents
                .iter()
                .map(u64::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            report.push(
                Diagnostic::error(
                    RuleId::SymRegionNotCovering,
                    format!(
                        "shape ({shape}) lies outside the validity region {}",
                        cert.region.render()
                    ),
                )
                .hint("compile this shape cold once; the family cache will widen on record"),
            );
        }
        Some(true) => {}
    }
    report
}

/// Folds a *concrete* rule report into the symbolic verdict for one
/// instantiation of a family certificate:
///
/// * a concrete **error** on a rule the certificate claims *closed* is a
///   soundness breach — the family proof was supposed to cover this shape —
///   and surfaces as **SYM02** alongside the original diagnostic;
/// * a concrete **error** on a *residual* rule is the expected re-check
///   refusing this instantiation, and surfaces as **SYM07**.
///
/// Diagnostics on rules outside the certificate (graph-level rules, other
/// SYM rules) pass through untouched, so on a clean artifact the folded
/// report is byte-identical to the concrete one — the differential
/// guarantee the zoo sweep pins.
pub fn fold_concrete_report(cert: &SymbolicCert, concrete: Report) -> Report {
    let mut out = Report::new();
    out.stats = concrete.stats;
    let mut escalations: Vec<Diagnostic> = Vec::new();
    for d in &concrete.diagnostics {
        if d.severity == t10_verify::Severity::Error {
            if cert.closed.contains(&d.rule) {
                escalations.push(
                    Diagnostic::error(
                        RuleId::SymRegionUnprovable,
                        format!(
                            "closed rule {} was refuted concretely inside the validity region {}",
                            d.rule.id(),
                            cert.region.render()
                        ),
                    )
                    .hint("the family proof is unsound for this shape; discard the certificate"),
                );
            } else if cert.residual.contains(&d.rule) {
                escalations.push(Diagnostic::error(
                    RuleId::SymResidualRefuted,
                    format!(
                        "residual rule {} refuted this instantiation: {}",
                        d.rule.id(),
                        d.message
                    ),
                ));
            }
        }
    }
    for d in concrete.diagnostics {
        out.push(d);
    }
    for d in escalations {
        out.push(d);
    }
    out
}

/// Serializes one family-level cache entry: the certificate followed by the
/// frontier configurations it covers.
pub fn encode_family_entry(
    cert: &SymbolicCert,
    configs: &[PlanConfig],
    stats: &SearchStats,
) -> String {
    format!(
        "{}{FAMILY_SEPARATOR}{}",
        cert.encode(),
        encode_frontier(configs, stats)
    )
}

/// Parses a family-level cache entry. `None` on any malformation — the
/// caller treats that as a cache miss (never an error). A multi-box
/// payload decodes to its first box; use [`decode_family_entries`] to see
/// the whole union.
pub fn decode_family_entry(payload: &str) -> Option<(SymbolicCert, Vec<PlanConfig>, SearchStats)> {
    let first = payload.split(BOX_SEPARATOR).next()?;
    let (cert_text, frontier_text) = first.split_once(FAMILY_SEPARATOR)?;
    let cert = SymbolicCert::decode(cert_text)?;
    let (configs, stats) = decode_frontier(frontier_text)?;
    Some((cert, configs, stats))
}

/// Serialises a whole family entry — the union of certificate boxes.
pub fn encode_family_entries(entries: &[(SymbolicCert, Vec<PlanConfig>, SearchStats)]) -> String {
    entries
        .iter()
        .map(|(cert, configs, stats)| encode_family_entry(cert, configs, stats))
        .collect::<Vec<_>>()
        .join(BOX_SEPARATOR)
}

/// Parses every certificate box of a family entry. `None` if *any* box is
/// malformed: a payload that is partially garbage is not trusted at all,
/// and the caller treats the whole entry as a miss.
pub fn decode_family_entries(
    payload: &str,
) -> Option<Vec<(SymbolicCert, Vec<PlanConfig>, SearchStats)>> {
    let mut boxes = Vec::new();
    for part in payload.split(BOX_SEPARATOR) {
        let (cert_text, frontier_text) = part.split_once(FAMILY_SEPARATOR)?;
        let cert = SymbolicCert::decode(cert_text)?;
        let (configs, stats) = decode_frontier(frontier_text)?;
        boxes.push((cert, configs, stats));
    }
    if boxes.is_empty() {
        None
    } else {
        Some(boxes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{Plan, TemporalChoice};
    use t10_ir::builders::{self, Conv2dCfg};

    fn configs_for(op: &Operator) -> Vec<PlanConfig> {
        // A couple of hand-rolled feasible configurations per operator,
        // mirroring what a tiny search would keep.
        match op.expr.axes.len() {
            2 => vec![PlanConfig {
                f_op: vec![2, 1],
                temporal: vec![TemporalChoice::none(); op.expr.num_inputs()],
            }],
            3 => vec![
                PlanConfig {
                    f_op: vec![2, 1, 2],
                    temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
                },
                PlanConfig {
                    f_op: vec![2, 1, 3],
                    temporal: vec![TemporalChoice::rotate(1, 3), TemporalChoice::rotate(0, 2)],
                },
            ],
            _ => vec![PlanConfig {
                f_op: vec![1; op.expr.axes.len()],
                temporal: vec![TemporalChoice::none(); op.expr.num_inputs()],
            }],
        }
    }

    /// The load-bearing equality: the symbolic footprint evaluated at the
    /// operator's own extents is exactly `Plan::build`'s `mem_per_core`.
    #[test]
    fn footprint_expr_matches_plan_build() {
        let cases: Vec<(Operator, Vec<usize>, usize)> = vec![
            (
                builders::matmul(0, 1, 2, 64, 36, 48).unwrap(),
                vec![2, 2],
                2,
            ),
            (builders::matmul(0, 1, 2, 2, 6, 3).unwrap(), vec![2, 2], 2),
            (
                builders::conv2d(
                    0,
                    1,
                    2,
                    Conv2dCfg {
                        batch: 1,
                        c_in: 4,
                        c_out: 8,
                        h_out: 16,
                        w_out: 16,
                        kh: 3,
                        kw: 3,
                        stride: 1,
                    },
                )
                .unwrap(),
                vec![2, 2],
                2,
            ),
            (
                builders::gather(0, 1, 2, 1000, 32, 8).unwrap(),
                vec![4, 4],
                4,
            ),
        ];
        for (op, dtypes, out_dtype) in cases {
            let extents = family_extents(&op);
            for config in configs_for(&op) {
                let plan = match Plan::build(&op, &dtypes, out_dtype, config.clone()) {
                    Ok(p) => p,
                    Err(_) => continue,
                };
                let sym = footprint_expr(&op, &dtypes, out_dtype, &config)
                    .eval(&extents)
                    .unwrap();
                assert_eq!(
                    sym, plan.mem_per_core as u64,
                    "{:?} under {:?}",
                    op.kind, config
                );
            }
        }
    }

    #[test]
    fn family_dims_cover_axes_and_indirects() {
        let mm = builders::matmul(0, 1, 2, 8, 8, 8).unwrap();
        assert_eq!(family_dim_names(&mm), vec!["m", "k", "n"]);
        assert_eq!(family_extents(&mm), vec![8, 8, 8]);
        let g = builders::gather(0, 1, 2, 1000, 32, 8).unwrap();
        let names = family_dim_names(&g);
        assert_eq!(names.len(), family_extents(&g).len());
        assert!(names.iter().any(|n| n.starts_with("ind")));
        assert!(family_extents(&g).contains(&1000));
    }

    #[test]
    fn derive_validate_instantiate_round_trip() {
        let op = builders::matmul(0, 1, 2, 64, 36, 48).unwrap();
        let (dtypes, out): (Vec<usize>, usize) = (vec![2, 2], 2);
        let configs = configs_for(&op);
        let capacity = 512 * 1024;
        let cert = derive_cert(&op, &dtypes, out, &configs, capacity).unwrap();
        assert_eq!(cert.family, family_digest(&op, &dtypes, out));
        assert!(cert.peak_hi <= capacity);
        // Region contains the compiled shape and widened past it.
        assert_eq!(cert.region.covers(&family_extents(&op)), Some(true));
        assert!(cert.region.dims.iter().any(|d| d.bounds.hi > d.bounds.lo));
        assert!(validate_cert(&cert, &op, &dtypes, out, &configs, capacity).is_ok());
        // A larger same-family shape inside the region is covered; the
        // certificate transfers.
        let big = builders::matmul(0, 1, 2, 128, 36, 48).unwrap();
        assert_eq!(family_digest(&big, &dtypes, out), cert.family);
        if cert.region.covers(&family_extents(&big)) == Some(true) {
            assert!(check_coverage(&cert, &big).is_ok());
        }
        // A shape past the region is SYM05 with the region in the message.
        let huge = builders::matmul(0, 1, 2, 1 << 20, 36, 48).unwrap();
        let report = check_coverage(&cert, &huge);
        assert_eq!(report.violated_rules(), vec!["SYM05"]);
        assert!(report.diagnostics[0].message.contains("m ∈ [1,"));
    }

    #[test]
    fn widened_region_is_refuted_by_rederivation() {
        let op = builders::matmul(0, 1, 2, 64, 36, 48).unwrap();
        let (dtypes, out): (Vec<usize>, usize) = (vec![2, 2], 2);
        let configs = configs_for(&op);
        let capacity = 256 * 1024;
        let mut cert = derive_cert(&op, &dtypes, out, &configs, capacity).unwrap();
        // Corrupt: widen every bound far past the proof but keep peak_hi,
        // so only re-derivation at the new corner can catch it.
        for d in &mut cert.region.dims {
            d.bounds.hi = d.bounds.hi.saturating_mul(1 << 12);
        }
        let report = validate_cert(&cert, &op, &dtypes, out, &configs, capacity);
        assert_eq!(report.violated_rules(), vec!["SYM02"]);
    }

    #[test]
    fn dropped_residual_rule_is_sym04() {
        let op = builders::matmul(0, 1, 2, 64, 36, 48).unwrap();
        let (dtypes, out): (Vec<usize>, usize) = (vec![2, 2], 2);
        let configs = configs_for(&op);
        let capacity = 512 * 1024;
        let mut cert = derive_cert(&op, &dtypes, out, &configs, capacity).unwrap();
        cert.residual.retain(|r| *r != RuleId::PaceDividesExtent);
        let report = validate_cert(&cert, &op, &dtypes, out, &configs, capacity);
        assert_eq!(report.violated_rules(), vec!["SYM04"]);
        assert!(report
            .diagnostics
            .iter()
            .any(|d| d.message.contains("RING01")));
    }

    #[test]
    fn stale_family_key_is_sym06() {
        let op = builders::matmul(0, 1, 2, 64, 36, 48).unwrap();
        let (dtypes, out): (Vec<usize>, usize) = (vec![2, 2], 2);
        let configs = configs_for(&op);
        let capacity = 512 * 1024;
        let mut cert = derive_cert(&op, &dtypes, out, &configs, capacity).unwrap();
        cert.family = "deadbeefdeadbeef".to_string();
        let report = validate_cert(&cert, &op, &dtypes, out, &configs, capacity);
        assert_eq!(report.violated_rules(), vec!["SYM06"]);
    }

    #[test]
    fn concrete_fold_escalates_by_classification() {
        let op = builders::matmul(0, 1, 2, 64, 36, 48).unwrap();
        let (dtypes, out): (Vec<usize>, usize) = (vec![2, 2], 2);
        let configs = configs_for(&op);
        let cert = derive_cert(&op, &dtypes, out, &configs, 512 * 1024).unwrap();
        // Clean report folds to itself (the differential guarantee).
        let clean = fold_concrete_report(&cert, Report::new());
        assert!(clean.diagnostics.is_empty());
        // Residual failure → SYM07 alongside the original.
        let mut residual = Report::new();
        residual.push(Diagnostic::error(
            RuleId::PaceDividesExtent,
            "rp 3 does not divide extent 8",
        ));
        let folded = fold_concrete_report(&cert, residual);
        assert_eq!(folded.violated_rules(), vec!["RING01", "SYM07"]);
        // Closed-rule failure inside the region → SYM02 soundness breach.
        let mut closed = Report::new();
        closed.push(Diagnostic::error(RuleId::PlanMemOverflow, "does not fit"));
        let folded = fold_concrete_report(&cert, closed);
        assert!(folded.violated_rules().contains(&"SYM02"));
    }

    #[test]
    fn family_entry_codec_round_trips() {
        let op = builders::matmul(0, 1, 2, 64, 36, 48).unwrap();
        let (dtypes, out): (Vec<usize>, usize) = (vec![2, 2], 2);
        let configs = configs_for(&op);
        let cert = derive_cert(&op, &dtypes, out, &configs, 512 * 1024).unwrap();
        let stats = SearchStats::default();
        let payload = encode_family_entry(&cert, &configs, &stats);
        let (cert2, configs2, _) = decode_family_entry(&payload).unwrap();
        assert_eq!(cert2, cert);
        assert_eq!(configs2, configs);
        assert_eq!(decode_family_entry("garbage"), None);
        assert_eq!(
            decode_family_entry(&payload.replace("t10.cert", "t11.cert")),
            None
        );
    }

    #[test]
    fn multi_box_family_entry_codec_round_trips() {
        let op = builders::matmul(0, 1, 2, 64, 36, 48).unwrap();
        let (dtypes, out): (Vec<usize>, usize) = (vec![2, 2], 2);
        let configs = configs_for(&op);
        let a = derive_cert(&op, &dtypes, out, &configs, 512 * 1024).unwrap();
        let b = derive_cert(&op, &dtypes, out, &configs, 256 * 1024).unwrap();
        let entries = vec![
            (a.clone(), configs.clone(), SearchStats::default()),
            (b.clone(), configs.clone(), SearchStats::default()),
        ];
        let payload = encode_family_entries(&entries);
        let boxes = decode_family_entries(&payload).unwrap();
        assert_eq!(boxes.len(), 2);
        assert_eq!(boxes[0].0, a);
        assert_eq!(boxes[1].0, b);
        // The single-box decoder sees the first box of a union.
        assert_eq!(decode_family_entry(&payload).unwrap().0, a);
        // One corrupt box poisons the whole entry — partial trust is no
        // trust.
        let corrupt = payload.replacen("t10.cert", "t11.cert", 1);
        assert_eq!(decode_family_entries(&corrupt), None);
        // A single-box payload is a one-element union.
        let single = encode_family_entry(&a, &configs, &SearchStats::default());
        assert_eq!(decode_family_entries(&single).unwrap().len(), 1);
    }
}
