//! The linear cost model (paper §4.3.1).
//!
//! T10 profiles randomly-shaped sub-tasks on a single core and fits a linear
//! regression from sub-task shape to execution time; communication time is
//! fitted the same way from transfer volume. The distributed on-chip memory
//! architecture makes this accurate: computation touches only local memory,
//! so there are no unpredictable stalls.
//!
//! Our calibration target is the ground-truth hardware model in
//! [`t10_device::truth`] (the hardware-gate substitution) — the same method,
//! the same failure mode: convolution's black-box kernel behaviour is not
//! linear in the features, so the conv fit shows scatter (Figure 8).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use t10_device::program::SubTaskDesc;
use t10_device::{truth, ChipSpec};
use t10_ir::{OpKind, Operator};

use crate::plan::Plan;
use crate::{CompileError, Result};

/// All operator families the model is fitted for.
pub const ALL_KINDS: [OpKind; 6] = [
    OpKind::MatMul,
    OpKind::Conv2d,
    OpKind::Elementwise,
    OpKind::Reduce,
    OpKind::Pool,
    OpKind::Gather,
];

const NUM_FEATURES: usize = 5;

fn features(d: &SubTaskDesc) -> [f64; NUM_FEATURES] {
    [
        1.0,
        d.macs() as f64,
        d.out_elems as f64,
        d.red_elems as f64,
        (d.in_bytes + d.out_bytes) as f64,
    ]
}

/// A fitted linear model `t = Σ coef_i * feature_i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    coef: Vec<f64>,
}

impl LinearModel {
    fn predict(&self, x: &[f64]) -> f64 {
        self.coef.iter().zip(x).map(|(c, v)| c * v).sum::<f64>()
    }
}

/// Ordinary least squares via normal equations with partial pivoting.
fn fit(xs: &[Vec<f64>], ys: &[f64]) -> Result<LinearModel> {
    let n = xs.first().map(Vec::len).unwrap_or(0);
    if n == 0 || xs.len() < n {
        return Err(CompileError::internal(format!(
            "not enough samples to fit {n} coefficients"
        )));
    }
    // Build X^T X and X^T y.
    let mut a = vec![vec![0.0f64; n + 1]; n];
    for (x, &y) in xs.iter().zip(ys) {
        for i in 0..n {
            for j in 0..n {
                a[i][j] += x[i] * x[j];
            }
            a[i][n] += x[i] * y;
        }
    }
    // Ridge damping for numerical stability on collinear features.
    for (i, row) in a.iter_mut().enumerate() {
        row[i] += 1e-9 * (1.0 + row[i].abs());
    }
    // Gaussian elimination with partial pivoting.
    for col in 0..n {
        let (pivot, _) = a
            .iter()
            .enumerate()
            .skip(col)
            .map(|(r, row)| (r, row[col].abs()))
            .max_by(|x, y| x.1.total_cmp(&y.1))
            .expect("n > 0: at least one row remains");
        a.swap(col, pivot);
        let p = a[col][col];
        if p.abs() < 1e-30 {
            return Err(CompileError::internal("singular normal equations"));
        }
        let pivot_row = a[col].clone();
        for (r, row) in a.iter_mut().enumerate() {
            if r == col {
                continue;
            }
            let f = row[col] / p;
            for (av, pv) in row.iter_mut().zip(&pivot_row).skip(col) {
                *av -= f * pv;
            }
        }
    }
    let coef = (0..n).map(|i| a[i][n] / a[i][i]).collect();
    Ok(LinearModel { coef })
}

/// Per-plan cost estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlanCost {
    /// Predicted steady-state execution time (compute + shifts + reduction
    /// + epilogue), seconds.
    pub exec_time: f64,
    /// Compute-only component.
    pub compute_time: f64,
    /// Inter-core-transfer component.
    pub exchange_time: f64,
    /// Active per-core memory footprint in bytes.
    pub mem_per_core: usize,
}

/// The calibrated cost model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CostModel {
    spec: ChipSpec,
    vertex: Vec<(OpKind, LinearModel)>,
    exchange: LinearModel,
}

impl CostModel {
    /// Calibrates the model against the hardware truth, mirroring the
    /// paper's profiling pass: random sub-task shapes per operator type,
    /// then a least-squares fit.
    pub fn calibrate(spec: &ChipSpec, samples_per_kind: usize, seed: u64) -> Result<Self> {
        let mut vertex = Vec::with_capacity(ALL_KINDS.len());
        for kind in ALL_KINDS {
            let mut rng = StdRng::seed_from_u64(seed ^ (kind as u64).wrapping_mul(0x9e3779b9));
            let mut xs = Vec::with_capacity(samples_per_kind);
            let mut ys = Vec::with_capacity(samples_per_kind);
            for _ in 0..samples_per_kind {
                let d = random_desc(kind, &mut rng);
                xs.push(features(&d).to_vec());
                ys.push(truth::vertex_time(spec, &d));
            }
            vertex.push((kind, fit(&xs, &ys)?));
        }
        // Communication: time vs per-core transfer volume is linear by
        // construction of the hardware (§4.3.1: "accurately fitted").
        let mut rng = StdRng::seed_from_u64(seed ^ 0xc0ffee);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..256 {
            let bytes: u64 = rng.random_range(64..2_000_000);
            let s = t10_device::program::ExchangeSummary {
                total_bytes: bytes,
                max_core_out: bytes,
                max_core_in: bytes,
                cross_chip_bytes: 0,
                offchip_bytes: 0,
                active_cores: 2,
                max_core_messages: 1,
            };
            xs.push(vec![1.0, bytes as f64]);
            ys.push(truth::exchange_time(spec, &s));
        }
        let exchange = fit(&xs, &ys)?;
        Ok(Self {
            spec: spec.clone(),
            vertex,
            exchange,
        })
    }

    /// The chip the model was calibrated for.
    pub fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    /// Predicted execution time of one vertex, seconds.
    pub fn predict_vertex(&self, d: &SubTaskDesc) -> f64 {
        let m = self
            .vertex
            .iter()
            .find(|(k, _)| *k == d.kind)
            .map(|(_, m)| m)
            .expect("all kinds calibrated");
        m.predict(&features(d)).max(1e-9)
    }

    /// Predicted exchange-phase time for a per-core transfer volume.
    pub fn predict_exchange(&self, max_core_bytes: u64) -> f64 {
        if max_core_bytes == 0 {
            return 0.0;
        }
        self.exchange
            .predict(&[1.0, max_core_bytes as f64])
            .max(1e-9)
    }

    /// Full plan estimate: compute steps, rotation shifts, the cross-core
    /// reduction of partial outputs, and the unary epilogue.
    pub fn estimate_plan(&self, op: &Operator, plan: &Plan) -> PlanCost {
        let compute = plan.total_steps as f64 * self.predict_vertex(&plan.subtask);
        let mut exchange = 0.0;
        for (_, events, bytes) in plan.shift_events() {
            exchange += events as f64 * self.predict_exchange(bytes);
        }
        if plan.out.reduce_group > 1 {
            // Cross-core reduction of partial outputs runs as a binary
            // tree: ceil(log2(group)) exchange rounds.
            let rounds = usize::BITS - (plan.out.reduce_group - 1).leading_zeros();
            exchange += rounds as f64 * self.predict_exchange(plan.out.partition_bytes as u64);
        }
        let mut compute_extra = 0.0;
        if op.unary.is_some() {
            let epi = SubTaskDesc {
                kind: OpKind::Elementwise,
                out_elems: plan.out.partition_elems as u64,
                red_elems: 1,
                window: 1,
                in_bytes: plan.out.partition_bytes as u64,
                out_bytes: plan.out.partition_bytes as u64,
            };
            compute_extra += self.predict_vertex(&epi);
        }
        PlanCost {
            exec_time: compute + compute_extra + exchange,
            compute_time: compute + compute_extra,
            exchange_time: exchange,
            mem_per_core: plan.mem_per_core,
        }
    }

    /// Predicted setup time for transforming an idle layout into this plan's
    /// active layout (paper §4.3.2): every core gathers its active input
    /// partitions over the interconnect.
    pub fn estimate_setup(&self, plan: &Plan) -> f64 {
        self.predict_exchange(plan.input_bytes_per_core() as u64)
    }

    /// Fresh measured-vs-predicted pairs for one operator family
    /// (Figure 8's scatter data). Returns `(measured, predicted)` in
    /// seconds.
    pub fn accuracy_eval(&self, kind: OpKind, n: usize, seed: u64) -> Vec<(f64, f64)> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let d = random_desc(kind, &mut rng);
                (truth::vertex_time(&self.spec, &d), self.predict_vertex(&d))
            })
            .collect()
    }
}

fn random_desc(kind: OpKind, rng: &mut StdRng) -> SubTaskDesc {
    let out_elems: u64 = 1 << rng.random_range(4..15);
    let red_elems: u64 = match kind {
        OpKind::Elementwise | OpKind::Gather => 1,
        _ => 1 << rng.random_range(0..10),
    };
    let window: u64 = match kind {
        OpKind::Conv2d | OpKind::Pool => [1u64, 9, 25, 49][rng.random_range(0..4)],
        _ => 1,
    };
    let in_bytes = 2 * (out_elems + red_elems * rng.random_range(1..64));
    let out_bytes = 2 * out_elems;
    SubTaskDesc {
        kind,
        out_elems,
        red_elems,
        window,
        in_bytes,
        out_bytes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{PlanConfig, TemporalChoice};
    use t10_ir::builders;

    fn model() -> CostModel {
        CostModel::calibrate(&ChipSpec::ipu_mk2(), 256, 42).unwrap()
    }

    fn r2(pairs: &[(f64, f64)]) -> f64 {
        let n = pairs.len() as f64;
        let mean = pairs.iter().map(|p| p.0).sum::<f64>() / n;
        let ss_tot: f64 = pairs.iter().map(|p| (p.0 - mean).powi(2)).sum();
        let ss_res: f64 = pairs.iter().map(|p| (p.0 - p.1).powi(2)).sum();
        1.0 - ss_res / ss_tot
    }

    #[test]
    fn matmul_fit_is_near_perfect() {
        let m = model();
        let pairs = m.accuracy_eval(OpKind::MatMul, 200, 7);
        assert!(r2(&pairs) > 0.98, "r2 = {}", r2(&pairs));
    }

    #[test]
    fn elementwise_and_reduce_fits_are_accurate() {
        let m = model();
        for kind in [OpKind::Elementwise, OpKind::Reduce, OpKind::Gather] {
            let pairs = m.accuracy_eval(kind, 200, 9);
            assert!(r2(&pairs) > 0.97, "{kind}: r2 = {}", r2(&pairs));
        }
    }

    #[test]
    fn conv_fit_shows_scatter_but_tracks_trend() {
        // Figure 8: conv is the one family with visible inaccuracy due to
        // the black-box vendor kernel — still strongly correlated.
        let m = model();
        let pairs = m.accuracy_eval(OpKind::Conv2d, 200, 11);
        let r = r2(&pairs);
        assert!(r > 0.7, "conv should still track the trend, r2 = {r}");
        let worse_than_matmul = r < r2(&m.accuracy_eval(OpKind::MatMul, 200, 11));
        assert!(worse_than_matmul);
    }

    #[test]
    fn exchange_prediction_is_linear_and_tight() {
        let m = model();
        let spec = ChipSpec::ipu_mk2();
        for bytes in [1_000u64, 50_000, 500_000] {
            let s = t10_device::program::ExchangeSummary {
                total_bytes: bytes,
                max_core_out: bytes,
                max_core_in: bytes,
                cross_chip_bytes: 0,
                offchip_bytes: 0,
                active_cores: 2,
                max_core_messages: 1,
            };
            let truth_t = truth::exchange_time(&spec, &s);
            let pred = m.predict_exchange(bytes);
            assert!(
                (truth_t - pred).abs() / truth_t < 0.02,
                "bytes={bytes}: truth={truth_t}, pred={pred}"
            );
        }
        assert_eq!(m.predict_exchange(0), 0.0);
    }

    #[test]
    fn plan_estimate_orders_tradeoff_correctly() {
        // Replicated plan: more memory, less exchange. Rotated plan: less
        // memory, more exchange. The cost model must see both sides.
        let m = model();
        let op = builders::matmul(0, 1, 2, 256, 256, 256).unwrap();
        let rep = Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![4, 1, 1],
                temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
            },
        )
        .unwrap();
        let rot = Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![4, 1, 1],
                temporal: vec![TemporalChoice::none(), TemporalChoice::rotate(1, 4)],
            },
        )
        .unwrap();
        let c_rep = m.estimate_plan(&op, &rep);
        let c_rot = m.estimate_plan(&op, &rot);
        assert!(c_rot.mem_per_core < c_rep.mem_per_core);
        assert!(c_rot.exchange_time > c_rep.exchange_time);
        assert!(c_rep.exchange_time == 0.0);
    }

    #[test]
    fn setup_scales_with_active_footprint() {
        let m = model();
        let op = builders::matmul(0, 1, 2, 256, 256, 256).unwrap();
        let small = Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![4, 1, 4],
                temporal: vec![TemporalChoice::rotate(1, 4), TemporalChoice::rotate(0, 4)],
            },
        )
        .unwrap();
        let big = Plan::build(
            &op,
            &[2, 2],
            2,
            PlanConfig {
                f_op: vec![4, 1, 4],
                temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
            },
        )
        .unwrap();
        assert!(m.estimate_setup(&small) < m.estimate_setup(&big));
    }

    #[test]
    fn fit_rejects_underdetermined_input() {
        assert!(fit(&[vec![1.0, 2.0]], &[1.0]).is_err());
        assert!(fit(&[], &[]).is_err());
    }
}
