//! Edge-case and failure-injection tests of the compiler pipeline.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use t10_core::compiler::Compiler;
use t10_core::cost::CostModel;
use t10_core::lower::lower_functional;
use t10_core::plan::{Plan, PlanConfig, TemporalChoice};
use t10_core::search::{search_operator, SearchConfig};
use t10_device::ChipSpec;
use t10_ir::{builders, DType, Graph, Tensor, ValueKind};
use t10_sim::{Simulator, SimulatorMode};

/// An operator whose axis sizes (512 × 7 × 7) cannot hit the strict 90%
/// utilization window on 1,472 cores still compiles: the compiler relaxes
/// the parallelism filter automatically.
#[test]
fn awkward_factorization_relaxes_constraint() {
    let mut g = Graph::new("awkward");
    // A reduce over [512 channels, 7x7] — ResNet's GAP head shape.
    let x = g.add_value("x", vec![512, 49], DType::F16, ValueKind::Input);
    let o = g.add_value("o", vec![512], DType::F16, ValueKind::Output);
    g.add_node(
        "gap",
        builders::reduce_last(x, o, vec![512], 49, t10_ir::Reduce::Sum, Some(1.0 / 49.0)).unwrap(),
    )
    .unwrap();
    let mut cfg = SearchConfig::strict();
    cfg.min_core_utilization = 0.95;
    cfg.max_candidates_per_axis = 6;
    let compiler = Compiler::new(ChipSpec::ipu_mk2(), cfg);
    let out = compiler.compile_graph(&g).unwrap();
    assert!(out.estimated_time > 0.0);
}

/// The search reports truncation when the cap bites, and still returns a
/// usable frontier.
#[test]
fn search_truncation_is_reported() {
    let cost = CostModel::calibrate(&ChipSpec::ipu_with_cores(64), 96, 3).unwrap();
    let op = builders::matmul(0, 1, 2, 1024, 1024, 1024).unwrap();
    let mut cfg = SearchConfig::fast();
    cfg.min_core_utilization = 0.1;
    cfg.max_candidates_per_axis = 48;
    cfg.max_configs = 50;
    let (pareto, stats) = search_operator(&op, &[2, 2], 2, &cost, &cfg).unwrap();
    assert!(!pareto.is_empty());
    assert!(stats.filtered_space <= 64);
    // Either the F_op enumeration or the per-thread evaluation cap hit.
    let capped = stats.truncated || stats.filtered_space >= 50;
    assert!(capped);
}

/// A functional program whose buffers exceed a tiny chip's scratchpad is
/// rejected by the simulator's memory accounting, not silently truncated.
#[test]
fn simulator_rejects_oversized_functional_program() {
    let op = builders::matmul(0, 1, 2, 64, 64, 64).unwrap();
    let plan = Plan::build(
        &op,
        &[4, 4],
        4,
        PlanConfig {
            f_op: vec![2, 1, 2],
            temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
        },
    )
    .unwrap();
    let f = lower_functional(&op, &plan).unwrap();
    let mut tiny = ChipSpec::ipu_with_cores(4);
    tiny.sram_per_core = 12 * 1024;
    let mut sim = Simulator::new(tiny, SimulatorMode::Functional);
    let err = sim.run(&f.program).unwrap_err();
    assert!(err.message().contains("out of memory"), "{err}");
}

/// Binding a wrong-shaped tensor is rejected.
#[test]
fn bind_shape_mismatch_is_rejected() {
    let op = builders::matmul(0, 1, 2, 4, 4, 4).unwrap();
    let plan = Plan::build(
        &op,
        &[4, 4],
        4,
        PlanConfig {
            f_op: vec![2, 1, 2],
            temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
        },
    )
    .unwrap();
    let f = lower_functional(&op, &plan).unwrap();
    let mut sim = Simulator::new(ChipSpec::ipu_with_cores(4), SimulatorMode::Functional);
    sim.load(&f.program).unwrap();
    let wrong = Tensor::zeros(vec![4]);
    assert!(sim.bind(f.input_buffers[0][0], &wrong).is_err());
}

/// Graph-level fusion composes with compilation: the fused graph compiles
/// to fewer supersteps and at most the unfused latency.
#[test]
fn fusion_reduces_supersteps() {
    let mut g = Graph::new("f");
    let a = g.add_value("a", vec![128, 128], DType::F16, ValueKind::Input);
    let w = g.add_value("w", vec![128, 128], DType::F16, ValueKind::Weight);
    let h = g.add_value("h", vec![128, 128], DType::F16, ValueKind::Activation);
    let o = g.add_value("o", vec![128, 128], DType::F16, ValueKind::Output);
    g.add_node("mm", builders::matmul(a, w, h, 128, 128, 128).unwrap())
        .unwrap();
    g.add_node(
        "relu",
        builders::unary(h, o, vec![128, 128], t10_ir::Unary::Relu).unwrap(),
    )
    .unwrap();
    let fused = t10_ir::transform::fuse_unary(&g).unwrap();
    assert_eq!(fused.nodes().len(), 1);

    let spec = ChipSpec::ipu_with_cores(16);
    let compiler = Compiler::new(spec.clone(), SearchConfig::fast());
    let plain = compiler.compile_graph(&g).unwrap();
    let opt = compiler.compile_graph(&fused).unwrap();
    assert!(opt.program.steps.len() < plain.program.steps.len());
    let run = |p| {
        let mut sim = Simulator::new(spec.clone(), SimulatorMode::Timing);
        sim.run(p).unwrap().total_time
    };
    assert!(run(&opt.program) <= run(&plain.program) * 1.001);
}

/// Tracing produces one record per superstep and they sum to the totals.
#[test]
fn step_trace_is_complete_and_consistent() {
    let mut g = Graph::new("t");
    let a = g.add_value("a", vec![64, 64], DType::F16, ValueKind::Input);
    let w = g.add_value("w", vec![64, 64], DType::F16, ValueKind::Weight);
    let o = g.add_value("o", vec![64, 64], DType::F16, ValueKind::Output);
    g.add_node("mm", builders::matmul(a, w, o, 64, 64, 64).unwrap())
        .unwrap();
    let spec = ChipSpec::ipu_with_cores(16);
    let compiler = Compiler::new(spec.clone(), SearchConfig::fast());
    let out = compiler.compile_graph(&g).unwrap();
    let mut sim = Simulator::new(spec, SimulatorMode::Timing).with_tracing();
    let r = sim.run(&out.program).unwrap();
    assert_eq!(r.trace.len(), r.steps);
    let comp: f64 = r.trace.iter().map(|t| t.compute).sum();
    let exch: f64 = r.trace.iter().map(|t| t.exchange).sum();
    assert!((comp - r.compute_time).abs() < 1e-12);
    assert!((exch - r.exchange_time).abs() < 1e-12);
    let bytes: u64 = r.trace.iter().map(|t| t.bytes).sum();
    assert_eq!(bytes, r.total_shift_bytes);
}
