//! End-to-end functional validation: a compiled compute-shift plan, executed
//! on the functional simulator with real data movement, must reproduce the
//! naive reference executor exactly (the plans are lossless, paper §6.1).
//!
//! These tests exercise the full pipeline — rTensor derivation, rotating-pace
//! alignment, diagonal placement, ring shifts, cross-core reduction, and the
//! unary epilogue — against MatMul, Conv2d, elementwise, pooling, reduce, and
//! gather operators.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use proptest::prelude::*;
use t10_core::lower::lower_functional;
use t10_core::plan::{Plan, PlanConfig, TemporalChoice};
use t10_device::ChipSpec;
use t10_ir::{builders, reference, Operator, Tensor};
use t10_sim::{Simulator, SimulatorMode};

/// Lowers `plan`, binds `inputs`, runs functionally, and returns the output.
fn run_plan(op: &Operator, plan: &Plan, inputs: &[Tensor]) -> Tensor {
    let f = lower_functional(op, plan).expect("lowering");
    let spec = ChipSpec::ipu_with_cores(plan.cores_used.max(1));
    let mut sim = Simulator::new(spec, SimulatorMode::Functional);
    sim.load(&f.program).expect("load");
    for (slot, t) in inputs.iter().enumerate() {
        for &id in &f.input_buffers[slot] {
            sim.bind(id, t).expect("bind input");
        }
    }
    sim.run_loaded(&f.program).expect("run");
    sim.extract(&f.output_buffers, &op.expr.output_shape())
        .expect("extract")
}

fn check_plan(op: &Operator, config: PlanConfig, seeds: &[f32]) {
    let plan = Plan::build(op, &vec![4; op.expr.num_inputs()], 4, config).expect("plan");
    let inputs: Vec<Tensor> = (0..op.expr.num_inputs())
        .map(|s| Tensor::pattern(op.expr.input_shape(s), seeds[s]))
        .collect();
    let got = run_plan(op, &plan, &inputs);
    let refs: Vec<&Tensor> = inputs.iter().collect();
    let want = reference::execute(op, &refs).expect("reference");
    assert!(
        got.approx_eq(&want, 1e-4),
        "plan {:?} diverges from reference: max diff {}",
        plan.config,
        got.max_abs_diff(&want)
    );
}

#[test]
fn paper_fig7_plan_is_correct() {
    // F_op = [2,1,3], f_t^A = 3 and f_t^B = 2 along k, rp = 2, 3 steps —
    // the exact configuration of Figure 7 (d).
    let op = builders::matmul(0, 1, 2, 2, 6, 3).unwrap();
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![2, 1, 3],
            temporal: vec![TemporalChoice::rotate(1, 3), TemporalChoice::rotate(0, 2)],
        },
        &[0.1, 0.7],
    );
}

#[test]
fn paper_fig10_staircase_is_correct() {
    let op = builders::matmul(0, 1, 2, 3, 3, 3).unwrap();
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![3, 1, 3],
            temporal: vec![TemporalChoice::rotate(1, 3), TemporalChoice::rotate(0, 3)],
        },
        &[0.3, 0.9],
    );
}

#[test]
fn replicated_weights_single_step() {
    // Figure 3 (b): full replication, one step, no shifts.
    let op = builders::matmul(0, 1, 2, 4, 4, 4).unwrap();
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![2, 1, 1],
            temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
        },
        &[0.2, 0.5],
    );
}

#[test]
fn rotation_with_unequal_partition_lengths() {
    // plen_A = 2, plen_B = 3 on a k-extent of 12: rp = 2, and B's window
    // slides inside its storage (the wrapping case).
    let op = builders::matmul(0, 1, 2, 4, 12, 6).unwrap();
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![4, 1, 6],
            temporal: vec![TemporalChoice::rotate(1, 6), TemporalChoice::rotate(0, 4)],
        },
        &[0.4, 0.8],
    );
}

#[test]
fn nested_rotation_two_axes() {
    // A rotates along k, B rotates along n: two loop levels.
    let op = builders::matmul(0, 1, 2, 4, 8, 8).unwrap();
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![2, 1, 2],
            temporal: vec![TemporalChoice::rotate(1, 2), TemporalChoice::rotate(1, 2)],
        },
        &[0.15, 0.85],
    );
}

#[test]
fn spatially_partitioned_reduction_accumulates() {
    // k split across 4 cores: partial outputs are cross-core reduced.
    let op = builders::matmul(0, 1, 2, 4, 8, 4).unwrap();
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![1, 4, 2],
            temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
        },
        &[0.6, 0.35],
    );
}

#[test]
fn reduction_with_rotation_combined() {
    let op = builders::matmul(0, 1, 2, 4, 8, 4).unwrap();
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![2, 2, 2],
            temporal: vec![TemporalChoice::rotate(1, 2), TemporalChoice::rotate(0, 2)],
        },
        &[0.25, 0.45],
    );
}

#[test]
fn conv2d_spatial_partitioning_with_halo() {
    let cfg = builders::Conv2dCfg {
        batch: 2,
        c_in: 2,
        c_out: 4,
        h_out: 8,
        w_out: 8,
        kh: 3,
        kw: 3,
        stride: 1,
    };
    let op = builders::conv2d(0, 1, 2, cfg).unwrap();
    // Partition b, f, h, w spatially.
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![2, 2, 2, 2, 1, 1, 1],
            temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
        },
        &[0.3, 0.7],
    );
}

#[test]
fn conv2d_kernel_rotation_along_channels() {
    let cfg = builders::Conv2dCfg {
        batch: 1,
        c_in: 4,
        c_out: 4,
        h_out: 4,
        w_out: 4,
        kh: 3,
        kw: 3,
        stride: 1,
    };
    let op = builders::conv2d(0, 1, 2, cfg).unwrap();
    // Kernel K[f,c,kh,kw] rotates along c among the h-partitioned cores.
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![1, 1, 4, 1, 1, 1, 1],
            temporal: vec![TemporalChoice::none(), TemporalChoice::rotate(1, 4)],
        },
        &[0.55, 0.95],
    );
}

#[test]
fn strided_conv_is_correct() {
    let cfg = builders::Conv2dCfg {
        batch: 1,
        c_in: 2,
        c_out: 2,
        h_out: 4,
        w_out: 4,
        kh: 2,
        kw: 2,
        stride: 2,
    };
    let op = builders::conv2d(0, 1, 2, cfg).unwrap();
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![1, 2, 2, 1, 1, 1, 1],
            temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
        },
        &[0.45, 0.65],
    );
}

#[test]
fn elementwise_unary_with_epilogue() {
    let op = builders::unary(0, 1, vec![8, 8], t10_ir::Unary::Gelu).unwrap();
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![4, 2],
            temporal: vec![TemporalChoice::none()],
        },
        &[0.2],
    );
}

#[test]
fn elementwise_binary_broadcast() {
    let op = builders::binary_broadcast(0, 1, 2, vec![8, 8], 1, t10_ir::Combine::Add).unwrap();
    // The bias B[n] is shared along m; rotate it along n.
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![4, 2],
            temporal: vec![TemporalChoice::none(), TemporalChoice::rotate(0, 2)],
        },
        &[0.3, 0.6],
    );
}

#[test]
fn max_pool_distributed() {
    let op = builders::max_pool2d(0, 1, 1, 2, 4, 4, 2, 2).unwrap();
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![1, 2, 2, 1, 1, 1],
            temporal: vec![TemporalChoice::none()],
        },
        &[0.8],
    );
}

#[test]
fn reduce_mean_distributed_over_reduction_axis() {
    let op = builders::reduce_last(0, 1, vec![4], 8, t10_ir::Reduce::Sum, Some(0.125)).unwrap();
    check_plan(
        &op,
        PlanConfig {
            f_op: vec![2, 4],
            temporal: vec![TemporalChoice::none()],
        },
        &[0.9],
    );
}

#[test]
fn gather_with_rotating_table() {
    let op = builders::gather(0, 1, 2, 16, 8, 4).unwrap();
    let plan = Plan::build(
        &op,
        &[4, 4],
        4,
        PlanConfig {
            f_op: vec![4, 1],
            temporal: vec![TemporalChoice::rotate(0, 4), TemporalChoice::none()],
        },
    )
    .unwrap();
    let table = Tensor::pattern(vec![16, 4], 0.5);
    let mut idx = Tensor::zeros(vec![8]);
    for (i, v) in idx.data_mut().iter_mut().enumerate() {
        *v = ((i * 5 + 3) % 16) as f32;
    }
    let got = run_plan(&op, &plan, &[table.clone(), idx.clone()]);
    let want = reference::execute(&op, &[&table, &idx]).unwrap();
    assert!(got.approx_eq(&want, 1e-5));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any valid matmul plan configuration must be numerically exact.
    #[test]
    fn any_matmul_plan_matches_reference(
        pm in 1usize..3,
        pk in 1usize..3,
        pn in 1usize..3,
        fa in 0usize..3,
        fb in 0usize..3,
        seed in 0u32..1000,
    ) {
        let (m, k, n) = (4, 8, 4);
        let op = builders::matmul(0, 1, 2, m, k, n).unwrap();
        let pm = if m % pm == 0 { pm } else { 1 };
        let pk = if k % pk == 0 { pk } else { 1 };
        let pn = if n % pn == 0 { pn } else { 1 };
        // Temporal factors must divide the sharing count and the extent.
        let k_tile = k / pk;
        let fa_div = [1usize, 2, 4][fa];
        let fb_div = [1usize, 2, 4][fb];
        let ta = if pn % fa_div == 0 && k_tile % fa_div == 0 && fa_div > 1 {
            TemporalChoice::rotate(1, fa_div)
        } else {
            TemporalChoice::none()
        };
        let tb = if pm % fb_div == 0 && k_tile % fb_div == 0 && fb_div > 1 {
            TemporalChoice::rotate(0, fb_div)
        } else {
            TemporalChoice::none()
        };
        let config = PlanConfig { f_op: vec![pm, pk, pn], temporal: vec![ta, tb] };
        if let Ok(plan) = Plan::build(&op, &[4, 4], 4, config) {
            let a = Tensor::pattern(vec![m, k], seed as f32 * 0.01);
            let b = Tensor::pattern(vec![k, n], seed as f32 * 0.02 + 1.0);
            let got = run_plan(&op, &plan, &[a.clone(), b.clone()]);
            let want = reference::execute(&op, &[&a, &b]).unwrap();
            prop_assert!(got.approx_eq(&want, 1e-4),
                "diff {} for {:?}", got.max_abs_diff(&want), plan.config);
        }
    }
}
