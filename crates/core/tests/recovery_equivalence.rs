//! The heart of the recovery test suite: every recovered run must be
//! numerically equivalent to the healthy reference executor.
//!
//! A Table-2-style two-layer FFN (matmul+relu, matmul) is executed
//! operator-by-operator on the functional simulator under a
//! [`RecoveryController`], with [`FaultTimeline`]s that drop packets, kill
//! links, and kill cores mid-run. Whatever the controller had to do —
//! retry from a checkpoint, recompile for the surviving machine, migrate
//! sub-tensors — the extracted outputs must match `reference::execute`.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use t10_core::lower::lower_functional;
use t10_core::search::SearchConfig;
use t10_core::{
    CompileError, CompileOptions, Compiler, Recovered, RecoveryController, RecoveryMutation,
    RecoveryPolicy, RecoveryUnit,
};
use t10_device::ChipSpec;
use t10_ir::{builders, reference, DType, Graph, Operator, Tensor, Unary, ValueKind};
use t10_sim::{FaultPlan, FaultTimeline, RunReport, SimulatorMode};
use t10_trace::Trace;

const CORES: usize = 8;

/// The demo model: x[16,32] -> matmul+relu [32,32] -> matmul [32,16].
fn ffn_ops() -> Vec<Operator> {
    let mut fc1 = builders::matmul(0, 1, 2, 16, 32, 32).unwrap();
    fc1.unary = Some(Unary::Relu);
    let fc2 = builders::matmul(2, 3, 4, 16, 32, 16).unwrap();
    vec![fc1, fc2]
}

/// Wraps one operator in a single-node graph so the intra-operator search
/// (and its warm-start path) can run on it.
fn single_node_graph(op: &Operator) -> Graph {
    let mut g = Graph::new("node");
    let n_in = op.expr.num_inputs();
    for slot in 0..n_in {
        let kind = if slot == 0 {
            ValueKind::Input
        } else {
            ValueKind::Weight
        };
        g.add_value(
            format!("in{slot}"),
            op.expr.input_shape(slot),
            DType::F32,
            kind,
        );
    }
    g.add_value("out", op.expr.output_shape(), DType::F32, ValueKind::Output);
    let mut op = op.clone();
    op.inputs = (0..n_in).collect();
    op.output = n_in;
    g.add_node("n", op).unwrap();
    g
}

/// Executes the FFN operator-by-operator under a recovery controller,
/// threading the surviving machine, fault plan, timeline, and global step
/// numbering from one operator to the next. Returns the final output and
/// the per-operator reports.
fn run_ffn(
    timeline_spec: Option<&str>,
    policy: RecoveryPolicy,
) -> Result<(Tensor, Vec<RunReport>, ChipSpec), CompileError> {
    run_ffn_traced(timeline_spec, policy, Trace::disabled())
}

/// [`run_ffn`] with a structured-event sink attached to the controller.
fn run_ffn_traced(
    timeline_spec: Option<&str>,
    policy: RecoveryPolicy,
    trace: Trace,
) -> Result<(Tensor, Vec<RunReport>, ChipSpec), CompileError> {
    let ops = ffn_ops();
    let x = Tensor::pattern(vec![16, 32], 0.3);
    let w1 = Tensor::pattern(vec![32, 32], 0.7);
    let w2 = Tensor::pattern(vec![32, 16], 0.5);

    let controller = RecoveryController::new(SimulatorMode::Functional, policy).with_trace(trace);
    let mut spec = ChipSpec::ipu_with_cores(CORES);
    let mut faults = FaultPlan::new(CORES);
    let mut timeline = match timeline_spec {
        Some(s) => Some(
            FaultTimeline::parse(s, CORES).map_err(|e| CompileError::internal(e.to_string()))?,
        ),
        None => None,
    };
    let mut offset = 0usize;
    let mut reports = Vec::new();
    let mut activations = vec![x];
    let weights = [w1, w2];

    for (i, op) in ops.iter().enumerate() {
        let inputs = vec![activations.pop().unwrap(), weights[i].clone()];
        let graph = single_node_graph(op);
        let recovered = controller.execute(
            &spec,
            faults.clone(),
            timeline.take(),
            offset,
            &inputs,
            |spec, faults, warm| {
                let compiler = Compiler::new(spec.clone(), SearchConfig::fast());
                let opts = CompileOptions {
                    deadline: None,
                    faults: Some(faults.clone()),
                    warm_start: warm.map(<[_]>::to_vec),
                    ..CompileOptions::default()
                };
                let (pareto, _) = compiler.compile_node_with(&graph, 0, &opts)?;
                for sp in pareto.plans() {
                    if let Ok(f) = lower_functional(op, &sp.plan) {
                        return Ok(RecoveryUnit {
                            program: f.program,
                            pareto: vec![pareto.clone()],
                            input_buffers: f.input_buffers,
                            output_buffers: f.output_buffers,
                            graph_edges: vec![],
                            boundaries: vec![],
                        });
                    }
                }
                Err(CompileError::infeasible("no functionally-lowerable plan"))
            },
        )?;
        let out = recovered
            .sim
            .extract(&recovered.unit.output_buffers, &op.expr.output_shape())?;
        activations.push(out);
        reports.push(recovered.report);
        spec = recovered.spec;
        faults = recovered.faults;
        timeline = recovered.timeline;
        offset = recovered.next_step_offset;
    }
    Ok((activations.pop().unwrap(), reports, spec))
}

/// Runs just the first FFN operator under a (possibly mutated) controller
/// and returns the extracted output plus the full [`Recovered`] state —
/// audit included — for introspection tests.
fn run_one(
    timeline_spec: Option<&str>,
    policy: RecoveryPolicy,
    mutation: RecoveryMutation,
) -> Result<(Tensor, Recovered), CompileError> {
    let op = ffn_ops().remove(0);
    let x = Tensor::pattern(vec![16, 32], 0.3);
    let w1 = Tensor::pattern(vec![32, 32], 0.7);
    let controller =
        RecoveryController::new(SimulatorMode::Functional, policy).with_mutation(mutation);
    let graph = single_node_graph(&op);
    let spec = ChipSpec::ipu_with_cores(CORES);
    let timeline = match timeline_spec {
        Some(s) => Some(
            FaultTimeline::parse(s, CORES).map_err(|e| CompileError::internal(e.to_string()))?,
        ),
        None => None,
    };
    let recovered = controller.execute(
        &spec,
        FaultPlan::new(CORES),
        timeline,
        0,
        &[x, w1],
        |spec, faults, warm| {
            let compiler = Compiler::new(spec.clone(), SearchConfig::fast());
            let opts = CompileOptions {
                deadline: None,
                faults: Some(faults.clone()),
                warm_start: warm.map(<[_]>::to_vec),
                ..CompileOptions::default()
            };
            let (pareto, _) = compiler.compile_node_with(&graph, 0, &opts)?;
            for sp in pareto.plans() {
                if let Ok(f) = lower_functional(&op, &sp.plan) {
                    return Ok(RecoveryUnit {
                        program: f.program,
                        pareto: vec![pareto.clone()],
                        input_buffers: f.input_buffers,
                        output_buffers: f.output_buffers,
                        graph_edges: vec![],
                        boundaries: vec![],
                    });
                }
            }
            Err(CompileError::infeasible("no functionally-lowerable plan"))
        },
    )?;
    let out = recovered
        .sim
        .extract(&recovered.unit.output_buffers, &op.expr.output_shape())?;
    Ok((out, recovered))
}

/// The healthy reference: the same FFN through the naive executor.
fn reference_output() -> Tensor {
    let ops = ffn_ops();
    let x = Tensor::pattern(vec![16, 32], 0.3);
    let w1 = Tensor::pattern(vec![32, 32], 0.7);
    let w2 = Tensor::pattern(vec![32, 16], 0.5);
    let h = reference::execute(&ops[0], &[&x, &w1]).unwrap();
    reference::execute(&ops[1], &[&h, &w2]).unwrap()
}

fn total_recoveries(reports: &[RunReport]) -> (usize, usize, usize) {
    let mut retries = 0;
    let mut recompiles = 0;
    let mut events = 0;
    for r in reports {
        if let Some(rec) = &r.recovery {
            retries += rec.transient_retries;
            recompiles += rec.recompiles;
            events += rec.events.len();
        }
    }
    (retries, recompiles, events)
}

#[test]
fn healthy_run_matches_reference_with_zero_recoveries() {
    let (out, reports, spec) = run_ffn(None, RecoveryPolicy::default()).unwrap();
    let want = reference_output();
    assert!(
        out.approx_eq(&want, 1e-4),
        "healthy run diverges: {}",
        out.max_abs_diff(&want)
    );
    let (retries, recompiles, _) = total_recoveries(&reports);
    assert_eq!((retries, recompiles), (0, 0));
    assert_eq!(spec.num_cores, CORES);
    // Checkpoints were taken even though none were needed.
    assert!(reports.iter().any(|r| r.checkpoints_taken > 0));
}

#[test]
fn transient_drop_retries_from_checkpoint_and_matches() {
    let (out, reports, _) = run_ffn(Some("drop=1@2"), RecoveryPolicy::default()).unwrap();
    let want = reference_output();
    assert!(
        out.approx_eq(&want, 1e-4),
        "recovered run diverges: {}",
        out.max_abs_diff(&want)
    );
    let (retries, recompiles, events) = total_recoveries(&reports);
    assert!(retries >= 1, "expected a transient retry");
    assert_eq!(recompiles, 0, "a transient fault must not force a re-plan");
    assert!(events >= 1);
    let backoff: f64 = reports
        .iter()
        .filter_map(|r| r.recovery.as_ref())
        .map(|rec| rec.backoff_time)
        .sum();
    assert!(backoff > 0.0, "retries pay backoff");
}

#[test]
fn mid_run_link_death_replans_and_matches() {
    // This is the acceptance demo: a link dies mid-run, the controller
    // recompiles for the degraded machine (warm-starting from the prior
    // frontier), salvages the inputs from the checkpoint, and the final
    // output is still numerically the reference's.
    let (out, reports, spec) = run_ffn(Some("down=1@2"), RecoveryPolicy::default()).unwrap();
    let want = reference_output();
    assert!(
        out.approx_eq(&want, 1e-4),
        "recovered run diverges: {}",
        out.max_abs_diff(&want)
    );
    let (_, recompiles, events) = total_recoveries(&reports);
    assert!(recompiles >= 1, "a dead link must force a re-plan");
    assert!(events >= 1, "the recovery report must record the event");
    assert_eq!(spec.num_cores, CORES, "no core died, none removed");
    let healed = reports.iter().filter_map(|r| r.recovery.as_ref());
    assert!(healed.clone().any(|rec| rec.recoveries() >= 1));
    assert!(healed
        .clone()
        .flat_map(|rec| rec.events.iter())
        .any(|e| e.contains("link")));
}

#[test]
fn core_death_shrinks_the_chip_and_matches() {
    let (out, reports, spec) = run_ffn(Some("kill=1@3"), RecoveryPolicy::default()).unwrap();
    let want = reference_output();
    assert!(
        out.approx_eq(&want, 1e-4),
        "recovered run diverges: {}",
        out.max_abs_diff(&want)
    );
    let (_, recompiles, _) = total_recoveries(&reports);
    assert!(recompiles >= 1, "a dead core must force a re-plan");
    assert_eq!(spec.num_cores, CORES - 1, "the dead core is removed");
}

#[test]
fn recovery_is_deterministic_for_a_seeded_timeline() {
    let policy = RecoveryPolicy {
        max_retries: 8,
        ..RecoveryPolicy::default()
    };
    let (out_a, reports_a, _) = run_ffn(Some("seed=5,random=3@4"), policy.clone()).unwrap();
    let (out_b, reports_b, _) = run_ffn(Some("seed=5,random=3@4"), policy).unwrap();
    assert_eq!(reports_a, reports_b, "same seed, same recovery history");
    assert!(out_a.approx_eq(&out_b, 0.0), "same seed, same bits");
    let want = reference_output();
    assert!(out_a.approx_eq(&want, 1e-4));
}

#[test]
fn recovery_trace_records_faults_and_is_deterministic() {
    let policy = RecoveryPolicy {
        max_retries: 8,
        ..RecoveryPolicy::default()
    };
    let run = |spec: &str| {
        let trace = Trace::logical();
        run_ffn_traced(Some(spec), policy.clone(), trace.clone()).unwrap();
        trace
    };

    // A transient drop leaves retry + rollback instants on the recovery
    // track, plus the checkpoints the simulator took along the way.
    let trace = run("drop=1@2");
    let events = trace.snapshot();
    let named = |n: &str| events.iter().filter(|e| e.name == n).count();
    assert!(named("retry") >= 1, "transient fault emits a retry");
    assert!(named("rollback") >= 1, "retry rolls back to a checkpoint");
    assert!(named("checkpoint") >= 1, "simulator checkpoints are traced");
    assert_eq!(named("replan"), 0, "no re-plan for a transient fault");
    let retry = events.iter().find(|e| e.name == "retry").unwrap();
    assert_eq!(retry.pid, t10_trace::PID_RECOVERY);
    assert!(retry.arg_f64("backoff_us").unwrap() > 0.0);

    // A dead link forces a re-plan and a migration.
    let trace = run("down=1@2");
    let events = trace.snapshot();
    let replans: Vec<_> = events.iter().filter(|e| e.name == "replan").collect();
    assert!(!replans.is_empty(), "link death emits a replan");
    assert!(replans[0].arg_str("fault").unwrap().contains("link"));
    assert!(
        events.iter().any(|e| e.name == "migrate"),
        "re-plan emits its migration volume"
    );

    // Same seed, byte-identical trace file.
    let a = t10_trace::write_chrome_trace(&run("seed=5,random=3@4").snapshot());
    let b = t10_trace::write_chrome_trace(&run("seed=5,random=3@4").snapshot());
    assert_eq!(a, b, "same timeline seed, same trace bytes");
}

#[test]
fn exhausted_retry_budget_is_unrecoverable() {
    let policy = RecoveryPolicy {
        max_retries: 0,
        ..RecoveryPolicy::default()
    };
    let err = run_ffn(Some("down=1@2"), policy).unwrap_err();
    assert!(
        matches!(err, CompileError::Unrecoverable { .. }),
        "expected Unrecoverable, got {err}"
    );
}

#[test]
fn transient_storm_at_one_barrier_cannot_livelock_the_retry_loop() {
    // Ten transient faults all queued at the same superstep: each replay
    // reaches the barrier again and trips the next one. Because events are
    // consumed exactly once, the loop must drain the storm and finish —
    // and the jittered backoff must stay inside its envelope while
    // desynchronizing the capped region (no lock-stepped delays).
    let policy = RecoveryPolicy {
        max_retries: 16,
        ..RecoveryPolicy::default()
    };
    let storm = "drop=2@0,drop=2@1,drop=2@2,drop=2@3,drop=2@4,drop=2@5,\
                 drop=2@6,drop=2@7,stall=2@0,stall=2@1";
    let (out, recovered) = run_one(Some(storm), policy.clone(), RecoveryMutation::None).unwrap();

    let rec = recovered.report.recovery.as_ref().unwrap();
    assert_eq!(rec.transient_retries, 10, "every storm event was retried");
    assert_eq!(rec.recompiles, 0, "transient faults never force a re-plan");
    assert!(recovered.audit.invariant_violations().is_empty());

    let op = ffn_ops().remove(0);
    let x = Tensor::pattern(vec![16, 32], 0.3);
    let w1 = Tensor::pattern(vec![32, 32], 0.7);
    let want = reference::execute(&op, &[&x, &w1]).unwrap();
    assert!(out.approx_eq(&want, 1e-4), "storm survivors stay correct");

    // Jitter envelope: each delay is raw · (1 − j/2 + j·u), u ∈ [0, 1).
    let j = policy.backoff_jitter;
    let backoffs: Vec<f64> = recovered.audit.retries.iter().map(|r| r.backoff).collect();
    assert_eq!(backoffs.len(), 10);
    for (i, &b) in backoffs.iter().enumerate() {
        let raw = (policy.backoff_base * 2f64.powi(i as i32)).min(policy.backoff_cap);
        assert!(
            b >= raw * (1.0 - j * 0.5) && b < raw * (1.0 + j * 0.5),
            "retry {i}: backoff {b} outside jitter envelope of raw {raw}"
        );
    }
    // Once the exponential hits the cap the raw delays are identical; the
    // jitter must spread them so the storm cannot lock-step.
    let capped = &backoffs[4..];
    assert!(
        capped.windows(2).any(|w| w[0] != w[1]),
        "capped backoffs are lock-stepped: {capped:?}"
    );
}

#[test]
fn recovery_audit_records_certified_units_and_clean_invariants() {
    // A link death mid-run: initial compile + one recovery recompile, both
    // gated through verify/prove, with the state log showing the
    // checkpoint → fatal → restore sequence.
    let (out, recovered) = run_one(
        Some("down=1@2"),
        RecoveryPolicy::default(),
        RecoveryMutation::None,
    )
    .unwrap();
    let audit = &recovered.audit;
    assert_eq!(audit.units.len(), 2, "initial compile + one recompile");
    assert!(audit.units.iter().all(|u| u.verified && u.proved));
    assert_eq!(audit.recoveries(), 1);
    assert!(!audit.retries[0].transient, "a dead link is persistent");
    assert!(audit.invariant_violations().is_empty());

    use t10_sim::RunStateEvent;
    let has = |f: fn(&RunStateEvent) -> bool| audit.state_events.iter().any(f);
    assert!(has(|e| matches!(e, RunStateEvent::Checkpoint { .. })));
    assert!(has(|e| matches!(
        e,
        RunStateEvent::Fatal {
            transient: false,
            ..
        }
    )));
    assert!(has(|e| matches!(e, RunStateEvent::Restore { .. })));

    let op = ffn_ops().remove(0);
    let x = Tensor::pattern(vec![16, 32], 0.3);
    let w1 = Tensor::pattern(vec![32, 32], 0.7);
    let want = reference::execute(&op, &[&x, &w1]).unwrap();
    assert!(out.approx_eq(&want, 1e-4));
}

#[test]
fn buggy_mutations_trip_the_audit_invariants() {
    // UncapRetries: a storm longer than the budget completes anyway (events
    // are consumed once), but the audit calls out the busted cap.
    let policy = RecoveryPolicy {
        max_retries: 2,
        ..RecoveryPolicy::default()
    };
    let storm = "drop=2@0,drop=2@1,drop=2@2,drop=2@3,drop=2@4";
    let (_, recovered) =
        run_one(Some(storm), policy.clone(), RecoveryMutation::UncapRetries).unwrap();
    let violations = recovered.audit.invariant_violations();
    assert!(
        violations.iter().any(|v| v.contains("retry cap exceeded")),
        "expected a retry-cap violation, got {violations:?}"
    );

    // SkipVerification: the recompile gate is bypassed and the audit
    // records the uncertified unit.
    let (_, recovered) = run_one(
        Some("down=1@2"),
        RecoveryPolicy::default(),
        RecoveryMutation::SkipVerification,
    )
    .unwrap();
    let violations = recovered.audit.invariant_violations();
    assert!(
        violations.iter().any(|v| v.contains("uncertified")),
        "expected an uncertified-unit violation, got {violations:?}"
    );

    // CorruptSalvage: the healed output silently diverges — exactly the
    // defect the differential oracle's first clause exists to catch.
    let (out, _) = run_one(
        Some("down=1@2"),
        RecoveryPolicy::default(),
        RecoveryMutation::CorruptSalvage,
    )
    .unwrap();
    let op = ffn_ops().remove(0);
    let x = Tensor::pattern(vec![16, 32], 0.3);
    let w1 = Tensor::pattern(vec![32, 32], 0.7);
    let want = reference::execute(&op, &[&x, &w1]).unwrap();
    assert!(
        !out.approx_eq(&want, 1e-4),
        "corrupted salvage must diverge from the reference"
    );
}

#[test]
fn warm_start_skips_the_search_when_plans_survive() {
    let op = builders::matmul(0, 1, 2, 16, 32, 32).unwrap();
    let graph = single_node_graph(&op);
    let spec = ChipSpec::ipu_with_cores(CORES);
    let compiler = Compiler::new(spec, SearchConfig::fast());
    let (cold, cold_stats) = compiler.compile_node(&graph, 0).unwrap();
    assert!(
        cold_stats.filtered_space > 0,
        "cold compile really searched"
    );

    let opts = CompileOptions {
        deadline: None,
        faults: None,
        warm_start: Some(vec![cold.clone()]),
        ..CompileOptions::default()
    };
    let (warm, warm_stats) = compiler.compile_node_with(&graph, 0, &opts).unwrap();
    assert_eq!(warm, cold, "surviving frontier carries over verbatim");
    assert_eq!(
        warm_stats.filtered_space, 0,
        "warm start skipped the search"
    );
}
