//! Snapshot tests for the ASCII plan visualizations.
//!
//! The renders in `viz` are documentation-facing output: the Figure-7-style
//! rotation schedule and the Figure-17-style Pareto scatter. These tests pin
//! the exact byte-for-byte output on small, hand-built plans so incidental
//! formatting drift shows up as a reviewable diff (update the expected
//! string deliberately when the format is meant to change).

#![allow(clippy::unwrap_used)]

use t10_core::cost::PlanCost;
use t10_core::plan::{Plan, PlanConfig, TemporalChoice};
use t10_core::search::{ParetoSet, ScoredPlan};
use t10_core::viz;
use t10_ir::builders;

/// The paper's Figure 7 setting: a 2x6x3 matmul on a [2,1,3] core grid with
/// the reduction axis rotating in 3 steps.
fn fig7() -> (t10_ir::Operator, Plan) {
    let op = builders::matmul(0, 1, 2, 2, 6, 3).unwrap();
    let plan = Plan::build(
        &op,
        &[2, 2],
        2,
        PlanConfig {
            f_op: vec![2, 1, 3],
            temporal: vec![TemporalChoice::rotate(1, 3), TemporalChoice::rotate(0, 2)],
        },
    )
    .unwrap();
    (op, plan)
}

#[test]
fn rotation_schedule_snapshot() {
    let (op, plan) = fig7();
    let got = viz::rotation_schedule(&op, &plan, 0);
    // Escaped literal: the render pads every cell, so rows carry trailing
    // spaces that editors would silently strip from a raw snapshot. The
    // second half of the grid starts its rotation window offset by σ = 3,
    // the paper's diagonal-alignment trick (no two cores fetch the same
    // window at the same step).
    let want = "rotation along axis `k` (rp = 2, 3 steps, slots [0, 1]):\n\
                \x20       core step0   step1   step2   \n\
                \x20  [0, 0, 0] [ 0..2 ) [ 2..4 ) [ 4..6 ) \n\
                \x20  [0, 0, 1] [ 2..4 ) [ 4..6 ) [ 0..2 ) \n\
                \x20  [0, 0, 2] [ 4..6 ) [ 0..2 ) [ 2..4 ) \n\
                \x20  [1, 0, 0] [ 3..5 ) [ 5..7 ) [ 1..3 ) \n\
                \x20  [1, 0, 1] [ 5..7 ) [ 1..3 ) [ 3..5 ) \n\
                \x20  [1, 0, 2] [ 1..3 ) [ 3..5 ) [ 5..7 ) \n";
    assert_eq!(got, want, "rotation schedule drifted:\n{got}");
}

/// A hand-built three-point frontier with fixed costs, so the scatter is
/// fully deterministic (no search, no calibration).
fn tiny_frontier() -> ParetoSet {
    let (_, plan) = fig7();
    let mut set = ParetoSet::default();
    for (exec_us, mem_kb) in [(30.0, 16), (20.0, 32), (10.0, 64)] {
        set.insert(ScoredPlan {
            plan: plan.clone(),
            cost: PlanCost {
                exec_time: exec_us * 1e-6,
                compute_time: exec_us * 0.6e-6,
                exchange_time: exec_us * 0.4e-6,
                mem_per_core: mem_kb * 1024,
            },
            setup_time: 0.0,
        });
    }
    set
}

#[test]
fn pareto_scatter_snapshot() {
    let set = tiny_frontier();
    assert_eq!(set.len(), 3, "all three points are Pareto-optimal");
    let got = viz::pareto_scatter(&set, 24, 7);
    // The canvas is fully padded, so each `|` row is exactly 24 cells wide.
    // The frontier's trade-off shape reads off the plot: slowest/leanest
    // plan top-left, fastest/fattest bottom-right.
    let want = "exec time 30.0us (top) .. 10.0us (bottom)\n\
                |*                       \n\
                |                        \n\
                |                        \n\
                |       *                \n\
                |                        \n\
                |                        \n\
                |                       *\n\
                +------------------------\n\
                \x20mem/core 16KB .. 64KB\n";
    assert_eq!(got, want, "pareto scatter drifted:\n{got}");
}

#[test]
fn pareto_scatter_single_point_snapshot() {
    let (_, plan) = fig7();
    let mut set = ParetoSet::default();
    set.insert(ScoredPlan {
        plan,
        cost: PlanCost {
            exec_time: 5e-6,
            compute_time: 4e-6,
            exchange_time: 1e-6,
            mem_per_core: 8 * 1024,
        },
        setup_time: 0.0,
    });
    let got = viz::pareto_scatter(&set, 16, 6);
    // A degenerate (single-point) frontier pins the star to the
    // bottom-left corner.
    let want = "exec time 5.0us (top) .. 5.0us (bottom)\n\
                |                \n\
                |                \n\
                |                \n\
                |                \n\
                |                \n\
                |*               \n\
                +----------------\n\
                \x20mem/core 8KB .. 8KB\n";
    assert_eq!(got, want, "single-point scatter drifted:\n{got}");
}
