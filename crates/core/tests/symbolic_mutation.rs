//! Mutation suite for the shape-parametric family cache (ISSUE 10
//! acceptance): each seeded family-certificate corruption must trip
//! *exactly* its SYM rule at validation time, and the compiler must refuse
//! the corrupted entry and fall back to a fresh search that produces the
//! byte-identical artifact a cold compile would.
//!
//! The corruptions mirror real failure modes of a persistent store:
//!
//! * **widened region** — the validity region outgrew the footprint proof
//!   (hand-edited entry, or a recording bug) → SYM02;
//! * **dropped residual rule** — a rule that must re-run per instantiation
//!   vanished from the residual set → SYM04;
//! * **stale family key** — the entry was transplanted across operator
//!   families → SYM06;
//! * plus coverage (SYM05) and malformation (SYM03) probes on the same
//!   genuinely-recorded certificate.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use t10_core::cache::{family_cache_key, PlanCache};
use t10_core::compiler::{CompileOptions, Compiler};
use t10_core::search::SearchConfig;
use t10_core::symbolic::{
    check_coverage, decode_family_entries, decode_family_entry, encode_family_entry,
    family_extents, validate_cert,
};
use t10_device::ChipSpec;
use t10_ir::{builders, DType, Graph, Operator, ValueKind};
use t10_verify::symbolic::SymbolicCert;
use t10_verify::RuleId;

/// In-memory cache with direct entry access so the suite can corrupt
/// payloads in place.
#[derive(Default)]
struct MemCache {
    entries: Mutex<HashMap<String, String>>,
}

impl PlanCache for MemCache {
    fn lookup(&self, key: &str) -> Option<String> {
        self.entries.lock().unwrap().get(key).cloned()
    }
    fn record(&self, key: &str, payload: &str) {
        self.entries
            .lock()
            .unwrap()
            .insert(key.to_string(), payload.to_string());
    }
}

fn matmul_graph(m: usize, k: usize, n: usize) -> Graph {
    let mut g = Graph::new("fc");
    let a = g.add_value("a", vec![m, k], DType::F16, ValueKind::Input);
    let w = g.add_value("w", vec![k, n], DType::F16, ValueKind::Weight);
    let c = g.add_value("c", vec![m, n], DType::F16, ValueKind::Output);
    g.add_node("fc", builders::matmul(a, w, c, m, k, n).unwrap())
        .unwrap();
    g
}

struct Harness {
    compiler: Compiler,
    cache: Arc<MemCache>,
    spec: ChipSpec,
    cfg: SearchConfig,
}

impl Harness {
    fn new() -> Self {
        let spec = ChipSpec::ipu_with_cores(16);
        let cfg = SearchConfig::fast();
        Self {
            compiler: Compiler::new(spec.clone(), cfg.clone()),
            cache: Arc::new(MemCache::default()),
            spec,
            cfg,
        }
    }

    fn compile(&self, g: &Graph) -> t10_core::CompiledGraph {
        let opts = CompileOptions {
            cache: Some(self.cache.clone() as Arc<dyn PlanCache>),
            ..CompileOptions::default()
        };
        self.compiler.compile_graph_with(g, &opts).unwrap()
    }

    fn capacity(&self) -> u64 {
        (self.spec.sram_per_core - self.spec.shift_buffer) as u64
    }

    fn family_key(&self, op: &Operator) -> String {
        family_cache_key(op, &[2, 2], 2, &self.spec, None, &self.cfg)
    }

    /// The genuinely-recorded family entry for `op`, decoded.
    fn recorded_entry(
        &self,
        op: &Operator,
    ) -> (
        SymbolicCert,
        Vec<t10_core::PlanConfig>,
        t10_core::search::SearchStats,
    ) {
        let payload = self.cache.lookup(&self.family_key(op)).unwrap();
        decode_family_entry(&payload).unwrap()
    }

    /// Replaces the family entry for `op` with a corrupted certificate.
    fn corrupt(&self, op: &Operator, mutate: impl FnOnce(&mut SymbolicCert)) -> SymbolicCert {
        let (mut cert, configs, stats) = self.recorded_entry(op);
        mutate(&mut cert);
        self.cache.record(
            &self.family_key(op),
            &encode_family_entry(&cert, &configs, &stats),
        );
        cert
    }
}

/// The happy path the mutations perturb: a 64-row compile records a family
/// entry; a 128-row compile of the same family warm-starts from it. The
/// served frontier is the seed shape's configurations re-built, re-costed,
/// and re-certified (verify + prove, the `from_disk` gate) at the new
/// extents — a warm start, so the test pins validity and the hit
/// accounting, not byte-identity with a cold search.
#[test]
fn cross_shape_family_warm_start_serves_and_recertifies() {
    let h = Harness::new();
    let seed = h.compile(&matmul_graph(64, 64, 48));
    assert!(seed.cache_stats.family_recorded > 0);
    assert_eq!(seed.cache_stats.family_hits, 0);

    // New shape, same family: the exact key misses, the family entry
    // covers it (the region widened past 128 from the 64-row compile).
    let big = matmul_graph(128, 64, 48);
    let warm = h.compile(&big);
    assert_eq!(warm.cache_stats.disk_hits, 0, "exact key must not hit");
    assert!(warm.cache_stats.family_hits > 0, "family entry must serve");
    assert_eq!(warm.cache_stats.residual_failures, 0);
    assert_eq!(warm.cache_stats.cross_shape_hit_rate(), Some(1.0));
    // compile_graph_with only returns after the mandatory structural
    // verify and (because the frontier is disk-sourced) the semantic prove
    // pass accepted every chosen plan at the *new* shape.
    assert!(warm.estimated_time > 0.0);
    assert!(!warm.program.steps.is_empty());
}

#[test]
fn widened_region_mutation_trips_exactly_sym02() {
    let h = Harness::new();
    h.compile(&matmul_graph(64, 64, 48));
    let op = builders::matmul(0, 1, 2, 128, 64, 48).unwrap();
    // Widen every bound far past the proof but keep peak_hi consistent, so
    // only re-derivation at the corrupted corner can catch it.
    let cert = h.corrupt(&op, |c| {
        for d in &mut c.region.dims {
            d.bounds.hi = d.bounds.hi.saturating_mul(1 << 16);
        }
    });
    let (_, configs, _) = h.recorded_entry(&op);
    let report = validate_cert(&cert, &op, &[2, 2], 2, &configs, h.capacity());
    assert_eq!(report.violated_rules(), vec!["SYM02"]);

    // The compiler refuses the entry and falls back to a fresh search.
    let healed = h.compile(&matmul_graph(128, 64, 48));
    assert_eq!(healed.cache_stats.family_hits, 0);
    assert!(healed.cache_stats.residual_failures > 0);
    let cold = Harness::new().compile(&matmul_graph(128, 64, 48));
    assert_eq!(
        format!("{:?}", healed.program),
        format!("{:?}", cold.program)
    );
}

#[test]
fn dropped_residual_rule_mutation_trips_exactly_sym04() {
    let h = Harness::new();
    h.compile(&matmul_graph(64, 64, 48));
    let op = builders::matmul(0, 1, 2, 128, 64, 48).unwrap();
    let cert = h.corrupt(&op, |c| {
        c.residual
            .retain(|r| !matches!(r, RuleId::PaceDividesExtent | RuleId::FactorSharing));
    });
    let (_, configs, _) = h.recorded_entry(&op);
    let report = validate_cert(&cert, &op, &[2, 2], 2, &configs, h.capacity());
    assert_eq!(report.violated_rules(), vec!["SYM04"]);

    let healed = h.compile(&matmul_graph(128, 64, 48));
    assert_eq!(healed.cache_stats.family_hits, 0);
    assert!(healed.cache_stats.residual_failures > 0);
}

#[test]
fn stale_family_key_mutation_trips_exactly_sym06() {
    let h = Harness::new();
    h.compile(&matmul_graph(64, 64, 48));
    let op = builders::matmul(0, 1, 2, 128, 64, 48).unwrap();
    let cert = h.corrupt(&op, |c| {
        c.family = "deadbeefdeadbeef".to_string();
    });
    let (_, configs, _) = h.recorded_entry(&op);
    let report = validate_cert(&cert, &op, &[2, 2], 2, &configs, h.capacity());
    assert_eq!(report.violated_rules(), vec!["SYM06"]);

    let healed = h.compile(&matmul_graph(128, 64, 48));
    assert_eq!(healed.cache_stats.family_hits, 0);
    assert!(healed.cache_stats.residual_failures > 0);
}

#[test]
fn out_of_region_shape_is_sym05_with_the_violated_region() {
    let h = Harness::new();
    h.compile(&matmul_graph(64, 64, 48));
    let op = builders::matmul(0, 1, 2, 64, 64, 48).unwrap();
    let (cert, _, _) = h.recorded_entry(&op);
    // The recorded shape itself is covered.
    assert!(check_coverage(&cert, &op).is_ok());
    // A shape past every widened bound is refused with the region rendered
    // into the diagnostic (the JSON contract for `t10 check --symbolic`).
    let far = builders::matmul(0, 1, 2, 1 << 22, 64, 48).unwrap();
    assert_eq!(cert.region.covers(&family_extents(&far)), Some(false));
    let report = check_coverage(&cert, &far);
    assert_eq!(report.violated_rules(), vec!["SYM05"]);
    let msg = &report.diagnostics[0].message;
    assert!(msg.contains("outside the validity region"));
    assert!(msg.contains("m ∈ [1,"), "region missing from: {msg}");
}

#[test]
fn malformed_region_mutation_trips_sym03() {
    let h = Harness::new();
    h.compile(&matmul_graph(64, 64, 48));
    let op = builders::matmul(0, 1, 2, 128, 64, 48).unwrap();
    let cert = h.corrupt(&op, |c| {
        // Invert one interval: lo > hi.
        c.region.dims[0].bounds.lo = c.region.dims[0].bounds.hi + 1;
    });
    let (_, configs, _) = h.recorded_entry(&op);
    let report = validate_cert(&cert, &op, &[2, 2], 2, &configs, h.capacity());
    assert!(report.violated_rules().contains(&"SYM03"));

    let healed = h.compile(&matmul_graph(128, 64, 48));
    assert_eq!(healed.cache_stats.family_hits, 0);
    assert!(healed.cache_stats.residual_failures > 0);
}

/// One family key, shapes too far apart for a single box: the entry
/// accumulates a second certificate box instead of churning the first,
/// and afterwards *both* seed shapes' neighbourhoods warm-start.
#[test]
fn family_entry_grows_boxes_for_uncovered_shapes_and_serves_from_each() {
    let h = Harness::new();
    h.compile(&matmul_graph(64, 64, 48));
    let op = builders::matmul(0, 1, 2, 64, 64, 48).unwrap();
    let (cert, _, _) = h.recorded_entry(&op);
    let hi = usize::try_from(cert.region.dims[0].bounds.hi).unwrap();

    // A shape past the widened region refuses the standing box (counted
    // as a residual failure), pays a fresh search, and appends its own
    // box to the same entry.
    let far = h.compile(&matmul_graph(hi * 2, 64, 48));
    assert_eq!(far.cache_stats.family_hits, 0);
    assert!(far.cache_stats.residual_failures > 0);
    assert!(far.cache_stats.family_recorded > 0);
    let payload = h.cache.lookup(&h.family_key(&op)).unwrap();
    assert_eq!(decode_family_entries(&payload).unwrap().len(), 2);

    // Both boxes serve: a shape only the first covers…
    let near_warm = h.compile(&matmul_graph(128, 64, 48));
    assert!(near_warm.cache_stats.family_hits > 0);
    assert_eq!(near_warm.cache_stats.residual_failures, 0);
    // …and a shape only the second covers.
    let far_warm = h.compile(&matmul_graph(hi * 4, 64, 48));
    assert!(far_warm.cache_stats.family_hits > 0);
    assert_eq!(far_warm.cache_stats.residual_failures, 0);
}

/// An undecodable family payload is a miss, never a panic or a wrong
/// answer — and the cross-shape hit-rate accounting reflects the refusal.
#[test]
fn garbage_family_payload_degrades_to_fresh_search() {
    let h = Harness::new();
    h.compile(&matmul_graph(64, 64, 48));
    let op = builders::matmul(0, 1, 2, 128, 64, 48).unwrap();
    h.cache.record(&h.family_key(&op), "not a certificate");
    let healed = h.compile(&matmul_graph(128, 64, 48));
    assert_eq!(healed.cache_stats.family_hits, 0);
    assert!(healed.cache_stats.residual_failures > 0);
    assert_eq!(healed.cache_stats.cross_shape_hit_rate(), Some(0.0));
}
