//! Property-based tests of the compiler's core data structures.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use proptest::prelude::*;
use t10_core::cost::CostModel;
use t10_core::placement::{group_pos, ring_assignment, upstream_coords, CoreGrid};
use t10_core::plan::{Plan, PlanConfig, TemporalChoice};
use t10_core::search::{ParetoSet, ScoredPlan};
use t10_device::ChipSpec;
use t10_ir::builders;

fn divisors(n: usize) -> Vec<usize> {
    (1..=n).filter(|&d| n.is_multiple_of(d)).collect()
}

proptest! {
    /// Grid linearize/unrank is a bijection for arbitrary radices.
    #[test]
    fn core_grid_bijection(radices in proptest::collection::vec(1usize..5, 1..5)) {
        let g = CoreGrid::new(&radices);
        for core in 0..g.num_cores() {
            let coords = g.coords(core);
            prop_assert_eq!(g.linear(&coords), core);
            for (c, r) in coords.iter().zip(&radices) {
                prop_assert!(c < r);
            }
        }
    }

    /// Following `upstream` around a ring visits every member exactly once
    /// before returning to the start (the ring is a single cycle).
    #[test]
    fn upstream_forms_a_cycle(
        p_missing in 2usize..9,
        f_idx in 0usize..3,
    ) {
        let f_op = vec![p_missing, 2];
        let missing = vec![0usize];
        let divs = divisors(p_missing);
        let factor = divs[f_idx.min(divs.len() - 1)].max(1);
        let start = vec![0usize, 1];
        let mut cur = start.clone();
        let mut seen = std::collections::HashSet::new();
        loop {
            prop_assert!(seen.insert(cur.clone()), "revisited {cur:?}");
            cur = upstream_coords(&cur, &missing, &f_op, factor);
            if cur == start {
                break;
            }
        }
        // The cycle length is the ring size (the temporal factor).
        prop_assert_eq!(seen.len(), factor);
        // And all members share the ring id.
        let r0 = ring_assignment(&start, &missing, &f_op, factor).ring;
        for m in &seen {
            prop_assert_eq!(ring_assignment(m, &missing, &f_op, factor).ring, r0);
        }
    }

    /// Group positions enumerate 0..P uniquely across the sharing group.
    #[test]
    fn group_pos_is_a_bijection(pa in 1usize..5, pb in 1usize..5) {
        let f_op = vec![pa, 3, pb];
        let missing = vec![0usize, 2];
        let mut seen = std::collections::HashSet::new();
        for a in 0..pa {
            for b in 0..pb {
                let g = group_pos(&[a, 0, b], &missing, &f_op);
                prop_assert!(g < pa * pb);
                prop_assert!(seen.insert(g));
            }
        }
    }

    /// Plan derivation invariants for arbitrary valid matmul configs:
    /// memory accounting is consistent, steps match the rotation levels,
    /// and total shift volume equals what the rings must cycle.
    #[test]
    fn plan_invariants(
        pm in 1usize..5,
        pk in 1usize..5,
        pn in 1usize..5,
        fa_idx in 0usize..4,
        fb_idx in 0usize..4,
    ) {
        let (m, k, n) = (16, 24, 16);
        prop_assume!(m % pm == 0 && k % pk == 0 && n % pn == 0);
        let k_tile = k / pk;
        let fa_divs: Vec<usize> = divisors(pn)
            .into_iter()
            .filter(|f| k_tile % f == 0)
            .collect();
        let fb_divs: Vec<usize> = divisors(pm)
            .into_iter()
            .filter(|f| k_tile % f == 0)
            .collect();
        let fa = fa_divs[fa_idx % fa_divs.len()];
        let fb = fb_divs[fb_idx % fb_divs.len()];
        let choice = |f: usize| if f > 1 {
            TemporalChoice::rotate(1, f)
        } else {
            TemporalChoice::none()
        };
        let tb = if fb > 1 { TemporalChoice::rotate(0, fb) } else { TemporalChoice::none() };
        let op = builders::matmul(0, 1, 2, m, k, n).unwrap();
        let plan = Plan::build(&op, &[2, 2], 2, PlanConfig {
            f_op: vec![pm, pk, pn],
            temporal: vec![choice(fa), tb],
        });
        let plan = match plan { Ok(p) => p, Err(_) => return Ok(()) };
        // Memory: partitions plus output, exactly.
        let expect_mem: usize = plan.slots.iter().map(|s| s.partition_bytes).sum::<usize>()
            + plan.out.partition_bytes;
        prop_assert_eq!(plan.mem_per_core, expect_mem);
        // Steps: product of level steps.
        let step_prod: usize = plan.rotations.iter().map(|l| l.steps.max(1)).product();
        prop_assert_eq!(plan.total_steps, step_prod);
        // Each rotating slot's full cycle moves its whole partition extent:
        // per-shift bytes × steps of its level == partition bytes × steps/f.
        for level in &plan.rotations {
            for &s in &level.slots {
                let slot = &plan.slots[s];
                let cycled = slot.per_shift_bytes * level.steps;
                // One full cycle moves the whole sub-tensor share.
                prop_assert_eq!(cycled, slot.partition_bytes * slot.temporal.factor.max(1));
            }
        }
        // rp respects every rotating partition length.
        for level in &plan.rotations {
            for &s in &level.slots {
                prop_assert!(level.rp <= plan.slots[s].plen);
            }
        }
    }

    /// The Pareto set never keeps a dominated plan and stays sorted.
    #[test]
    fn pareto_set_invariants(entries in proptest::collection::vec((1usize..1000, 1u32..1000), 1..60)) {
        let op = builders::matmul(0, 1, 2, 4, 4, 4).unwrap();
        let base = Plan::build(&op, &[2, 2], 2, PlanConfig {
            f_op: vec![1, 1, 1],
            temporal: vec![TemporalChoice::none(), TemporalChoice::none()],
        }).unwrap();
        let mut set = ParetoSet::default();
        for (mem, time) in &entries {
            set.insert(ScoredPlan {
                plan: base.clone(),
                cost: t10_core::cost::PlanCost {
                    exec_time: *time as f64,
                    compute_time: 0.0,
                    exchange_time: 0.0,
                    mem_per_core: *mem,
                },
                setup_time: 0.0,
            });
        }
        let plans = set.plans();
        prop_assert!(!plans.is_empty());
        for w in plans.windows(2) {
            prop_assert!(w[0].cost.mem_per_core < w[1].cost.mem_per_core);
            prop_assert!(w[0].cost.exec_time > w[1].cost.exec_time);
        }
        // Every inserted point is dominated by (or equal to) something kept.
        for (mem, time) in &entries {
            let covered = plans
                .iter()
                .any(|p| p.cost.mem_per_core <= *mem && p.cost.exec_time <= *time as f64);
            prop_assert!(covered);
        }
    }

    /// Cost model predictions are positive and monotone in work.
    #[test]
    fn cost_model_monotonicity(out in 64u64..8192, red in 1u64..256) {
        let cost = CostModel::calibrate(&ChipSpec::ipu_with_cores(8), 96, 11).unwrap();
        let d = t10_device::program::SubTaskDesc {
            kind: t10_ir::OpKind::MatMul,
            out_elems: out,
            red_elems: red,
            window: 1,
            in_bytes: 2 * (out + red),
            out_bytes: 2 * out,
        };
        let mut d4 = d;
        d4.out_elems *= 4;
        d4.in_bytes = 2 * (d4.out_elems + red);
        d4.out_bytes = 2 * d4.out_elems;
        let t1 = cost.predict_vertex(&d);
        let t4 = cost.predict_vertex(&d4);
        prop_assert!(t1 > 0.0);
        prop_assert!(t4 > t1, "t1={t1}, t4={t4}");
        prop_assert!(cost.predict_exchange(4096) > cost.predict_exchange(1024));
    }

    /// Graceful degradation under an SRAM fault: whenever the shrunk chip
    /// still admits a feasible plan, the fallback chain finds one that fits
    /// the reduced capacity, and the plan stays numerically exact — the
    /// functional simulator (running under the same fault) reproduces the
    /// reference executor.
    #[test]
    fn sram_fault_fallback_compiles_and_matches_reference(
        frac_pct in 40usize..100,
        mi in 1usize..4,
        seed in 0u32..1000,
    ) {
        use t10_core::compiler::CompileOptions;
        use t10_core::lower::lower_functional;
        use t10_core::Compiler;
        use t10_ir::{DType, Graph, Tensor, ValueKind};
        use t10_sim::{FaultPlan, Simulator, SimulatorMode};

        let cores = 4;
        let spec = ChipSpec::ipu_with_cores(cores);
        let (m, k, n) = (8 * mi, 16, 8);
        let mut g = Graph::new("fault-prop");
        let a = g.add_value("a", vec![m, k], DType::F32, ValueKind::Input);
        let w = g.add_value("w", vec![k, n], DType::F32, ValueKind::Weight);
        let o = g.add_value("o", vec![m, n], DType::F32, ValueKind::Output);
        let op = builders::matmul(a, w, o, m, k, n).unwrap();
        let node = g.add_node("mm", op.clone()).unwrap();

        let fault = FaultPlan::new(cores).shrink_sram(0, frac_pct as f64 / 100.0);
        let compiler = Compiler::new(spec.clone(), t10_core::SearchConfig::fast());
        let opts = CompileOptions::with_faults(fault.clone());
        let (pareto, _) = compiler.compile_node_with(&g, node, &opts).unwrap();
        prop_assume!(!pareto.is_empty());

        // Every surviving plan respects the shrunk core's capacity.
        let cap = fault.min_capacity(spec.sram_per_core, spec.shift_buffer);
        for p in pareto.plans() {
            prop_assert!(p.cost.mem_per_core <= cap,
                "plan uses {} B of {cap} B", p.cost.mem_per_core);
        }

        let scored = pareto.min_memory().unwrap();
        let f = lower_functional(&op, &scored.plan).unwrap();
        let mut sim = Simulator::new(spec, SimulatorMode::Functional)
            .with_fault_plan(fault)
            .unwrap();
        sim.load(&f.program).unwrap();
        let at = Tensor::pattern(vec![m, k], seed as f32 * 0.01);
        let wt = Tensor::pattern(vec![k, n], seed as f32 * 0.02 + 1.0);
        for (slot, t) in [&at, &wt].into_iter().enumerate() {
            for &id in &f.input_buffers[slot] {
                sim.bind(id, t).unwrap();
            }
        }
        sim.run_loaded(&f.program).unwrap();
        let got = sim.extract(&f.output_buffers, &op.expr.output_shape()).unwrap();
        let want = t10_ir::reference::execute(&op, &[&at, &wt]).unwrap();
        prop_assert!(got.approx_eq(&want, 1e-4),
            "degraded-chip plan diverges: max diff {}", got.max_abs_diff(&want));
    }
}
