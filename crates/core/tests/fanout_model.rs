//! Concurrency model tests of the compiler's scoped-thread search fan-out
//! (`compile_graph`'s parallel branch): the exact claim/slot protocol —
//! an `AtomicUsize::fetch_add` work counter, one `Mutex<Option<_>>` slot
//! per job, join-then-collect with panic containment — reproduced over
//! plain data so the same tests run under `cargo test` and under Miri's
//! data-race/UB checker in CI
//! (`cargo +nightly miri test -p t10-core --test fanout_model`).
//!
//! These are *model* tests: they prove the synchronization protocol, not
//! the search it transports. The real fan-out is exercised end-to-end by
//! the compiler tests; under Miri that path is prohibitively slow, which
//! is exactly why the protocol is worth checking in isolation.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

#[test]
fn work_claiming_fills_every_slot_exactly_once() {
    const JOBS: usize = 17;
    for workers in [1usize, 2, 4] {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<usize>>> = (0..JOBS).map(|_| Mutex::new(None)).collect();
        let claims = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let j = next.fetch_add(1, Ordering::Relaxed);
                    if j >= JOBS {
                        break;
                    }
                    claims.fetch_add(1, Ordering::Relaxed);
                    let mut slot = slots[j].lock().unwrap();
                    assert!(slot.is_none(), "job {j} claimed twice");
                    *slot = Some(j * j);
                });
            }
        });
        assert_eq!(claims.load(Ordering::Relaxed), JOBS, "workers={workers}");
        for (j, s) in slots.iter().enumerate() {
            assert_eq!(s.lock().unwrap().take(), Some(j * j), "workers={workers}");
        }
    }
}

#[test]
fn a_panicking_worker_is_contained_and_reported() {
    // Mirrors the compiler's join policy: every handle is joined, the
    // first panic payload is kept as a string, and the surviving workers
    // drain the remaining jobs — one bad operator search must not strand
    // the rest of the batch.
    const JOBS: usize = 9;
    const POISON: usize = 2;
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<usize>>> = (0..JOBS).map(|_| Mutex::new(None)).collect();
    let mut worker_panic: Option<String> = None;
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for _ in 0..3 {
            handles.push(scope.spawn(|| loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= JOBS {
                    break;
                }
                assert!(j != POISON, "seeded worker panic");
                if let Ok(mut slot) = slots[j].lock() {
                    *slot = Some(j);
                }
            }));
        }
        for h in handles {
            if let Err(payload) = h.join() {
                let detail = payload
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| payload.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "non-string panic payload".to_string());
                worker_panic.get_or_insert(detail);
            }
        }
    });
    let detail = worker_panic.expect("the seeded panic must surface through join");
    assert!(detail.contains("seeded worker panic"), "{detail}");
    for (j, s) in slots.iter().enumerate() {
        let got = s.lock().unwrap().take();
        if j == POISON {
            assert_eq!(got, None, "poisoned job must stay unfilled");
        } else {
            assert_eq!(got, Some(j), "job {j} lost after a sibling panic");
        }
    }
}
