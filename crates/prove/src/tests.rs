//! Unit tests: a hand-rolled two-core rotation program, mutated one
//! obligation at a time, must trip exactly the matching rule.

#![allow(clippy::unwrap_used, clippy::indexing_slicing)]

use super::*;
use t10_device::program::{
    BufferDecl, FuncTask, Phase, Program, ShiftKind, ShiftOp, SubTaskDesc, Superstep, VertexTask,
};
use t10_ir::{Axis, Combine, IndexExpr, OpKind, Operator, Reduce, TensorExpr};

fn desc() -> SubTaskDesc {
    SubTaskDesc {
        kind: OpKind::MatMul,
        out_elems: 1,
        red_elems: 1,
        window: 1,
        in_bytes: 0,
        out_bytes: 0,
    }
}

fn buffer(core: usize, label: &str, coords: Vec<Vec<usize>>) -> BufferDecl {
    let elems: usize = coords.iter().map(Vec::len).product();
    BufferDecl {
        core,
        label: label.into(),
        bytes: 4 * elems.max(1),
        coords,
        init: 0.0,
    }
}

fn vertex(
    core: usize,
    axis_coords: Vec<Vec<usize>>,
    inputs: Vec<usize>,
    output: usize,
) -> VertexTask {
    VertexTask {
        core,
        desc: desc(),
        func: Some(FuncTask {
            op: 0,
            axis_coords,
            inputs,
            output,
            apply_unary: false,
        }),
    }
}

/// `out[i] = Σ_j x[j] · W[i,j]` on two cores: `i` spatially partitioned,
/// the shared `x` rotating between the cores over two supersteps.
///
/// Buffers: 0/1 = x shard on core 0/1, 2/3 = W row, 4/5 = out.
fn ring_program() -> (Program, Vec<BufferId>) {
    let expr = TensorExpr::new(
        vec![Axis::spatial("i", 2), Axis::reduction("j", 2)],
        vec![
            vec![IndexExpr::axis(1)],
            vec![IndexExpr::axis(0), IndexExpr::axis(1)],
        ],
        vec![IndexExpr::axis(0)],
    )
    .unwrap();
    let op = Operator {
        kind: OpKind::MatMul,
        expr,
        combine: Combine::Mul,
        reduce: Reduce::Sum,
        unary: None,
        inputs: vec![0, 1],
        output: 2,
    };
    let mut p = Program::new();
    p.add_op(op);
    p.add_buffer(buffer(0, "x0", vec![vec![0]]));
    p.add_buffer(buffer(1, "x1", vec![vec![1]]));
    p.add_buffer(buffer(0, "w0", vec![vec![0], vec![0, 1]]));
    p.add_buffer(buffer(1, "w1", vec![vec![1], vec![0, 1]]));
    p.add_buffer(buffer(0, "out0", vec![vec![0]]));
    p.add_buffer(buffer(1, "out1", vec![vec![1]]));

    let mut s0 = Superstep::new(Some(0), Phase::Execute);
    s0.compute
        .push(vertex(0, vec![vec![0], vec![0]], vec![0, 2], 4));
    s0.compute
        .push(vertex(1, vec![vec![1], vec![1]], vec![1, 3], 5));
    let rot = ShiftKind::RotateSlices { dim: 0, count: 1 };
    s0.exchange.push(ShiftOp {
        src: 0,
        dst: 1,
        kind: rot,
    });
    s0.exchange.push(ShiftOp {
        src: 1,
        dst: 0,
        kind: rot,
    });
    p.steps.push(s0);

    let mut s1 = Superstep::new(Some(0), Phase::Execute);
    s1.compute
        .push(vertex(0, vec![vec![0], vec![1]], vec![0, 2], 4));
    s1.compute
        .push(vertex(1, vec![vec![1], vec![0]], vec![1, 3], 5));
    p.steps.push(s1);

    (p, vec![4, 5])
}

/// `out[0] = Σ_j x[j]` with `j` spatially partitioned: each core computes
/// a partial into its own copy, then an accumulate merges 1 → 0.
///
/// Buffers: 0/1 = x shard, 2/3 = partial out (3 merges into 2).
fn reduction_program() -> (Program, Vec<BufferId>) {
    let expr = TensorExpr::new(
        vec![Axis::spatial("i", 1), Axis::reduction("j", 2)],
        vec![vec![IndexExpr::axis(0), IndexExpr::axis(1)]],
        vec![IndexExpr::axis(0)],
    )
    .unwrap();
    let op = Operator {
        kind: OpKind::Reduce,
        expr,
        combine: Combine::First,
        reduce: Reduce::Sum,
        unary: None,
        inputs: vec![0],
        output: 1,
    };
    let mut p = Program::new();
    p.add_op(op);
    p.add_buffer(buffer(0, "x0", vec![vec![0], vec![0]]));
    p.add_buffer(buffer(1, "x1", vec![vec![0], vec![1]]));
    p.add_buffer(buffer(0, "part0", vec![vec![0]]));
    p.add_buffer(buffer(1, "part1", vec![vec![0]]));

    let mut s0 = Superstep::new(Some(0), Phase::Execute);
    s0.compute
        .push(vertex(0, vec![vec![0], vec![0]], vec![0], 2));
    s0.compute
        .push(vertex(1, vec![vec![0], vec![1]], vec![1], 3));
    p.steps.push(s0);

    let mut s1 = Superstep::new(Some(0), Phase::Execute);
    s1.exchange.push(ShiftOp {
        src: 3,
        dst: 2,
        kind: ShiftKind::Accumulate {
            reduce: Reduce::Sum,
        },
    });
    p.steps.push(s1);

    (p, vec![2])
}

fn rules(outcome: &ProofOutcome) -> Vec<&'static str> {
    outcome.cert.violations.clone()
}

#[test]
fn clean_ring_program_proves() {
    let (p, live) = ring_program();
    let out = Prover::new().prove_program(&p, &live);
    assert!(out.proved(), "diags: {:?}", out.report.diagnostics);
    assert_eq!(out.cert.status, CertStatus::Proved);
    assert_eq!(out.cert.ops.len(), 1);
    assert!(out.cert.ops[0].covered_exactly_once);
    assert!(out.cert.ops[0].exact);
    assert_eq!(out.cert.ops[0].iteration_points, 4);
    assert!(out.cert.flow_checked);
    assert_eq!(out.cert.rotations, 2);
    assert!(out.cert.dead_shifts.is_empty());
    assert!(out.cert.dead_buffers.is_empty());
    assert!(out.cert.hazards.is_empty());
    assert!(out.cert.reads_checked > 0);
}

#[test]
fn timing_only_program_is_vacuous() {
    let (mut p, live) = ring_program();
    for s in &mut p.steps {
        for v in &mut s.compute {
            v.func = None;
        }
    }
    let out = Prover::new().prove_program(&p, &live);
    assert!(out.proved());
    assert_eq!(out.cert.status, CertStatus::Vacuous);
    assert!(out.cert.ops.is_empty());
}

#[test]
fn swapped_shift_destinations_refute_provenance_only() {
    let (mut p, live) = ring_program();
    let (a, b) = (p.steps[0].exchange[0].dst, p.steps[0].exchange[1].dst);
    p.steps[0].exchange[0].dst = b;
    p.steps[0].exchange[1].dst = a;
    let out = Prover::new().prove_program(&p, &live);
    assert!(!out.proved());
    assert_eq!(rules(&out), vec!["PROVE03"]);
    assert_eq!(out.cert.status, CertStatus::Refuted);
}

#[test]
fn dropped_rotation_step_refutes_provenance_only() {
    let (mut p, live) = ring_program();
    p.steps[0].exchange.clear();
    let out = Prover::new().prove_program(&p, &live);
    assert_eq!(rules(&out), vec!["PROVE03"]);
}

#[test]
fn duplicated_compute_task_refutes_uniqueness_only() {
    let (mut p, live) = ring_program();
    let dup = p.steps[1].compute[0].clone();
    p.steps[1].compute.push(dup);
    let out = Prover::new().prove_program(&p, &live);
    assert_eq!(rules(&out), vec!["PROVE02"]);
    assert!(out
        .report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("computed 2 times")));
}

#[test]
fn removed_compute_task_refutes_coverage_only() {
    // Remove a step-0 vertex: nothing has been delivered yet, so no DF01
    // rides along (dropping a *final* consumer would orphan a delivery).
    let (mut p, live) = ring_program();
    p.steps[0].compute.remove(0);
    let out = Prover::new().prove_program(&p, &live);
    assert_eq!(rules(&out), vec!["PROVE01"]);
    assert!(out
        .report
        .diagnostics
        .iter()
        .any(|d| d.message.contains("never computed")));
}

#[test]
fn misplaced_output_shard_refutes_placement_only() {
    let (mut p, live) = ring_program();
    // Core 0's out buffer claims to own i=1 while its vertices write i=0.
    p.buffers[4].coords = vec![vec![1]];
    let out = Prover::new().prove_program(&p, &live);
    assert!(rules(&out).contains(&"PROVE04"), "got {:?}", rules(&out));
    assert!(!rules(&out).contains(&"PROVE03"));
}

#[test]
fn out_of_space_coordinate_is_refuted() {
    let (mut p, live) = ring_program();
    if let Some(f) = p.steps[1].compute[0].func.as_mut() {
        f.axis_coords[1] = vec![7]; // axis j has size 2
    }
    let out = Prover::new().prove_program(&p, &live);
    assert!(!out.proved());
    assert!(rules(&out).contains(&"PROVE02"));
}

#[test]
fn clean_reduction_flow_proves() {
    let (p, live) = reduction_program();
    let out = Prover::new().prove_program(&p, &live);
    assert!(out.proved(), "diags: {:?}", out.report.diagnostics);
    assert!(out.cert.flow_checked);
}

#[test]
fn dropped_accumulate_refutes_reduction_flow() {
    let (mut p, live) = reduction_program();
    p.steps[1].exchange.clear();
    let out = Prover::new().prove_program(&p, &live);
    assert_eq!(rules(&out), vec!["PROVE05"]);
}

#[test]
fn misaligned_accumulate_refutes_alignment() {
    let (mut p, live) = reduction_program();
    // Partial 1 suddenly covers a different output coordinate.
    p.buffers[3].coords = vec![vec![5]];
    let out = Prover::new().prove_program(&p, &live);
    assert!(rules(&out).contains(&"PROVE06"), "got {:?}", rules(&out));
}

#[test]
fn dead_copy_lints_df01_with_byte_count() {
    let (mut p, live) = ring_program();
    // A copy of w0 (8 B) into a scratch buffer nothing ever reads.
    let scratch = p.add_buffer(buffer(1, "scratch", vec![vec![0], vec![0, 1]]));
    let mut s = Superstep::new(Some(0), Phase::Execute);
    s.exchange.push(ShiftOp {
        src: 2,
        dst: scratch,
        kind: ShiftKind::Copy,
    });
    p.steps.push(s);
    let out = Prover::new().prove_program(&p, &live);
    assert!(out.proved(), "lints must not refute");
    assert_eq!(rules(&out), vec!["DF01"]);
    assert_eq!(out.cert.dead_shifts.len(), 1);
    assert_eq!(out.cert.dead_shift_bytes, 8);
    assert_eq!(out.cert.dead_shifts[0].buffer, scratch);
}

#[test]
fn unused_buffer_lints_df02() {
    let (mut p, live) = ring_program();
    p.add_buffer(buffer(1, "inert", vec![vec![9]]));
    let out = Prover::new().prove_program(&p, &live);
    assert!(out.proved());
    assert_eq!(rules(&out), vec!["DF02"]);
    assert_eq!(out.cert.dead_buffers, vec![6]);
}

#[test]
fn overwritten_delivery_lints_df03() {
    let (mut p, mut live) = ring_program();
    let scratch = p.add_buffer(buffer(1, "scratch", vec![vec![0], vec![0, 1]]));
    live.push(scratch); // keep DF01 out of the picture
    for _ in 0..2 {
        let mut s = Superstep::new(Some(0), Phase::Execute);
        s.exchange.push(ShiftOp {
            src: 2,
            dst: scratch,
            kind: ShiftKind::Copy,
        });
        p.steps.push(s);
    }
    let out = Prover::new().prove_program(&p, &live);
    assert!(out.proved());
    assert_eq!(rules(&out), vec!["DF03"]);
    assert_eq!(out.cert.hazards.len(), 1);
    assert_eq!(out.cert.hazards[0].buffer, scratch);
}

#[test]
fn certificate_json_round_trips_through_the_shared_parser() {
    let (p, live) = ring_program();
    let out = Prover::new().prove_program(&p, &live);
    let json = out.cert.to_json();
    let parsed = t10_trace::json::parse(&json).expect("valid JSON");
    assert_eq!(
        parsed.get("status").and_then(|v| v.as_str()),
        Some("proved")
    );
    assert_eq!(
        parsed
            .get("violations")
            .and_then(|v| v.as_arr())
            .map(<[_]>::len),
        Some(0)
    );
}

#[test]
fn prove_records_a_trace_span() {
    let (p, live) = ring_program();
    let trace = t10_trace::Trace::logical();
    let _ = Prover::new()
        .with_trace(trace.clone())
        .prove_program(&p, &live);
    let events = trace.snapshot();
    assert!(events
        .iter()
        .any(|e| e.name == "prove_program" && e.pid == PID_PROVE));
    assert!(events.iter().any(|e| e.name == "prove.violations"));
}

#[test]
fn prover_report_counts_semantic_rules() {
    let (p, live) = ring_program();
    let out = Prover::new().prove_program(&p, &live);
    assert_eq!(out.report.stats.rules_checked, RuleId::SEMANTIC.len());
    assert_eq!(out.report.stats.steps, 2);
    assert_eq!(out.report.stats.vertices, 4);
}
