//! Translation validation for compiled compute-shift programs.
//!
//! `t10-verify` proves *structural* invariants (capacity, ring shape, BSP
//! race-freedom); this crate closes the remaining gap: that a compiled
//! [`Program`] actually **computes the operator**. A symbolic dataflow
//! engine abstractly interprets the program superstep by superstep over
//! per-buffer coordinate windows ([`domain::Window`]) — the same
//! provenance the functional simulator tracks concretely — and discharges
//! three families of obligations:
//!
//! * **coverage / uniqueness** (`PROVE01/02`) — every logical iteration
//!   point is claimed by exactly one compute task, checked by exact
//!   enumeration for small spaces and by a two-lane multiset hash (sums of
//!   per-point products factorised over Cartesian boxes) for large ones;
//! * **rotation provenance** (`PROVE03/04/06`) — every operand coordinate a
//!   compute task reads is resident in the core's window at that superstep
//!   (validating the diagonal placement σ and rotating pace `rp` end to
//!   end), every write lands inside the declared output shard, and
//!   cross-core accumulations join buffers covering identical coordinates;
//! * **reduction flow** (`PROVE05`) and **dataflow lints** (`DF01–03`) —
//!   partial contributions reaching the live outputs balance the
//!   contributions produced, shifted bytes are read before being dropped,
//!   and no buffer is allocated for nothing.
//!
//! Because device programs are loop-free (a finite superstep list), one
//! forward pass over the steps *is* the dataflow fixpoint. The verdict and
//! the discharged obligations are summarised in a machine-readable
//! [`ProgramCert`].

pub mod cert;
pub mod domain;
pub mod family;

pub use cert::{CertStatus, DeadShift, Hazard, OpCert, ProgramCert};
pub use domain::{CoverageHash, FlowAcc, Window, LANES};

use std::collections::HashMap;

use t10_device::program::{BufferId, FuncTask, Program, ShiftKind};
use t10_ir::IndexExpr;
use t10_trace::{Trace, Value, PID_PROVE};
use t10_verify::{Diagnostic, Report, RuleId};

/// Largest iteration space (points) checked by exact enumeration on top of
/// the multiset hash; mirrors `t10-core`'s coverage enumeration limit.
pub const ENUM_LIMIT: u128 = 1 << 20;

/// Hard cap on points enumerated per operator (duplicates can exceed the
/// space size); beyond it the prover falls back to hash-only verdicts.
const ENUM_BUDGET: u128 = ENUM_LIMIT * 4;

/// Largest operand read-set materialised per dimension when an index
/// expression combines several axes (conv windows); larger sets are
/// skipped and counted in the certificate.
const READ_SET_LIMIT: usize = 1 << 16;

/// Diagnostics reported per rule before suppressing repeats.
const MAX_DIAGS_PER_RULE: usize = 8;

/// The result of proving one program: a standard diagnostics [`Report`]
/// (merged into `t10 check` output) plus the [`ProgramCert`].
#[derive(Debug)]
pub struct ProofOutcome {
    /// Diagnostics in `t10-verify`'s format (`PROVE*` errors, `DF*`
    /// warnings).
    pub report: Report,
    /// The machine-readable certificate.
    pub cert: ProgramCert,
}

impl ProofOutcome {
    /// Whether every semantic obligation held (lints do not refute).
    pub fn proved(&self) -> bool {
        self.report.is_ok()
    }
}

/// The translation validator.
#[derive(Debug, Default)]
pub struct Prover {
    trace: Trace,
}

impl Prover {
    /// A prover with default limits and no tracing.
    pub fn new() -> Self {
        Self::default()
    }

    /// Attaches a trace handle; proof runs record a `prove_program` span
    /// and a violation counter on [`PID_PROVE`].
    #[must_use]
    pub fn with_trace(mut self, trace: Trace) -> Self {
        self.trace = trace;
        self
    }

    /// Abstractly interprets `program` and discharges every semantic
    /// obligation. `live_out` names the buffers whose contents are the
    /// program's result (they are exempt from dead-delivery lints and are
    /// the sinks of the reduction-flow balance).
    pub fn prove_program(&self, program: &Program, live_out: &[BufferId]) -> ProofOutcome {
        let t0 = self.trace.now_us();
        let outcome = Engine::new(program, live_out).run();
        if self.trace.enabled() {
            let dur = self.trace.now_us() - t0;
            self.trace.span(
                "prove_program",
                "prove",
                PID_PROVE,
                0,
                t0,
                dur,
                vec![
                    ("steps", Value::U64(program.steps.len() as u64)),
                    ("status", Value::Str(outcome.cert.status.label().into())),
                    (
                        "violations",
                        Value::U64(outcome.report.diagnostics.len() as u64),
                    ),
                ],
            );
            self.trace.counter(
                "prove.violations",
                "prove",
                PID_PROVE,
                0,
                self.trace.now_us(),
                vec![("count", Value::U64(outcome.report.diagnostics.len() as u64))],
            );
        }
        outcome
    }
}

/// Symbolic state of one buffer.
#[derive(Debug, Clone)]
struct BufState {
    /// Per-dimension coordinate windows, storage order.
    dims: Vec<Window>,
    /// Bytes per element, for shift byte accounting.
    elem_bytes: u64,
    /// Whether anything ever read the buffer.
    read: bool,
    /// Whether anything ever wrote it (compute or shift).
    written: bool,
    /// The last exchange delivery not yet read.
    pending: Option<Pending>,
    /// Contribution flow that reached this buffer.
    acc: FlowAcc,
}

#[derive(Debug, Clone, Copy)]
struct Pending {
    step: usize,
    bytes: u64,
}

/// Per-operator coverage accumulation.
struct OpCoverage {
    hash: CoverageHash,
    acc: FlowAcc,
    boxes: u64,
    /// Claimed boxes, retained for spaces up to [`ENUM_LIMIT`] so a hash
    /// mismatch can be localized to a concrete iteration point. The clean
    /// path never enumerates: the multiset hash alone accepts in O(boxes).
    claimed: Option<Vec<Vec<Window>>>,
}

/// Result of projecting an index expression through the axis windows.
enum ReadSet {
    /// The concrete coordinate set read along the dimension.
    Coords(Window),
    /// Data-dependent (gather) dimension — not statically provable.
    Indirect,
    /// Affine sum-set too large to materialise.
    TooLarge,
}

struct Engine<'a> {
    program: &'a Program,
    live_out: Vec<BufferId>,
    bufs: Vec<BufState>,
    cov: HashMap<usize, OpCoverage>,
    report: Report,
    cert: ProgramCert,
    rule_counts: HashMap<&'static str, usize>,
}

impl<'a> Engine<'a> {
    fn new(program: &'a Program, live_out: &[BufferId]) -> Self {
        let bufs = program
            .buffers
            .iter()
            .map(|b| BufState {
                dims: b.coords.iter().map(|c| Window::from_coords(c)).collect(),
                elem_bytes: (b.bytes / b.elements().max(1)).max(1) as u64,
                read: false,
                written: false,
                pending: None,
                acc: FlowAcc::default(),
            })
            .collect();
        Self {
            program,
            live_out: live_out.to_vec(),
            bufs,
            cov: HashMap::new(),
            report: Report::new(),
            cert: ProgramCert::empty(CertStatus::Vacuous),
            rule_counts: HashMap::new(),
        }
    }

    fn push(&mut self, d: Diagnostic) {
        let n = self.rule_counts.entry(d.rule.id()).or_insert(0);
        *n += 1;
        if *n <= MAX_DIAGS_PER_RULE {
            self.report.push(d);
        }
    }

    fn run(mut self) -> ProofOutcome {
        let has_func = self
            .program
            .steps
            .iter()
            .any(|s| s.compute.iter().any(|v| v.func.is_some()));
        self.fill_stats();
        if !has_func {
            // Timing-only program: nothing is claimed, nothing to refute.
            return ProofOutcome {
                report: self.report,
                cert: self.cert,
            };
        }
        for (t, step) in self.program.steps.iter().enumerate() {
            for vtx in &step.compute {
                if let Some(f) = vtx.func.clone() {
                    self.compute(t, vtx.core, &f);
                }
            }
            self.exchange(t, &step.exchange);
        }
        self.finalize();
        ProofOutcome {
            report: self.report,
            cert: self.cert,
        }
    }

    fn fill_stats(&mut self) {
        self.report.stats.rules_checked = RuleId::SEMANTIC.len();
        self.report.stats.steps = self.program.steps.len();
        self.report.stats.buffers = self.program.buffers.len();
        self.report.stats.shifts = self.program.steps.iter().map(|s| s.exchange.len()).sum();
        self.report.stats.vertices = self
            .program
            .steps
            .iter()
            .map(|s| s.compute.iter().filter(|v| v.func.is_some()).count())
            .sum();
    }

    /// Interprets one compute vertex: coverage claim, operand residency,
    /// output placement, flow accounting.
    fn compute(&mut self, t: usize, core: usize, f: &FuncTask) {
        if f.apply_unary {
            // The epilogue reads and rewrites its whole output in place.
            if let Some(buf) = self.bufs.get_mut(f.output) {
                buf.read = true;
                buf.written = true;
                buf.pending = None;
            }
            return;
        }
        let Some(op) = self.program.ops.get(f.op) else {
            return; // dangling op reference: structural BSP02
        };
        let expr = op.expr.clone();
        if f.axis_coords.len() != expr.axes.len() {
            self.push(
                Diagnostic::error(
                    RuleId::ProveOperandProvenance,
                    format!(
                        "superstep {t} core {core}: vertex iterates {} axis lists for an \
                         operator with {} axes",
                        f.axis_coords.len(),
                        expr.axes.len()
                    ),
                )
                .at_step(t)
                .at_core(core),
            );
            return;
        }
        if f.axis_coords.iter().any(Vec::is_empty) {
            return; // empty sub-task, the simulator skips it too
        }
        let windows: Vec<Window> = f
            .axis_coords
            .iter()
            .map(|c| Window::from_coords(c))
            .collect();
        for (w, axis) in windows.iter().zip(expr.axes.iter()) {
            if let Some(c) = w.iter().find(|&c| c >= axis.size) {
                self.push(
                    Diagnostic::error(
                        RuleId::ProveCoverageDuplicated,
                        format!(
                            "superstep {t} core {core}: axis {} iterates coordinate {c} \
                             outside its size {}",
                            axis.name, axis.size
                        ),
                    )
                    .at_step(t)
                    .at_core(core),
                );
            }
        }
        self.claim_box(f.op, &expr, &windows);

        // Operand residency: each coordinate the task reads must be in the
        // input buffer's current window (σ/rp provenance, end to end).
        for (slot, dims) in expr.inputs.iter().enumerate() {
            let Some(&bid) = f.inputs.get(slot) else {
                self.push(
                    Diagnostic::error(
                        RuleId::ProveOperandProvenance,
                        format!(
                            "superstep {t} core {core}: vertex provides {} input buffers \
                             for an operator with {} input slots",
                            f.inputs.len(),
                            expr.inputs.len()
                        ),
                    )
                    .at_step(t)
                    .at_core(core),
                );
                break;
            };
            let Some(state) = self.bufs.get(bid) else {
                continue; // dangling buffer: structural BSP02
            };
            let hay_dims = state.dims.clone();
            for (d, e) in dims.iter().enumerate() {
                match read_window(e, &windows) {
                    ReadSet::Indirect => self.cert.indirect_dims_skipped += 1,
                    ReadSet::TooLarge => self.cert.indirect_dims_skipped += 1,
                    ReadSet::Coords(req) => {
                        self.cert.reads_checked += req.len() as u64;
                        let Some(hay) = hay_dims.get(d) else {
                            self.push(
                                Diagnostic::error(
                                    RuleId::ProveOperandProvenance,
                                    format!(
                                        "superstep {t} core {core}: operand slot {slot} \
                                         addresses dimension {d} of a {}-dimensional buffer",
                                        hay_dims.len()
                                    ),
                                )
                                .at_step(t)
                                .at_core(core)
                                .at_buffer(bid),
                            );
                            continue;
                        };
                        if let Some(missing) = req.first_missing_in(hay) {
                            self.push(
                                Diagnostic::error(
                                    RuleId::ProveOperandProvenance,
                                    format!(
                                        "superstep {t} core {core}: operand slot {slot} dim \
                                         {d} needs coordinate {missing} but the resident \
                                         window covers {}",
                                        hay.render()
                                    ),
                                )
                                .at_step(t)
                                .at_core(core)
                                .at_buffer(bid)
                                .hint(
                                    "the rotation ring did not deliver this shard by this \
                                     superstep — σ placement and pace rp disagree with the \
                                     compute schedule (§4.2)",
                                ),
                            );
                        }
                    }
                }
            }
            if let Some(state) = self.bufs.get_mut(bid) {
                state.read = true;
                state.pending = None;
            }
        }

        // Output placement: writes must land inside the declared shard.
        let out_dims: Option<Vec<Window>> = self.bufs.get(f.output).map(|s| s.dims.clone());
        if let Some(out_dims) = out_dims {
            for (d, e) in expr.output.iter().enumerate() {
                let ReadSet::Coords(req) = read_window(e, &windows) else {
                    continue;
                };
                let Some(hay) = out_dims.get(d) else {
                    self.push(
                        Diagnostic::error(
                            RuleId::ProveOutputPlacement,
                            format!(
                                "superstep {t} core {core}: output addresses dimension {d} \
                                 of a {}-dimensional buffer",
                                out_dims.len()
                            ),
                        )
                        .at_step(t)
                        .at_core(core)
                        .at_buffer(f.output),
                    );
                    continue;
                };
                if let Some(missing) = req.first_missing_in(hay) {
                    self.push(
                        Diagnostic::error(
                            RuleId::ProveOutputPlacement,
                            format!(
                                "superstep {t} core {core}: output dim {d} writes \
                                 coordinate {missing} outside the declared shard {}",
                                hay.render()
                            ),
                        )
                        .at_step(t)
                        .at_core(core)
                        .at_buffer(f.output)
                        .hint("the output partition must own every coordinate it computes"),
                    );
                }
            }
        }
        let count: u128 = windows.iter().map(|w| w.len() as u128).product();
        let lanes = self
            .cov
            .get(&f.op)
            .map(|c| c.hash.box_hash(&windows))
            .unwrap_or([0; LANES]);
        if let Some(out) = self.bufs.get_mut(f.output) {
            // Accumulation in place is a read-modify-write of the shard.
            out.read = true;
            out.written = true;
            out.pending = None;
            out.acc.add(count, lanes);
        }
    }

    /// Adds one Cartesian box to the operator's coverage accumulator.
    fn claim_box(&mut self, op_idx: usize, expr: &t10_ir::TensorExpr, windows: &[Window]) {
        let sizes: Vec<usize> = expr.axes.iter().map(|a| a.size).collect();
        let points = expr.iteration_points();
        let cov = self.cov.entry(op_idx).or_insert_with(|| OpCoverage {
            hash: CoverageHash::new(&sizes),
            acc: FlowAcc::default(),
            boxes: 0,
            claimed: (points <= ENUM_LIMIT).then(Vec::new),
        });
        cov.boxes += 1;
        let count: u128 = windows.iter().map(|w| w.len() as u128).product();
        let lanes = cov.hash.box_hash(windows);
        cov.acc.add(count, lanes);
        if let Some(claimed) = cov.claimed.as_mut() {
            claimed.push(windows.to_vec());
        }
    }

    /// Interprets one exchange phase: payloads are collected from the
    /// pre-phase state (BSP), then applied.
    fn exchange(&mut self, t: usize, shifts: &[t10_device::program::ShiftOp]) {
        enum Payload {
            Slab {
                dim: usize,
                count: usize,
                slab: Window,
                bytes: u64,
            },
            Whole {
                dims: Vec<Window>,
                acc: FlowAcc,
                bytes: u64,
                merge: bool,
            },
        }
        let mut payloads: Vec<Option<Payload>> = Vec::with_capacity(shifts.len());
        for s in shifts {
            let payload = self.bufs.get(s.src).and_then(|src| {
                let elems: u64 = src.dims.iter().map(|w| w.len() as u64).product();
                match s.kind {
                    ShiftKind::RotateSlices { dim, count } => {
                        let w = src.dims.get(dim)?;
                        let slab = w.front(count)?;
                        let bytes = if w.is_empty() {
                            0
                        } else {
                            elems / w.len() as u64 * count as u64 * src.elem_bytes
                        };
                        self.cert.rotations += 1;
                        Some(Payload::Slab {
                            dim,
                            count,
                            slab,
                            bytes,
                        })
                    }
                    ShiftKind::Copy => Some(Payload::Whole {
                        dims: src.dims.clone(),
                        acc: src.acc,
                        bytes: elems * src.elem_bytes,
                        merge: false,
                    }),
                    ShiftKind::Accumulate { .. } => Some(Payload::Whole {
                        dims: src.dims.clone(),
                        acc: src.acc,
                        bytes: elems * src.elem_bytes,
                        merge: true,
                    }),
                }
            });
            if payload.is_some() {
                if let Some(src) = self.bufs.get_mut(s.src) {
                    // Sending is a read: the data was consumed downstream.
                    src.read = true;
                    src.pending = None;
                }
            }
            payloads.push(payload);
        }
        for (s, payload) in shifts.iter().zip(payloads) {
            let Some(payload) = payload else { continue };
            // An unread delivery overwritten by a replacing shift is lost
            // data (accumulates merge, so they consume rather than
            // clobber).
            let merge = matches!(payload, Payload::Whole { merge: true, .. });
            if !merge {
                if let Some(prev) = self.bufs.get(s.dst).and_then(|b| b.pending) {
                    if prev.step < t {
                        self.cert.hazards.push(Hazard {
                            buffer: s.dst,
                            delivered_step: prev.step,
                            clobbered_step: t,
                        });
                        self.push(
                            Diagnostic::warning(
                                RuleId::ClobberedExchange,
                                format!(
                                    "buffer {} received {} B at superstep {} and is \
                                     overwritten at superstep {t} before any read",
                                    s.dst, prev.bytes, prev.step
                                ),
                            )
                            .at_step(t)
                            .at_buffer(s.dst)
                            .hint("a delivery no compute task consumes is wasted bandwidth"),
                        );
                    }
                }
            }
            let bytes = match &payload {
                Payload::Slab { bytes, .. } | Payload::Whole { bytes, .. } => *bytes,
            };
            // Accumulate alignment is checked against the pre-write state
            // (and diagnosed before the mutable borrow below).
            if let Payload::Whole {
                dims, merge: true, ..
            } = &payload
            {
                let aligned = self.bufs.get(s.dst).is_some_and(|dst| {
                    dims.len() == dst.dims.len()
                        && dims.iter().zip(&dst.dims).all(|(a, b)| a.same_coords(b))
                });
                if !aligned {
                    let rendered = self
                        .bufs
                        .get(s.dst)
                        .map(|dst| {
                            dst.dims
                                .iter()
                                .map(Window::render)
                                .collect::<Vec<_>>()
                                .join("×")
                        })
                        .unwrap_or_default();
                    self.push(
                        Diagnostic::error(
                            RuleId::ProveAccumulateAlignment,
                            format!(
                                "superstep {t}: accumulate {}→{} merges windows {} into \
                                 {rendered} covering different coordinates",
                                s.src,
                                s.dst,
                                dims.iter()
                                    .map(Window::render)
                                    .collect::<Vec<_>>()
                                    .join("×"),
                            ),
                        )
                        .at_step(t)
                        .at_buffer(s.dst)
                        .hint(
                            "cross-core reduction endpoints must shard the output \
                             identically (§4.4)",
                        ),
                    );
                }
            }
            let Some(dst) = self.bufs.get_mut(s.dst) else {
                continue;
            };
            match payload {
                Payload::Slab {
                    dim, count, slab, ..
                } => {
                    if let Some(w) = dst.dims.get(dim) {
                        if let Some(next) = w.rotated(count, &slab) {
                            if let Some(slot) = dst.dims.get_mut(dim) {
                                *slot = next;
                            }
                        }
                        // count > window length: structural RING06
                    }
                }
                Payload::Whole {
                    dims,
                    acc,
                    merge: false,
                    ..
                } => {
                    dst.dims = dims;
                    dst.acc = acc;
                }
                Payload::Whole {
                    acc, merge: true, ..
                } => {
                    dst.acc.merge(&acc);
                }
            }
            dst.pending = Some(Pending { step: t, bytes });
            dst.written = true;
        }
    }

    /// End-of-program obligations: coverage, flow balance, liveness lints.
    fn finalize(&mut self) {
        let mut op_indices: Vec<usize> = self.cov.keys().copied().collect();
        op_indices.sort_unstable();
        for idx in &op_indices {
            self.finalize_op(*idx);
        }
        self.check_flow(&op_indices);

        // DF01: deliveries never read (and not the program's result).
        for (b, state) in self.bufs.iter().enumerate() {
            let Some(p) = state.pending else { continue };
            if self.live_out.contains(&b) {
                continue;
            }
            self.cert.dead_shifts.push(DeadShift {
                step: p.step,
                buffer: b,
                bytes: p.bytes,
            });
            self.cert.dead_shift_bytes += p.bytes;
        }
        let dead_shifts = self.cert.dead_shifts.clone();
        for d in dead_shifts.iter().take(MAX_DIAGS_PER_RULE) {
            self.push(
                Diagnostic::warning(
                    RuleId::DeadShift,
                    format!(
                        "{} B shifted into buffer {} at superstep {} are never read",
                        d.bytes, d.buffer, d.step
                    ),
                )
                .at_step(d.step)
                .at_buffer(d.buffer)
                .hint("delete the shift or schedule a consumer; the bytes are pure overhead"),
            );
        }

        // DF02: declared, never touched, not the result.
        for (b, (state, decl)) in self.bufs.iter().zip(&self.program.buffers).enumerate() {
            if state.read || state.written || self.live_out.contains(&b) || decl.coords.is_empty() {
                continue;
            }
            self.cert.dead_buffers.push(b);
        }
        let dead_buffers = self.cert.dead_buffers.clone();
        for &b in dead_buffers.iter().take(MAX_DIAGS_PER_RULE) {
            let label = self
                .program
                .buffers
                .get(b)
                .map(|d| d.label.clone())
                .unwrap_or_default();
            let bytes = self.program.buffers.get(b).map(|d| d.bytes).unwrap_or(0);
            self.push(
                Diagnostic::warning(
                    RuleId::DeadBuffer,
                    format!("buffer {b} ({label}, {bytes} B) is allocated but never used"),
                )
                .at_buffer(b)
                .hint("drop the declaration to reclaim scratchpad capacity"),
            );
        }

        // Unlike `Report::violated_rules`, the certificate also lists
        // lint warnings (DF01–03): CI gates on them without refuting.
        let mut rules: Vec<&'static str> = self
            .report
            .diagnostics
            .iter()
            .map(|d| d.rule.id())
            .collect();
        rules.sort_unstable();
        rules.dedup();
        self.cert.violations = rules;
        self.cert.status = if self.report.is_ok() {
            CertStatus::Proved
        } else {
            CertStatus::Refuted
        };
    }

    /// Coverage verdict for one operator.
    fn finalize_op(&mut self, idx: usize) {
        let Some(op) = self.program.ops.get(idx) else {
            return;
        };
        let expr = op.expr.clone();
        let kind = format!("{:?}", op.kind);
        let expected = expr.iteration_points();
        let sizes: Vec<usize> = expr.axes.iter().map(|a| a.size).collect();
        // Extract the verdict data first; `self.push` needs `&mut self`.
        // The clean path accepts on the multiset hash alone; a mismatch is
        // localized to a concrete iteration point by enumerating the
        // retained boxes (spaces up to the enumeration limit).
        let (covered, exact, boxes, acc, dup, missing) = {
            let Some(cov) = self.cov.get(&idx) else {
                return;
            };
            let covered = cov.acc.count == expected && cov.acc.lanes == cov.hash.space();
            let mut exact = cov.claimed.is_some();
            let mut dup: Option<(Vec<usize>, u32)> = None;
            let mut missing: Option<Vec<usize>> = None;
            if let (false, Some(claimed)) = (covered, &cov.claimed) {
                match enumerate_multiplicities(claimed, &sizes, expected) {
                    Some(mult) => {
                        if let Some((linear, &m)) = mult.iter().enumerate().find(|(_, &m)| m > 1) {
                            dup = Some((decode_linear(linear as u64, &sizes), m));
                        }
                        if let Some(linear) = mult.iter().position(|&m| m == 0) {
                            missing = Some(decode_linear(linear as u64, &sizes));
                        }
                    }
                    None => exact = false, // runaway duplication blew the budget
                }
            }
            (covered, exact, cov.boxes, cov.acc, dup, missing)
        };
        self.cert.ops.push(OpCert {
            op: idx,
            kind,
            iteration_points: expected,
            boxes,
            exact,
            covered_exactly_once: covered,
        });
        if covered {
            return;
        }
        let mut localized = false;
        if let Some((coords, mult)) = dup {
            self.push(
                Diagnostic::error(
                    RuleId::ProveCoverageDuplicated,
                    format!("operator {idx}: iteration point {coords:?} is computed {mult} times"),
                )
                .hint("two compute tasks claim the same logical output element"),
            );
            localized = true;
        }
        if let Some(coords) = missing {
            self.push(
                Diagnostic::error(
                    RuleId::ProveCoverageMissing,
                    format!("operator {idx}: iteration point {coords:?} is never computed"),
                )
                .hint("no compute task claims this logical output element"),
            );
            localized = true;
        }
        if localized {
            return;
        }
        if acc.count < expected {
            self.push(
                Diagnostic::error(
                    RuleId::ProveCoverageMissing,
                    format!(
                        "operator {idx}: compute tasks claim {} of {expected} iteration points",
                        acc.count
                    ),
                )
                .hint("part of the iteration space is never computed"),
            );
        } else if acc.count > expected {
            self.push(
                Diagnostic::error(
                    RuleId::ProveCoverageDuplicated,
                    format!(
                        "operator {idx}: compute tasks claim {} points for a space of {expected}",
                        acc.count
                    ),
                )
                .hint("some iteration points are computed more than once"),
            );
        } else {
            self.push(
                Diagnostic::error(
                    RuleId::ProveCoverageDuplicated,
                    format!(
                        "operator {idx}: {expected} points claimed but the coverage multiset \
                         differs from the iteration space (some duplicated, others missing)"
                    ),
                )
                .hint("the multiset hash refutes exactly-once coverage"),
            );
        }
    }

    /// PROVE05: contributions reaching the live outputs balance the
    /// contributions produced. Only meaningful when a single operator owns
    /// the compute tasks (per-operator lowerings; multi-operator programs
    /// interleave transitions that re-home contributions).
    fn check_flow(&mut self, op_indices: &[usize]) {
        let (&[idx], false) = (op_indices, self.live_out.is_empty()) else {
            return;
        };
        let Some(cov) = self.cov.get(&idx) else {
            return;
        };
        let mut reached = FlowAcc::default();
        for &b in &self.live_out {
            if let Some(state) = self.bufs.get(b) {
                reached.merge(&state.acc);
            }
        }
        self.cert.flow_checked = true;
        if reached != cov.acc {
            self.push(
                Diagnostic::error(
                    RuleId::ProveReductionFlow,
                    format!(
                        "operator {idx}: {} contribution(s) were produced but {} reach the \
                         live outputs",
                        cov.acc.count, reached.count
                    ),
                )
                .hint(
                    "a cross-core reduction shift is missing, duplicated, or misrouted — \
                     partial outputs are not merged exactly once (§4.4)",
                ),
            );
        }
    }
}

/// Projects one index expression through the per-axis iteration windows
/// into the coordinate set read along that tensor dimension.
fn read_window(e: &IndexExpr, axis_windows: &[Window]) -> ReadSet {
    if e.is_indirect() {
        return ReadSet::Indirect;
    }
    if e.terms.is_empty() {
        return ReadSet::Coords(Window::Range {
            start: e.offset,
            len: 1,
        });
    }
    if let [t] = e.terms[..] {
        let Some(w) = axis_windows.get(t.axis) else {
            return ReadSet::TooLarge;
        };
        if t.stride == 1 {
            return ReadSet::Coords(match w {
                Window::Range { start, len } => Window::Range {
                    start: start + e.offset,
                    len: *len,
                },
                Window::List(v) => {
                    Window::from_coords(&v.iter().map(|c| c + e.offset).collect::<Vec<_>>())
                }
            });
        }
        let coords: Vec<usize> = w.iter().map(|c| e.offset + t.stride * c).collect();
        return ReadSet::Coords(Window::from_coords(&coords));
    }
    // Compound expression (conv windows): fold the per-term sum-sets.
    let mut values: Vec<usize> = vec![e.offset];
    for t in &e.terms {
        let Some(w) = axis_windows.get(t.axis) else {
            return ReadSet::TooLarge;
        };
        if values.len().saturating_mul(w.len()) > READ_SET_LIMIT {
            return ReadSet::TooLarge;
        }
        let mut next = Vec::with_capacity(values.len() * w.len());
        for &v in &values {
            for c in w.iter() {
                next.push(v + t.stride * c);
            }
        }
        next.sort_unstable();
        next.dedup();
        values = next;
    }
    ReadSet::Coords(Window::from_coords(&values))
}

/// Enumerates claimed boxes into a per-point multiplicity table (mixed
/// radix linear indices over the axis sizes). Out-of-space coordinates
/// were diagnosed during interpretation and are clamped out here. Returns
/// `None` when runaway duplication exceeds the enumeration budget.
fn enumerate_multiplicities(
    claimed: &[Vec<Window>],
    sizes: &[usize],
    expected: u128,
) -> Option<Vec<u32>> {
    let mut mult = vec![0u32; usize::try_from(expected).ok()?];
    let mut enumerated: u128 = 0;
    for windows in claimed {
        let lists: Vec<Vec<usize>> = windows
            .iter()
            .zip(sizes)
            .map(|(w, &n)| w.iter().filter(|&c| c < n).collect())
            .collect();
        if lists.len() != sizes.len() || lists.iter().any(Vec::is_empty) {
            continue;
        }
        let count: u128 = lists.iter().map(|l| l.len() as u128).product();
        enumerated = enumerated.saturating_add(count);
        if enumerated > ENUM_BUDGET {
            return None;
        }
        let mut pos = vec![0usize; lists.len()];
        'points: loop {
            let mut linear: usize = 0;
            for ((p, list), &n) in pos.iter().zip(&lists).zip(sizes) {
                let c = list.get(*p).copied().unwrap_or(0);
                linear = linear * n + c;
            }
            if let Some(slot) = mult.get_mut(linear) {
                *slot = slot.saturating_add(1);
            }
            // Advance the mixed-radix odometer, last axis fastest.
            let mut i = lists.len();
            loop {
                let Some(d) = i.checked_sub(1) else {
                    break 'points;
                };
                i = d;
                let len = lists.get(d).map(Vec::len).unwrap_or(0);
                if let Some(p) = pos.get_mut(d) {
                    *p += 1;
                    if *p < len {
                        break;
                    }
                    *p = 0;
                }
                if d == 0 {
                    break 'points;
                }
            }
        }
    }
    Some(mult)
}

/// Decodes a mixed-radix linear index back into per-axis coordinates.
fn decode_linear(mut linear: u64, sizes: &[usize]) -> Vec<usize> {
    let mut coords = vec![0usize; sizes.len()];
    for (slot, &n) in coords.iter_mut().zip(sizes).rev() {
        let n = n.max(1) as u64;
        *slot = (linear % n) as usize;
        linear /= n;
    }
    coords
}

#[cfg(test)]
mod tests;
