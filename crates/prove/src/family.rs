//! Shape-parametric closure classification of the semantic rules.
//!
//! The structural closure story lives in `t10_verify::symbolic`
//! (capacity-class rules are monotone in the extents, divisibility is
//! not). This module answers the same question for the PROVE/DF inventory:
//! which semantic obligations, once discharged at one shape, transfer to
//! every shape in a family's validity region, and which must re-run per
//! instantiation.
//!
//! The classification is *structural*, read off the operator's index
//! expressions, not its extents:
//!
//! * **Coverage and placement** (`PROVE01/02/04`) are closed for
//!   shape-generic access patterns — every dimension of every input and
//!   the output a single stride-1 axis with no offset and no indirection.
//!   For those, the compute-task tiling is a bijection onto the iteration
//!   space by construction at *every* extent assignment, so one proof
//!   covers the family. A compound (`h + kh`), strided, offset, or
//!   data-dependent (gather) dimension breaks the argument: whether the
//!   enumeration windows tile without seams depends on the concrete
//!   extents, so the rules fall back to residual.
//! * **Rotation provenance, reduction flow, and accumulate alignment**
//!   (`PROVE03/05/06`) are always residual: they quantify over the
//!   concrete σ/rp schedule and superstep list, which changes with every
//!   instantiated step count.
//! * **Dataflow lints** (`DF01–03`) are always residual: they are cheap,
//!   warn-only, and their liveness windows are schedule-dependent.

use t10_ir::Operator;
use t10_verify::RuleId;

/// How the semantic inventory splits for one operator family.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FamilyClassification {
    /// Semantic rules proven once for the whole validity region.
    pub closed: Vec<RuleId>,
    /// Semantic rules re-checked at every instantiation.
    pub residual: Vec<RuleId>,
}

/// Whether every dimension of every tensor access is a single stride-1
/// axis with no offset and no indirection — the access-pattern class whose
/// coverage bijection is extent-independent.
pub fn is_shape_generic(op: &Operator) -> bool {
    op.expr
        .inputs
        .iter()
        .chain(std::iter::once(&op.expr.output))
        .all(|dims| dims.iter().all(|e| e.single_axis().is_some()))
}

/// Classifies the semantic inventory for one operator.
pub fn classify(op: &Operator) -> FamilyClassification {
    let coverage_closed = is_shape_generic(op);
    let mut closed = Vec::new();
    let mut residual = Vec::new();
    for r in RuleId::SEMANTIC {
        let is_closed = coverage_closed
            && matches!(
                r,
                RuleId::ProveCoverageMissing
                    | RuleId::ProveCoverageDuplicated
                    | RuleId::ProveOutputPlacement
            );
        if is_closed {
            closed.push(r);
        } else {
            residual.push(r);
        }
    }
    FamilyClassification { closed, residual }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use t10_ir::builders::{self, Conv2dCfg};

    #[test]
    fn matmul_coverage_is_closed() {
        let op = builders::matmul(0, 1, 2, 8, 16, 8).unwrap();
        assert!(is_shape_generic(&op));
        let c = classify(&op);
        assert!(c.closed.contains(&RuleId::ProveCoverageMissing));
        assert!(c.closed.contains(&RuleId::ProveCoverageDuplicated));
        assert!(c.closed.contains(&RuleId::ProveOutputPlacement));
        assert!(c.residual.contains(&RuleId::ProveOperandProvenance));
        assert!(c.residual.contains(&RuleId::ProveReductionFlow));
        assert!(c.residual.contains(&RuleId::DeadShift));
    }

    #[test]
    fn compound_axis_demotes_coverage_to_residual() {
        let op = builders::conv2d(
            0,
            1,
            2,
            Conv2dCfg {
                batch: 1,
                c_in: 2,
                c_out: 2,
                h_out: 8,
                w_out: 8,
                kh: 3,
                kw: 3,
                stride: 1,
            },
        )
        .unwrap();
        assert!(!is_shape_generic(&op));
        let c = classify(&op);
        assert!(c.closed.is_empty());
        assert!(c.residual.contains(&RuleId::ProveCoverageMissing));
    }

    #[test]
    fn indirection_demotes_coverage_to_residual() {
        let op = builders::gather(0, 1, 2, 1000, 32, 8).unwrap();
        assert!(!is_shape_generic(&op));
        assert!(classify(&op).closed.is_empty());
    }

    #[test]
    fn classification_partitions_the_semantic_inventory() {
        for op in [
            builders::matmul(0, 1, 2, 4, 4, 4).unwrap(),
            builders::gather(0, 1, 2, 64, 16, 8).unwrap(),
        ] {
            let c = classify(&op);
            let mut both = c.closed.clone();
            both.extend(c.residual.iter().copied());
            both.sort();
            let mut all = RuleId::SEMANTIC.to_vec();
            all.sort();
            assert_eq!(both, all);
            // Schedule-dependent rules never leave the residual set.
            for r in [
                RuleId::ProveOperandProvenance,
                RuleId::ProveReductionFlow,
                RuleId::ProveAccumulateAlignment,
            ] {
                assert!(c.residual.contains(&r), "{} escaped residual", r.id());
            }
        }
    }
}
