//! Machine-readable proof certificates.
//!
//! A certificate records *what was proved* (per-operator coverage, the
//! rotation/read obligations discharged, the flow check) and *what was
//! found* (dead shifts, dead buffers, hazards, violated rules), in a
//! stable, hand-rolled JSON schema CI can assert against without a JSON
//! library.

use t10_trace::json::escape_into;

/// Overall verdict of a proof run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CertStatus {
    /// Every obligation discharged; the program computes the operator.
    Proved,
    /// At least one semantic obligation failed.
    Refuted,
    /// The program carries no functional tasks (timing-only); nothing to
    /// prove and nothing claimed.
    Vacuous,
}

impl CertStatus {
    /// Stable lowercase label used in the JSON schema.
    pub fn label(&self) -> &'static str {
        match self {
            CertStatus::Proved => "proved",
            CertStatus::Refuted => "refuted",
            CertStatus::Vacuous => "vacuous",
        }
    }
}

/// Per-operator coverage verdict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpCert {
    /// Index into the program's operator table.
    pub op: usize,
    /// Operator family label (e.g. `MatMul`).
    pub kind: String,
    /// Size of the logical iteration space.
    pub iteration_points: u128,
    /// Number of Cartesian boxes compute tasks claimed.
    pub boxes: u64,
    /// Whether coverage was additionally checked by exact enumeration
    /// (spaces up to the enumeration limit) rather than hash-only.
    pub exact: bool,
    /// Whether every iteration point was produced exactly once.
    pub covered_exactly_once: bool,
}

/// Bytes shifted into a buffer and never read (DF01).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadShift {
    /// Superstep of the last unread delivery.
    pub step: usize,
    /// Receiving buffer.
    pub buffer: usize,
    /// Bytes of that delivery.
    pub bytes: u64,
}

/// A delivery overwritten before any read (DF03).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Hazard {
    /// Buffer involved.
    pub buffer: usize,
    /// Superstep that delivered the data.
    pub delivered_step: usize,
    /// Superstep that overwrote it unread.
    pub clobbered_step: usize,
}

/// The complete certificate for one proved program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramCert {
    /// Overall verdict.
    pub status: CertStatus,
    /// Per-operator coverage verdicts (operators with compute tasks).
    pub ops: Vec<OpCert>,
    /// Rotation shifts whose provenance was tracked.
    pub rotations: u64,
    /// Operand coordinates membership-checked against resident windows.
    pub reads_checked: u64,
    /// Data-dependent (gather) dimensions skipped — not provable
    /// statically.
    pub indirect_dims_skipped: u64,
    /// Whether the cross-core reduction flow balance was checked.
    pub flow_checked: bool,
    /// Dead shifts found (empty = proven absent).
    pub dead_shifts: Vec<DeadShift>,
    /// Total bytes across `dead_shifts`.
    pub dead_shift_bytes: u64,
    /// Buffers allocated but never used (DF02).
    pub dead_buffers: Vec<usize>,
    /// Write-after-delivery hazards (DF03).
    pub hazards: Vec<Hazard>,
    /// Sorted, de-duplicated ids of every violated rule.
    pub violations: Vec<&'static str>,
}

impl ProgramCert {
    /// An empty certificate with the given status.
    pub fn empty(status: CertStatus) -> Self {
        Self {
            status,
            ops: Vec::new(),
            rotations: 0,
            reads_checked: 0,
            indirect_dims_skipped: 0,
            flow_checked: false,
            dead_shifts: Vec::new(),
            dead_shift_bytes: 0,
            dead_buffers: Vec::new(),
            hazards: Vec::new(),
            violations: Vec::new(),
        }
    }

    /// Deterministic JSON rendering of the certificate.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"status\":\"");
        out.push_str(self.status.label());
        out.push_str("\",\"ops\":[");
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{{\"op\":{},\"kind\":\"", op.op));
            escape_into(&mut out, &op.kind);
            out.push_str(&format!(
                "\",\"iteration_points\":{},\"boxes\":{},\"exact\":{},\
                 \"covered_exactly_once\":{}}}",
                op.iteration_points, op.boxes, op.exact, op.covered_exactly_once
            ));
        }
        out.push_str(&format!(
            "],\"rotations\":{},\"reads_checked\":{},\"indirect_dims_skipped\":{},\
             \"flow_checked\":{},\"dead_shifts\":[",
            self.rotations, self.reads_checked, self.indirect_dims_skipped, self.flow_checked
        ));
        for (i, d) in self.dead_shifts.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"step\":{},\"buffer\":{},\"bytes\":{}}}",
                d.step, d.buffer, d.bytes
            ));
        }
        out.push_str(&format!(
            "],\"dead_shift_bytes\":{},\"dead_buffers\":[",
            self.dead_shift_bytes
        ));
        for (i, b) in self.dead_buffers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&b.to_string());
        }
        out.push_str("],\"hazards\":[");
        for (i, h) in self.hazards.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"buffer\":{},\"delivered_step\":{},\"clobbered_step\":{}}}",
                h.buffer, h.delivered_step, h.clobbered_step
            ));
        }
        out.push_str("],\"violations\":[");
        for (i, v) in self.violations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            out.push_str(v);
            out.push('"');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn certificate_json_is_stable_and_parseable() {
        let mut c = ProgramCert::empty(CertStatus::Proved);
        c.ops.push(OpCert {
            op: 0,
            kind: "MatMul".into(),
            iteration_points: 4096,
            boxes: 64,
            exact: true,
            covered_exactly_once: true,
        });
        c.rotations = 48;
        c.reads_checked = 128;
        c.flow_checked = true;
        c.dead_shifts.push(DeadShift {
            step: 3,
            buffer: 7,
            bytes: 256,
        });
        c.dead_shift_bytes = 256;
        c.violations.push("DF01");
        let json = c.to_json();
        let parsed = t10_trace::json::parse(&json).expect("valid JSON");
        assert_eq!(
            parsed.get("status").and_then(|v| v.as_str()),
            Some("proved")
        );
        assert_eq!(
            parsed
                .get("dead_shift_bytes")
                .and_then(|v| v.as_f64())
                .map(|v| v as u64),
            Some(256)
        );
        assert_eq!(
            parsed.get("ops").and_then(|v| v.as_arr()).map(|a| a.len()),
            Some(1)
        );
        // Same input, same bytes: the schema is deterministic.
        assert_eq!(json, c.to_json());
    }
}
