//! The symbolic domain: per-dimension coordinate windows and the
//! multiset-coverage hash.
//!
//! A buffer's contents are abstracted to *which global coordinates* it
//! holds along each dimension, in storage (FIFO) order — exactly the
//! `coords` the functional simulator's buffers carry, but interpreted
//! symbolically without any element data. Rotation shifts retire
//! coordinates from the front of a window and append the received slab at
//! the back, mirroring `t10_sim`'s `FuncBuffer::rotate`.

use std::collections::HashSet;

/// One buffer dimension's coordinate window, in storage order.
///
/// Most windows are contiguous global ranges (`Range`); rotating windows
/// that have wrapped around their ring extent (e.g. `{10, 11, 0, 1}`)
/// fall back to the explicit `List` form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Window {
    /// Consecutive coordinates `start .. start + len`.
    Range {
        /// First coordinate.
        start: usize,
        /// Number of coordinates.
        len: usize,
    },
    /// Arbitrary coordinates in storage order.
    List(Vec<usize>),
}

impl Window {
    /// Builds a window from an explicit coordinate list, normalising
    /// consecutive runs to the `Range` form.
    pub fn from_coords(coords: &[usize]) -> Self {
        let consecutive = coords
            .windows(2)
            .all(|w| matches!(w, [a, b] if *b == a.wrapping_add(1)));
        match (coords.first(), consecutive) {
            (Some(&start), true) => Window::Range {
                start,
                len: coords.len(),
            },
            (Some(_), false) => Window::List(coords.to_vec()),
            (None, _) => Window::Range { start: 0, len: 0 },
        }
    }

    /// Number of coordinates held.
    pub fn len(&self) -> usize {
        match self {
            Window::Range { len, .. } => *len,
            Window::List(v) => v.len(),
        }
    }

    /// Whether the window holds no coordinates.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates the coordinates in storage order.
    pub fn iter(&self) -> WindowIter<'_> {
        match self {
            Window::Range { start, len } => WindowIter::Range(*start..start.saturating_add(*len)),
            Window::List(v) => WindowIter::List(v.iter()),
        }
    }

    /// Membership test for one coordinate.
    pub fn contains(&self, c: usize) -> bool {
        match self {
            Window::Range { start, len } => c >= *start && c - *start < *len,
            Window::List(v) => v.contains(&c),
        }
    }

    /// The first `count` coordinates (the slab a rotation retires), or
    /// `None` when the window is shorter than `count`.
    pub fn front(&self, count: usize) -> Option<Window> {
        if count > self.len() {
            return None;
        }
        Some(match self {
            Window::Range { start, .. } => Window::Range {
                start: *start,
                len: count,
            },
            Window::List(v) => Window::from_coords(v.get(..count).unwrap_or(&[])),
        })
    }

    /// The window after a rotation: the front `count` coordinates are
    /// dropped and `slab` is appended at the back (FIFO), mirroring the
    /// simulator's `FuncBuffer::rotate`. `None` when `count` exceeds the
    /// window length.
    pub fn rotated(&self, count: usize, slab: &Window) -> Option<Window> {
        if count > self.len() {
            return None;
        }
        let mut coords: Vec<usize> = self.iter().skip(count).collect();
        coords.extend(slab.iter());
        Some(Window::from_coords(&coords))
    }

    /// First coordinate of `self` absent from `hay`, or `None` when
    /// `self ⊆ hay`.
    pub fn first_missing_in(&self, hay: &Window) -> Option<usize> {
        // A large List haystack probed many times is worth a set.
        if let Window::List(v) = hay {
            if v.len() > 32 && self.len() > 8 {
                let set: HashSet<usize> = v.iter().copied().collect();
                return self.iter().find(|c| !set.contains(c));
            }
        }
        self.iter().find(|&c| !hay.contains(c))
    }

    /// Whether the two windows cover the same coordinate *set*
    /// (order-insensitive; accumulate endpoints may be permuted).
    pub fn same_coords(&self, other: &Window) -> bool {
        if self.len() != other.len() {
            return false;
        }
        match (self, other) {
            (Window::Range { start: a, .. }, Window::Range { start: b, .. }) => a == b,
            _ => {
                let mut a: Vec<usize> = self.iter().collect();
                let mut b: Vec<usize> = other.iter().collect();
                a.sort_unstable();
                b.sort_unstable();
                a == b
            }
        }
    }

    /// A short human rendering for diagnostics: `[a..b]` or `{x, y, …}`.
    pub fn render(&self) -> String {
        match self {
            Window::Range { start, len } => format!("[{}..{}]", start, start + len),
            Window::List(v) => {
                let mut s = String::from("{");
                for (i, c) in v.iter().take(6).enumerate() {
                    if i > 0 {
                        s.push_str(", ");
                    }
                    s.push_str(&c.to_string());
                }
                if v.len() > 6 {
                    s.push_str(", …");
                }
                s.push('}');
                s
            }
        }
    }
}

/// Iterator over a [`Window`]'s coordinates.
pub enum WindowIter<'a> {
    /// Over a contiguous range.
    Range(std::ops::Range<usize>),
    /// Over an explicit list.
    List(std::slice::Iter<'a, usize>),
}

impl Iterator for WindowIter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        match self {
            WindowIter::Range(r) => r.next(),
            WindowIter::List(it) => it.next().copied(),
        }
    }
}

/// Number of independent hash lanes; a collision must fool both.
pub const LANES: usize = 2;

/// Per-lane seeds for the coordinate hash.
const SEEDS: [u64; LANES] = [0x9e37_79b9_7f4a_7c15, 0xd1b5_4a32_d192_ed03];

/// SplitMix64 finalizer: the workhorse mixing function.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The per-axis, per-coordinate hash weight. Forced odd so products over
/// axes never collapse to zero.
fn weight(lane: usize, axis: usize, coord: usize) -> u64 {
    let seed = SEEDS.get(lane).copied().unwrap_or(1);
    splitmix64(seed ^ ((axis as u64) << 40) ^ (coord as u64)) | 1
}

/// A multiset hash over an operator's iteration space.
///
/// Each iteration point `p` hashes to `Π_a weight(a, p_a)` per lane; a set
/// of points hashes to the wrapping *sum* of point hashes. Because compute
/// tasks cover Cartesian boxes of per-axis windows, a box's sum factorises
/// as `Π_a Σ_{c ∈ window_a} weight(a, c)` — evaluated in O(axes) per box
/// via per-axis prefix sums, never by enumeration. The whole space covered
/// exactly once therefore hashes to `Π_a (Σ_{c < size_a} weight(a, c))`.
#[derive(Debug)]
pub struct CoverageHash {
    /// `prefix[a][i]` = per-lane `Σ_{c < i} weight(a, c)`, length `size+1`.
    prefix: Vec<Vec<[u64; LANES]>>,
}

impl CoverageHash {
    /// Builds the per-axis prefix tables for the given axis sizes.
    pub fn new(sizes: &[usize]) -> Self {
        let prefix = sizes
            .iter()
            .enumerate()
            .map(|(a, &n)| {
                let mut acc = [0u64; LANES];
                let mut table = Vec::with_capacity(n + 1);
                table.push(acc);
                for c in 0..n {
                    for (lane, slot) in acc.iter_mut().enumerate() {
                        *slot = slot.wrapping_add(weight(lane, a, c));
                    }
                    table.push(acc);
                }
                table
            })
            .collect();
        Self { prefix }
    }

    /// Hash of the full iteration space covered exactly once.
    pub fn space(&self) -> [u64; LANES] {
        let mut out = [1u64; LANES];
        for table in &self.prefix {
            let total = table.last().copied().unwrap_or([0; LANES]);
            for (lane, slot) in out.iter_mut().enumerate() {
                *slot = slot.wrapping_mul(total.get(lane).copied().unwrap_or(0));
            }
        }
        out
    }

    /// Per-lane `Σ weight(axis, c)` over a window's coordinates.
    fn window_sum(&self, axis: usize, w: &Window) -> [u64; LANES] {
        if let (Window::Range { start, len }, Some(table)) = (w, self.prefix.get(axis)) {
            let end = start.saturating_add(*len);
            if let (Some(hi), Some(lo)) = (table.get(end), table.get(*start)) {
                let mut out = [0u64; LANES];
                for (lane, slot) in out.iter_mut().enumerate() {
                    let h = hi.get(lane).copied().unwrap_or(0);
                    let l = lo.get(lane).copied().unwrap_or(0);
                    *slot = h.wrapping_sub(l);
                }
                return out;
            }
        }
        // Explicit (or out-of-range) coordinates: sum weights directly.
        let mut out = [0u64; LANES];
        for c in w.iter() {
            for (lane, slot) in out.iter_mut().enumerate() {
                *slot = slot.wrapping_add(weight(lane, axis, c));
            }
        }
        out
    }

    /// Hash of a Cartesian box of per-axis windows (each point once).
    pub fn box_hash(&self, windows: &[Window]) -> [u64; LANES] {
        let mut out = [1u64; LANES];
        for (a, w) in windows.iter().enumerate() {
            let s = self.window_sum(a, w);
            for (lane, slot) in out.iter_mut().enumerate() {
                *slot = slot.wrapping_mul(s.get(lane).copied().unwrap_or(0));
            }
        }
        out
    }
}

/// A flow accumulator: how many iteration-point contributions (and their
/// multiset hash) have reached a buffer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowAcc {
    /// Exact count of contributions.
    pub count: u128,
    /// Per-lane multiset hash of the contributions.
    pub lanes: [u64; LANES],
}

impl FlowAcc {
    /// Adds a box of `count` points hashing to `lanes`.
    pub fn add(&mut self, count: u128, lanes: [u64; LANES]) {
        self.count = self.count.wrapping_add(count);
        for (lane, slot) in self.lanes.iter_mut().enumerate() {
            *slot = slot.wrapping_add(lanes.get(lane).copied().unwrap_or(0));
        }
    }

    /// Merges another accumulator (a cross-core reduction shift).
    pub fn merge(&mut self, other: &FlowAcc) {
        self.add(other.count, other.lanes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_coords_normalises_runs() {
        assert_eq!(
            Window::from_coords(&[4, 5, 6]),
            Window::Range { start: 4, len: 3 }
        );
        assert_eq!(Window::from_coords(&[4, 6, 5]), Window::List(vec![4, 6, 5]));
        assert!(Window::from_coords(&[]).is_empty());
    }

    #[test]
    fn rotation_mirrors_fifo_semantics() {
        // {10, 11, 0, 1} rotated by 2 receiving {2, 3} -> {0, 1, 2, 3}.
        let w = Window::List(vec![10, 11, 0, 1]);
        let slab = Window::Range { start: 2, len: 2 };
        let r = w.rotated(2, &slab).expect("rotation fits");
        assert_eq!(r, Window::Range { start: 0, len: 4 });
        assert!(w.rotated(5, &slab).is_none());
    }

    #[test]
    fn front_and_membership() {
        let w = Window::Range { start: 8, len: 4 };
        assert_eq!(w.front(2), Some(Window::Range { start: 8, len: 2 }));
        assert!(w.contains(11));
        assert!(!w.contains(12));
        let needles = Window::List(vec![9, 12]);
        assert_eq!(needles.first_missing_in(&w), Some(12));
        let inside = Window::List(vec![9, 10]);
        assert_eq!(inside.first_missing_in(&w), None);
    }

    #[test]
    fn same_coords_is_order_insensitive() {
        let a = Window::List(vec![3, 1, 2]);
        let b = Window::Range { start: 1, len: 3 };
        assert!(a.same_coords(&b));
        assert!(!a.same_coords(&Window::Range { start: 0, len: 3 }));
    }

    #[test]
    fn box_hashes_sum_to_the_space() {
        let sizes = [4usize, 6];
        let h = CoverageHash::new(&sizes);
        // Tile the 4x6 space into four 2x3 boxes: sums must equal space().
        let mut acc = FlowAcc::default();
        for r in [0usize, 2] {
            for c in [0usize, 3] {
                let b = [
                    Window::Range { start: r, len: 2 },
                    Window::Range { start: c, len: 3 },
                ];
                acc.add(6, h.box_hash(&b));
            }
        }
        assert_eq!(acc.count, 24);
        assert_eq!(acc.lanes, h.space());
    }

    #[test]
    fn duplicated_box_perturbs_the_hash() {
        let h = CoverageHash::new(&[4]);
        let full = [Window::Range { start: 0, len: 4 }];
        let dup = [Window::Range { start: 1, len: 1 }];
        let mut acc = FlowAcc::default();
        acc.add(4, h.box_hash(&full));
        acc.add(1, h.box_hash(&dup));
        assert_ne!(acc.lanes, h.space());
    }

    #[test]
    fn list_windows_hash_like_ranges() {
        let h = CoverageHash::new(&[8]);
        let a = h.box_hash(&[Window::List(vec![5, 3, 4])]);
        let b = h.box_hash(&[Window::Range { start: 3, len: 3 }]);
        assert_eq!(a, b);
    }
}
