//! BSP superstep simulator for inter-core connected AI chips.
//!
//! This crate is the workspace's stand-in for a physical Graphcore IPU MK2
//! (see `DESIGN.md`, hardware-gate substitutions). It executes the abstract
//! [`t10_device::Program`]s that compilers emit, in two modes:
//!
//! * **functional** — per-core f32 buffers are materialized and every vertex
//!   and shift actually moves data, so a compiled compute-shift plan can be
//!   checked numerically against the naive reference executor; and
//! * **timing** — only the per-superstep summaries are priced using the
//!   ground-truth hardware model ([`t10_device::truth`]), which is fast
//!   enough for end-to-end models on 1,472+ cores.
//!
//! The simulator follows the IPU's bulk-synchronous execution: each
//! superstep is a compute phase (all cores run one homogeneous vertex) and
//! an exchange phase (inter-core shifts), separated by a synchronization
//! barrier (paper §5, Figure 11).

// The machine executes programs the static verifier has accepted
// (dangling buffer/core references are CAP01/BSP02 refutations), so
// per-superstep indexing is bounds-correct by that gate. The analysis
// crates (`t10-verify`, `t10-prove`) stay index-hardened.
#![allow(clippy::indexing_slicing)]
// Library paths must fail with typed errors, never panic: a mid-run fault
// is survivable only if it surfaces as a Result the recovery controller can
// catch. Tests may unwrap freely.
#![cfg_attr(test, allow(clippy::unwrap_used))]

pub mod buffer;
pub mod fault;
pub mod machine;
pub mod memory;
pub mod report;
pub mod timeline;

pub use buffer::FuncBuffer;
pub use fault::{FaultPlan, FaultSummary, LinkFault};
pub use machine::{Checkpoint, Simulator, SimulatorMode};
pub use machine::{RunStateEvent, RunStateLog};
pub use memory::MemoryTracker;
pub use report::{NodeBreakdown, RecoveryReport, RunReport, StepTrace};
pub use timeline::{FaultEvent, FaultEventKind, FaultTimeline, TimelineParseError};

pub(crate) use t10_device::iface::DeviceError;

/// Result alias using the device error type.
pub type Result<T> = std::result::Result<T, DeviceError>;

/// Builds a [`DeviceError`](t10_device::iface::DeviceError) from format
/// arguments.
#[macro_export]
macro_rules! sim_err {
    ($($arg:tt)*) => {
        t10_device::iface::DeviceError::new(format!($($arg)*))
    };
}
