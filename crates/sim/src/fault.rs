//! Deterministic fault injection for the simulated chip.
//!
//! A [`FaultPlan`] describes a degraded machine: per-link bandwidth loss,
//! per-core compute slowdown, and per-core SRAM shrinkage. Plans are built
//! either programmatically (explicit per-core entries) or from a seeded
//! random specification, and the same seed always yields the same plan, so
//! degraded runs are reproducible bit-for-bit.
//!
//! The simulator threads the plan through all three cost paths:
//!
//! * **exchange** — a core with a degraded outgoing link takes `1/m` times
//!   as long to push the same bytes; a *lost* link forces traffic to detour
//!   through a neighbour (two hops plus contention), modeled as a fixed
//!   [`REROUTE_MULTIPLIER`] on effective bandwidth.
//! * **compute** — the BSP barrier gates every superstep on its slowest
//!   participant, so a slowed core stretches the whole compute phase.
//! * **memory** — a shrunk core's scratchpad capacity drops below nominal;
//!   allocations that no longer fit fail with a structured out-of-memory
//!   error that the compiler's fallback chain can react to.

use serde::{Deserialize, Serialize};

/// Effective-bandwidth multiplier for traffic whose direct link is lost:
/// the payload detours through an adjacent core (two hops) and shares that
/// core's own link time slots, so roughly a third of nominal bandwidth
/// survives.
pub const REROUTE_MULTIPLIER: f64 = 1.0 / 3.0;

/// Fault on one core's inter-core link.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkFault {
    /// The link runs at `multiplier` × nominal bandwidth (0 < m < 1).
    Degraded { multiplier: f64 },
    /// The link is dead; traffic reroutes at [`REROUTE_MULTIPLIER`].
    Lost,
}

/// A deterministic description of which parts of the chip are degraded.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    seed: u64,
    rng_state: u64,
    links: Vec<Option<LinkFault>>,
    /// Compute-time multiplier per core (1.0 = healthy, 2.0 = half speed).
    slowdowns: Vec<f64>,
    /// Fraction of nominal SRAM that survives per core (1.0 = healthy).
    sram_frac: Vec<f64>,
}

impl FaultPlan {
    /// A healthy plan for `num_cores` cores (seed 0).
    pub fn new(num_cores: usize) -> Self {
        Self::seeded(num_cores, 0)
    }

    /// A healthy plan whose random selections will derive from `seed`.
    pub fn seeded(num_cores: usize, seed: u64) -> Self {
        Self {
            seed,
            // splitmix-style scramble so seed 0 still produces a useful
            // stream.
            rng_state: seed ^ 0x9E37_79B9_7F4A_7C15,
            links: vec![None; num_cores],
            slowdowns: vec![1.0; num_cores],
            sram_frac: vec![1.0; num_cores],
        }
    }

    /// The seed this plan was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of cores the plan covers.
    pub fn num_cores(&self) -> usize {
        self.links.len()
    }

    /// True when no fault is present anywhere.
    pub fn is_healthy(&self) -> bool {
        self.links.iter().all(Option::is_none)
            && self.slowdowns.iter().all(|&m| m == 1.0)
            && self.sram_frac.iter().all(|&f| f == 1.0)
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: small, deterministic, good enough for fault sampling.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Picks exactly `ceil(frac × num_cores)` distinct cores via a partial
    /// Fisher–Yates shuffle of the core ids, so a requested fraction is hit
    /// exactly rather than in expectation.
    fn pick_cores(&mut self, frac: f64) -> Vec<usize> {
        let n = self.num_cores();
        let count = ((frac * n as f64).ceil() as usize).min(n);
        let mut ids: Vec<usize> = (0..n).collect();
        for i in 0..count {
            let j = i + (self.next_u64() as usize) % (n - i);
            ids.swap(i, j);
        }
        ids.truncate(count);
        ids
    }

    /// Degrades a random `frac` of links to `multiplier` × bandwidth.
    pub fn degrade_links(mut self, frac: f64, multiplier: f64) -> Self {
        for c in self.pick_cores(frac) {
            self.links[c] = Some(LinkFault::Degraded { multiplier });
        }
        self
    }

    /// Kills a random `frac` of links outright.
    pub fn lose_links(mut self, frac: f64) -> Self {
        for c in self.pick_cores(frac) {
            self.links[c] = Some(LinkFault::Lost);
        }
        self
    }

    /// Slows a random `frac` of cores by `multiplier` (≥ 1).
    pub fn slow_cores(mut self, frac: f64, multiplier: f64) -> Self {
        for c in self.pick_cores(frac) {
            self.slowdowns[c] = multiplier;
        }
        self
    }

    /// Sets one core's link fault explicitly.
    pub fn set_link_fault(mut self, core: usize, fault: Option<LinkFault>) -> Self {
        if core < self.links.len() {
            self.links[core] = fault;
        }
        self
    }

    /// Sets one core's compute slowdown explicitly.
    pub fn set_slowdown(mut self, core: usize, multiplier: f64) -> Self {
        if core < self.slowdowns.len() {
            self.slowdowns[core] = multiplier.max(1.0);
        }
        self
    }

    /// Shrinks one core's SRAM to `frac` of nominal.
    pub fn shrink_sram(mut self, core: usize, frac: f64) -> Self {
        if core < self.sram_frac.len() {
            self.sram_frac[core] = frac.clamp(0.0, 1.0);
        }
        self
    }

    /// Effective-bandwidth multiplier of one core's link (1.0 = healthy).
    pub fn link_multiplier(&self, core: usize) -> f64 {
        match self.links.get(core).copied().flatten() {
            Some(LinkFault::Degraded { multiplier }) => multiplier.clamp(f64::MIN_POSITIVE, 1.0),
            Some(LinkFault::Lost) => REROUTE_MULTIPLIER,
            None => 1.0,
        }
    }

    /// The worst (smallest) link multiplier on the chip.
    pub fn worst_link_multiplier(&self) -> f64 {
        (0..self.num_cores())
            .map(|c| self.link_multiplier(c))
            .fold(1.0, f64::min)
    }

    /// Compute-time multiplier of one core (1.0 = healthy, larger = slower).
    pub fn compute_multiplier(&self, core: usize) -> f64 {
        self.slowdowns.get(core).copied().unwrap_or(1.0)
    }

    /// The worst (largest) compute multiplier on the chip. The BSP barrier
    /// gates every superstep on its slowest participant.
    pub fn worst_compute_multiplier(&self) -> f64 {
        self.slowdowns.iter().copied().fold(1.0, f64::max)
    }

    /// One core's usable scratchpad after faults: the SRAM fraction applies
    /// to the nominal SRAM size, then the reserved shift buffer is carved
    /// out of what survives.
    pub fn sram_capacity(&self, core: usize, sram_per_core: usize, shift_buffer: usize) -> usize {
        let frac = self.sram_frac.get(core).copied().unwrap_or(1.0);
        let sram = (sram_per_core as f64 * frac) as usize;
        sram.saturating_sub(shift_buffer)
    }

    /// Usable capacity of every core (input to the memory tracker).
    pub fn capacities(&self, sram_per_core: usize, shift_buffer: usize) -> Vec<usize> {
        (0..self.num_cores())
            .map(|c| self.sram_capacity(c, sram_per_core, shift_buffer))
            .collect()
    }

    /// Usable capacity of the most constrained core — the bound a uniform
    /// (SPMD) plan must fit under.
    pub fn min_capacity(&self, sram_per_core: usize, shift_buffer: usize) -> usize {
        self.capacities(sram_per_core, shift_buffer)
            .into_iter()
            .min()
            .unwrap_or(0)
    }

    /// The plan for the chip that survives losing `core` entirely: every
    /// other core keeps its own faults, renumbered past the gap. Used by
    /// recovery when a core dies mid-run and the chip shrinks by one.
    pub fn without_core(&self, core: usize) -> Self {
        let keep = |i: &usize| *i != core;
        Self {
            seed: self.seed,
            rng_state: self.rng_state,
            links: (0..self.links.len())
                .filter(keep)
                .map(|i| self.links[i])
                .collect(),
            slowdowns: (0..self.slowdowns.len())
                .filter(keep)
                .map(|i| self.slowdowns[i])
                .collect(),
            sram_frac: (0..self.sram_frac.len())
                .filter(keep)
                .map(|i| self.sram_frac[i])
                .collect(),
        }
    }

    /// A stable rendering of the *effective* fault state — which links,
    /// slowdowns, and SRAM fractions are degraded — for cache keying.
    /// Deliberately excludes `seed`/`rng_state`: two plans that degrade the
    /// same hardware the same way are the same machine, however they were
    /// sampled, and the sampled entries themselves are already seed-exact.
    pub fn digest_string(&self) -> String {
        let mut s = format!("n={}", self.num_cores());
        for (c, fault) in self.links.iter().enumerate() {
            match fault {
                Some(LinkFault::Degraded { multiplier }) => {
                    s.push_str(&format!(";L{c}=deg{multiplier:e}"));
                }
                Some(LinkFault::Lost) => s.push_str(&format!(";L{c}=lost")),
                None => {}
            }
        }
        for (c, &m) in self.slowdowns.iter().enumerate() {
            if m != 1.0 {
                s.push_str(&format!(";C{c}=slow{m:e}"));
            }
        }
        for (c, &f) in self.sram_frac.iter().enumerate() {
            if f != 1.0 {
                s.push_str(&format!(";S{c}=frac{f:e}"));
            }
        }
        s
    }

    /// Aggregate statistics for the run report.
    pub fn summary(&self) -> FaultSummary {
        FaultSummary {
            degraded_links: self
                .links
                .iter()
                .filter(|f| matches!(f, Some(LinkFault::Degraded { .. })))
                .count(),
            lost_links: self
                .links
                .iter()
                .filter(|f| matches!(f, Some(LinkFault::Lost)))
                .count(),
            slowed_cores: self.slowdowns.iter().filter(|&&m| m > 1.0).count(),
            shrunk_cores: self.sram_frac.iter().filter(|&&f| f < 1.0).count(),
            worst_link_multiplier: self.worst_link_multiplier(),
            worst_compute_multiplier: self.worst_compute_multiplier(),
            min_sram_frac: self.sram_frac.iter().copied().fold(1.0, f64::min),
        }
    }

    /// Parses a comma-separated fault specification (the CLI's `--faults`).
    ///
    /// Entries, applied left to right after an optional `seed`:
    ///
    /// * `seed=N` — seed for random selections (default 0)
    /// * `degrade=FRAC@MULT` — random FRAC of links run at MULT × bandwidth
    /// * `lose=FRAC` — random FRAC of links die (reroute penalty)
    /// * `slow=FRAC@MULT` — random FRAC of cores slowed by MULT (≥ 1)
    /// * `link=CORE@MULT` — one specific link degraded
    /// * `core=CORE@MULT` — one specific core slowed
    /// * `shrink=CORE@FRAC` — one core's SRAM reduced to FRAC of nominal
    ///
    /// Example: `seed=7,degrade=0.1@0.5,shrink=3@0.5`
    pub fn parse(spec: &str, num_cores: usize) -> std::result::Result<Self, String> {
        let entries: Vec<&str> = spec
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let mut seed = 0u64;
        for e in &entries {
            if let Some(v) = e.strip_prefix("seed=") {
                seed = v
                    .parse::<u64>()
                    .map_err(|_| format!("fault spec: bad seed {v:?}"))?;
            }
        }
        let mut plan = Self::seeded(num_cores, seed);
        // Each explicit per-core key may name a core only once: a duplicate
        // silently overwriting an earlier entry is almost always a typo.
        let mut seen_link: Vec<usize> = Vec::new();
        let mut seen_core: Vec<usize> = Vec::new();
        let mut seen_shrink: Vec<usize> = Vec::new();
        let claim = |seen: &mut Vec<usize>, key: &str, core: usize| {
            if seen.contains(&core) {
                return Err(format!(
                    "fault spec: duplicate {key}= entry for core {core}; \
                     each core may appear once per key"
                ));
            }
            seen.push(core);
            Ok(())
        };
        for e in entries {
            let (key, val) = e
                .split_once('=')
                .ok_or_else(|| format!("fault spec: entry {e:?} is not key=value"))?;
            match key {
                "seed" => {}
                "degrade" => {
                    let (frac, mult) = parse_pair(val)?;
                    check_frac("degrade", frac)?;
                    check_range("degrade multiplier", mult, 0.0, 1.0)?;
                    plan = plan.degrade_links(frac, mult);
                }
                "lose" => {
                    let frac = parse_num(val)?;
                    check_frac("lose", frac)?;
                    plan = plan.lose_links(frac);
                }
                "slow" => {
                    let (frac, mult) = parse_pair(val)?;
                    check_frac("slow", frac)?;
                    if mult < 1.0 {
                        return Err(format!("fault spec: slow multiplier {mult} must be ≥ 1"));
                    }
                    plan = plan.slow_cores(frac, mult);
                }
                "link" => {
                    let (core, mult) = parse_core_pair(val, num_cores)?;
                    claim(&mut seen_link, "link", core)?;
                    check_range("link multiplier", mult, 0.0, 1.0)?;
                    plan =
                        plan.set_link_fault(core, Some(LinkFault::Degraded { multiplier: mult }));
                }
                "core" => {
                    let (core, mult) = parse_core_pair(val, num_cores)?;
                    claim(&mut seen_core, "core", core)?;
                    if mult < 1.0 {
                        return Err(format!("fault spec: core slowdown {mult} must be ≥ 1"));
                    }
                    plan = plan.set_slowdown(core, mult);
                }
                "shrink" => {
                    let (core, frac) = parse_core_pair(val, num_cores)?;
                    claim(&mut seen_shrink, "shrink", core)?;
                    check_range("shrink fraction", frac, 0.0, 1.0)?;
                    plan = plan.shrink_sram(core, frac);
                }
                other => return Err(format!("fault spec: unknown key {other:?}")),
            }
        }
        Ok(plan)
    }
}

fn parse_num(s: &str) -> std::result::Result<f64, String> {
    let v = s
        .parse::<f64>()
        .map_err(|_| format!("fault spec: bad number {s:?}"))?;
    if !v.is_finite() {
        return Err(format!("fault spec: non-finite number {s:?}"));
    }
    Ok(v)
}

fn parse_pair(s: &str) -> std::result::Result<(f64, f64), String> {
    let (a, b) = s
        .split_once('@')
        .ok_or_else(|| format!("fault spec: {s:?} is not A@B"))?;
    Ok((parse_num(a)?, parse_num(b)?))
}

fn parse_core_pair(s: &str, num_cores: usize) -> std::result::Result<(usize, f64), String> {
    let (a, b) = s
        .split_once('@')
        .ok_or_else(|| format!("fault spec: {s:?} is not CORE@VALUE"))?;
    let core = a
        .parse::<usize>()
        .map_err(|_| format!("fault spec: bad core id {a:?}"))?;
    if core >= num_cores {
        return Err(format!(
            "fault spec: core {core} out of range ({num_cores} cores)"
        ));
    }
    Ok((core, parse_num(b)?))
}

fn check_frac(what: &str, frac: f64) -> std::result::Result<(), String> {
    if !(0.0..=1.0).contains(&frac) {
        return Err(format!("fault spec: {what} fraction {frac} not in [0, 1]"));
    }
    Ok(())
}

fn check_range(what: &str, v: f64, lo: f64, hi: f64) -> std::result::Result<(), String> {
    // Written positively so NaN (which fails every comparison) is rejected.
    if !(v > lo && v <= hi) {
        return Err(format!("fault spec: {what} {v} not in ({lo}, {hi}]"));
    }
    Ok(())
}

/// Aggregate fault statistics, embedded in [`crate::RunReport`] so degraded
/// runs are self-describing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultSummary {
    /// Links running below nominal bandwidth.
    pub degraded_links: usize,
    /// Links that are dead (traffic reroutes).
    pub lost_links: usize,
    /// Cores computing slower than nominal.
    pub slowed_cores: usize,
    /// Cores with reduced SRAM.
    pub shrunk_cores: usize,
    /// Smallest effective-bandwidth multiplier on the chip.
    pub worst_link_multiplier: f64,
    /// Largest compute-time multiplier on the chip.
    pub worst_compute_multiplier: f64,
    /// Smallest surviving SRAM fraction on the chip.
    pub min_sram_frac: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::seeded(64, 42)
            .degrade_links(0.25, 0.5)
            .lose_links(0.1);
        let b = FaultPlan::seeded(64, 42)
            .degrade_links(0.25, 0.5)
            .lose_links(0.1);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(64, 43)
            .degrade_links(0.25, 0.5)
            .lose_links(0.1);
        assert_ne!(a, c);
    }

    #[test]
    fn fractions_are_exact() {
        let p = FaultPlan::seeded(100, 1).degrade_links(0.1, 0.5);
        assert_eq!(p.summary().degraded_links, 10);
        let p = FaultPlan::seeded(7, 1).lose_links(0.5);
        assert_eq!(p.summary().lost_links, 4); // ceil(3.5)
    }

    #[test]
    fn multipliers_and_capacities() {
        let p = FaultPlan::new(4)
            .set_link_fault(1, Some(LinkFault::Degraded { multiplier: 0.25 }))
            .set_link_fault(2, Some(LinkFault::Lost))
            .set_slowdown(3, 2.0)
            .shrink_sram(0, 0.5);
        assert_eq!(p.link_multiplier(0), 1.0);
        assert_eq!(p.link_multiplier(1), 0.25);
        assert_eq!(p.link_multiplier(2), REROUTE_MULTIPLIER);
        assert_eq!(p.worst_link_multiplier(), 0.25);
        assert_eq!(p.worst_compute_multiplier(), 2.0);
        assert_eq!(p.sram_capacity(0, 1000, 100), 400);
        assert_eq!(p.sram_capacity(1, 1000, 100), 900);
        assert_eq!(p.min_capacity(1000, 100), 400);
        assert!(!p.is_healthy());
        assert!(FaultPlan::new(4).is_healthy());
    }

    #[test]
    fn parse_round_trip() {
        let p = FaultPlan::parse("seed=7,degrade=0.1@0.5,shrink=3@0.5,core=1@1.5", 32).unwrap();
        assert_eq!(p.seed(), 7);
        let s = p.summary();
        assert_eq!(s.degraded_links, 4); // ceil(3.2)
        assert_eq!(s.shrunk_cores, 1);
        assert_eq!(s.slowed_cores, 1);
        assert_eq!(s.min_sram_frac, 0.5);
        // Same spec parses to the same plan.
        assert_eq!(
            p,
            FaultPlan::parse("seed=7,degrade=0.1@0.5,shrink=3@0.5,core=1@1.5", 32).unwrap()
        );
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultPlan::parse("degrade=1.5@0.5", 8).is_err());
        assert!(FaultPlan::parse("degrade=0.5@0.0", 8).is_err());
        assert!(FaultPlan::parse("slow=0.5@0.5", 8).is_err());
        assert!(FaultPlan::parse("shrink=9@0.5", 8).is_err());
        assert!(FaultPlan::parse("bogus=1", 8).is_err());
        assert!(FaultPlan::parse("noequals", 8).is_err());
        assert!(FaultPlan::parse("seed=x", 8).is_err());
    }

    #[test]
    fn parse_rejects_non_finite_and_negative() {
        assert!(FaultPlan::parse("degrade=NaN@0.5", 8).is_err());
        assert!(FaultPlan::parse("degrade=0.5@NaN", 8).is_err());
        assert!(FaultPlan::parse("lose=inf", 8).is_err());
        assert!(FaultPlan::parse("lose=-0.5", 8).is_err());
        assert!(FaultPlan::parse("slow=0.5@nan", 8).is_err());
        assert!(FaultPlan::parse("link=1@nan", 8).is_err());
        assert!(FaultPlan::parse("link=1@-0.5", 8).is_err());
        assert!(FaultPlan::parse("core=1@-inf", 8).is_err());
        assert!(FaultPlan::parse("shrink=1@nan", 8).is_err());
        assert!(FaultPlan::parse("shrink=1@-0.1", 8).is_err());
    }

    #[test]
    fn parse_rejects_duplicate_cores_with_actionable_message() {
        let err = FaultPlan::parse("link=2@0.5,link=2@0.25", 8).unwrap_err();
        assert!(err.contains("duplicate link= entry for core 2"), "{err}");
        assert!(FaultPlan::parse("core=1@2.0,core=1@3.0", 8).is_err());
        assert!(FaultPlan::parse("shrink=0@0.5,shrink=0@0.25", 8).is_err());
        // Distinct cores under one key, and the same core under different
        // keys, are both fine.
        assert!(FaultPlan::parse("link=1@0.5,link=2@0.5", 8).is_ok());
        assert!(FaultPlan::parse("link=1@0.5,core=1@2.0,shrink=1@0.5", 8).is_ok());
    }

    #[test]
    fn without_core_shifts_faults_past_the_gap() {
        let p = FaultPlan::new(4)
            .set_link_fault(1, Some(LinkFault::Lost))
            .set_slowdown(3, 2.0)
            .shrink_sram(3, 0.5);
        let q = p.without_core(1);
        assert_eq!(q.num_cores(), 3);
        assert_eq!(q.link_multiplier(0), 1.0);
        // Old core 2 (healthy) became core 1; old core 3 became core 2.
        assert_eq!(q.link_multiplier(1), 1.0);
        assert_eq!(q.compute_multiplier(2), 2.0);
        assert_eq!(q.sram_capacity(2, 1000, 0), 500);
        assert_eq!(q.summary().lost_links, 0);
    }

    #[test]
    fn digest_names_faults_not_seeds() {
        // Same effective machine under different seeds digests identically.
        let a = FaultPlan::seeded(8, 1).shrink_sram(3, 0.5);
        let b = FaultPlan::seeded(8, 99).shrink_sram(3, 0.5);
        assert_eq!(a.digest_string(), b.digest_string());

        // Healthy plans digest to just the core count.
        assert_eq!(FaultPlan::new(4).digest_string(), "n=4");

        // Every fault class shows up and distinguishes the digest.
        let p = FaultPlan::new(4)
            .set_link_fault(1, Some(LinkFault::Lost))
            .set_link_fault(2, Some(LinkFault::Degraded { multiplier: 0.5 }))
            .set_slowdown(0, 2.0)
            .shrink_sram(3, 0.25);
        let d = p.digest_string();
        assert!(d.contains("L1=lost"), "{d}");
        assert!(d.contains("L2=deg"), "{d}");
        assert!(d.contains("C0=slow"), "{d}");
        assert!(d.contains("S3=frac"), "{d}");
        assert_ne!(d, FaultPlan::new(4).digest_string());
    }

    #[test]
    fn healthy_plan_parses_empty() {
        let p = FaultPlan::parse("", 8).unwrap();
        assert!(p.is_healthy());
    }
}
