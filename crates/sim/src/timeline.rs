//! Mid-run fault timelines: faults that *happen*, not faults that *are*.
//!
//! A [`crate::FaultPlan`] describes a chip that is already degraded before a
//! program starts. A [`FaultTimeline`] instead schedules fault *events* at
//! superstep boundaries — the BSP barrier is the only point where the whole
//! machine agrees on a consistent state, so that is where faults surface,
//! where checkpoints are taken, and where recovery restarts.
//!
//! Events come in three behavioural classes:
//!
//! * **transient** ([`FaultEventKind::TransientLinkDrop`],
//!   [`FaultEventKind::TransientStall`]) — the superstep at the event's
//!   boundary fails once and the condition clears. The executor aborts with a
//!   typed [`t10_device::iface::DeviceError::RuntimeFault`]; retrying from
//!   the last checkpoint succeeds.
//! * **persistent, absorbed** ([`FaultEventKind::LinkDegrade`],
//!   [`FaultEventKind::CoreSlow`]) — the machine keeps running but slower.
//!   The simulator folds the event into its active fault plan at the barrier
//!   and execution continues; no recovery is required.
//! * **persistent, fatal** ([`FaultEventKind::LinkDown`],
//!   [`FaultEventKind::CoreDead`]) — the compiled plan no longer matches the
//!   machine. Execution aborts and a recovery controller must derive the
//!   surviving chip, recompile, migrate state, and resume.
//!
//! Timelines are seeded and deterministic (same spec + seed → same events,
//! same run, same report) and parse from a compact text spec, mirroring
//! [`crate::FaultPlan::parse`].

use serde::{Deserialize, Serialize};

/// Why a timeline specification was rejected at parse time.
///
/// Every event is validated against the chip it will run on (core ids in
/// range, multipliers in their legal domains) *before* a simulator sees it,
/// mirroring the `FaultPlan::parse` hardening: a typo in a `--fault-timeline`
/// flag is a typed usage error, never a mid-run panic or a silently ignored
/// event.
#[derive(Debug, Clone, PartialEq)]
pub enum TimelineParseError {
    /// `seed=` value did not parse as an unsigned integer.
    BadSeed {
        /// The offending value text.
        value: String,
    },
    /// An entry was not of the form `key=value`.
    NotKeyValue {
        /// The offending entry text.
        entry: String,
    },
    /// An entry key is not part of the grammar.
    UnknownKey {
        /// The offending key.
        key: String,
    },
    /// A step field did not parse as an unsigned integer.
    BadStep {
        /// The offending value text.
        value: String,
    },
    /// A core field did not parse as an unsigned integer.
    BadCore {
        /// The offending value text.
        value: String,
    },
    /// An event addresses a core (and its link) outside the chip.
    CoreOutOfRange {
        /// The addressed core.
        core: usize,
        /// How many cores the chip has.
        num_cores: usize,
    },
    /// A numeric field did not parse, or was not finite.
    BadNumber {
        /// The offending value text.
        value: String,
    },
    /// A multiplier was outside its legal domain.
    BadMultiplier {
        /// Which entry kind carried it.
        kind: &'static str,
        /// The offending value.
        value: f64,
        /// The legal domain, for the error message.
        expected: &'static str,
    },
    /// A `random=` entry was not `COUNT@MAXSTEP`, or had MAXSTEP = 0 with a
    /// nonzero count.
    BadRandom {
        /// The offending value text.
        value: String,
    },
}

impl std::fmt::Display for TimelineParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadSeed { value } => write!(f, "fault timeline: bad seed {value:?}"),
            Self::NotKeyValue { entry } => {
                write!(f, "fault timeline: entry {entry:?} is not key=value")
            }
            Self::UnknownKey { key } => write!(f, "fault timeline: unknown key {key:?}"),
            Self::BadStep { value } => write!(f, "fault timeline: bad step {value:?}"),
            Self::BadCore { value } => write!(f, "fault timeline: bad core id {value:?}"),
            Self::CoreOutOfRange { core, num_cores } => write!(
                f,
                "fault timeline: core {core} out of range ({num_cores} cores)"
            ),
            Self::BadNumber { value } => write!(f, "fault timeline: bad number {value:?}"),
            Self::BadMultiplier {
                kind,
                value,
                expected,
            } => write!(
                f,
                "fault timeline: {kind} multiplier {value} not in {expected}"
            ),
            Self::BadRandom { value } => {
                write!(f, "fault timeline: bad random entry {value:?}")
            }
        }
    }
}

impl std::error::Error for TimelineParseError {}

/// What happens at one fault event.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// One core's link drops traffic for a single barrier, then recovers.
    TransientLinkDrop {
        /// The core whose link glitches.
        core: usize,
    },
    /// One core misses a single barrier (ECC scrub, clock hiccup), then
    /// recovers.
    TransientStall {
        /// The stalled core.
        core: usize,
    },
    /// One core's link dies permanently; traffic must be re-planned around
    /// it (the surviving plan sees [`crate::LinkFault::Lost`]).
    LinkDown {
        /// The core whose link died.
        core: usize,
    },
    /// One core's link permanently degrades to `multiplier` × nominal
    /// bandwidth. Absorbed at the barrier without aborting the run.
    LinkDegrade {
        /// The core whose link degraded.
        core: usize,
        /// Surviving bandwidth fraction (0 < m ≤ 1).
        multiplier: f64,
    },
    /// One core permanently computes `multiplier` × slower. Absorbed at the
    /// barrier without aborting the run.
    CoreSlow {
        /// The slowed core.
        core: usize,
        /// Compute-time multiplier (≥ 1).
        multiplier: f64,
    },
    /// One core dies outright; the chip shrinks and the plan must change.
    CoreDead {
        /// The dead core.
        core: usize,
    },
}

impl FaultEventKind {
    /// The core the event targets.
    pub fn core(&self) -> usize {
        match *self {
            Self::TransientLinkDrop { core }
            | Self::TransientStall { core }
            | Self::LinkDown { core }
            | Self::LinkDegrade { core, .. }
            | Self::CoreSlow { core, .. }
            | Self::CoreDead { core } => core,
        }
    }

    /// True for events that clear after firing once (retry suffices).
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            Self::TransientLinkDrop { .. } | Self::TransientStall { .. }
        )
    }

    /// True for events that abort execution (transient glitches and fatal
    /// persistent faults); false for events the simulator absorbs in-run.
    pub fn is_fatal(&self) -> bool {
        !matches!(self, Self::LinkDegrade { .. } | Self::CoreSlow { .. })
    }
}

/// One scheduled fault: a kind and the superstep boundary it fires at.
///
/// `step` counts *global* supersteps across the whole execution (surviving
/// recompiles and resumes), not indices into any one program.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Global superstep boundary the event fires at.
    pub step: usize,
    /// What happens.
    pub kind: FaultEventKind,
}

impl FaultEvent {
    /// The event as a `--fault-timeline` spec entry, e.g. `drop=3@1`.
    /// [`FaultTimeline::parse`] accepts exactly this syntax back, which is
    /// what makes shrunk chaos reproducers replayable from the CLI.
    pub fn spec_entry(&self) -> String {
        let s = self.step;
        match self.kind {
            FaultEventKind::TransientLinkDrop { core } => format!("drop={s}@{core}"),
            FaultEventKind::TransientStall { core } => format!("stall={s}@{core}"),
            FaultEventKind::LinkDown { core } => format!("down={s}@{core}"),
            FaultEventKind::LinkDegrade { core, multiplier } => {
                format!("degrade={s}@{core}@{multiplier}")
            }
            FaultEventKind::CoreSlow { core, multiplier } => {
                format!("slow={s}@{core}@{multiplier}")
            }
            FaultEventKind::CoreDead { core } => format!("kill={s}@{core}"),
        }
    }

    /// Human-readable one-liner for reports and error details.
    pub fn describe(&self) -> String {
        let s = self.step;
        match self.kind {
            FaultEventKind::TransientLinkDrop { core } => {
                format!("step {s}: transient link drop on core {core}")
            }
            FaultEventKind::TransientStall { core } => {
                format!("step {s}: transient stall on core {core}")
            }
            FaultEventKind::LinkDown { core } => {
                format!("step {s}: link down on core {core}")
            }
            FaultEventKind::LinkDegrade { core, multiplier } => {
                format!("step {s}: link on core {core} degraded to {multiplier}x")
            }
            FaultEventKind::CoreSlow { core, multiplier } => {
                format!("step {s}: core {core} slowed {multiplier}x")
            }
            FaultEventKind::CoreDead { core } => {
                format!("step {s}: core {core} died")
            }
        }
    }
}

/// A deterministic schedule of fault events over global supersteps.
///
/// Events are consumed in order as execution passes their boundaries; a
/// consumed event never refires, which is what makes a transient fault
/// survivable by replaying from a checkpoint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultTimeline {
    seed: u64,
    rng_state: u64,
    events: Vec<FaultEvent>,
    /// Index of the first unconsumed event.
    cursor: usize,
}

impl Default for FaultTimeline {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultTimeline {
    /// An empty timeline (seed 0).
    pub fn new() -> Self {
        Self::seeded(0)
    }

    /// An empty timeline whose random event generation derives from `seed`.
    pub fn seeded(seed: u64) -> Self {
        Self {
            seed,
            // Same splitmix-style scramble as FaultPlan, so seed 0 still
            // yields a useful stream.
            rng_state: seed ^ 0x9E37_79B9_7F4A_7C15,
            events: Vec::new(),
            cursor: 0,
        }
    }

    /// A timeline holding exactly `events` (sorted by step, stable), with
    /// random-event generation seeded by `seed`. This is the chaos engine's
    /// entry point: generated and shrunk timelines are explicit event lists,
    /// not grammar strings.
    pub fn from_events(seed: u64, events: impl IntoIterator<Item = FaultEvent>) -> Self {
        let mut tl = Self::seeded(seed);
        for ev in events {
            tl = tl.push(ev.step, ev.kind);
        }
        tl
    }

    /// The seed the timeline was built with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Serializes every event (fired and pending) back into the spec
    /// grammar that [`FaultTimeline::parse`] accepts, seed included:
    /// `seed=7,drop=3@1,down=8@2`. Round-trips: parsing the result yields a
    /// timeline with the same events and seed (the cursor resets, making
    /// the spec a fresh replay of the whole schedule).
    pub fn to_spec(&self) -> String {
        let mut parts = vec![format!("seed={}", self.seed)];
        parts.extend(self.events.iter().map(FaultEvent::spec_entry));
        parts.join(",")
    }

    /// Schedules one event, keeping the list sorted by step (stable: equal
    /// steps preserve insertion order).
    pub fn push(mut self, step: usize, kind: FaultEventKind) -> Self {
        let at = self.events.partition_point(|e| e.step <= step);
        self.events.insert(at, FaultEvent { step, kind });
        self
    }

    /// All scheduled events, fired and pending.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Events not yet consumed.
    pub fn pending(&self) -> &[FaultEvent] {
        &self.events[self.cursor.min(self.events.len())..]
    }

    /// True when every event has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.cursor >= self.events.len()
    }

    /// Consumes and returns the next event due at or before `global_step`,
    /// if any. The simulator calls this at every BSP barrier.
    pub fn pop_due(&mut self, global_step: usize) -> Option<FaultEvent> {
        let ev = *self.events.get(self.cursor)?;
        if ev.step > global_step {
            return None;
        }
        self.cursor += 1;
        Some(ev)
    }

    /// Renumbers the cores of *pending* events after the chip shrank:
    /// `map[old_core]` is the surviving logical id, or `None` for a core
    /// that no longer exists (its pending events are dropped — a dead core
    /// cannot fault again). Fired events keep their original ids for the
    /// historical record.
    pub fn retarget(&mut self, map: &[Option<usize>]) {
        let cursor = self.cursor.min(self.events.len());
        let mut kept: Vec<FaultEvent> = self.events[..cursor].to_vec();
        for ev in &self.events[cursor..] {
            let old = ev.kind.core();
            let Some(Some(new)) = map.get(old).copied() else {
                continue;
            };
            let kind = match ev.kind {
                FaultEventKind::TransientLinkDrop { .. } => {
                    FaultEventKind::TransientLinkDrop { core: new }
                }
                FaultEventKind::TransientStall { .. } => {
                    FaultEventKind::TransientStall { core: new }
                }
                FaultEventKind::LinkDown { .. } => FaultEventKind::LinkDown { core: new },
                FaultEventKind::LinkDegrade { multiplier, .. } => FaultEventKind::LinkDegrade {
                    core: new,
                    multiplier,
                },
                FaultEventKind::CoreSlow { multiplier, .. } => FaultEventKind::CoreSlow {
                    core: new,
                    multiplier,
                },
                FaultEventKind::CoreDead { .. } => FaultEventKind::CoreDead { core: new },
            };
            kept.push(FaultEvent {
                step: ev.step,
                kind,
            });
        }
        self.events = kept;
        self.cursor = cursor;
    }

    fn next_u64(&mut self) -> u64 {
        // xorshift64*: matches FaultPlan's generator.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn next_unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Appends `count` seeded-random events with steps in `[0, max_step)`.
    ///
    /// The palette cycles over survivable kinds (transient glitches, link
    /// death, degradation, slowdown); core death is only ever scheduled
    /// explicitly, so a random soak cannot shrink the chip to nothing.
    pub fn random_events(mut self, count: usize, max_step: usize, num_cores: usize) -> Self {
        for _ in 0..count {
            let step = (self.next_u64() as usize) % max_step.max(1);
            let core = (self.next_u64() as usize) % num_cores.max(1);
            let kind = match self.next_u64() % 5 {
                0 => FaultEventKind::TransientLinkDrop { core },
                1 => FaultEventKind::TransientStall { core },
                2 => FaultEventKind::LinkDown { core },
                3 => {
                    let multiplier = 0.25 + 0.5 * self.next_unit();
                    FaultEventKind::LinkDegrade { core, multiplier }
                }
                _ => {
                    let multiplier = 1.5 + 2.0 * self.next_unit();
                    FaultEventKind::CoreSlow { core, multiplier }
                }
            };
            self = self.push(step, kind);
        }
        self
    }

    /// Parses a comma-separated timeline specification (the CLI's
    /// `--fault-timeline`).
    ///
    /// Entries, applied left to right after an optional `seed`:
    ///
    /// * `seed=N` — seed for `random` event generation (default 0)
    /// * `drop=STEP@CORE` — transient link drop (one barrier, then clears)
    /// * `stall=STEP@CORE` — transient core stall
    /// * `down=STEP@CORE` — permanent link death (forces a re-plan)
    /// * `degrade=STEP@CORE@MULT` — link permanently at MULT × bandwidth
    /// * `slow=STEP@CORE@MULT` — core permanently slowed by MULT (≥ 1)
    /// * `kill=STEP@CORE` — core death (chip shrinks, forces a re-plan)
    /// * `random=COUNT@MAXSTEP` — COUNT seeded-random survivable events
    ///
    /// Example: `seed=7,drop=3@1,down=8@2,random=4@32`
    pub fn parse(spec: &str, num_cores: usize) -> std::result::Result<Self, TimelineParseError> {
        let entries: Vec<&str> = spec
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .collect();
        let mut seed = 0u64;
        for e in &entries {
            if let Some(v) = e.strip_prefix("seed=") {
                seed = v.parse::<u64>().map_err(|_| TimelineParseError::BadSeed {
                    value: v.to_string(),
                })?;
            }
        }
        let mut tl = Self::seeded(seed);
        for e in entries {
            let (key, val) = e
                .split_once('=')
                .ok_or_else(|| TimelineParseError::NotKeyValue {
                    entry: e.to_string(),
                })?;
            match key {
                "seed" => {}
                "drop" => {
                    let (step, core) = parse_step_core(val, num_cores)?;
                    tl = tl.push(step, FaultEventKind::TransientLinkDrop { core });
                }
                "stall" => {
                    let (step, core) = parse_step_core(val, num_cores)?;
                    tl = tl.push(step, FaultEventKind::TransientStall { core });
                }
                "down" => {
                    let (step, core) = parse_step_core(val, num_cores)?;
                    tl = tl.push(step, FaultEventKind::LinkDown { core });
                }
                "kill" => {
                    let (step, core) = parse_step_core(val, num_cores)?;
                    tl = tl.push(step, FaultEventKind::CoreDead { core });
                }
                "degrade" => {
                    let (step, core, m) = parse_step_core_num(val, num_cores)?;
                    if m <= 0.0 || m > 1.0 {
                        return Err(TimelineParseError::BadMultiplier {
                            kind: "degrade",
                            value: m,
                            expected: "(0, 1]",
                        });
                    }
                    tl = tl.push(
                        step,
                        FaultEventKind::LinkDegrade {
                            core,
                            multiplier: m,
                        },
                    );
                }
                "slow" => {
                    let (step, core, m) = parse_step_core_num(val, num_cores)?;
                    if m < 1.0 {
                        return Err(TimelineParseError::BadMultiplier {
                            kind: "slow",
                            value: m,
                            expected: "[1, ∞)",
                        });
                    }
                    tl = tl.push(
                        step,
                        FaultEventKind::CoreSlow {
                            core,
                            multiplier: m,
                        },
                    );
                }
                "random" => {
                    let bad = || TimelineParseError::BadRandom {
                        value: val.to_string(),
                    };
                    let (count, max_step) = val.split_once('@').ok_or_else(bad)?;
                    let count: usize = count.parse().map_err(|_| bad())?;
                    let max_step: usize = max_step.parse().map_err(|_| bad())?;
                    if max_step == 0 && count > 0 {
                        return Err(bad());
                    }
                    tl = tl.random_events(count, max_step, num_cores);
                }
                other => {
                    return Err(TimelineParseError::UnknownKey {
                        key: other.to_string(),
                    })
                }
            }
        }
        Ok(tl)
    }
}

fn parse_step_core(
    s: &str,
    num_cores: usize,
) -> std::result::Result<(usize, usize), TimelineParseError> {
    let (step, core) = s
        .split_once('@')
        .ok_or_else(|| TimelineParseError::NotKeyValue {
            entry: s.to_string(),
        })?;
    let step: usize = step.parse().map_err(|_| TimelineParseError::BadStep {
        value: step.to_string(),
    })?;
    let core: usize = core.parse().map_err(|_| TimelineParseError::BadCore {
        value: core.to_string(),
    })?;
    if core >= num_cores {
        return Err(TimelineParseError::CoreOutOfRange { core, num_cores });
    }
    Ok((step, core))
}

fn parse_step_core_num(
    s: &str,
    num_cores: usize,
) -> std::result::Result<(usize, usize, f64), TimelineParseError> {
    let (head, num) = s
        .rsplit_once('@')
        .ok_or_else(|| TimelineParseError::NotKeyValue {
            entry: s.to_string(),
        })?;
    let (step, core) = parse_step_core(head, num_cores)?;
    let v: f64 = num.parse().map_err(|_| TimelineParseError::BadNumber {
        value: num.to_string(),
    })?;
    if !v.is_finite() {
        return Err(TimelineParseError::BadNumber {
            value: num.to_string(),
        });
    }
    Ok((step, core, v))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_step_order_and_only_once() {
        let mut tl = FaultTimeline::new()
            .push(5, FaultEventKind::LinkDown { core: 1 })
            .push(2, FaultEventKind::TransientStall { core: 0 });
        assert_eq!(tl.pending().len(), 2);
        assert!(tl.pop_due(1).is_none());
        let first = tl.pop_due(2).unwrap();
        assert_eq!(first.step, 2);
        assert!(first.kind.is_transient());
        // Consumed events never refire, even when the step is revisited
        // after a checkpoint restore.
        assert!(tl.pop_due(2).is_none());
        let second = tl.pop_due(9).unwrap();
        assert_eq!(second.kind, FaultEventKind::LinkDown { core: 1 });
        assert!(tl.is_exhausted());
    }

    #[test]
    fn classification() {
        assert!(FaultEventKind::TransientLinkDrop { core: 0 }.is_fatal());
        assert!(FaultEventKind::LinkDown { core: 0 }.is_fatal());
        assert!(FaultEventKind::CoreDead { core: 0 }.is_fatal());
        assert!(!FaultEventKind::CoreSlow {
            core: 0,
            multiplier: 2.0
        }
        .is_fatal());
        assert!(!FaultEventKind::LinkDegrade {
            core: 0,
            multiplier: 0.5
        }
        .is_transient());
    }

    #[test]
    fn parse_round_trip_is_deterministic() {
        let a = FaultTimeline::parse("seed=5,drop=3@1,random=6@20", 16).unwrap();
        let b = FaultTimeline::parse("seed=5,drop=3@1,random=6@20", 16).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.events().len(), 7);
        let c = FaultTimeline::parse("seed=6,drop=3@1,random=6@20", 16).unwrap();
        assert_ne!(a, c);
        // Sorted by step.
        assert!(a.events().windows(2).all(|w| w[0].step <= w[1].step));
    }

    #[test]
    fn parse_rejects_bad_specs() {
        assert!(FaultTimeline::parse("drop=3", 8).is_err());
        assert!(FaultTimeline::parse("drop=3@9", 8).is_err());
        assert!(FaultTimeline::parse("degrade=3@1@0.0", 8).is_err());
        assert!(FaultTimeline::parse("degrade=3@1@NaN", 8).is_err());
        assert!(FaultTimeline::parse("degrade=3@1@1.5", 8).is_err());
        assert!(FaultTimeline::parse("slow=3@1@0.5", 8).is_err());
        assert!(FaultTimeline::parse("slow=3@1@inf", 8).is_err());
        assert!(FaultTimeline::parse("kill=x@1", 8).is_err());
        assert!(FaultTimeline::parse("random=2@0", 8).is_err());
        assert!(FaultTimeline::parse("bogus=1@2", 8).is_err());
        assert!(FaultTimeline::parse("seed=-1", 8).is_err());
    }

    #[test]
    fn parse_errors_are_typed() {
        // Events addressed outside the chip are a typed, inspectable error
        // (not a stringly one): the CLI and the chaos engine both match on
        // the variant.
        assert_eq!(
            FaultTimeline::parse("drop=3@9", 8).unwrap_err(),
            TimelineParseError::CoreOutOfRange {
                core: 9,
                num_cores: 8
            }
        );
        assert_eq!(
            FaultTimeline::parse("kill=1@8", 8).unwrap_err(),
            TimelineParseError::CoreOutOfRange {
                core: 8,
                num_cores: 8
            }
        );
        assert!(matches!(
            FaultTimeline::parse("bogus=1@2", 8).unwrap_err(),
            TimelineParseError::UnknownKey { .. }
        ));
        assert!(matches!(
            FaultTimeline::parse("slow=3@1@0.5", 8).unwrap_err(),
            TimelineParseError::BadMultiplier { kind: "slow", .. }
        ));
        assert!(matches!(
            FaultTimeline::parse("degrade=3@1@NaN", 8).unwrap_err(),
            TimelineParseError::BadNumber { .. }
        ));
        // Errors render with the entry that caused them.
        let msg = FaultTimeline::parse("drop=3@9", 8).unwrap_err().to_string();
        assert!(msg.contains("core 9"), "{msg}");
    }

    #[test]
    fn to_spec_round_trips_through_parse() {
        let tl = FaultTimeline::seeded(7)
            .push(3, FaultEventKind::TransientLinkDrop { core: 1 })
            .push(
                5,
                FaultEventKind::LinkDegrade {
                    core: 2,
                    multiplier: 0.5,
                },
            )
            .push(
                6,
                FaultEventKind::CoreSlow {
                    core: 0,
                    multiplier: 2.5,
                },
            )
            .push(8, FaultEventKind::CoreDead { core: 3 })
            .push(9, FaultEventKind::TransientStall { core: 2 })
            .push(9, FaultEventKind::LinkDown { core: 1 });
        let spec = tl.to_spec();
        assert_eq!(
            spec,
            "seed=7,drop=3@1,degrade=5@2@0.5,slow=6@0@2.5,kill=8@3,stall=9@2,down=9@1"
        );
        let back = FaultTimeline::parse(&spec, 8).unwrap();
        assert_eq!(back, tl, "spec round-trip reproduces the timeline");
        // from_events is the third corner of the triangle.
        let rebuilt = FaultTimeline::from_events(7, tl.events().iter().copied());
        assert_eq!(rebuilt, tl);
    }

    #[test]
    fn empty_spec_is_empty_timeline() {
        let tl = FaultTimeline::parse("", 8).unwrap();
        assert!(tl.is_exhausted());
    }

    #[test]
    fn retarget_renumbers_pending_and_drops_dead_core_events() {
        let mut tl = FaultTimeline::new()
            .push(1, FaultEventKind::CoreDead { core: 2 })
            .push(
                5,
                FaultEventKind::CoreSlow {
                    core: 3,
                    multiplier: 2.0,
                },
            )
            .push(6, FaultEventKind::TransientStall { core: 2 })
            .push(7, FaultEventKind::LinkDown { core: 1 });
        // Fire the core-death event, then renumber around the dead core 2.
        let dead = tl.pop_due(1).unwrap();
        assert_eq!(dead.kind, FaultEventKind::CoreDead { core: 2 });
        let map: Vec<Option<usize>> = vec![Some(0), Some(1), None, Some(2)];
        tl.retarget(&map);
        // Core 3 became core 2; core 2's pending stall vanished; core 1
        // stayed; the fired event is preserved verbatim.
        let pending: Vec<_> = tl.pending().to_vec();
        assert_eq!(pending.len(), 2);
        assert_eq!(
            pending[0].kind,
            FaultEventKind::CoreSlow {
                core: 2,
                multiplier: 2.0
            }
        );
        assert_eq!(pending[1].kind, FaultEventKind::LinkDown { core: 1 });
        assert_eq!(tl.events()[0].kind, FaultEventKind::CoreDead { core: 2 });
    }

    #[test]
    fn random_events_respect_bounds() {
        let tl = FaultTimeline::seeded(9).random_events(32, 10, 4);
        for e in tl.events() {
            assert!(e.step < 10);
            assert!(e.kind.core() < 4);
            assert!(!matches!(e.kind, FaultEventKind::CoreDead { .. }));
        }
    }
}
