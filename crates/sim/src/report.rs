//! Execution reports: where the evaluation figures get their numbers.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};
use t10_device::program::Phase;

use crate::fault::FaultSummary;

/// Per-graph-node latency attribution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeBreakdown {
    /// Compute-phase seconds in Execute steps.
    pub compute: f64,
    /// Exchange-phase seconds in Execute steps.
    pub exchange: f64,
    /// Seconds in Setup steps (idle-to-active transformation, §4.3.2).
    pub setup: f64,
    /// Seconds in Transition steps (inter-operator layout change, §5).
    pub transition: f64,
}

impl NodeBreakdown {
    /// Total seconds attributed to the node.
    pub fn total(&self) -> f64 {
        self.compute + self.exchange + self.setup + self.transition
    }
}

/// One superstep's timing record, for time-series analysis.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StepTrace {
    /// Superstep index.
    pub step: usize,
    /// Graph node the step belongs to, if any.
    pub node: Option<usize>,
    /// Schedule phase.
    pub phase: Phase,
    /// Compute-phase seconds.
    pub compute: f64,
    /// Exchange-phase seconds.
    pub exchange: f64,
    /// Bytes moved between cores this step.
    pub bytes: u64,
    /// Busiest core's inbound bytes this step (after link-fault inflation).
    pub max_core_in: u64,
    /// Busiest core's outbound bytes this step.
    pub max_core_out: u64,
    /// Scratchpad high-water mark across cores as of this step, bytes.
    pub sram_peak: usize,
}

/// What it cost to survive a run: retries, recompiles, and checkpoint
/// overhead, folded into [`RunReport`] by the recovery controller.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryReport {
    /// Retries from the last checkpoint after transient faults.
    pub transient_retries: usize,
    /// Recompilations for a surviving (shrunken/degraded) machine.
    pub recompiles: usize,
    /// Supersteps of completed work discarded by rollbacks.
    pub supersteps_lost: usize,
    /// Seconds spent waiting in exponential backoff before retries.
    pub backoff_time: f64,
    /// Total bytes drained to stable storage across all checkpoints.
    pub checkpoint_bytes: u64,
    /// Seconds spent draining checkpoints.
    pub checkpoint_time: f64,
    /// Bytes of live sub-tensor state migrated between placements after a
    /// re-plan.
    pub migrated_bytes: u64,
    /// Human-readable log of every recovery event, in order.
    pub events: Vec<String>,
}

impl RecoveryReport {
    /// Total recovery events survived (retries plus re-plans).
    pub fn recoveries(&self) -> usize {
        self.transient_retries + self.recompiles
    }
}

/// Aggregate result of simulating one program.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// End-to-end seconds (all phases).
    pub total_time: f64,
    /// Seconds spent in compute phases.
    pub compute_time: f64,
    /// Seconds spent in exchange phases (inter-core data transfer).
    pub exchange_time: f64,
    /// Seconds spent in Setup-phase supersteps (both halves).
    pub setup_time: f64,
    /// Seconds spent in Transition-phase supersteps.
    pub transition_time: f64,
    /// Seconds spent in Prefetch-phase supersteps (off-chip streaming).
    pub prefetch_time: f64,
    /// Total bytes shifted between cores.
    pub total_shift_bytes: u64,
    /// Total bytes streamed from off-chip memory.
    pub offchip_bytes: u64,
    /// Number of supersteps executed.
    pub steps: usize,
    /// Peak scratchpad bytes used on any single core.
    pub peak_core_bytes: usize,
    /// Per-node latency attribution.
    pub per_node: BTreeMap<usize, NodeBreakdown>,
    /// Σ over exchange steps of `bytes`, for bandwidth-utilization math.
    pub bw_bytes_acc: f64,
    /// Σ over exchange steps of `seconds × active_cores`.
    pub bw_core_seconds_acc: f64,
    /// Per-superstep records (populated when tracing is enabled).
    pub trace: Vec<StepTrace>,
    /// Extra compute seconds attributable to injected core slowdowns.
    pub fault_compute_overhead: f64,
    /// Extra exchange seconds attributable to injected link faults.
    pub fault_exchange_overhead: f64,
    /// The fault plan's aggregate statistics, when one was active.
    pub faults: Option<FaultSummary>,
    /// Checkpoints taken during the run.
    pub checkpoints_taken: usize,
    /// Total bytes snapshotted across all checkpoints.
    pub checkpoint_bytes: u64,
    /// Seconds spent draining checkpoints off-chip (included in
    /// `total_time`).
    pub checkpoint_time: f64,
    /// Per-core scratchpad bytes reserved as checkpoint staging (carved out
    /// of usable capacity while checkpointing is enabled).
    pub checkpoint_staging_bytes: usize,
    /// Timeline fault events absorbed mid-run without aborting (link
    /// degradation, core slowdown).
    pub timeline_events: usize,
    /// Recovery statistics, when a recovery controller supervised the run.
    pub recovery: Option<RecoveryReport>,
}

impl RunReport {
    /// Average inter-core bandwidth utilized per participating core during
    /// data transfers, bytes/second (Figure 14's metric).
    pub fn avg_link_bandwidth(&self) -> f64 {
        if self.bw_core_seconds_acc <= 0.0 {
            return 0.0;
        }
        let bw = self.bw_bytes_acc / self.bw_core_seconds_acc;
        if bw.is_finite() {
            bw
        } else {
            0.0
        }
    }

    /// Total extra seconds attributable to injected faults (compute and
    /// exchange combined), i.e. how much slower the degraded chip ran than
    /// a healthy one executing the same program.
    pub fn fault_overhead(&self) -> f64 {
        self.fault_compute_overhead + self.fault_exchange_overhead
    }

    /// Fraction of total time spent in inter-core data transfer
    /// (Figure 13's metric).
    pub fn transfer_fraction(&self) -> f64 {
        if self.total_time <= 0.0 {
            return 0.0;
        }
        let frac = self.exchange_time / self.total_time;
        if frac.is_finite() {
            frac
        } else {
            0.0
        }
    }

    /// Adds a phase's timing into the per-phase accumulators.
    pub(crate) fn charge(&mut self, phase: Phase, node: Option<usize>, comp: f64, exch: f64) {
        self.total_time += comp + exch;
        self.compute_time += comp;
        self.exchange_time += exch;
        match phase {
            Phase::Execute => {}
            Phase::Setup => self.setup_time += comp + exch,
            Phase::Transition => self.transition_time += comp + exch,
            Phase::Prefetch => self.prefetch_time += comp + exch,
        }
        if let Some(n) = node {
            let b = self.per_node.entry(n).or_default();
            match phase {
                Phase::Execute => {
                    b.compute += comp;
                    b.exchange += exch;
                }
                Phase::Setup => b.setup += comp + exch,
                Phase::Transition => b.transition += comp + exch,
                Phase::Prefetch => {}
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charge_accumulates_by_phase() {
        let mut r = RunReport::default();
        r.charge(Phase::Execute, Some(0), 1.0, 2.0);
        r.charge(Phase::Setup, Some(0), 0.5, 0.5);
        r.charge(Phase::Transition, None, 0.25, 0.0);
        assert_eq!(r.total_time, 4.25);
        assert_eq!(r.compute_time, 1.75);
        assert_eq!(r.exchange_time, 2.5);
        assert_eq!(r.setup_time, 1.0);
        assert_eq!(r.transition_time, 0.25);
        let n = r.per_node[&0];
        assert_eq!(n.compute, 1.0);
        assert_eq!(n.exchange, 2.0);
        assert_eq!(n.setup, 1.0);
        assert_eq!(n.total(), 4.0);
    }

    #[test]
    fn bandwidth_utilization_math() {
        let r = RunReport {
            bw_bytes_acc: 1e9,
            bw_core_seconds_acc: 0.5,
            ..RunReport::default()
        };
        assert_eq!(r.avg_link_bandwidth(), 2e9);
        assert_eq!(RunReport::default().avg_link_bandwidth(), 0.0);
    }

    #[test]
    fn transfer_fraction() {
        let r = RunReport {
            total_time: 4.0,
            exchange_time: 1.0,
            ..RunReport::default()
        };
        assert_eq!(r.transfer_fraction(), 0.25);
    }

    #[test]
    fn zero_step_report_stays_finite() {
        // A run with no supersteps must not divide by zero: both derived
        // metrics are defined as 0, not NaN/inf.
        let r = RunReport::default();
        assert_eq!(r.steps, 0);
        assert_eq!(r.transfer_fraction(), 0.0);
        assert_eq!(r.avg_link_bandwidth(), 0.0);
        assert!(r.transfer_fraction().is_finite());
        assert!(r.avg_link_bandwidth().is_finite());
    }

    #[test]
    fn poisoned_accumulators_stay_finite() {
        // Even if upstream accounting goes NaN, the derived metrics clamp
        // to 0 rather than propagating non-finite values into reports.
        let r = RunReport {
            total_time: 1.0,
            exchange_time: f64::NAN,
            bw_bytes_acc: f64::INFINITY,
            bw_core_seconds_acc: 1e-300,
            ..RunReport::default()
        };
        assert_eq!(r.transfer_fraction(), 0.0);
        assert_eq!(r.avg_link_bandwidth(), 0.0);
    }
}
