//! Per-core scratchpad accounting.
//!
//! Each IPU core owns a private 624 KB scratchpad; a compiled plan must fit
//! every core's buffers (plus the reserved shift buffer, paper §5) into that
//! capacity. The tracker enforces the limit and records the high-water mark,
//! which the benchmarks report as per-core memory footprint (Figure 2 (b),
//! Figure 17). Capacities are per-core so an injected SRAM fault can shrink
//! individual cores below the nominal size.

use t10_device::iface::DeviceError;

use crate::{sim_err, Result};

/// Tracks allocated bytes per core against per-core capacities.
#[derive(Debug, Clone)]
pub struct MemoryTracker {
    capacities: Vec<usize>,
    used: Vec<usize>,
    peak: Vec<usize>,
}

impl MemoryTracker {
    /// Creates a tracker for `cores` cores of `capacity` usable bytes each.
    pub fn new(cores: usize, capacity: usize) -> Self {
        Self::with_capacities(vec![capacity; cores])
    }

    /// Creates a tracker with an explicit capacity per core (SRAM faults).
    pub fn with_capacities(capacities: Vec<usize>) -> Self {
        let cores = capacities.len();
        Self {
            capacities,
            used: vec![0; cores],
            peak: vec![0; cores],
        }
    }

    /// Usable capacity of the most constrained core.
    pub fn capacity(&self) -> usize {
        self.capacities.iter().copied().min().unwrap_or(0)
    }

    /// Usable capacity of one core (0 if out of range).
    pub fn capacity_of(&self, core: usize) -> usize {
        self.capacities.get(core).copied().unwrap_or(0)
    }

    /// Allocates `bytes` on `core`, failing if capacity would be exceeded.
    pub fn allocate(&mut self, core: usize, bytes: usize) -> Result<()> {
        let cap = *self
            .capacities
            .get(core)
            .ok_or_else(|| sim_err!("core {core} out of range"))?;
        let used = &mut self.used[core];
        if *used + bytes > cap {
            return Err(DeviceError::out_of_memory(core, *used + bytes, cap));
        }
        *used += bytes;
        if *used > self.peak[core] {
            self.peak[core] = *used;
        }
        Ok(())
    }

    /// Frees `bytes` on `core`.
    pub fn free(&mut self, core: usize, bytes: usize) -> Result<()> {
        let used = self
            .used
            .get_mut(core)
            .ok_or_else(|| sim_err!("core {core} out of range"))?;
        if bytes > *used {
            return Err(sim_err!(
                "core {core}: freeing {} of {} allocated bytes",
                bytes,
                *used
            ));
        }
        *used -= bytes;
        Ok(())
    }

    /// Currently allocated bytes on a core (0 if out of range).
    pub fn used(&self, core: usize) -> usize {
        self.used.get(core).copied().unwrap_or(0)
    }

    /// High-water mark of one core (0 if out of range).
    pub fn peak_of(&self, core: usize) -> usize {
        self.peak.get(core).copied().unwrap_or(0)
    }

    /// High-water mark across all cores.
    pub fn peak_any_core(&self) -> usize {
        self.peak.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_and_free_round_trip() {
        let mut m = MemoryTracker::new(2, 1000);
        m.allocate(0, 600).unwrap();
        m.allocate(1, 100).unwrap();
        assert_eq!(m.used(0), 600);
        m.free(0, 200).unwrap();
        assert_eq!(m.used(0), 400);
        assert_eq!(m.peak_any_core(), 600);
    }

    #[test]
    fn rejects_over_capacity() {
        let mut m = MemoryTracker::new(1, 1000);
        m.allocate(0, 900).unwrap();
        let err = m.allocate(0, 200).unwrap_err();
        match err {
            DeviceError::OutOfMemory {
                core,
                needed,
                available,
            } => assert_eq!((core, needed, available), (0, 1100, 1000)),
            other => panic!("unexpected variant {other:?}"),
        }
        // A failed allocation leaves state unchanged.
        assert_eq!(m.used(0), 900);
        m.allocate(0, 100).unwrap();
    }

    #[test]
    fn rejects_bad_core_and_overfree() {
        let mut m = MemoryTracker::new(1, 100);
        assert!(m.allocate(3, 1).is_err());
        assert!(m.free(0, 1).is_err());
    }

    #[test]
    fn per_core_capacities_bind_individually() {
        let mut m = MemoryTracker::with_capacities(vec![1000, 500]);
        assert_eq!(m.capacity(), 500);
        assert_eq!(m.capacity_of(0), 1000);
        m.allocate(0, 800).unwrap();
        assert!(m.allocate(1, 800).is_err());
        m.allocate(1, 400).unwrap();
    }
}
