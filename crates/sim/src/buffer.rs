//! Functional per-core buffers with rotating coordinate windows.
//!
//! A rotating sub-tensor partition (paper §4.1) is represented as a dense
//! block of elements plus, per dimension, the *global* coordinates the block
//! currently covers, kept in FIFO storage order. A rotation retires `rp`
//! coordinate slices from the front and appends the slices received from the
//! upstream neighbour at the back — exactly the circular shift of Figure 6,
//! including the sliding-window case where the rotating pace is smaller than
//! the partition length (Figure 7 (d)).

use crate::{sim_err, Result};

/// A dense f32 block with per-dimension global coordinate lists.
#[derive(Debug, Clone, PartialEq)]
pub struct FuncBuffer {
    coords: Vec<Vec<usize>>,
    data: Vec<f32>,
}

impl FuncBuffer {
    /// Creates a buffer covering `coords`, filled with `init`.
    pub fn new(coords: Vec<Vec<usize>>, init: f32) -> Self {
        let n: usize = coords.iter().map(Vec::len).product();
        Self {
            coords,
            data: vec![init; n],
        }
    }

    /// Per-dimension extents of the stored block.
    pub fn lens(&self) -> Vec<usize> {
        self.coords.iter().map(Vec::len).collect()
    }

    /// Number of stored elements.
    pub fn elements(&self) -> usize {
        self.data.len()
    }

    /// Global coordinates covered, per dimension, in storage order.
    pub fn coords(&self) -> &[Vec<usize>] {
        &self.coords
    }

    /// Flat data slice (storage order).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat data slice.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Storage position of a global coordinate along one dimension.
    pub fn pos_of(&self, dim: usize, global: usize) -> Option<usize> {
        self.coords[dim].iter().position(|&c| c == global)
    }

    fn offset(&self, global: &[usize]) -> Option<usize> {
        if global.len() != self.coords.len() {
            return None;
        }
        let mut off = 0;
        for (dim, &g) in global.iter().enumerate() {
            let p = self.pos_of(dim, g)?;
            off = off * self.coords[dim].len() + p;
        }
        Some(off)
    }

    /// Reads the element at global coordinates, if covered.
    pub fn get(&self, global: &[usize]) -> Option<f32> {
        self.offset(global).map(|o| self.data[o])
    }

    /// Writes the element at global coordinates.
    pub fn set(&mut self, global: &[usize], v: f32) -> Result<()> {
        let off = self
            .offset(global)
            .ok_or_else(|| sim_err!("coordinates {global:?} not covered by buffer"))?;
        self.data[off] = v;
        Ok(())
    }

    /// Merges `v` into the element at global coordinates with a reduction.
    pub fn merge(&mut self, global: &[usize], reduce: t10_ir::Reduce, v: f32) -> Result<()> {
        let off = self
            .offset(global)
            .ok_or_else(|| sim_err!("coordinates {global:?} not covered by buffer"))?;
        self.data[off] = reduce.apply(self.data[off], v);
        Ok(())
    }

    /// Copies out the front `count` coordinate slices along `dim`.
    ///
    /// Returns the slice coordinates and the extracted elements in storage
    /// order. This is the payload a core ships downstream during a rotation.
    pub fn front_slab(&self, dim: usize, count: usize) -> Result<(Vec<usize>, Vec<f32>)> {
        if dim >= self.coords.len() {
            return Err(sim_err!("slab dim {dim} out of range"));
        }
        if count > self.coords[dim].len() {
            return Err(sim_err!(
                "slab of {count} slices exceeds dim extent {}",
                self.coords[dim].len()
            ));
        }
        let slab_coords = self.coords[dim][..count].to_vec();
        let lens = self.lens();
        let mut out = Vec::with_capacity(self.data.len() / lens[dim].max(1) * count);
        self.for_each_index(|pos, off| {
            if pos[dim] < count {
                out.push(self.data[off]);
            }
        });
        Ok((slab_coords, out))
    }

    /// Rotates: drops the front `count` slices along `dim` and appends the
    /// incoming slab (from the upstream neighbour) at the back.
    ///
    /// The incoming slab must have the same cross-section as this buffer.
    pub fn rotate(
        &mut self,
        dim: usize,
        count: usize,
        in_coords: &[usize],
        in_data: &[f32],
    ) -> Result<()> {
        if in_coords.len() != count {
            return Err(sim_err!(
                "rotation expected {count} incoming slices, got {}",
                in_coords.len()
            ));
        }
        let lens = self.lens();
        if dim >= lens.len() || count > lens[dim] {
            return Err(sim_err!("rotation dim/count out of range"));
        }
        let cross: usize = self.data.len() / lens[dim].max(1);
        if in_data.len() != cross * count {
            return Err(sim_err!(
                "rotation slab has {} elements, expected {}",
                in_data.len(),
                cross * count
            ));
        }
        // New coordinate order: survivors then incoming.
        let mut new_coords = self.coords[dim][count..].to_vec();
        new_coords.extend_from_slice(in_coords);

        // Rebuild data in the new storage order.
        let mut new_data = vec![0.0f32; self.data.len()];
        let keep = lens[dim] - count;
        // Survivor slices move from position `count + i` to position `i`.
        self.for_each_index(|pos, off| {
            if pos[dim] >= count {
                let mut new_pos = pos.to_vec();
                new_pos[dim] -= count;
                new_data[flat(&new_pos, &lens)] = self.data[off];
            }
        });
        // Incoming slab lands at positions `keep..keep+count`, in the slab's
        // own storage order (same cross-section layout).
        let mut it = in_data.iter();
        let mut in_pos = vec![0usize; lens.len()];
        loop {
            let mut p = in_pos.clone();
            p[dim] += keep;
            new_data[flat(&p, &lens)] = *it.next().ok_or_else(|| sim_err!("slab underrun"))?;
            if !advance_in(&mut in_pos, &lens, dim, count) {
                break;
            }
        }
        self.coords[dim] = new_coords;
        self.data = new_data;
        Ok(())
    }

    /// Replaces the entire contents and coordinates.
    pub fn replace(&mut self, coords: Vec<Vec<usize>>, data: Vec<f32>) -> Result<()> {
        let n: usize = coords.iter().map(Vec::len).product();
        if n != data.len() {
            return Err(sim_err!("replace: {} coords vs {} elements", n, data.len()));
        }
        self.coords = coords;
        self.data = data;
        Ok(())
    }

    /// Merges another buffer covering the same coordinate set element-wise.
    pub fn accumulate_from(&mut self, other: &FuncBuffer, reduce: t10_ir::Reduce) -> Result<()> {
        if other.lens() != self.lens() {
            return Err(sim_err!(
                "accumulate: shape mismatch {:?} vs {:?}",
                other.lens(),
                self.lens()
            ));
        }
        // Fast path: identical coordinate order.
        if other.coords == self.coords {
            for (d, s) in self.data.iter_mut().zip(&other.data) {
                *d = reduce.apply(*d, *s);
            }
            return Ok(());
        }
        let mut res: Result<()> = Ok(());
        other.for_each_coord(|global, v| {
            if res.is_ok() {
                res = self.merge(global, reduce, v);
            }
        });
        res
    }

    fn for_each_index(&self, mut f: impl FnMut(&[usize], usize)) {
        let lens = self.lens();
        if self.data.is_empty() {
            return;
        }
        let mut pos = vec![0usize; lens.len()];
        let mut off = 0;
        loop {
            f(&pos, off);
            off += 1;
            let mut done = true;
            for d in (0..pos.len()).rev() {
                pos[d] += 1;
                if pos[d] < lens[d] {
                    done = false;
                    break;
                }
                pos[d] = 0;
            }
            if done {
                break;
            }
        }
    }

    /// Invokes `f` with the global coordinates and value of every element.
    pub fn for_each_coord(&self, mut f: impl FnMut(&[usize], f32)) {
        let mut global = vec![0usize; self.coords.len()];
        self.for_each_index(|pos, off| {
            for (d, &p) in pos.iter().enumerate() {
                global[d] = self.coords[d][p];
            }
            f(&global, self.data[off]);
        });
    }
}

fn flat(pos: &[usize], lens: &[usize]) -> usize {
    let mut off = 0;
    for (p, l) in pos.iter().zip(lens) {
        off = off * l + p;
    }
    off
}

/// Odometer over a block whose `dim` extent is `count` and all other extents
/// come from `lens`.
fn advance_in(pos: &mut [usize], lens: &[usize], dim: usize, count: usize) -> bool {
    for d in (0..pos.len()).rev() {
        let extent = if d == dim { count } else { lens[d] };
        pos[d] += 1;
        if pos[d] < extent {
            return true;
        }
        pos[d] = 0;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use t10_ir::Reduce;

    fn buf2x3() -> FuncBuffer {
        // Coordinates rows {10, 11}, cols {0, 1, 2}; values 0..6.
        let mut b = FuncBuffer::new(vec![vec![10, 11], vec![0, 1, 2]], 0.0);
        for (i, v) in b.data_mut().iter_mut().enumerate() {
            *v = i as f32;
        }
        b
    }

    #[test]
    fn get_set_by_global_coords() {
        let mut b = buf2x3();
        assert_eq!(b.get(&[10, 0]), Some(0.0));
        assert_eq!(b.get(&[11, 2]), Some(5.0));
        assert_eq!(b.get(&[12, 0]), None);
        b.set(&[11, 1], 9.0).unwrap();
        assert_eq!(b.get(&[11, 1]), Some(9.0));
        assert!(b.set(&[9, 0], 1.0).is_err());
    }

    #[test]
    fn merge_applies_reduce() {
        let mut b = buf2x3();
        b.merge(&[10, 0], Reduce::Sum, 4.0).unwrap();
        assert_eq!(b.get(&[10, 0]), Some(4.0));
        b.merge(&[10, 0], Reduce::Max, 2.0).unwrap();
        assert_eq!(b.get(&[10, 0]), Some(4.0));
    }

    #[test]
    fn front_slab_extracts_leading_slices() {
        let b = buf2x3();
        let (coords, data) = b.front_slab(1, 2).unwrap();
        assert_eq!(coords, vec![0, 1]);
        // Columns 0 and 1 of both rows, row-major: 0,1,3,4.
        assert_eq!(data, vec![0.0, 1.0, 3.0, 4.0]);
    }

    #[test]
    fn rotate_slides_window() {
        let mut b = buf2x3();
        // Receive columns {3, 4} to replace retiring {0, 1}.
        b.rotate(1, 2, &[3, 4], &[30.0, 40.0, 31.0, 41.0]).unwrap();
        assert_eq!(b.coords()[1], vec![2, 3, 4]);
        assert_eq!(b.get(&[10, 2]), Some(2.0));
        assert_eq!(b.get(&[10, 3]), Some(30.0));
        assert_eq!(b.get(&[11, 4]), Some(41.0));
        assert_eq!(b.get(&[10, 0]), None);
    }

    #[test]
    fn two_core_ring_full_rotation_restores_coverage() {
        // Ring of 2 cores over a 1-D extent of 4, partitions of 2, rp 1.
        let mut c0 = FuncBuffer::new(vec![vec![0, 1]], 0.0);
        let mut c1 = FuncBuffer::new(vec![vec![2, 3]], 0.0);
        c0.data_mut().copy_from_slice(&[100.0, 101.0]);
        c1.data_mut().copy_from_slice(&[102.0, 103.0]);
        for _ in 0..4 {
            let (k0, d0) = c0.front_slab(0, 1).unwrap();
            let (k1, d1) = c1.front_slab(0, 1).unwrap();
            c0.rotate(0, 1, &k1, &d1).unwrap();
            c1.rotate(0, 1, &k0, &d0).unwrap();
        }
        // After extent=4 single-slice rotations everything is home again.
        assert_eq!(c0.coords()[0], vec![0, 1]);
        assert_eq!(c0.data(), &[100.0, 101.0]);
        assert_eq!(c1.coords()[0], vec![2, 3]);
        assert_eq!(c1.data(), &[102.0, 103.0]);
    }

    #[test]
    fn rotate_rejects_bad_slab() {
        let mut b = buf2x3();
        assert!(b.rotate(1, 2, &[3], &[1.0, 2.0]).is_err());
        assert!(b.rotate(1, 2, &[3, 4], &[1.0]).is_err());
        assert!(b.rotate(5, 1, &[3], &[1.0]).is_err());
    }

    #[test]
    fn replace_swaps_contents() {
        let mut b = buf2x3();
        b.replace(vec![vec![7]], vec![42.0]).unwrap();
        assert_eq!(b.get(&[7]), Some(42.0));
        assert!(b.replace(vec![vec![1, 2]], vec![0.0]).is_err());
    }

    #[test]
    fn accumulate_sums_matching_coords() {
        let mut a = buf2x3();
        let b = buf2x3();
        a.accumulate_from(&b, Reduce::Sum).unwrap();
        assert_eq!(a.get(&[11, 2]), Some(10.0));
    }

    #[test]
    fn accumulate_handles_permuted_coords() {
        let mut a = FuncBuffer::new(vec![vec![0, 1]], 0.0);
        let mut b = FuncBuffer::new(vec![vec![1, 0]], 0.0);
        b.set(&[0], 5.0).unwrap();
        b.set(&[1], 7.0).unwrap();
        a.accumulate_from(&b, Reduce::Sum).unwrap();
        assert_eq!(a.get(&[0]), Some(5.0));
        assert_eq!(a.get(&[1]), Some(7.0));
    }

    #[test]
    fn accumulate_rejects_shape_mismatch() {
        let mut a = buf2x3();
        let b = FuncBuffer::new(vec![vec![0]], 0.0);
        assert!(a.accumulate_from(&b, Reduce::Sum).is_err());
    }

    #[test]
    fn for_each_coord_visits_all() {
        let b = buf2x3();
        let mut n = 0;
        let mut sum = 0.0;
        b.for_each_coord(|_, v| {
            n += 1;
            sum += v;
        });
        assert_eq!(n, 6);
        assert_eq!(sum, 15.0);
    }
}
